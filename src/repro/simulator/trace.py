"""Trace recording for figure regeneration.

The paper's Figures 3, 5 and 6 are snapshots of the per-node state after
each algorithm phase.  Algorithms record labelled per-node values through
:meth:`NodeCtx.record` (engine backend) or directly through
:meth:`TraceRecorder.record_array` (vectorized backend); the benchmark
harness then renders each labelled snapshot as one figure panel.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Ordered, labelled per-node state snapshots.

    A *snapshot* with label L is complete once every rank has recorded a
    value under L the same number of times; ranks may record under the same
    label repeatedly (one value per round), producing a series.

    Parameters
    ----------
    num_nodes:
        Expected rank count, when known.  With it set,
        :meth:`record_array` rejects ragged/short snapshots instead of
        silently recording an incomplete one.
    """

    def __init__(self, num_nodes: int | None = None):
        if num_nodes is not None and num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self._per_rank: dict[str, dict[int, list[Any]]] = {}
        self._label_order: list[str] = []

    def record(self, label: str, rank: int, value: Any) -> None:
        """Record ``value`` for ``rank`` under ``label``."""
        if label not in self._per_rank:
            self._per_rank[label] = {}
            self._label_order.append(label)
        self._per_rank[label].setdefault(rank, []).append(value)

    def record_array(self, label: str, values: Iterable[Any]) -> None:
        """Record one full snapshot at once (rank k gets ``values[k]``).

        When the recorder knows its rank count, a snapshot of any other
        length raises ``ValueError`` (nothing is recorded); previously a
        short or ragged iterable was silently accepted, leaving the label
        incomplete and every later :meth:`snapshot` call failing.
        """
        vals = list(values)
        if self.num_nodes is not None and len(vals) != self.num_nodes:
            raise ValueError(
                f"snapshot {label!r} has {len(vals)} values; recorder "
                f"expects exactly {self.num_nodes} ranks"
            )
        for rank, value in enumerate(vals):
            self.record(label, rank, value)

    def labels(self) -> tuple[str, ...]:
        """Labels in first-recorded order."""
        return tuple(self._label_order)

    def _ranks(self, label: str) -> dict[int, list[Any]]:
        """Per-rank values under ``label``; a helpful KeyError if unknown.

        A bare ``KeyError: 'label'`` from the internal dict told the caller
        nothing about what *was* recorded; list the known labels instead.
        """
        try:
            return self._per_rank[label]
        except KeyError:
            known = ", ".join(repr(x) for x in self._label_order) or "<none>"
            raise KeyError(
                f"no snapshot recorded under label {label!r}; "
                f"known labels: {known}"
            ) from None

    def depth(self, label: str) -> int:
        """How many snapshots exist under ``label`` (min across ranks)."""
        ranks = self._ranks(label)
        return min(len(v) for v in ranks.values())

    def snapshot(self, label: str, num_nodes: int, index: int = 0) -> list:
        """The ``index``-th snapshot under ``label`` as a rank-ordered list."""
        ranks = self._ranks(label)
        out = []
        for r in range(num_nodes):
            if r not in ranks or index >= len(ranks[r]):
                raise KeyError(
                    f"snapshot {label!r}[{index}] incomplete at rank {r}"
                )
            out.append(ranks[r][index])
        return out

    def series(self, label: str, num_nodes: int) -> list[list]:
        """All snapshots under ``label`` in recording order."""
        return [
            self.snapshot(label, num_nodes, i) for i in range(self.depth(label))
        ]
