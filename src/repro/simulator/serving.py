"""Open-loop traffic serving: a discrete-event queueing simulator.

:func:`run_traffic` answers "what do these routes cost in aggregate" —
every pair is routed instantaneously, so it can say nothing about
*latency under load*.  This module is the serving-side counterpart: an
event-driven simulation of sustained, bursty traffic over the same
topologies and routers, with the queueing structure production capacity
planning cares about (see ``docs/model.md``, "Serving semantics"):

* **open-loop arrivals** — requests arrive on a schedule that does not
  react to the system (:func:`poisson_arrivals`,
  :func:`deterministic_arrivals`, :func:`onoff_arrivals`, or a replayed
  :func:`trace_arrivals` array), each carrying a random or supplied
  (src, dst) pair routed by the usual pluggable router;
* **per-link FIFO queues** — every *directed* link is a single server
  with deterministic service time and a finite (or infinite) waiting
  buffer; a hop is one service completion;
* **overload policies** — a message reaching a full buffer is either
  dropped (``policy="drop"``) or held where it is with backpressure
  (``policy="block"``: the upstream server stays occupied and re-offers
  the message every service time; at injection the request waits at the
  source NIC);
* **deadlines** — a request finishing after ``arrival + deadline`` counts
  as a deadline miss, not goodput;
* **fault integration** — a :class:`~repro.simulator.faults.FaultPlan`
  disturbs the live queues: its seeded drop schedule forces
  retransmissions of individual hop crossings (bounded by
  ``max_retries``) and its delay schedule stretches service times, with
  cycle keys taken from the integer simulation clock.

Everything is deterministic: identical inputs (arrival array, pairs,
config, plan) reproduce the identical :class:`ServingStats` — event ties
are broken by an explicit sequence number, never by hash order — so the
stats object doubles as a regression fingerprint.

The load-sweep driver :func:`find_saturation` bisects offered load to
the knee where p99 sojourn time diverges, turning the paper's E11
random-traffic experiment into a capacity-planning tool (experiment E18
compares the dual-cube's knee against the hypercube's and metacube's).
"""

from __future__ import annotations

import heapq
import math
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.simulator.faults import FaultPlan
from repro.topology.base import Topology

__all__ = [
    "ServingConfig",
    "ServingStats",
    "Checkpoint",
    "LinkOccupancy",
    "SaturationResult",
    "deterministic_arrivals",
    "poisson_arrivals",
    "onoff_arrivals",
    "trace_arrivals",
    "open_loop_pairs",
    "bfs_router",
    "run_serving",
    "find_saturation",
    "registry_from_serving",
]

Router = Callable[[int, int], Sequence[int]]


# --------------------------------------------------------------------------
# Arrival processes.  Each returns a sorted float64 array of arrival times
# starting at t >= 0; all randomness flows through an explicit seed, so a
# given (process, rate, num, seed) is one reproducible workload.
# --------------------------------------------------------------------------


def _check_rate_num(rate: float, num: int) -> None:
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if num < 0:
        raise ValueError(f"request count must be non-negative, got {num}")


def deterministic_arrivals(rate: float, num: int) -> np.ndarray:
    """``num`` arrivals at exact spacing ``1/rate`` (the D/·/1 workload)."""
    _check_rate_num(rate, num)
    return np.arange(num, dtype=np.float64) / rate


def poisson_arrivals(rate: float, num: int, seed: int = 0) -> np.ndarray:
    """``num`` arrivals of a Poisson process of intensity ``rate``."""
    _check_rate_num(rate, num)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, num)
    return np.cumsum(gaps)


def onoff_arrivals(
    rate: float,
    num: int,
    seed: int = 0,
    *,
    burst_factor: float = 4.0,
    on_mean: float = 10.0,
    off_mean: float = 30.0,
) -> np.ndarray:
    """Bursty on/off arrivals with long-run intensity ``rate``.

    Alternates exponentially-distributed ON and OFF phases (means
    ``on_mean``/``off_mean`` time units); during ON phases arrivals are
    Poisson at ``burst_factor`` times the rate a steady process would
    need, so the long-run average matches ``rate`` while the instantaneous
    load arrives in bursts — the workload that separates mean latency
    from tail latency.
    """
    _check_rate_num(rate, num)
    if burst_factor <= 1.0:
        raise ValueError(f"burst_factor must be > 1, got {burst_factor}")
    if on_mean <= 0 or off_mean <= 0:
        raise ValueError(
            f"phase means must be positive, got on={on_mean} off={off_mean}"
        )
    # Long-run arrival intensity is on_rate * on_mean / (on_mean + off_mean);
    # solve for the ON-phase rate that makes it equal `rate`.
    duty = on_mean / (on_mean + off_mean)
    on_rate = min(rate * burst_factor, rate / duty)
    rng = np.random.default_rng(seed)
    times: list[float] = []
    t = 0.0
    while len(times) < num:
        on_len = rng.exponential(on_mean)
        end = t + on_len
        while len(times) < num:
            t += rng.exponential(1.0 / on_rate)
            if t > end:
                t = end
                break
            times.append(t)
        t += rng.exponential(off_mean)
    return np.asarray(times[:num], dtype=np.float64)


def trace_arrivals(times: Sequence[float]) -> np.ndarray:
    """Validate and normalize a replayable arrival-time trace.

    The trace must be non-negative and non-decreasing (simultaneous
    arrivals are allowed; their relative order in the array is the order
    they are offered to the network, though aggregate counters do not
    depend on it — see ``tests/simulator/test_serving_properties.py``).
    """
    arr = np.asarray(times, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"arrival trace must be 1-D, got shape {arr.shape}")
    if arr.size and (not np.isfinite(arr).all() or arr[0] < 0):
        raise ValueError("arrival trace must be finite and non-negative")
    if arr.size and (np.diff(arr) < 0).any():
        raise ValueError("arrival trace must be non-decreasing")
    return arr


def open_loop_pairs(
    topo: Topology, num: int, seed: int = 0
) -> list[tuple[int, int]]:
    """``num`` uniform self-excluding (src, dst) pairs for a workload."""
    from repro.simulator.traffic import random_pairs

    rng = np.random.default_rng(seed)
    return random_pairs(topo.num_nodes, num, rng)


def bfs_router(topo: Topology) -> Router:
    """Shortest-path router for any :class:`Topology` (per-source BFS).

    Predecessor trees are memoized per source, so routing a batch costs
    one BFS per distinct source — the fallback for comparison topologies
    (e.g. the metacube) that ship no closed-form router.
    """
    trees: dict[int, list[int]] = {}

    def _route(u: int, v: int) -> list[int]:
        topo.check_node(u)
        topo.check_node(v)
        if u == v:
            return [u]
        prev = trees.get(u)
        if prev is None:
            prev = [-1] * topo.num_nodes
            prev[u] = u
            queue = deque([u])
            while queue:
                w = queue.popleft()
                for x in topo.neighbors(w):
                    if prev[x] < 0:
                        prev[x] = w
                        queue.append(x)
            trees[u] = prev
        if prev[v] < 0:
            raise ValueError(f"{topo.name}: no path {u} -> {v}")
        path = [v]
        while path[-1] != u:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    _route.__name__ = f"bfs_router({topo.name})"
    return _route


# --------------------------------------------------------------------------
# Configuration and results.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one serving run.

    ``service_time`` is the deterministic time a link spends per message
    (one hop).  ``queue_capacity`` bounds the *waiting* buffer of each
    directed link (the in-service slot is separate); ``None`` means
    unbounded.  ``policy`` selects what happens at a full buffer:
    ``"drop"`` discards the request, ``"block"`` applies backpressure
    (the message holds its upstream server and re-offers itself every
    service time; a blocked injection waits at the source).  ``deadline``
    is the per-request sojourn budget (``None`` = no deadlines).
    ``horizon`` stops the simulation clock: arrivals and service beyond
    it never happen and unfinished requests count as in-flight —
    required for ``policy="block"`` with finite capacity, where cyclic
    backpressure can otherwise hold messages forever.
    """

    service_time: float = 1.0
    queue_capacity: int | None = None
    policy: str = "drop"
    deadline: float | None = None
    horizon: float | None = None
    checkpoint_every: float | None = None

    def __post_init__(self):
        if self.service_time <= 0:
            raise ValueError(
                f"service_time must be positive, got {self.service_time}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ValueError(
                f"queue_capacity must be >= 0 or None, got {self.queue_capacity}"
            )
        if self.policy not in ("drop", "block"):
            raise ValueError(
                f"policy must be 'drop' or 'block', got {self.policy!r}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )


@dataclass(frozen=True)
class Checkpoint:
    """Counter snapshot at one simulated instant.

    The conservation law ``arrivals == completions + drops +
    deadline_misses + in_flight`` holds at every checkpoint by
    construction; the property suite asserts it anyway, because that is
    exactly the invariant a bookkeeping bug would break.
    """

    time: float
    arrivals: int
    completions: int
    drops: int
    deadline_misses: int
    in_flight: int


@dataclass(frozen=True)
class LinkOccupancy:
    """Queueing behaviour of one directed link over the run.

    ``utilization`` is busy time over elapsed time; ``mean_queue`` is the
    time-averaged waiting-buffer length (in-service slot excluded);
    ``served`` counts service completions (retransmitted attempts
    included).
    """

    utilization: float
    mean_queue: float
    max_queue: int
    served: int


@dataclass(frozen=True)
class ServingStats:
    """Aggregate results of one open-loop serving run.

    Latency percentiles are nearest-rank over the sojourn times of every
    *finished* request (completions and deadline misses; dropped requests
    have no sojourn).  With fewer than 1000 finished requests ``p999``
    equals the maximum — at small n the extreme tail is the sample
    maximum, not an interpolated fiction (see ``docs/model.md``).

    ``goodput`` counts only in-deadline completions per unit time.
    ``link_loads`` aggregates service attempts per *undirected* link in
    :func:`run_traffic`'s key convention, so a closed-batch run is
    directly comparable to the batch router (the cross-validation test
    pins them equal); ``occupancy`` keeps the *directed* per-queue view.
    """

    topology: str
    policy: str
    arrivals: int
    completions: int
    drops: int
    deadline_misses: int
    in_flight: int
    elapsed: float
    p50: float
    p99: float
    p999: float
    mean_sojourn: float
    max_sojourn: float
    goodput: float
    hops_served: int
    path_hops: int
    retransmissions: int
    blocked_retries: int
    link_loads: dict = field(default_factory=dict)
    occupancy: dict = field(default_factory=dict)
    checkpoints: tuple = ()

    @property
    def finished(self) -> int:
        """Requests that traversed their full path (on time or late)."""
        return self.completions + self.deadline_misses

    @property
    def utilization(self) -> float:
        """Mean utilization over the links that carried any traffic."""
        busy = [o.utilization for o in self.occupancy.values() if o.served]
        return float(np.mean(busy)) if busy else 0.0

    def conservation_ok(self) -> bool:
        """The end-of-run conservation law (and at every checkpoint)."""
        checks = [
            (self.arrivals, self.completions, self.drops,
             self.deadline_misses, self.in_flight)
        ] + [
            (c.arrivals, c.completions, c.drops, c.deadline_misses, c.in_flight)
            for c in self.checkpoints
        ]
        return all(a == c + d + m + f for a, c, d, m, f in checks)

    def row(self) -> tuple:
        """Tuple for table rendering."""
        return (
            self.topology,
            self.arrivals,
            self.completions,
            self.drops,
            self.deadline_misses,
            round(self.p50, 3),
            round(self.p99, 3),
            round(self.p999, 3),
            round(self.goodput, 4),
            round(self.utilization, 3),
        )


def _percentile(sorted_vals: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not len(sorted_vals):
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_vals)))
    return float(sorted_vals[rank - 1])


# --------------------------------------------------------------------------
# The discrete-event core.
# --------------------------------------------------------------------------

# Event kinds, ordered deliberately: at one instant, departures run
# before arrivals (a slot freed at time t is available to a time-t
# arrival), and retries after fresh arrivals.  The int is the heap
# tie-break after time; `seq` below breaks remaining ties by creation
# order, so the schedule is a pure function of the inputs.
_DEPART = 0
_ARRIVE = 1
_RETRY_INJECT = 2


class _Request:
    __slots__ = (
        "rid", "t_arrive", "src", "dst", "path", "hop", "tries", "crossed",
        "deadline",
    )

    def __init__(self, rid, t_arrive, src, dst, path, deadline):
        self.rid = rid
        self.t_arrive = t_arrive
        self.src = src
        self.dst = dst
        self.path = path
        self.hop = 0          # index into path: current link is path[hop]->path[hop+1]
        self.tries = 0        # fault-drop retransmissions of the current hop
        self.crossed = False  # current hop already counted as a crossing
        self.deadline = deadline


class _LinkQ:
    """One directed link: a single deterministic server plus FIFO buffer."""

    __slots__ = (
        "queue", "current", "served", "busy_since", "busy_time",
        "q_area", "q_last_t", "max_queue",
    )

    def __init__(self):
        self.queue: deque = deque()
        self.current: _Request | None = None
        self.served = 0
        self.busy_since = 0.0
        self.busy_time = 0.0
        self.q_area = 0.0   # integral of queue length over time
        self.q_last_t = 0.0
        self.max_queue = 0

    def note_queue_change(self, t: float) -> None:
        self.q_area += len(self.queue) * (t - self.q_last_t)
        self.q_last_t = t


def _validated_path(topo: Topology, router: Router, req_src, req_dst) -> tuple:
    router_name = getattr(router, "__name__", repr(router))
    raw = router(req_src, req_dst)
    path = tuple(raw) if raw is not None else ()
    if not path:
        raise ValueError(
            f"router {router_name} returned an empty path for pair "
            f"({req_src}, {req_dst}) on {topo.name}; every pair must be "
            f"routable (got {raw!r})"
        )
    if path[0] != req_src or path[-1] != req_dst:
        raise ValueError(
            f"router returned bad endpoints for ({req_src}, {req_dst})"
        )
    for a, b in zip(path, path[1:]):
        if not topo.has_edge(a, b):
            raise ValueError(f"router used non-edge ({a}, {b}) on {topo.name}")
    return path


def run_serving(
    topo: Topology,
    router: Router,
    arrivals: Sequence[float],
    pairs: Sequence[tuple[int, int]],
    *,
    config: ServingConfig | None = None,
    fault_plan: FaultPlan | None = None,
    timeline=None,
) -> ServingStats:
    """Serve an open-loop workload through ``topo`` and aggregate stats.

    ``arrivals`` is a non-decreasing array of request arrival times and
    ``pairs`` the same-length sequence of (src, dst) pairs; request ``i``
    arrives at ``arrivals[i]`` and is routed once by ``router`` (paths
    are validated hop by hop, as in :func:`run_traffic`).

    With a ``fault_plan``, each completed hop crossing is subject to the
    plan's deterministic drop schedule keyed by a global attempt counter
    (the same convention as :func:`run_traffic`; a given workload + plan
    reproduces its own retransmissions bit-for-bit, and on a single-link
    topology — where crossing order is sequential — it reproduces
    :func:`run_traffic`'s exactly); a dropped crossing re-enters
    service on the same link — the failed attempt still occupies the
    server and loads the link — bounded per hop by ``plan.max_retries``,
    after which the request counts as a drop.  The plan's delay schedule
    stretches individual service times by ``issue_delay(src, cycle)``
    service units, with ``cycle = floor(t) + 1``.  Structural and
    membership faults use the same wall-clock cycle key: a request
    arriving at a node that is crashed or inside a downtime interval
    (``plan.down(src, cycle)``) is refused at admission and counted as a
    drop, and a crossing whose link is cut — or whose endpoint is down —
    at that cycle is lost exactly like a transient drop (retransmitted in
    place up to ``max_retries``).  Plans without structural faults are
    unaffected bit-for-bit, because the global attempt counter advances
    identically.

    A ``timeline`` (:class:`~repro.obs.timeline.TimelineRecorder`)
    receives one message event per successful hop crossing (bucketed into
    integer cycles the same way) and one fault event per queue drop
    (``"drop"``), fault-plan drop (``"drop"``) and deadline miss
    (``"timeout"``), so ``repro serve --heatmap`` renders queue activity
    with the existing ASCII renderer.
    """
    cfg = config or ServingConfig()
    times = trace_arrivals(arrivals)
    pairs = list(pairs)
    if len(pairs) != len(times):
        raise ValueError(
            f"arrivals and pairs must have equal length, got "
            f"{len(times)} arrivals and {len(pairs)} pairs"
        )
    service = cfg.service_time
    capacity = cfg.queue_capacity
    blocking = cfg.policy == "block"
    if blocking and capacity is not None and cfg.horizon is None:
        raise ValueError(
            "policy='block' with finite queue_capacity requires a horizon: "
            "cyclic backpressure can hold messages forever"
        )

    links: dict[tuple[int, int], _LinkQ] = {}
    load: Counter = Counter()

    # Aggregate counters.
    n_arrivals = n_completions = n_drops = n_misses = 0
    hops_served = path_hops = retransmissions = blocked_retries = 0
    attempt = 0  # global crossing-attempt index: the fault plan's cycle key
    sojourns: list[float] = []
    checkpoints: list[Checkpoint] = []
    next_checkpoint = (
        cfg.checkpoint_every if cfg.checkpoint_every is not None else None
    )

    heap: list = []
    seq = 0

    def push(t: float, kind: int, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (t, kind, seq, payload))
        seq += 1

    # Pre-route each request lazily at arrival (routers may be stateful
    # caches); requests beyond the horizon never arrive at all.
    for i, t in enumerate(times):
        if cfg.horizon is not None and t > cfg.horizon:
            break
        push(float(t), _ARRIVE, i)

    def cycle_of(t: float) -> int:
        return int(math.floor(t)) + 1

    def record_fault(t: float, kind: str, req: _Request, a=None, b=None):
        if timeline is not None:
            timeline.record_fault(
                cycle_of(t), kind, rank=req.src, src=a, dst=b
            )

    def link_of(req: _Request) -> tuple[int, int]:
        return (req.path[req.hop], req.path[req.hop + 1])

    def get_link(key: tuple[int, int]) -> _LinkQ:
        lq = links.get(key)
        if lq is None:
            lq = links[key] = _LinkQ()
        return lq

    def start_service(key: tuple[int, int], lq: _LinkQ, req: _Request, t: float):
        lq.current = req
        lq.busy_since = t
        dt = service
        if fault_plan is not None:
            dt += fault_plan.issue_delay(req.path[req.hop], cycle_of(t)) * service
        push(t + dt, _DEPART, key)

    def finish_request(req: _Request, t: float) -> None:
        nonlocal n_completions, n_misses
        sojourn = t - req.t_arrive
        sojourns.append(sojourn)
        if req.deadline is not None and t > req.deadline:
            n_misses += 1
            record_fault(t, "timeout", req)
        else:
            n_completions += 1

    def offer(req: _Request, t: float) -> bool:
        """Try to place ``req`` on its current link; False when full."""
        key = link_of(req)
        lq = get_link(key)
        if lq.current is None:
            start_service(key, lq, req, t)
            return True
        if capacity is not None and len(lq.queue) >= capacity:
            return False
        lq.note_queue_change(t)
        lq.queue.append(req)
        if len(lq.queue) > lq.max_queue:
            lq.max_queue = len(lq.queue)
        return True

    def free_server(key: tuple[int, int], lq: _LinkQ, t: float) -> None:
        lq.busy_time += t - lq.busy_since
        lq.current = None
        if lq.queue:
            lq.note_queue_change(t)
            nxt = lq.queue.popleft()
            start_service(key, lq, nxt, t)

    def drop_request(req: _Request, t: float, a: int, b: int) -> None:
        nonlocal n_drops
        n_drops += 1
        record_fault(t, "drop", req, a, b)

    def take_checkpoint(upto: float) -> None:
        nonlocal next_checkpoint
        if next_checkpoint is None:
            return
        while next_checkpoint <= upto and (
            cfg.horizon is None or next_checkpoint <= cfg.horizon
        ):
            in_flight = n_arrivals - n_completions - n_drops - n_misses
            checkpoints.append(
                Checkpoint(
                    time=next_checkpoint,
                    arrivals=n_arrivals,
                    completions=n_completions,
                    drops=n_drops,
                    deadline_misses=n_misses,
                    in_flight=in_flight,
                )
            )
            next_checkpoint += cfg.checkpoint_every

    last_t = 0.0
    while heap:
        t, kind, _, payload = heapq.heappop(heap)
        if cfg.horizon is not None and t > cfg.horizon:
            break
        take_checkpoint(t)
        last_t = t

        if kind == _ARRIVE or kind == _RETRY_INJECT:
            if kind == _ARRIVE:
                i = payload
                src, dst = pairs[i]
                path = _validated_path(topo, router, src, dst)
                n_arrivals += 1
                deadline = (
                    t + cfg.deadline if cfg.deadline is not None else None
                )
                req = _Request(i, t, src, dst, path, deadline)
                if fault_plan is not None and fault_plan.down(
                    src, cycle_of(t)
                ):
                    # The ingress node is crashed or offline (downtime):
                    # the request is refused at admission and counts as a
                    # drop — the availability SLO's numerator.
                    drop_request(req, t, src, src)
                    continue
                if len(path) == 1:
                    finish_request(req, t)
                    continue
            else:
                req = payload
            if not offer(req, t):
                if blocking:
                    blocked_retries += 1
                    push(t + service, _RETRY_INJECT, req)
                else:
                    a, b = link_of(req)
                    drop_request(req, t, a, b)
            continue

        # _DEPART: the link finished one service period.
        key = payload
        lq = links[key]
        req = lq.current
        a, b = key

        if not req.crossed:
            # This completion is a genuine crossing attempt.
            attempt += 1
            load[(min(a, b), max(a, b))] += 1
            lq.served += 1
            hops_served += 1
            if fault_plan is not None and (
                fault_plan.dropped(a, b, attempt)
                # A cut link or a down endpoint (crash/downtime) loses the
                # crossing exactly like a transient drop: the attempt
                # counter advanced, so drop-schedule verdicts for plans
                # without structural faults are unchanged bit-for-bit.
                or not fault_plan.link_up(a, b, cycle_of(t))
            ):
                retransmissions += 1
                req.tries += 1
                record_fault(t, "drop", req, a, b)
                if req.tries > fault_plan.max_retries:
                    drop_request(req, t, a, b)
                    free_server(key, lq, t)
                else:
                    start_service(key, lq, req, t)  # retransmit in place
                continue
            path_hops += 1
            req.crossed = True
            if timeline is not None:
                timeline.record_message(cycle_of(t), a, b, 1, "send")

        if req.hop + 2 >= len(req.path):
            finish_request(req, t)
            free_server(key, lq, t)
            continue

        # Hand off to the next link on the path.
        req.hop += 1
        req.tries = 0
        req.crossed = False
        if offer(req, t):
            free_server(key, lq, t)
        elif blocking:
            # Hold the server and re-offer downstream after a service time.
            blocked_retries += 1
            req.hop -= 1
            req.crossed = True
            push(t + service, _DEPART, key)
        else:
            nk = link_of(req)
            drop_request(req, t, nk[0], nk[1])
            free_server(key, lq, t)

    # The observation window is the *full* configured horizon: the run is
    # open-loop, so a drained event heap just means the tail of the window
    # was idle — idle time still counts toward utilization/goodput, and
    # checkpoints scheduled after the last event must still be emitted.
    # (Without a horizon the window ends at the last event, as before.)
    elapsed = cfg.horizon if cfg.horizon is not None else last_t
    take_checkpoint(elapsed)
    if timeline is not None and elapsed > 0:
        timeline.set_cycles(int(math.ceil(elapsed)))

    in_flight = n_arrivals - n_completions - n_drops - n_misses
    sojourns.sort()
    occupancy = {}
    for key, lq in sorted(links.items()):
        if lq.current is not None:  # still busy at the horizon
            lq.busy_time += max(0.0, elapsed - lq.busy_since)
        lq.q_area += len(lq.queue) * max(0.0, elapsed - lq.q_last_t)
        occupancy[key] = LinkOccupancy(
            utilization=(lq.busy_time / elapsed) if elapsed > 0 else 0.0,
            mean_queue=(lq.q_area / elapsed) if elapsed > 0 else 0.0,
            max_queue=lq.max_queue,
            served=lq.served,
        )

    return ServingStats(
        topology=topo.name,
        policy=cfg.policy,
        arrivals=n_arrivals,
        completions=n_completions,
        drops=n_drops,
        deadline_misses=n_misses,
        in_flight=in_flight,
        elapsed=float(elapsed),
        p50=_percentile(sojourns, 0.50),
        p99=_percentile(sojourns, 0.99),
        p999=_percentile(sojourns, 0.999),
        mean_sojourn=float(np.mean(sojourns)) if sojourns else 0.0,
        max_sojourn=float(sojourns[-1]) if sojourns else 0.0,
        goodput=(n_completions / elapsed) if elapsed > 0 else 0.0,
        hops_served=hops_served,
        path_hops=path_hops,
        retransmissions=retransmissions,
        blocked_retries=blocked_retries,
        link_loads=dict(load),
        occupancy=occupancy,
        checkpoints=tuple(checkpoints),
    )


# --------------------------------------------------------------------------
# Saturation sweep.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SaturationResult:
    """Outcome of one :func:`find_saturation` bisection.

    ``rate`` is the highest *per-node* injection rate probed that kept
    p99 sojourn below ``threshold`` (the knee is between ``rate`` and
    ``diverged_rate``); ``probes`` records every ``(rate, p99)`` pair
    measured, in probe order, so the sweep is auditable.
    """

    topology: str
    rate: float
    diverged_rate: float
    base_p99: float
    threshold: float
    probes: tuple

    def row(self) -> tuple:
        return (
            self.topology,
            round(self.rate, 5),
            round(self.diverged_rate, 5),
            round(self.base_p99, 3),
            round(self.threshold, 3),
            len(self.probes),
        )


def find_saturation(
    topo: Topology,
    router: Router,
    *,
    seed: int = 0,
    requests: int = 2000,
    max_requests: int = 20000,
    window: float = 300.0,
    service_time: float = 1.0,
    start_rate: float = 0.01,
    p99_factor: float = 8.0,
    max_doublings: int = 12,
    rel_tol: float = 0.05,
    config: ServingConfig | None = None,
) -> SaturationResult:
    """Bisect per-node offered load to the knee where p99 diverges.

    Each probe observes a fixed simulated ``window``: it offers
    ``rate * num_nodes * window`` requests (floored at ``requests`` so
    near-idle probes still have a p99-worthy sample, capped at
    ``max_requests`` to bound probe cost).  The fixed window is what
    makes divergence *detectable*: past the knee, backlog accumulates
    over the whole window, so p99 grows with the window instead of
    saturating at the drain time of some fixed batch.  All probes reuse
    one seeded gap sequence and pair list (rescaled to the probed rate),
    so the sweep is deterministic and seed-stable.

    The divergence threshold is ``p99_factor`` times the p99 measured at
    ``start_rate`` (a nearly idle system, so that p99 is queueing-free
    path latency).  Doubling from ``start_rate`` finds a diverged rate,
    then bisection narrows the bracket to ``rel_tol`` relative width.

    Rates are *per node* per time unit — the natural axis for comparing
    topologies of different sizes (experiment E18).
    """
    if requests < 100:
        raise ValueError(f"requests must be >= 100 for a stable p99, got {requests}")
    if max_requests < requests:
        raise ValueError(
            f"max_requests ({max_requests}) must be >= requests ({requests})"
        )
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if start_rate <= 0:
        raise ValueError(f"start_rate must be positive, got {start_rate}")
    if p99_factor <= 1:
        raise ValueError(f"p99_factor must be > 1, got {p99_factor}")
    if not 0 < rel_tol < 1:
        raise ValueError(f"rel_tol must be in (0, 1), got {rel_tol}")
    base_cfg = config or ServingConfig(service_time=service_time)
    pairs = open_loop_pairs(topo, max_requests, seed)
    # One unit-rate gap sequence, rescaled per probe: probing rate r uses
    # arrival times gaps/total_rate, so all probes share one sample path.
    unit_gaps = np.random.default_rng(seed).exponential(1.0, max_requests)

    probes: list[tuple[float, float]] = []

    def p99_at(rate: float) -> float:
        total_rate = rate * topo.num_nodes
        num = int(min(max_requests, max(requests, round(total_rate * window))))
        arrivals = np.cumsum(unit_gaps[:num] / total_rate)
        stats = run_serving(
            topo, router, arrivals, pairs[:num], config=base_cfg
        )
        probes.append((rate, stats.p99))
        return stats.p99

    base_p99 = p99_at(start_rate)
    threshold = p99_factor * base_p99
    if base_p99 >= threshold:  # p99_factor > 1 makes this unreachable unless 0
        raise ValueError(
            f"baseline p99 {base_p99} already at threshold; lower start_rate"
        )

    lo, hi = start_rate, start_rate
    for _ in range(max_doublings):
        hi = hi * 2.0
        if p99_at(hi) > threshold:
            break
        lo = hi
    else:
        raise ValueError(
            f"{topo.name}: p99 never diverged up to rate {hi:.4f} "
            f"({max_doublings} doublings from {start_rate}); the service "
            f"rate may be effectively infinite for this workload"
        )

    while (hi - lo) > rel_tol * hi:
        mid = 0.5 * (lo + hi)
        if p99_at(mid) > threshold:
            hi = mid
        else:
            lo = mid

    return SaturationResult(
        topology=topo.name,
        rate=lo,
        diverged_rate=hi,
        base_p99=base_p99,
        threshold=threshold,
        probes=tuple(probes),
    )


# --------------------------------------------------------------------------
# Metrics bridge.
# --------------------------------------------------------------------------


def registry_from_serving(stats: ServingStats, *, registry=None, labels=None):
    """Feed a :class:`ServingStats` into a metrics registry.

    Request outcomes and hop totals become counters, the latency
    percentiles and utilization gauges, and the per-link served counts a
    histogram (the distribution view of queue skew) — the same
    export-ready shape :func:`~repro.obs.metrics.registry_from_counters`
    gives the lockstep ledger.
    """
    # Imported lazily: the simulator stays importable without obs.
    from repro.obs.metrics import MetricsRegistry

    reg = registry if registry is not None else MetricsRegistry()
    labels = dict(labels or {})
    labels.setdefault("topology", stats.topology)
    for name, value, help_text in (
        ("serving_arrivals", stats.arrivals, "Requests that entered the network"),
        ("serving_completions", stats.completions, "Requests completed within deadline"),
        ("serving_drops", stats.drops, "Requests dropped at a full queue or retry limit"),
        ("serving_deadline_misses", stats.deadline_misses, "Requests completed past their deadline"),
        ("serving_hops_served", stats.hops_served, "Physical hop crossings served (retransmissions included)"),
        ("serving_path_hops", stats.path_hops, "Logical hop crossings served"),
        ("serving_retransmissions", stats.retransmissions, "Hop crossings lost to the fault plan and retried"),
        ("serving_blocked_retries", stats.blocked_retries, "Backpressure re-offers of a held message"),
    ):
        reg.counter(name, help_text, labels).inc(int(value))
    for name, value, help_text in (
        ("serving_in_flight", stats.in_flight, "Requests still in the network at the horizon"),
        ("serving_p50_sojourn", stats.p50, "Median sojourn time"),
        ("serving_p99_sojourn", stats.p99, "99th-percentile sojourn time"),
        ("serving_p999_sojourn", stats.p999, "99.9th-percentile sojourn time"),
        ("serving_goodput", stats.goodput, "In-deadline completions per time unit"),
        ("serving_utilization", stats.utilization, "Mean utilization over loaded links"),
    ):
        reg.gauge(name, help_text, labels).set(float(value))
    served = reg.histogram(
        "serving_link_served",
        "Service completions per directed link",
        labels,
    )
    for occ in stats.occupancy.values():
        served.observe(occ.served)
    return reg
