"""Communication requests yielded by node programs.

Each request occupies exactly one clock cycle when it completes.  A request
blocks (consuming further cycles) until its counterpart is present: a
:class:`Send` needs the destination to be posting a matching :class:`Recv`
or :class:`SendRecv`; symmetric for :class:`Recv`.  :class:`SendRecv` is
the full-duplex exchange used by every lockstep algorithm in the paper —
both directions of one bidirectional channel in a single cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Send", "Recv", "SendRecv", "Shift", "Idle", "Request"]


@dataclass(frozen=True)
class Send:
    """Send ``payload`` to neighbor ``dst``; completes when ``dst`` receives."""

    dst: int
    payload: Any = None


@dataclass(frozen=True)
class Recv:
    """Receive one message from neighbor ``src``."""

    src: int


@dataclass(frozen=True)
class SendRecv:
    """Full-duplex exchange with ``peer``: send ``payload``, receive theirs."""

    peer: int
    payload: Any = None


@dataclass(frozen=True)
class Shift:
    """Pipeline step: send ``payload`` to ``dst`` while receiving from ``src``.

    The 1-port model allows one send and one receive per cycle to
    *different* neighbors; ``Shift`` is that primitive — the kernel of
    ring algorithms (systolic shifts, ring allreduce).  Completes only
    when both legs complete in the same cycle: ``dst`` is receiving from
    this node and ``src`` is sending to it.
    """

    dst: int
    payload: Any
    src: int


@dataclass(frozen=True)
class Idle:
    """Spend one cycle doing nothing (lockstep alignment)."""


Request = Send | Recv | SendRecv | Shift | Idle
