"""Random-traffic experiments (the paper's future-work "simulations").

Routes batches of random source/destination pairs through a topology
using a pluggable path router and measures what architects care about:
average hop count, per-link load distribution, and the maximum link
congestion — normalized comparisons between D_n and the same-size
hypercube quantify the price of halving the links (experiment E11).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.simulator.errors import RetryLimitError
from repro.simulator.faults import FaultPlan
from repro.topology.base import Topology

__all__ = ["TrafficStats", "random_pairs", "run_traffic", "hypercube_dimension_order_path"]

Router = Callable[[int, int], Sequence[int]]


@dataclass(frozen=True)
class TrafficStats:
    """Aggregate results of one traffic batch.

    Two hop totals are reported because they answer different questions:

    * ``path_hops`` — *logical* hops: the summed router path lengths,
      independent of any fault plan.  Path-quality metrics
      (:attr:`avg_hops`) derive from this.
    * ``total_hops`` — *physical* link crossings, including every
      retransmitted attempt (``total_hops = path_hops +
      retransmissions``).  Link-load metrics (:attr:`load_imbalance`,
      ``max_link_load``, ``mean_link_load``) derive from this, since a
      failed attempt still occupies the link.

    Without a fault plan the two coincide.
    """

    topology: str
    num_pairs: int
    total_hops: int
    max_link_load: int
    mean_link_load: float
    loaded_links: int
    num_links: int
    retransmissions: int = 0
    path_hops: int = -1  # -1 sentinel: default to total_hops (fault-free)

    def __post_init__(self):
        if self.path_hops < 0:
            object.__setattr__(self, "path_hops", self.total_hops)

    @property
    def avg_hops(self) -> float:
        """Mean *logical* path length over the batch.

        Uses ``path_hops``, not ``total_hops``: retransmissions re-cross a
        link but never lengthen the route, so a lossy run must report the
        same average path length as the fault-free run over the same pairs.
        """
        return self.path_hops / self.num_pairs if self.num_pairs else 0.0

    @property
    def load_imbalance(self) -> float:
        """Max link load over the mean across *all* links (1.0 = perfectly flat).

        Note the denominator differs from ``mean_link_load``, which averages
        over *loaded* links only; this property normalizes over every link
        in the topology so an idle link drags the mean down.  Both sides of
        the ratio count physical crossings (retransmissions included).
        """
        overall_mean = self.total_hops / self.num_links if self.num_links else 0.0
        return self.max_link_load / overall_mean if overall_mean else 0.0

    def row(self) -> tuple:
        """Tuple for table rendering.

        Includes ``retransmissions`` and ``path_hops`` (appended, so
        positional consumers of the original seven columns keep working):
        without them a fault run's table rendered identically to the
        fault-free one, hiding the very effect the fault plan injects.
        """
        return (
            self.topology,
            self.num_pairs,
            round(self.avg_hops, 3),
            self.max_link_load,
            round(self.load_imbalance, 3),
            self.loaded_links,
            self.num_links,
            self.retransmissions,
            self.path_hops,
        )


def random_pairs(
    num_nodes: int, count: int, rng, *, exclude_self: bool = True
) -> list[tuple[int, int]]:
    """Sample ``count`` (src, dst) pairs uniformly.

    Raises :class:`ValueError` when no valid pair exists (fewer than two
    nodes with ``exclude_self=True`` — previously an infinite rejection
    loop); the rejection loop itself is bounded as a safety net.
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if exclude_self and num_nodes < 2 and count > 0:
        raise ValueError(
            f"cannot sample {count} self-excluding pairs from {num_nodes} "
            f"node(s); need at least 2 nodes or exclude_self=False"
        )
    out: list[tuple[int, int]] = []
    # With >= 2 nodes a rejection happens w.p. 1/num_nodes per draw, so
    # this budget is astronomically unlikely to be exhausted; it exists so
    # a pathological rng can never spin forever.
    attempts_left = 100 * count + 100
    while len(out) < count:
        if attempts_left <= 0:
            # ValueError, not RuntimeError: library input/usage errors raise
            # ValueError throughout (the PR 4 convention) — a pathological
            # rng is a caller-supplied input like any other.
            raise ValueError(
                f"rejection sampling exhausted its attempt budget with "
                f"{len(out)}/{count} pairs drawn"
            )
        attempts_left -= 1
        u = int(rng.integers(0, num_nodes))
        v = int(rng.integers(0, num_nodes))
        if exclude_self and u == v:
            continue
        out.append((u, v))
    return out


def run_traffic(
    topo: Topology,
    router: Router,
    pairs: Sequence[tuple[int, int]],
    *,
    fault_plan: FaultPlan | None = None,
) -> TrafficStats:
    """Route every pair and aggregate hop/link-load statistics.

    Each traversed undirected link counts one unit of load per message
    crossing it (either direction).  Paths are validated hop by hop.

    With a ``fault_plan``, each hop crossing is subject to the plan's
    deterministic drop schedule (keyed by a global attempt counter, so a
    given plan reproduces the same retransmissions bit-for-bit); a dropped
    crossing is retransmitted — the failed attempt still loads the link
    and counts toward ``total_hops`` but not ``path_hops`` — bounded per
    hop by the plan's ``max_retries``.
    """
    load: Counter = Counter()
    total_hops = 0
    path_hops = 0
    retransmissions = 0
    attempt = 0  # global attempt index: the "cycle" key for drop verdicts
    router_name = getattr(router, "__name__", repr(router))
    for u, v in pairs:
        raw = router(u, v)
        path = list(raw) if raw is not None else []
        if not path:
            raise ValueError(
                f"router {router_name} returned an empty path for pair "
                f"({u}, {v}) on {topo.name}; every pair must be routable "
                f"(got {raw!r})"
            )
        if path[0] != u or path[-1] != v:
            raise ValueError(f"router returned bad endpoints for ({u}, {v})")
        for a, b in zip(path, path[1:]):
            if not topo.has_edge(a, b):
                raise ValueError(
                    f"router used non-edge ({a}, {b}) on {topo.name}"
                )
            link = (min(a, b), max(a, b))
            path_hops += 1
            tries = 0
            while True:
                attempt += 1
                load[link] += 1
                total_hops += 1
                if fault_plan is None or not fault_plan.dropped(a, b, attempt):
                    break
                retransmissions += 1
                tries += 1
                if tries > fault_plan.max_retries:
                    raise RetryLimitError((a, b), f"hop {a}->{b}", tries, attempt)
    num_links = sum(topo.degree(u) for u in topo.nodes()) // 2
    return TrafficStats(
        topology=topo.name,
        num_pairs=len(pairs),
        total_hops=total_hops,
        max_link_load=max(load.values(), default=0),
        mean_link_load=(
            float(np.mean(list(load.values()))) if load else 0.0
        ),
        loaded_links=len(load),
        num_links=num_links,
        retransmissions=retransmissions,
        path_hops=path_hops,
    )


def hypercube_dimension_order_path(u: int, v: int) -> list[int]:
    """Dimension-order (e-cube) routing in the hypercube: fix bits low to high."""
    path = [u]
    cur = u
    diff = u ^ v
    i = 0
    while diff:
        if diff & 1:
            cur ^= 1 << i
            path.append(cur)
        diff >>= 1
        i += 1
    return path
