"""The synchronous lockstep engine.

Semantics
---------
All node programs advance together in clock cycles.  Each program has at
most one outstanding request.  Per cycle the engine:

1. takes a snapshot of all outstanding requests;
2. completes every :class:`Idle`;
3. computes the greatest fixed point of "all my legs face a completing
   counterpart" over the snapshot: ``Send(dst) <-> Recv(src)`` pairs,
   ``SendRecv(peer) <-> SendRecv(peer)`` pairs, and :class:`Shift` chains
   (whose send and receive legs may face different neighbors — a whole
   ring of shifts resolves simultaneously).  A request never reacts to
   one issued later in the same cycle, which is what makes the cycle
   count equal the paper's synchronous step count;
4. delivers the surviving payloads, then resumes exactly the completed
   programs.

The 1-port constraint (<= 1 send and <= 1 receive per node per cycle) holds
by construction — one request per node — and link existence is checked when
a request is issued.  A cycle in which nothing completes while requests are
pending raises :class:`DeadlockError`; asymmetric pairs (``Send`` facing
``Send``, ``SendRecv`` facing bare ``Recv``) deadlock deliberately, since
every algorithm in the paper is lockstep-symmetric and such a mismatch is a
program bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.simulator.counters import CostCounters
from repro.simulator.errors import (
    DeadlockError,
    LinkError,
    ProgramError,
)
from repro.simulator.message import Message
from repro.simulator.node import NodeCtx
from repro.simulator.requests import Idle, Recv, Request, Send, SendRecv, Shift
from repro.simulator.trace import TraceRecorder
from repro.topology.base import Topology

__all__ = ["Engine", "EngineResult", "run_spmd"]

Program = Callable[[NodeCtx], Generator[Request, Any, Any]]


@dataclass
class EngineResult:
    """Outcome of one SPMD run."""

    returns: list
    counters: CostCounters
    trace: TraceRecorder | None
    message_log: list[Message] | None

    @property
    def comm_steps(self) -> int:
        """Clock cycles consumed (the paper's communication steps)."""
        return self.counters.comm_steps

    @property
    def comp_steps(self) -> int:
        """Parallel computation steps (longest per-node round chain)."""
        return self.counters.comp_steps


class Engine:
    """Run one SPMD program on every node of a topology.

    Parameters
    ----------
    topo:
        The network; request endpoints are validated against its edges.
    program:
        Generator function ``program(ctx)``; its return value becomes the
        rank's entry in :attr:`EngineResult.returns`.
    trace:
        Optional :class:`TraceRecorder` for figure snapshots.
    log_messages:
        Keep a full :class:`Message` log (memory-heavy; tests only).
    max_cycles:
        Safety valve against livelock (e.g. an all-``Idle`` spin).
    """

    def __init__(
        self,
        topo: Topology,
        program: Program,
        *,
        trace: TraceRecorder | None = None,
        log_messages: bool = False,
        max_cycles: int = 1_000_000,
    ):
        self.topo = topo
        self.program = program
        self.trace = trace
        self.log_messages = log_messages
        self.max_cycles = max_cycles

    def run(self) -> EngineResult:
        """Execute to completion and return results plus cost counters."""
        topo = self.topo
        n = topo.num_nodes
        counters = CostCounters(n)
        message_log: list[Message] | None = [] if self.log_messages else None

        gens: list[Generator[Request, Any, Any] | None] = [None] * n
        pending: dict[int, Request] = {}
        returns: list[Any] = [None] * n

        def advance(rank: int, value: Any) -> None:
            gen = gens[rank]
            assert gen is not None
            try:
                req = gen.send(value)
            except StopIteration as stop:
                returns[rank] = stop.value
                gens[rank] = None
                return
            self._validate(rank, req)
            pending[rank] = req

        for rank in range(n):
            ctx = NodeCtx(rank, topo, counters, self.trace)
            gen = self.program(ctx)
            if not hasattr(gen, "send"):
                raise ProgramError(
                    f"program must be a generator function, got {type(gen)!r} "
                    f"at rank {rank}"
                )
            gens[rank] = gen
            advance(rank, None)

        cycle = 0
        while pending:
            cycle += 1
            if cycle > self.max_cycles:
                raise DeadlockError(cycle, dict(pending))
            snapshot = dict(pending)
            completed: dict[int, Any] = {}
            deliveries = 0

            active: dict[int, Request] = {}
            for rank, req in snapshot.items():
                if isinstance(req, Idle):
                    completed[rank] = None
                else:
                    active[rank] = req

            # Greatest fixed point: a request completes this cycle iff all
            # of its legs face a completing counterpart.  Start from every
            # non-idle request and prune until stable (monotone, so this
            # terminates); what survives completes simultaneously — which
            # is what lets a whole ring of Shift requests resolve at once.
            changed = True
            while changed:
                changed = False
                for rank in list(active):
                    if not self._legs_satisfied(rank, active[rank], active):
                        del active[rank]
                        changed = True

            for rank, req in active.items():
                # Record this node's send leg (if any).
                if isinstance(req, Send):
                    dst, payload = req.dst, req.payload
                elif isinstance(req, SendRecv):
                    dst, payload = req.peer, req.payload
                elif isinstance(req, Shift):
                    dst, payload = req.dst, req.payload
                else:
                    dst = None
                if dst is not None:
                    counters.record_delivery(rank, dst, payload)
                    deliveries += 1
                    if message_log is not None:
                        message_log.append(Message(rank, dst, payload, cycle))
                completed[rank] = self._incoming_payload(rank, req, active)

            if not completed:
                raise DeadlockError(cycle, dict(pending))
            counters.record_cycle(deliveries)
            for rank, value in completed.items():
                del pending[rank]
            for rank in sorted(completed):
                advance(rank, completed[rank])

        return EngineResult(
            returns=returns,
            counters=counters,
            trace=self.trace,
            message_log=message_log,
        )

    @staticmethod
    def _legs_satisfied(rank: int, req: Request, active: dict) -> bool:
        """Whether every communication leg of ``req`` has a live counterpart."""

        def sends_to_me(src: int) -> bool:
            other = active.get(src)
            return (isinstance(other, Send) and other.dst == rank) or (
                isinstance(other, Shift) and other.dst == rank
            )

        def receives_from_me(dst: int) -> bool:
            other = active.get(dst)
            return (isinstance(other, Recv) and other.src == rank) or (
                isinstance(other, Shift) and other.src == rank
            )

        if isinstance(req, Send):
            return receives_from_me(req.dst)
        if isinstance(req, Recv):
            return sends_to_me(req.src)
        if isinstance(req, SendRecv):
            other = active.get(req.peer)
            return isinstance(other, SendRecv) and other.peer == rank
        if isinstance(req, Shift):
            return receives_from_me(req.dst) and sends_to_me(req.src)
        raise AssertionError(f"unexpected request {req!r}")  # pragma: no cover

    @staticmethod
    def _incoming_payload(rank: int, req: Request, active: dict) -> Any:
        """The value delivered to ``rank`` this cycle (None for pure sends)."""
        if isinstance(req, Send):
            return None
        if isinstance(req, SendRecv):
            return active[req.peer].payload
        src = req.src  # Recv or Shift
        producer = active[src]
        return producer.payload

    def _validate(self, rank: int, req: Request) -> None:
        """Type- and link-check a freshly issued request."""
        if isinstance(req, Idle):
            return
        if isinstance(req, Send):
            others = (req.dst,)
        elif isinstance(req, Recv):
            others = (req.src,)
        elif isinstance(req, SendRecv):
            others = (req.peer,)
        elif isinstance(req, Shift):
            others = (req.dst, req.src)
        else:
            raise ProgramError(
                f"rank {rank} yielded {req!r}; expected "
                f"Send/Recv/SendRecv/Shift/Idle"
            )
        for other in others:
            if other == rank:
                raise LinkError(f"rank {rank} addressed itself with {req!r}")
            self.topo.check_node(other)
            if not self.topo.has_edge(rank, other):
                raise LinkError(
                    f"rank {rank} addressed non-neighbor {other} with {req!r} "
                    f"on {self.topo.name}"
                )


def run_spmd(
    topo: Topology,
    program: Program,
    *,
    trace: TraceRecorder | None = None,
    log_messages: bool = False,
    max_cycles: int = 1_000_000,
) -> EngineResult:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine(
        topo,
        program,
        trace=trace,
        log_messages=log_messages,
        max_cycles=max_cycles,
    ).run()
