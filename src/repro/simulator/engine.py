"""The synchronous lockstep engine.

Semantics
---------
All node programs advance together in clock cycles.  Each program has at
most one outstanding request.  Per cycle the engine:

1. takes a snapshot of all outstanding requests;
2. completes every :class:`Idle`;
3. computes the greatest fixed point of "all my legs face a completing
   counterpart" over the snapshot: ``Send(dst) <-> Recv(src)`` pairs,
   ``SendRecv(peer) <-> SendRecv(peer)`` pairs, and :class:`Shift` chains
   (whose send and receive legs may face different neighbors — a whole
   ring of shifts resolves simultaneously).  A request never reacts to
   one issued later in the same cycle, which is what makes the cycle
   count equal the paper's synchronous step count;
4. delivers the surviving payloads, then resumes exactly the completed
   programs.

The 1-port constraint (<= 1 send and <= 1 receive per node per cycle) holds
by construction — one request per node — and link existence is checked when
a request is issued.  A cycle in which nothing completes while requests are
pending raises :class:`DeadlockError`; asymmetric pairs (``Send`` facing
``Send``, ``SendRecv`` facing bare ``Recv``) deadlock deliberately, since
every algorithm in the paper is lockstep-symmetric and such a mismatch is a
program bug.

Scheduling implementations
--------------------------
Two interchangeable matchers realize step 3 (see ``docs/model.md``):

* ``matching="indexed"`` (default) — counterpart-indexed worklist pruning.
  Requests live in per-rank slot arrays; when a request is pruned, only
  the requests whose legs reference it are rechecked, so each cycle's
  fixed point costs O(requests + prunes) instead of the legacy matcher's
  O(active²) worst case.  Link validation of repeated (rank, peer)
  endpoints is cached (the topology is fixed for the life of a run).
* ``matching="legacy"`` — the original whole-snapshot rescan, kept
  verbatim as the reference implementation for differential tests.

Both matchers compute the same greatest fixed point and produce identical
results, cycle counts, and cost ledgers.

The indexed matcher additionally has a *fast* bookkeeping mode
(``fast=True``, or the default ``fast=None`` which enables it whenever
neither a trace nor a message log was requested): per-delivery ledger
updates are accumulated in plain Python scalars/lists and flushed to the
:class:`CostCounters` arrays once at the end of the run.  The final
counter state is identical either way.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.simulator.counters import CostCounters, payload_size
from repro.simulator.errors import (
    DeadlockError,
    LinkError,
    ProgramError,
    RequestTimeoutError,
    RetryLimitError,
)
from repro.simulator.faults import FAULTED, FaultPlan
from repro.simulator.message import Message
from repro.simulator.node import NodeCtx
from repro.simulator.requests import Idle, Recv, Request, Send, SendRecv, Shift
from repro.simulator.trace import TraceRecorder
from repro.topology.base import Topology

__all__ = [
    "Engine",
    "EngineResult",
    "run_spmd",
    "use_matching",
    "use_fault_plan",
    "use_timeline",
]

Program = Callable[[NodeCtx], Generator[Request, Any, Any]]

_MATCHINGS = ("indexed", "legacy")
_DEFAULT_MATCHING = "indexed"
_DEFAULT_FAULT_PLAN: FaultPlan | None = None
_DEFAULT_TIMELINE = None

# IR names for the request-kind codes (indexed in _IDLE.._SHIFT order);
# timelines tag each delivery with its sending leg's kind so recorded
# events compare field-for-field with the static extractor's.
_KIND_NAMES = ("idle", "send", "recv", "sendrecv", "shift")


@contextmanager
def use_matching(mode: str):
    """Temporarily change the default request matcher (``"indexed"``/``"legacy"``).

    Algorithms call :func:`run_spmd` without exposing engine knobs; this
    context manager lets differential tests (and curious benchmarks) route
    those internal runs through either matcher::

        with use_matching("legacy"):
            prefixes, result = dual_prefix_engine(dc, values, ADD)
    """
    global _DEFAULT_MATCHING
    if mode not in _MATCHINGS:
        raise ValueError(f"matching must be one of {_MATCHINGS}, got {mode!r}")
    previous = _DEFAULT_MATCHING
    _DEFAULT_MATCHING = mode
    try:
        yield
    finally:
        _DEFAULT_MATCHING = previous


@contextmanager
def use_fault_plan(plan: FaultPlan | None):
    """Temporarily install a default :class:`FaultPlan` for nested runs.

    Mirrors :func:`use_matching`: algorithms call :func:`run_spmd` without
    exposing engine knobs, and this context manager routes those internal
    runs through a fault schedule::

        with use_fault_plan(FaultPlan(drop_rate=0.05, seed=7)):
            prefixes, result = dual_prefix_engine(dc, values, ADD)
    """
    global _DEFAULT_FAULT_PLAN
    if plan is not None and not isinstance(plan, FaultPlan):
        raise TypeError(f"expected a FaultPlan or None, got {type(plan)!r}")
    previous = _DEFAULT_FAULT_PLAN
    _DEFAULT_FAULT_PLAN = plan
    try:
        yield
    finally:
        _DEFAULT_FAULT_PLAN = previous


@contextmanager
def use_timeline(recorder):
    """Temporarily install a default timeline recorder for nested runs.

    Mirrors :func:`use_matching`: algorithms call :func:`run_spmd` without
    exposing engine knobs, and this context manager routes those internal
    runs through a :class:`~repro.obs.timeline.TimelineRecorder`::

        tl = TimelineRecorder(dc.num_nodes)
        with use_timeline(tl):
            prefixes, result = dual_prefix_engine(dc, values, ADD)

    The recorder is duck-typed (anything with ``record_message``,
    ``record_fault``, ``bulk_load_messages`` and ``set_cycles``) so the
    simulator has no import dependency on :mod:`repro.obs`.
    """
    global _DEFAULT_TIMELINE
    if recorder is not None and not hasattr(recorder, "record_message"):
        raise TypeError(
            f"expected a timeline recorder (record_message/record_fault/"
            f"bulk_load_messages/set_cycles) or None, got {type(recorder)!r}"
        )
    previous = _DEFAULT_TIMELINE
    _DEFAULT_TIMELINE = recorder
    try:
        yield
    finally:
        _DEFAULT_TIMELINE = previous


@dataclass
class EngineResult:
    """Outcome of one SPMD run."""

    returns: list
    counters: CostCounters
    trace: TraceRecorder | None
    message_log: list[Message] | None
    crashed_ranks: tuple[int, ...] = ()

    @property
    def comm_steps(self) -> int:
        """Clock cycles consumed (the paper's communication steps)."""
        return self.counters.comm_steps

    @property
    def comp_steps(self) -> int:
        """Parallel computation steps (longest per-node round chain)."""
        return self.counters.comp_steps


class Engine:
    """Run one SPMD program on every node of a topology.

    Parameters
    ----------
    topo:
        The network; request endpoints are validated against its edges.
    program:
        Generator function ``program(ctx)``; its return value becomes the
        rank's entry in :attr:`EngineResult.returns`.
    trace:
        Optional :class:`TraceRecorder` for figure snapshots.
    log_messages:
        Keep a full :class:`Message` log (memory-heavy; tests only).
    max_cycles:
        Safety valve against livelock (e.g. an all-``Idle`` spin).
    matching:
        Request matcher: ``"indexed"`` (counterpart-indexed worklist, the
        default) or ``"legacy"`` (whole-snapshot rescan, the reference
        implementation).  ``None`` uses the :func:`use_matching` default.
    fast:
        Skip per-delivery trace/message-log bookkeeping and flush cost
        tallies in bulk (indexed matcher only).  ``None`` (default) means
        auto: fast whenever neither ``trace`` nor ``log_messages`` nor an
        active fault plan was requested.  Passing ``fast=True`` together
        with a trace, a message log, or an active fault plan is an error.
    fault_plan:
        Optional :class:`~repro.simulator.faults.FaultPlan` consulted
        during matching (crashes, link cuts, drops, delays) with the
        recovery semantics described in ``docs/model.md``.  ``None`` uses
        the :func:`use_fault_plan` default (normally no plan).  An empty
        plan takes the exact fault-free code path.
    timeline:
        Optional per-cycle :class:`~repro.obs.timeline.TimelineRecorder`
        receiving one link event per delivered message and one fault
        event per drop/timeout/crash.  Works with both matchers *and*
        with ``fast=True`` (the fast path buffers events with their cycle
        numbers and bulk-flushes per-cycle records at the end).  ``None``
        uses the :func:`use_timeline` default (normally no recorder).
    """

    def __init__(
        self,
        topo: Topology,
        program: Program,
        *,
        trace: TraceRecorder | None = None,
        log_messages: bool = False,
        max_cycles: int = 1_000_000,
        matching: str | None = None,
        fast: bool | None = None,
        fault_plan: FaultPlan | None = None,
        timeline=None,
    ):
        self.topo = topo
        self.program = program
        self.trace = trace
        self.timeline = timeline if timeline is not None else _DEFAULT_TIMELINE
        self.log_messages = log_messages
        self.max_cycles = max_cycles
        if matching is None:
            matching = _DEFAULT_MATCHING
        if matching not in _MATCHINGS:
            raise ValueError(
                f"matching must be one of {_MATCHINGS}, got {matching!r}"
            )
        self.matching = matching
        if fault_plan is None:
            fault_plan = _DEFAULT_FAULT_PLAN
        if fault_plan is not None:
            fault_plan.validate_for(topo)
        self.fault_plan = fault_plan
        # The engine's fault logic only engages for a non-empty plan; an
        # empty plan is guaranteed byte-identical to no plan at all.
        self._fp = (
            fault_plan
            if fault_plan is not None and not fault_plan.is_empty
            else None
        )
        wants_bookkeeping = trace is not None or log_messages
        if fast is None:
            fast = not wants_bookkeeping and self._fp is None
        elif fast and wants_bookkeeping:
            raise ValueError(
                "fast=True skips trace/message-log bookkeeping; drop the "
                "trace/log_messages arguments or pass fast=False"
            )
        elif fast and self._fp is not None:
            raise ValueError(
                "fast=True skips per-delivery bookkeeping, which fault "
                "injection needs; drop fast=True or the fault plan"
            )
        self.fast = fast
        self._ok_endpoints: set[int] = set()

    def run(self) -> EngineResult:
        """Execute to completion and return results plus cost counters."""
        if self.matching == "legacy":
            return self._run_legacy()
        return self._run_indexed()

    # -- indexed matcher (the hot path) ---------------------------------------

    # Request kind codes for the slot-array representation.
    _IDLE, _SEND, _RECV, _SENDRECV, _SHIFT = range(5)

    def _run_indexed(self) -> EngineResult:
        """Slot-array engine with counterpart-indexed worklist matching.

        Each issued request is decoded exactly once (at yield time) into
        preallocated per-rank slot arrays — a kind code, the send-leg
        endpoint, the receive-leg endpoint, and the payload — so the
        per-cycle matching, delivery, and resumption loops run on plain
        ints and never re-inspect request objects.
        """
        topo = self.topo
        n = topo.num_nodes
        counters = CostCounters(n)
        fast = self.fast
        fp = self._fp
        tl = self.timeline
        # Fast-mode timeline buffer: (cycle, src, dst, size, kind) tuples,
        # bulk-flushed so per-cycle resolution survives the fast path.
        tl_buffer: list[tuple[int, int, int, int, str]] = []
        message_log: list[Message] | None = [] if self.log_messages else None

        IDLE, SENDRECV = self._IDLE, self._SENDRECV
        SEND, RECV, SHIFT = self._SEND, self._RECV, self._SHIFT

        gens: list[Generator[Request, Any, Any] | None] = [None] * n
        returns: list[Any] = [None] * n
        npending = 0
        cycle = 0

        # Fault bookkeeping (used only when a non-empty plan is active).
        issue_cycle = [0] * n  # cycle at which the current request was issued
        ready_at = [0] * n  # issue-delayed requests are invisible before this
        retry_count = [0] * n  # drop-forced retries of the current request
        crash_watch = set(fp.node_crashes) if fp is not None else set()
        crashed: list[int] = []
        has_down = fp is not None and bool(fp.downtimes)
        # Downtime boundaries for timeline marks: cycle -> [(kind, rank)].
        down_marks: dict[int, list[tuple[str, int]]] = {}
        if has_down:
            for dr, spans in fp.downtimes.items():
                for start, end in spans:
                    down_marks.setdefault(start, []).append(("leave", dr))
                    down_marks.setdefault(end, []).append(("join", dr))

        # Decoded request slots (valid where has_req[rank] is set).
        has_req = bytearray(n)
        kind = bytearray(n)
        send_to = [-1] * n  # dst/peer of the send leg, -1 if none
        recv_from = [-1] * n  # src/peer of the receive leg, -1 if none
        payloads: list[Any] = [None] * n
        reqs: list[Request | None] = [None] * n  # originals, for errors only

        ok_endpoints = self._ok_endpoints

        def check_endpoint(rank: int, other: int, req: Request) -> None:
            # Full validation on cache miss; the topology is fixed for the
            # life of the run, so a validated (rank, other) pair is final.
            if other == rank:
                raise LinkError(f"rank {rank} addressed itself with {req!r}")
            topo.check_node(other)
            if not topo.has_edge(rank, other):
                raise LinkError(
                    f"rank {rank} addressed non-neighbor {other} with {req!r} "
                    f"on {topo.name}"
                )
            ok_endpoints.add(rank * n + other)

        def advance(rank: int, value: Any) -> None:
            nonlocal npending
            gen = gens[rank]
            if gen is None:
                raise ProgramError(
                    f"internal error: rank {rank} resumed after completion"
                )
            try:
                req = gen.send(value)
            except StopIteration as stop:
                returns[rank] = stop.value
                gens[rank] = None
                return
            # Decode + validate once; every later cycle works on the slots.
            if isinstance(req, SendRecv):
                peer = req.peer
                if rank * n + peer not in ok_endpoints:
                    check_endpoint(rank, peer, req)
                kind[rank] = SENDRECV
                send_to[rank] = peer
                recv_from[rank] = peer
                payloads[rank] = req.payload
            elif isinstance(req, Send):
                dst = req.dst
                if rank * n + dst not in ok_endpoints:
                    check_endpoint(rank, dst, req)
                kind[rank] = SEND
                send_to[rank] = dst
                recv_from[rank] = -1
                payloads[rank] = req.payload
            elif isinstance(req, Recv):
                src = req.src
                if rank * n + src not in ok_endpoints:
                    check_endpoint(rank, src, req)
                kind[rank] = RECV
                send_to[rank] = -1
                recv_from[rank] = src
                payloads[rank] = None
            elif isinstance(req, Idle):
                kind[rank] = IDLE
                send_to[rank] = -1
                recv_from[rank] = -1
                payloads[rank] = None
            elif isinstance(req, Shift):
                dst, src = req.dst, req.src
                if rank * n + dst not in ok_endpoints:
                    check_endpoint(rank, dst, req)
                if rank * n + src not in ok_endpoints:
                    check_endpoint(rank, src, req)
                kind[rank] = SHIFT
                send_to[rank] = dst
                recv_from[rank] = src
                payloads[rank] = req.payload
            else:
                raise ProgramError(
                    f"rank {rank} yielded {req!r}; expected "
                    f"Send/Recv/SendRecv/Shift/Idle"
                )
            reqs[rank] = req
            has_req[rank] = 1
            npending += 1
            if fp is not None:
                issue_cycle[rank] = cycle
                retry_count[rank] = 0
                ready_at[rank] = cycle + fp.issue_delay(rank, cycle)

        for rank in range(n):
            ctx = NodeCtx(rank, topo, counters, self.trace)
            gen = self.program(ctx)
            if not hasattr(gen, "send"):
                raise ProgramError(
                    f"program must be a generator function, got {type(gen)!r} "
                    f"at rank {rank}"
                )
            gens[rank] = gen
            advance(rank, None)

        # Per-cycle scratch, allocated once: ``alive`` marks requests still
        # completable this cycle, ``deps[p]`` lists the ranks whose legs
        # reference rank ``p`` (the counterpart index), ``incoming`` the
        # value each completing program resumes with.
        alive = bytearray(n)
        deps: list[list[int]] = [[] for _ in range(n)]
        incoming: list[Any] = [None] * n

        def satisfied(rank: int) -> bool:
            # A SendRecv pairs only with a SendRecv back at it; every other
            # leg pairs with the matching opposite leg of a non-SendRecv.
            # An active fault plan additionally requires every leg's link
            # to be alive this cycle (a cut link simply never matches).
            if kind[rank] == SENDRECV:
                p = send_to[rank]
                if not (alive[p] and kind[p] == SENDRECV and send_to[p] == rank):
                    return False
                return fp is None or fp.link_up(rank, p, cycle)
            st = send_to[rank]
            if st >= 0:
                if not (
                    alive[st] and recv_from[st] == rank and kind[st] != SENDRECV
                ):
                    return False
                if fp is not None and not fp.link_up(rank, st, cycle):
                    return False
            rf = recv_from[rank]
            if rf >= 0:
                if not (
                    alive[rf] and send_to[rf] == rank and kind[rf] != SENDRECV
                ):
                    return False
                if fp is not None and not fp.link_up(rank, rf, cycle):
                    return False
            return True

        # Fast-mode ledger tallies, flushed to ``counters`` in one shot.
        f_cycles = f_active = f_messages = f_payload = f_maxp = 0
        f_sends = [0] * n
        f_recvs = [0] * n

        try:
            while npending:
                cycle += 1
                if cycle > self.max_cycles:
                    raise DeadlockError(
                        cycle, self._blocked_dict(has_req, reqs)
                    )

                # Fault plan: execute scheduled node crashes at cycle start.
                if fp is not None and crash_watch:
                    for rank in sorted(crash_watch):
                        if fp.node_crashes[rank] > cycle:
                            continue
                        crash_watch.discard(rank)
                        crashed.append(rank)
                        counters.record_crash()
                        if tl is not None:
                            tl.record_fault(cycle, "crash", rank=rank)
                        gen = gens[rank]
                        if gen is not None:
                            gen.close()
                            gens[rank] = None
                        if has_req[rank]:
                            has_req[rank] = 0
                            npending -= 1
                    if not npending:
                        break

                if has_down and tl is not None and cycle in down_marks:
                    for ev_kind, ev_rank in down_marks.pop(cycle):
                        tl.record_fault(cycle, ev_kind, rank=ev_rank)

                held = 0
                completed: list[int] = []
                active_ranks: list[int] = []
                touched: list[int] = []
                for rank in range(n):
                    if not has_req[rank]:
                        continue
                    if fp is not None and (
                        ready_at[rank] > cycle
                        or (has_down and fp.down(rank, cycle))
                    ):
                        held += 1  # delayed or offline: invisible this cycle
                        continue
                    if kind[rank] == IDLE:
                        incoming[rank] = None
                        completed.append(rank)
                    else:
                        alive[rank] = 1
                        active_ranks.append(rank)

                # Build the counterpart index for this snapshot.
                for rank in active_ranks:
                    st = send_to[rank]
                    if st >= 0:
                        lst = deps[st]
                        if not lst:
                            touched.append(st)
                        lst.append(rank)
                    rf = recv_from[rank]
                    if rf >= 0 and rf != st:
                        lst = deps[rf]
                        if not lst:
                            touched.append(rf)
                        lst.append(rank)

                # Greatest fixed point by worklist: one full pass, then only
                # the dependents of whatever was pruned are rechecked.
                stack: list[int] = []
                for rank in active_ranks:
                    if not satisfied(rank):
                        alive[rank] = 0
                        stack.extend(deps[rank])
                while stack:
                    rank = stack.pop()
                    if alive[rank] and not satisfied(rank):
                        alive[rank] = 0
                        stack.extend(deps[rank])

                # Fault plan: drop messages among the survivors.  A dropped
                # send blocks its whole exchange (the drop cascades through
                # the same worklist), so the lockstep pair retries next
                # cycle; verdicts are pure functions of (src, dst, cycle).
                drops_now = 0
                if fp is not None:
                    for rank in active_ranks:
                        st = send_to[rank]
                        if (
                            alive[rank]
                            and st >= 0
                            and fp.dropped(rank, st, cycle)
                        ):
                            drops_now += 1
                            counters.record_drop()
                            if tl is not None:
                                tl.record_fault(
                                    cycle, "drop", rank=rank, src=rank, dst=st
                                )
                            retry_count[rank] += 1
                            if retry_count[rank] > fp.max_retries:
                                raise RetryLimitError(
                                    rank, reqs[rank], retry_count[rank], cycle
                                )
                            alive[rank] = 0
                            stack.extend(deps[rank])
                    while stack:
                        rank = stack.pop()
                        if alive[rank] and not satisfied(rank):
                            alive[rank] = 0
                            stack.extend(deps[rank])

                # Deliver the survivors.
                deliveries = 0
                for rank in active_ranks:
                    if not alive[rank]:
                        continue
                    st = send_to[rank]
                    if st >= 0:
                        payload = payloads[rank]
                        deliveries += 1
                        if fast:
                            size = payload_size(payload)
                            f_messages += 1
                            f_payload += size
                            if size > f_maxp:
                                f_maxp = size
                            f_sends[rank] += 1
                            f_recvs[st] += 1
                            if tl is not None:
                                tl_buffer.append(
                                    (cycle, rank, st, size,
                                     _KIND_NAMES[kind[rank]])
                                )
                        else:
                            counters.record_delivery(rank, st, payload)
                            if tl is not None:
                                tl.record_message(
                                    cycle, rank, st,
                                    payload_size(payload),
                                    _KIND_NAMES[kind[rank]],
                                )
                            if message_log is not None:
                                message_log.append(
                                    Message(rank, st, payload, cycle)
                                )
                    rf = recv_from[rank]
                    incoming[rank] = payloads[rf] if rf >= 0 else None
                    completed.append(rank)

                # Fault plan: per-request timeout over the still-blocked.
                if fp is not None and fp.timeout is not None:
                    for rank in active_ranks:
                        if alive[rank]:
                            continue  # completed this cycle
                        if cycle - issue_cycle[rank] >= fp.timeout:
                            counters.record_timeout()
                            if tl is not None:
                                tl.record_fault(cycle, "timeout", rank=rank)
                            if fp.on_timeout == "raise":
                                raise RequestTimeoutError(
                                    rank, reqs[rank], cycle, fp.timeout
                                )
                            # Cancel: resume the program with FAULTED so it
                            # can reroute; nothing was delivered.
                            incoming[rank] = FAULTED
                            completed.append(rank)

                # Reset the scratch structures for the next cycle.
                for rank in active_ranks:
                    alive[rank] = 0
                for p in touched:
                    deps[p].clear()

                if not completed:
                    # Under fault injection an empty cycle can be progress
                    # deferred (delays holding requests, drops forcing a
                    # retry) or progress pending a timeout; otherwise it is
                    # the classic deadlock.
                    stalled_ok = fp is not None and (
                        held or drops_now or fp.timeout is not None
                    )
                    if not stalled_ok:
                        raise DeadlockError(
                            cycle, self._blocked_dict(has_req, reqs)
                        )
                if fast:
                    f_cycles += 1
                    if deliveries:
                        f_active += 1
                else:
                    counters.record_cycle(deliveries)
                completed.sort()
                npending -= len(completed)
                for rank in completed:
                    has_req[rank] = 0
                for rank in completed:
                    advance(rank, incoming[rank])
        finally:
            if fast:
                counters.record_bulk(
                    cycles=f_cycles,
                    active_cycles=f_active,
                    messages=f_messages,
                    payload_items=f_payload,
                    max_message_payload=f_maxp,
                    sends=f_sends,
                    recvs=f_recvs,
                )
            if tl is not None:
                if tl_buffer:
                    tl.bulk_load_messages(tl_buffer)
                tl.set_cycles(min(cycle, self.max_cycles))

        return EngineResult(
            returns=returns,
            counters=counters,
            trace=self.trace,
            message_log=message_log,
            crashed_ranks=tuple(sorted(crashed)),
        )

    @staticmethod
    def _blocked_dict(has_req: bytearray, reqs: list) -> dict[int, Request]:
        """Occupied slots -> {rank: request} for DeadlockError reporting."""
        return {r: reqs[r] for r in range(len(has_req)) if has_req[r]}

    # -- legacy matcher (reference implementation) -----------------------------

    def _run_legacy(self) -> EngineResult:
        """The original whole-snapshot rescan engine, kept as the oracle.

        Fault injection follows the exact semantics of the indexed matcher
        (crashes at cycle start, cut links unmatchable, drops blocking the
        whole exchange, issue delays, per-request timeouts) so the
        differential suite can compare the two under any plan.
        """
        topo = self.topo
        n = topo.num_nodes
        counters = CostCounters(n)
        fp = self._fp
        tl = self.timeline
        message_log: list[Message] | None = [] if self.log_messages else None

        gens: list[Generator[Request, Any, Any] | None] = [None] * n
        pending: dict[int, Request] = {}
        returns: list[Any] = [None] * n
        cycle = 0

        issue_cycle = [0] * n
        ready_at = [0] * n
        retry_count = [0] * n
        crash_watch = set(fp.node_crashes) if fp is not None else set()
        crashed: list[int] = []
        has_down = fp is not None and bool(fp.downtimes)
        down_marks: dict[int, list[tuple[str, int]]] = {}
        if has_down:
            for dr, spans in fp.downtimes.items():
                for start, end in spans:
                    down_marks.setdefault(start, []).append(("leave", dr))
                    down_marks.setdefault(end, []).append(("join", dr))

        def advance(rank: int, value: Any) -> None:
            gen = gens[rank]
            if gen is None:
                raise ProgramError(
                    f"internal error: rank {rank} resumed after completion"
                )
            try:
                req = gen.send(value)
            except StopIteration as stop:
                returns[rank] = stop.value
                gens[rank] = None
                return
            self._validate(rank, req)
            pending[rank] = req
            if fp is not None:
                issue_cycle[rank] = cycle
                retry_count[rank] = 0
                ready_at[rank] = cycle + fp.issue_delay(rank, cycle)

        for rank in range(n):
            ctx = NodeCtx(rank, topo, counters, self.trace)
            gen = self.program(ctx)
            if not hasattr(gen, "send"):
                raise ProgramError(
                    f"program must be a generator function, got {type(gen)!r} "
                    f"at rank {rank}"
                )
            gens[rank] = gen
            advance(rank, None)

        while pending:
            cycle += 1
            if cycle > self.max_cycles:
                raise DeadlockError(cycle, dict(pending))

            if fp is not None and crash_watch:
                for rank in sorted(crash_watch):
                    if fp.node_crashes[rank] > cycle:
                        continue
                    crash_watch.discard(rank)
                    crashed.append(rank)
                    counters.record_crash()
                    if tl is not None:
                        tl.record_fault(cycle, "crash", rank=rank)
                    gen = gens[rank]
                    if gen is not None:
                        gen.close()
                        gens[rank] = None
                    pending.pop(rank, None)
                if not pending:
                    break

            if has_down and tl is not None and cycle in down_marks:
                for ev_kind, ev_rank in down_marks.pop(cycle):
                    tl.record_fault(cycle, ev_kind, rank=ev_rank)

            link_ok = (
                None
                if fp is None
                else (lambda u, v, _c=cycle: fp.link_up(u, v, _c))
            )
            snapshot = dict(pending)
            completed: dict[int, Any] = {}
            deliveries = 0
            held = 0

            active: dict[int, Request] = {}
            for rank, req in snapshot.items():
                if fp is not None and (
                    ready_at[rank] > cycle
                    or (has_down and fp.down(rank, cycle))
                ):
                    held += 1  # delayed or offline: invisible this cycle
                elif isinstance(req, Idle):
                    completed[rank] = None
                else:
                    active[rank] = req

            # Greatest fixed point: a request completes this cycle iff all
            # of its legs face a completing counterpart.  Start from every
            # non-idle request and prune until stable (monotone, so this
            # terminates); what survives completes simultaneously — which
            # is what lets a whole ring of Shift requests resolve at once.
            changed = True
            while changed:
                changed = False
                for rank in list(active):
                    if not self._legs_satisfied(
                        rank, active[rank], active, link_ok
                    ):
                        del active[rank]
                        changed = True

            # Fault plan: drop messages among the survivors, then re-prune
            # (a dropped send blocks its whole exchange for this cycle).
            drops_now = 0
            if fp is not None and active:
                dropped_ranks = [
                    rank
                    for rank, req in active.items()
                    if (dst := self._send_leg_dst(req)) is not None
                    and fp.dropped(rank, dst, cycle)
                ]
                for rank in dropped_ranks:
                    drops_now += 1
                    counters.record_drop()
                    if tl is not None:
                        tl.record_fault(
                            cycle, "drop", rank=rank, src=rank,
                            dst=self._send_leg_dst(active[rank]),
                        )
                    retry_count[rank] += 1
                    if retry_count[rank] > fp.max_retries:
                        raise RetryLimitError(
                            rank, active[rank], retry_count[rank], cycle
                        )
                    del active[rank]
                if dropped_ranks:
                    changed = True
                    while changed:
                        changed = False
                        for rank in list(active):
                            if not self._legs_satisfied(
                                rank, active[rank], active, link_ok
                            ):
                                del active[rank]
                                changed = True

            for rank, req in active.items():
                # Record this node's send leg (if any).
                dst = self._send_leg_dst(req)
                if dst is not None:
                    payload = req.payload
                    counters.record_delivery(rank, dst, payload)
                    deliveries += 1
                    if tl is not None:
                        tl.record_message(
                            cycle, rank, dst, payload_size(payload),
                            self._req_kind_name(req),
                        )
                    if message_log is not None:
                        message_log.append(Message(rank, dst, payload, cycle))
                completed[rank] = self._incoming_payload(rank, req, active)

            if fp is not None and fp.timeout is not None:
                for rank in snapshot:
                    if rank in completed or rank in active:
                        continue
                    if ready_at[rank] > cycle or (
                        has_down and fp.down(rank, cycle)
                    ):
                        continue  # held, not blocked
                    if cycle - issue_cycle[rank] >= fp.timeout:
                        counters.record_timeout()
                        if tl is not None:
                            tl.record_fault(cycle, "timeout", rank=rank)
                        if fp.on_timeout == "raise":
                            raise RequestTimeoutError(
                                rank, snapshot[rank], cycle, fp.timeout
                            )
                        completed[rank] = FAULTED

            if not completed:
                stalled_ok = fp is not None and (
                    held or drops_now or fp.timeout is not None
                )
                if not stalled_ok:
                    raise DeadlockError(cycle, dict(pending))
            counters.record_cycle(deliveries)
            for rank, value in completed.items():
                del pending[rank]
            for rank in sorted(completed):
                advance(rank, completed[rank])

        if tl is not None:
            tl.set_cycles(cycle)

        return EngineResult(
            returns=returns,
            counters=counters,
            trace=self.trace,
            message_log=message_log,
            crashed_ranks=tuple(sorted(crashed)),
        )

    @staticmethod
    def _req_kind_name(req: Request) -> str:
        """IR kind name of ``req`` (matches the indexed matcher's codes)."""
        if isinstance(req, SendRecv):
            return "sendrecv"
        if isinstance(req, Shift):
            return "shift"
        if isinstance(req, Send):
            return "send"
        if isinstance(req, Recv):
            return "recv"
        return "idle"

    @staticmethod
    def _send_leg_dst(req: Request) -> int | None:
        """Destination of ``req``'s send leg, or ``None`` for pure receives."""
        if isinstance(req, (Send, Shift)):
            return req.dst
        if isinstance(req, SendRecv):
            return req.peer
        return None

    @staticmethod
    def _legs_satisfied(
        rank: int, req: Request, active: dict, link_ok=None
    ) -> bool:
        """Whether every communication leg of ``req`` has a live counterpart.

        ``link_ok(u, v)``, when given, additionally requires the leg's link
        to be up under the active fault plan this cycle.
        """

        def up(other: int) -> bool:
            return link_ok is None or link_ok(rank, other)

        def sends_to_me(src: int) -> bool:
            other = active.get(src)
            return (isinstance(other, Send) and other.dst == rank) or (
                isinstance(other, Shift) and other.dst == rank
            )

        def receives_from_me(dst: int) -> bool:
            other = active.get(dst)
            return (isinstance(other, Recv) and other.src == rank) or (
                isinstance(other, Shift) and other.src == rank
            )

        if isinstance(req, Send):
            return receives_from_me(req.dst) and up(req.dst)
        if isinstance(req, Recv):
            return sends_to_me(req.src) and up(req.src)
        if isinstance(req, SendRecv):
            other = active.get(req.peer)
            return (
                isinstance(other, SendRecv)
                and other.peer == rank
                and up(req.peer)
            )
        if isinstance(req, Shift):
            return (
                receives_from_me(req.dst)
                and sends_to_me(req.src)
                and up(req.dst)
                and up(req.src)
            )
        raise AssertionError(f"unexpected request {req!r}")  # pragma: no cover

    @staticmethod
    def _incoming_payload(rank: int, req: Request, active: dict) -> Any:
        """The value delivered to ``rank`` this cycle (None for pure sends)."""
        if isinstance(req, Send):
            return None
        if isinstance(req, SendRecv):
            return active[req.peer].payload
        src = req.src  # Recv or Shift
        producer = active[src]
        return producer.payload

    def _validate(self, rank: int, req: Request) -> None:
        """Type- and link-check a freshly issued request."""
        if isinstance(req, Idle):
            return
        if isinstance(req, Send):
            others = (req.dst,)
        elif isinstance(req, Recv):
            others = (req.src,)
        elif isinstance(req, SendRecv):
            others = (req.peer,)
        elif isinstance(req, Shift):
            others = (req.dst, req.src)
        else:
            raise ProgramError(
                f"rank {rank} yielded {req!r}; expected "
                f"Send/Recv/SendRecv/Shift/Idle"
            )
        for other in others:
            if other == rank:
                raise LinkError(f"rank {rank} addressed itself with {req!r}")
            self.topo.check_node(other)
            if not self.topo.has_edge(rank, other):
                raise LinkError(
                    f"rank {rank} addressed non-neighbor {other} with {req!r} "
                    f"on {self.topo.name}"
                )


def run_spmd(
    topo: Topology,
    program: Program,
    *,
    trace: TraceRecorder | None = None,
    log_messages: bool = False,
    max_cycles: int = 1_000_000,
    matching: str | None = None,
    fast: bool | None = None,
    fault_plan: FaultPlan | None = None,
    timeline=None,
) -> EngineResult:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine(
        topo,
        program,
        trace=trace,
        log_messages=log_messages,
        max_cycles=max_cycles,
        matching=matching,
        fast=fast,
        fault_plan=fault_plan,
        timeline=timeline,
    ).run()
