"""The synchronous lockstep engine.

Semantics
---------
All node programs advance together in clock cycles.  Each program has at
most one outstanding request.  Per cycle the engine:

1. takes a snapshot of all outstanding requests;
2. completes every :class:`Idle`;
3. computes the greatest fixed point of "all my legs face a completing
   counterpart" over the snapshot: ``Send(dst) <-> Recv(src)`` pairs,
   ``SendRecv(peer) <-> SendRecv(peer)`` pairs, and :class:`Shift` chains
   (whose send and receive legs may face different neighbors — a whole
   ring of shifts resolves simultaneously).  A request never reacts to
   one issued later in the same cycle, which is what makes the cycle
   count equal the paper's synchronous step count;
4. delivers the surviving payloads, then resumes exactly the completed
   programs.

The 1-port constraint (<= 1 send and <= 1 receive per node per cycle) holds
by construction — one request per node — and link existence is checked when
a request is issued.  A cycle in which nothing completes while requests are
pending raises :class:`DeadlockError`; asymmetric pairs (``Send`` facing
``Send``, ``SendRecv`` facing bare ``Recv``) deadlock deliberately, since
every algorithm in the paper is lockstep-symmetric and such a mismatch is a
program bug.

Scheduling implementations
--------------------------
Two interchangeable matchers realize step 3 (see ``docs/model.md``):

* ``matching="indexed"`` (default) — counterpart-indexed worklist pruning.
  Requests live in per-rank slot arrays; when a request is pruned, only
  the requests whose legs reference it are rechecked, so each cycle's
  fixed point costs O(requests + prunes) instead of the legacy matcher's
  O(active²) worst case.  Link validation of repeated (rank, peer)
  endpoints is cached (the topology is fixed for the life of a run).
* ``matching="legacy"`` — the original whole-snapshot rescan, kept
  verbatim as the reference implementation for differential tests.

Both matchers compute the same greatest fixed point and produce identical
results, cycle counts, and cost ledgers.

The indexed matcher additionally has a *fast* bookkeeping mode
(``fast=True``, or the default ``fast=None`` which enables it whenever
neither a trace nor a message log was requested): per-delivery ledger
updates are accumulated in plain Python scalars/lists and flushed to the
:class:`CostCounters` arrays once at the end of the run.  The final
counter state is identical either way.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.simulator.counters import CostCounters, payload_size
from repro.simulator.errors import (
    DeadlockError,
    LinkError,
    ProgramError,
)
from repro.simulator.message import Message
from repro.simulator.node import NodeCtx
from repro.simulator.requests import Idle, Recv, Request, Send, SendRecv, Shift
from repro.simulator.trace import TraceRecorder
from repro.topology.base import Topology

__all__ = ["Engine", "EngineResult", "run_spmd", "use_matching"]

Program = Callable[[NodeCtx], Generator[Request, Any, Any]]

_MATCHINGS = ("indexed", "legacy")
_DEFAULT_MATCHING = "indexed"


@contextmanager
def use_matching(mode: str):
    """Temporarily change the default request matcher (``"indexed"``/``"legacy"``).

    Algorithms call :func:`run_spmd` without exposing engine knobs; this
    context manager lets differential tests (and curious benchmarks) route
    those internal runs through either matcher::

        with use_matching("legacy"):
            prefixes, result = dual_prefix_engine(dc, values, ADD)
    """
    global _DEFAULT_MATCHING
    if mode not in _MATCHINGS:
        raise ValueError(f"matching must be one of {_MATCHINGS}, got {mode!r}")
    previous = _DEFAULT_MATCHING
    _DEFAULT_MATCHING = mode
    try:
        yield
    finally:
        _DEFAULT_MATCHING = previous


@dataclass
class EngineResult:
    """Outcome of one SPMD run."""

    returns: list
    counters: CostCounters
    trace: TraceRecorder | None
    message_log: list[Message] | None

    @property
    def comm_steps(self) -> int:
        """Clock cycles consumed (the paper's communication steps)."""
        return self.counters.comm_steps

    @property
    def comp_steps(self) -> int:
        """Parallel computation steps (longest per-node round chain)."""
        return self.counters.comp_steps


class Engine:
    """Run one SPMD program on every node of a topology.

    Parameters
    ----------
    topo:
        The network; request endpoints are validated against its edges.
    program:
        Generator function ``program(ctx)``; its return value becomes the
        rank's entry in :attr:`EngineResult.returns`.
    trace:
        Optional :class:`TraceRecorder` for figure snapshots.
    log_messages:
        Keep a full :class:`Message` log (memory-heavy; tests only).
    max_cycles:
        Safety valve against livelock (e.g. an all-``Idle`` spin).
    matching:
        Request matcher: ``"indexed"`` (counterpart-indexed worklist, the
        default) or ``"legacy"`` (whole-snapshot rescan, the reference
        implementation).  ``None`` uses the :func:`use_matching` default.
    fast:
        Skip per-delivery trace/message-log bookkeeping and flush cost
        tallies in bulk (indexed matcher only).  ``None`` (default) means
        auto: fast whenever neither ``trace`` nor ``log_messages`` was
        requested.  Passing ``fast=True`` together with a trace or a
        message log is an error.
    """

    def __init__(
        self,
        topo: Topology,
        program: Program,
        *,
        trace: TraceRecorder | None = None,
        log_messages: bool = False,
        max_cycles: int = 1_000_000,
        matching: str | None = None,
        fast: bool | None = None,
    ):
        self.topo = topo
        self.program = program
        self.trace = trace
        self.log_messages = log_messages
        self.max_cycles = max_cycles
        if matching is None:
            matching = _DEFAULT_MATCHING
        if matching not in _MATCHINGS:
            raise ValueError(
                f"matching must be one of {_MATCHINGS}, got {matching!r}"
            )
        self.matching = matching
        wants_bookkeeping = trace is not None or log_messages
        if fast is None:
            fast = not wants_bookkeeping
        elif fast and wants_bookkeeping:
            raise ValueError(
                "fast=True skips trace/message-log bookkeeping; drop the "
                "trace/log_messages arguments or pass fast=False"
            )
        self.fast = fast
        self._ok_endpoints: set[int] = set()

    def run(self) -> EngineResult:
        """Execute to completion and return results plus cost counters."""
        if self.matching == "legacy":
            return self._run_legacy()
        return self._run_indexed()

    # -- indexed matcher (the hot path) ---------------------------------------

    # Request kind codes for the slot-array representation.
    _IDLE, _SEND, _RECV, _SENDRECV, _SHIFT = range(5)

    def _run_indexed(self) -> EngineResult:
        """Slot-array engine with counterpart-indexed worklist matching.

        Each issued request is decoded exactly once (at yield time) into
        preallocated per-rank slot arrays — a kind code, the send-leg
        endpoint, the receive-leg endpoint, and the payload — so the
        per-cycle matching, delivery, and resumption loops run on plain
        ints and never re-inspect request objects.
        """
        topo = self.topo
        n = topo.num_nodes
        counters = CostCounters(n)
        fast = self.fast
        message_log: list[Message] | None = [] if self.log_messages else None

        IDLE, SENDRECV = self._IDLE, self._SENDRECV
        SEND, RECV, SHIFT = self._SEND, self._RECV, self._SHIFT

        gens: list[Generator[Request, Any, Any] | None] = [None] * n
        returns: list[Any] = [None] * n
        npending = 0

        # Decoded request slots (valid where has_req[rank] is set).
        has_req = bytearray(n)
        kind = bytearray(n)
        send_to = [-1] * n  # dst/peer of the send leg, -1 if none
        recv_from = [-1] * n  # src/peer of the receive leg, -1 if none
        payloads: list[Any] = [None] * n
        reqs: list[Request | None] = [None] * n  # originals, for errors only

        ok_endpoints = self._ok_endpoints

        def check_endpoint(rank: int, other: int, req: Request) -> None:
            # Full validation on cache miss; the topology is fixed for the
            # life of the run, so a validated (rank, other) pair is final.
            if other == rank:
                raise LinkError(f"rank {rank} addressed itself with {req!r}")
            topo.check_node(other)
            if not topo.has_edge(rank, other):
                raise LinkError(
                    f"rank {rank} addressed non-neighbor {other} with {req!r} "
                    f"on {topo.name}"
                )
            ok_endpoints.add(rank * n + other)

        def advance(rank: int, value: Any) -> None:
            nonlocal npending
            gen = gens[rank]
            assert gen is not None
            try:
                req = gen.send(value)
            except StopIteration as stop:
                returns[rank] = stop.value
                gens[rank] = None
                return
            # Decode + validate once; every later cycle works on the slots.
            if isinstance(req, SendRecv):
                peer = req.peer
                if rank * n + peer not in ok_endpoints:
                    check_endpoint(rank, peer, req)
                kind[rank] = SENDRECV
                send_to[rank] = peer
                recv_from[rank] = peer
                payloads[rank] = req.payload
            elif isinstance(req, Send):
                dst = req.dst
                if rank * n + dst not in ok_endpoints:
                    check_endpoint(rank, dst, req)
                kind[rank] = SEND
                send_to[rank] = dst
                recv_from[rank] = -1
                payloads[rank] = req.payload
            elif isinstance(req, Recv):
                src = req.src
                if rank * n + src not in ok_endpoints:
                    check_endpoint(rank, src, req)
                kind[rank] = RECV
                send_to[rank] = -1
                recv_from[rank] = src
                payloads[rank] = None
            elif isinstance(req, Idle):
                kind[rank] = IDLE
                send_to[rank] = -1
                recv_from[rank] = -1
                payloads[rank] = None
            elif isinstance(req, Shift):
                dst, src = req.dst, req.src
                if rank * n + dst not in ok_endpoints:
                    check_endpoint(rank, dst, req)
                if rank * n + src not in ok_endpoints:
                    check_endpoint(rank, src, req)
                kind[rank] = SHIFT
                send_to[rank] = dst
                recv_from[rank] = src
                payloads[rank] = req.payload
            else:
                raise ProgramError(
                    f"rank {rank} yielded {req!r}; expected "
                    f"Send/Recv/SendRecv/Shift/Idle"
                )
            reqs[rank] = req
            has_req[rank] = 1
            npending += 1

        for rank in range(n):
            ctx = NodeCtx(rank, topo, counters, self.trace)
            gen = self.program(ctx)
            if not hasattr(gen, "send"):
                raise ProgramError(
                    f"program must be a generator function, got {type(gen)!r} "
                    f"at rank {rank}"
                )
            gens[rank] = gen
            advance(rank, None)

        # Per-cycle scratch, allocated once: ``alive`` marks requests still
        # completable this cycle, ``deps[p]`` lists the ranks whose legs
        # reference rank ``p`` (the counterpart index), ``incoming`` the
        # value each completing program resumes with.
        alive = bytearray(n)
        deps: list[list[int]] = [[] for _ in range(n)]
        incoming: list[Any] = [None] * n

        def satisfied(rank: int) -> bool:
            # A SendRecv pairs only with a SendRecv back at it; every other
            # leg pairs with the matching opposite leg of a non-SendRecv.
            if kind[rank] == SENDRECV:
                p = send_to[rank]
                return bool(
                    alive[p] and kind[p] == SENDRECV and send_to[p] == rank
                )
            st = send_to[rank]
            if st >= 0 and not (
                alive[st] and recv_from[st] == rank and kind[st] != SENDRECV
            ):
                return False
            rf = recv_from[rank]
            if rf >= 0 and not (
                alive[rf] and send_to[rf] == rank and kind[rf] != SENDRECV
            ):
                return False
            return True

        # Fast-mode ledger tallies, flushed to ``counters`` in one shot.
        f_cycles = f_active = f_messages = f_payload = f_maxp = 0
        f_sends = [0] * n
        f_recvs = [0] * n

        cycle = 0
        try:
            while npending:
                cycle += 1
                if cycle > self.max_cycles:
                    raise DeadlockError(
                        cycle, self._blocked_dict(has_req, reqs)
                    )

                completed: list[int] = []
                active_ranks: list[int] = []
                touched: list[int] = []
                for rank in range(n):
                    if not has_req[rank]:
                        continue
                    if kind[rank] == IDLE:
                        incoming[rank] = None
                        completed.append(rank)
                    else:
                        alive[rank] = 1
                        active_ranks.append(rank)

                # Build the counterpart index for this snapshot.
                for rank in active_ranks:
                    st = send_to[rank]
                    if st >= 0:
                        lst = deps[st]
                        if not lst:
                            touched.append(st)
                        lst.append(rank)
                    rf = recv_from[rank]
                    if rf >= 0 and rf != st:
                        lst = deps[rf]
                        if not lst:
                            touched.append(rf)
                        lst.append(rank)

                # Greatest fixed point by worklist: one full pass, then only
                # the dependents of whatever was pruned are rechecked.
                stack: list[int] = []
                for rank in active_ranks:
                    if not satisfied(rank):
                        alive[rank] = 0
                        stack.extend(deps[rank])
                while stack:
                    rank = stack.pop()
                    if alive[rank] and not satisfied(rank):
                        alive[rank] = 0
                        stack.extend(deps[rank])

                # Deliver the survivors.
                deliveries = 0
                for rank in active_ranks:
                    if not alive[rank]:
                        continue
                    st = send_to[rank]
                    if st >= 0:
                        payload = payloads[rank]
                        deliveries += 1
                        if fast:
                            size = payload_size(payload)
                            f_messages += 1
                            f_payload += size
                            if size > f_maxp:
                                f_maxp = size
                            f_sends[rank] += 1
                            f_recvs[st] += 1
                        else:
                            counters.record_delivery(rank, st, payload)
                            if message_log is not None:
                                message_log.append(
                                    Message(rank, st, payload, cycle)
                                )
                    rf = recv_from[rank]
                    incoming[rank] = payloads[rf] if rf >= 0 else None
                    completed.append(rank)

                # Reset the scratch structures for the next cycle.
                for rank in active_ranks:
                    alive[rank] = 0
                for p in touched:
                    deps[p].clear()

                if not completed:
                    raise DeadlockError(
                        cycle, self._blocked_dict(has_req, reqs)
                    )
                if fast:
                    f_cycles += 1
                    if deliveries:
                        f_active += 1
                else:
                    counters.record_cycle(deliveries)
                completed.sort()
                npending -= len(completed)
                for rank in completed:
                    has_req[rank] = 0
                for rank in completed:
                    advance(rank, incoming[rank])
        finally:
            if fast:
                counters.record_bulk(
                    cycles=f_cycles,
                    active_cycles=f_active,
                    messages=f_messages,
                    payload_items=f_payload,
                    max_message_payload=f_maxp,
                    sends=f_sends,
                    recvs=f_recvs,
                )

        return EngineResult(
            returns=returns,
            counters=counters,
            trace=self.trace,
            message_log=message_log,
        )

    @staticmethod
    def _blocked_dict(has_req: bytearray, reqs: list) -> dict[int, Request]:
        """Occupied slots -> {rank: request} for DeadlockError reporting."""
        return {r: reqs[r] for r in range(len(has_req)) if has_req[r]}

    # -- legacy matcher (reference implementation) -----------------------------

    def _run_legacy(self) -> EngineResult:
        """The original whole-snapshot rescan engine, kept as the oracle."""
        topo = self.topo
        n = topo.num_nodes
        counters = CostCounters(n)
        message_log: list[Message] | None = [] if self.log_messages else None

        gens: list[Generator[Request, Any, Any] | None] = [None] * n
        pending: dict[int, Request] = {}
        returns: list[Any] = [None] * n

        def advance(rank: int, value: Any) -> None:
            gen = gens[rank]
            assert gen is not None
            try:
                req = gen.send(value)
            except StopIteration as stop:
                returns[rank] = stop.value
                gens[rank] = None
                return
            self._validate(rank, req)
            pending[rank] = req

        for rank in range(n):
            ctx = NodeCtx(rank, topo, counters, self.trace)
            gen = self.program(ctx)
            if not hasattr(gen, "send"):
                raise ProgramError(
                    f"program must be a generator function, got {type(gen)!r} "
                    f"at rank {rank}"
                )
            gens[rank] = gen
            advance(rank, None)

        cycle = 0
        while pending:
            cycle += 1
            if cycle > self.max_cycles:
                raise DeadlockError(cycle, dict(pending))
            snapshot = dict(pending)
            completed: dict[int, Any] = {}
            deliveries = 0

            active: dict[int, Request] = {}
            for rank, req in snapshot.items():
                if isinstance(req, Idle):
                    completed[rank] = None
                else:
                    active[rank] = req

            # Greatest fixed point: a request completes this cycle iff all
            # of its legs face a completing counterpart.  Start from every
            # non-idle request and prune until stable (monotone, so this
            # terminates); what survives completes simultaneously — which
            # is what lets a whole ring of Shift requests resolve at once.
            changed = True
            while changed:
                changed = False
                for rank in list(active):
                    if not self._legs_satisfied(rank, active[rank], active):
                        del active[rank]
                        changed = True

            for rank, req in active.items():
                # Record this node's send leg (if any).
                if isinstance(req, Send):
                    dst, payload = req.dst, req.payload
                elif isinstance(req, SendRecv):
                    dst, payload = req.peer, req.payload
                elif isinstance(req, Shift):
                    dst, payload = req.dst, req.payload
                else:
                    dst = None
                if dst is not None:
                    counters.record_delivery(rank, dst, payload)
                    deliveries += 1
                    if message_log is not None:
                        message_log.append(Message(rank, dst, payload, cycle))
                completed[rank] = self._incoming_payload(rank, req, active)

            if not completed:
                raise DeadlockError(cycle, dict(pending))
            counters.record_cycle(deliveries)
            for rank, value in completed.items():
                del pending[rank]
            for rank in sorted(completed):
                advance(rank, completed[rank])

        return EngineResult(
            returns=returns,
            counters=counters,
            trace=self.trace,
            message_log=message_log,
        )

    @staticmethod
    def _legs_satisfied(rank: int, req: Request, active: dict) -> bool:
        """Whether every communication leg of ``req`` has a live counterpart."""

        def sends_to_me(src: int) -> bool:
            other = active.get(src)
            return (isinstance(other, Send) and other.dst == rank) or (
                isinstance(other, Shift) and other.dst == rank
            )

        def receives_from_me(dst: int) -> bool:
            other = active.get(dst)
            return (isinstance(other, Recv) and other.src == rank) or (
                isinstance(other, Shift) and other.src == rank
            )

        if isinstance(req, Send):
            return receives_from_me(req.dst)
        if isinstance(req, Recv):
            return sends_to_me(req.src)
        if isinstance(req, SendRecv):
            other = active.get(req.peer)
            return isinstance(other, SendRecv) and other.peer == rank
        if isinstance(req, Shift):
            return receives_from_me(req.dst) and sends_to_me(req.src)
        raise AssertionError(f"unexpected request {req!r}")  # pragma: no cover

    @staticmethod
    def _incoming_payload(rank: int, req: Request, active: dict) -> Any:
        """The value delivered to ``rank`` this cycle (None for pure sends)."""
        if isinstance(req, Send):
            return None
        if isinstance(req, SendRecv):
            return active[req.peer].payload
        src = req.src  # Recv or Shift
        producer = active[src]
        return producer.payload

    def _validate(self, rank: int, req: Request) -> None:
        """Type- and link-check a freshly issued request."""
        if isinstance(req, Idle):
            return
        if isinstance(req, Send):
            others = (req.dst,)
        elif isinstance(req, Recv):
            others = (req.src,)
        elif isinstance(req, SendRecv):
            others = (req.peer,)
        elif isinstance(req, Shift):
            others = (req.dst, req.src)
        else:
            raise ProgramError(
                f"rank {rank} yielded {req!r}; expected "
                f"Send/Recv/SendRecv/Shift/Idle"
            )
        for other in others:
            if other == rank:
                raise LinkError(f"rank {rank} addressed itself with {req!r}")
            self.topo.check_node(other)
            if not self.topo.has_edge(rank, other):
                raise LinkError(
                    f"rank {rank} addressed non-neighbor {other} with {req!r} "
                    f"on {self.topo.name}"
                )


def run_spmd(
    topo: Topology,
    program: Program,
    *,
    trace: TraceRecorder | None = None,
    log_messages: bool = False,
    max_cycles: int = 1_000_000,
    matching: str | None = None,
    fast: bool | None = None,
) -> EngineResult:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine(
        topo,
        program,
        trace=trace,
        log_messages=log_messages,
        max_cycles=max_cycles,
        matching=matching,
        fast=fast,
    ).run()
