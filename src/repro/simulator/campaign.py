"""Randomized SLO fault campaigns over dynamic fault plans.

The static half of the fault story (``repro.analysis.static.faults``)
proves exact minimal crash/cut sets against recovery predicates, but it
deliberately refuses *dynamic* plans — transient drops/delays and the
downtime intervals behind churn, correlated whole-cluster outages, and
rolling restarts — whose effect depends on runtime timing.  This module
is the dynamic half:

* **schedule generators** — :func:`churn_downtimes` (seeded random
  join/leave events), :func:`cluster_outage` (every member of one
  dual-cube cluster down for a shared window) and
  :func:`rolling_restart` (a staggered sweep of cluster outages covering
  the whole machine) all return ``(rank, start, end)`` downtime triples
  for :class:`~repro.simulator.faults.FaultPlan`;

* **SLO predicates** — availability (fraction of arrivals not dropped,
  checked on the final stats *and* every checkpoint interval of a
  serving run), p99 sojourn under fault, and result correctness of the
  real lockstep collectives versus the fault-free oracle
  (``run_faulty(mode="retry")``), plus the recovery predicate
  (all healthy ranks included after degraded recovery) whose static
  twin is proven exact by Menger;

* **the campaign engine** — :func:`run_campaign` draws seeded random
  fault sets from a per-SLO candidate universe, and when one violates
  the SLO, greedily shrinks it to a locally minimal violating set
  (element removal in deterministic order — the classic
  minimal-hitting-set shrink).  Every violation is triaged through the
  static analyzer: the plan's structural over-approximation (a downtime
  becomes a crash at its start cycle) runs through
  ``analyze_fault_impact`` and ``FaultImpact.diagnose()``, attaching the
  deadlock/orphan class and blast radius to the report.  For the
  structural-only recovery SLO the campaign cross-checks itself against
  the proven-exact static cut: a dynamic answer *smaller* than the
  exact minimum is a soundness bug and raises :class:`CampaignError`.

Everything is deterministic under a fixed seed — same seed, same
topology, byte-identical JSON report — which is what lets
``repro campaign --smoke`` gate the report schema in CI.
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.simulator.errors import SimulationError
from repro.simulator.faults import FaultPlan, StaticFaultView
from repro.simulator.serving import (
    ServingConfig,
    open_loop_pairs,
    poisson_arrivals,
    run_serving,
)
from repro.topology.dualcube import DualCube

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignError",
    "SLO",
    "Triage",
    "CampaignViolation",
    "CrossCheck",
    "CampaignResult",
    "churn_downtimes",
    "cluster_outage",
    "rolling_restart",
    "plan_from_elements",
    "structural_overapproximation",
    "default_slos",
    "run_campaign",
    "validate_report",
]

CAMPAIGN_SCHEMA = 1

_SLO_KINDS = ("availability", "p99", "correctness", "recovery")

# Frozen key sets of the JSON report — ``repro campaign --smoke`` fails
# CI when a report stops matching them (schema drift).
REPORT_KEYS = frozenset(
    {
        "schema",
        "topology",
        "num_nodes",
        "seed",
        "trials",
        "evaluations",
        "slos",
        "violations",
        "cross_checks",
        "ok",
    }
)
VIOLATION_KEYS = frozenset(
    {"slo", "kind", "threshold", "observed", "elements", "size", "trial",
     "triage"}
)
TRIAGE_KEYS = frozenset(
    {"classes", "blast_radius", "dead", "blocked", "tainted",
     "lost_messages"}
)
CROSS_CHECK_KEYS = frozenset(
    {"slo", "dynamic_size", "static_size", "static_exact", "ok"}
)


class CampaignError(RuntimeError):
    """A campaign invariant failed (e.g. a dynamic minimal violating set
    smaller than the proven-exact static cut — a soundness bug)."""


# -- downtime schedule generators ----------------------------------------------


def churn_downtimes(
    dc: DualCube,
    *,
    events: int,
    duration: int,
    horizon: int,
    seed: int = 0,
) -> list[tuple[int, int, int]]:
    """Seeded random churn: ``events`` leave/rejoin episodes.

    Each episode picks a node and a start cycle in ``1..horizon`` and
    takes the node offline for ``duration`` cycles.  Episodes landing on
    a rank that is already down at an overlapping window are re-rolled
    (downtime intervals per rank may not overlap), so the schedule is
    always a valid :class:`~repro.simulator.faults.FaultPlan` input.

    Best-effort on saturation: when the re-roll loop cannot place more
    non-overlapping episodes (every node is already down everywhere the
    draws land), the schedule is truncated to what fit and a
    :class:`RuntimeWarning` is emitted — check ``len(result)`` against
    ``events`` if the experiment requires the full count.
    """
    if events < 0:
        raise ValueError(f"events must be >= 0, got {events}")
    if duration < 1:
        raise ValueError(f"duration must be >= 1, got {duration}")
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    rng = random.Random(0xC0FFEE ^ (seed * 0x9E3779B1))
    spans: dict[int, list[tuple[int, int]]] = {}
    out: list[tuple[int, int, int]] = []
    attempts = 0
    while len(out) < events:
        attempts += 1
        if attempts > 100 * max(1, events):
            warnings.warn(
                f"churn_downtimes saturated: placed {len(out)} of "
                f"{events} requested episodes (duration={duration}, "
                f"horizon={horizon}, {dc.num_nodes} nodes)",
                RuntimeWarning,
                stacklevel=2,
            )
            break
        rank = rng.randrange(dc.num_nodes)
        start = rng.randint(1, horizon)
        end = start + duration
        if any(s < end and start < e for s, e in spans.get(rank, ())):
            continue
        spans.setdefault(rank, []).append((start, end))
        out.append((rank, start, end))
    return sorted(out)


def cluster_outage(
    dc: DualCube, cls: int, cluster: int, start: int, end: int
) -> list[tuple[int, int, int]]:
    """Correlated outage: every member of one cluster down for a window.

    The dual-cube's cluster is the natural failure domain — one rack /
    one power feed in the deployment reading — so a correlated outage is
    ``nodes_per_cluster`` synchronized downtime triples.
    """
    members = dc.cluster_members(cls, cluster)
    return [(r, start, end) for r in members]


def rolling_restart(
    dc: DualCube,
    *,
    duration: int,
    stagger: int | None = None,
    start: int = 1,
) -> list[tuple[int, int, int]]:
    """Rolling-restart sweep: every cluster restarts once, staggered.

    Clusters restart in class-major order (class 0's clusters, then
    class 1's), each ``stagger`` cycles after the previous (default:
    ``duration``, i.e. back-to-back with no overlap — the classic safe
    rolling deploy).  Returns the downtime triples covering the whole
    machine.
    """
    if stagger is None:
        stagger = duration
    if stagger < 1 or duration < 1:
        raise ValueError("duration and stagger must be >= 1")
    out: list[tuple[int, int, int]] = []
    wave = 0
    for cls in range(2):
        for cluster in range(dc.clusters_per_class):
            s = start + wave * stagger
            out.extend(cluster_outage(dc, cls, cluster, s, s + duration))
            wave += 1
    return out


# -- fault elements (the campaign's search currency) ---------------------------
#
# The static minimal-cut search trades in ("node", r) / ("link", (u, v))
# elements; the campaign extends the currency with the dynamic kinds:
#   ("down",   (rank, start, end))          one downtime interval
#   ("outage", (cls, cluster, start, end))  one correlated cluster outage


def _coalesce_downtimes(
    downs: Iterable[tuple[int, int, int]]
) -> list[tuple[int, int, int]]:
    """Merge overlapping/adjacent per-rank downtime spans into their union.

    Fault elements are drawn independently, so a probe can hold two
    ``down`` spans for the same rank (or a ``down`` plus a covering
    ``outage``) whose windows overlap.  The *union* of the windows is
    exactly what such a set denotes, and :class:`FaultPlan` rejects raw
    overlapping intervals, so coalesce before constructing the plan.
    """
    per_rank: dict[int, list[tuple[int, int]]] = {}
    for r, s, e in downs:
        per_rank.setdefault(r, []).append((s, e))
    out: list[tuple[int, int, int]] = []
    for r, spans in per_rank.items():
        spans.sort()
        cur_s, cur_e = spans[0]
        for s, e in spans[1:]:
            if s <= cur_e:  # overlapping or adjacent: extend the union
                cur_e = max(cur_e, e)
            else:
                out.append((r, cur_s, cur_e))
                cur_s, cur_e = s, e
        out.append((r, cur_s, cur_e))
    return sorted(out)


def plan_from_elements(
    dc: DualCube,
    elements: Iterable[tuple],
    *,
    seed: int = 0,
    max_retries: int = 6,
    timeout: int | None = None,
    on_timeout: str = "raise",
) -> FaultPlan:
    """Build the :class:`FaultPlan` a set of fault elements denotes."""
    crashes: dict[int, int] = {}
    cuts: dict[tuple[int, int], int] = {}
    downs: list[tuple[int, int, int]] = []
    for kind, payload in elements:
        if kind == "node":
            crashes[int(payload)] = 1
        elif kind == "link":
            u, v = payload
            cuts[(int(u), int(v))] = 1
        elif kind == "down":
            r, s, e = payload
            downs.append((int(r), int(s), int(e)))
        elif kind == "outage":
            cls, cluster, s, e = payload
            downs.extend(cluster_outage(dc, cls, cluster, s, e))
        else:
            raise ValueError(
                f"fault element kind must be node/link/down/outage, "
                f"got {kind!r}"
            )
    return FaultPlan(
        node_crashes=crashes,
        link_cuts=cuts,
        downtimes=_coalesce_downtimes(downs),
        seed=seed,
        max_retries=max_retries,
        timeout=timeout,
        on_timeout=on_timeout,
    )


def structural_overapproximation(
    dc: DualCube, elements: Iterable[tuple]
) -> StaticFaultView:
    """Project fault elements onto a static view the analyzer accepts.

    Crashes and cuts carry over unchanged; a downtime (or each member of
    a cluster outage) is *over-approximated* as a crash at its start
    cycle — pessimistic (the node never rejoins) but sound for triage:
    every rank the real outage can block is blocked in the
    approximation.
    """
    crashes: dict[int, int] = {}
    cuts: dict[tuple[int, int], int] = {}
    for kind, payload in elements:
        if kind == "node":
            crashes[int(payload)] = 1
        elif kind == "link":
            u, v = payload
            cuts[(min(int(u), int(v)), max(int(u), int(v)))] = 1
        elif kind == "down":
            r, s, _ = payload
            crashes[int(r)] = min(crashes.get(int(r), int(s)), int(s))
        elif kind == "outage":
            cls, cluster, s, _ = payload
            for r in dc.cluster_members(cls, cluster):
                crashes[r] = min(crashes.get(r, int(s)), int(s))
        else:
            raise ValueError(f"unknown fault element kind {kind!r}")
    return StaticFaultView(
        crashes=tuple(sorted(crashes.items())),
        cuts=tuple(sorted(cuts.items())),
    )


# -- SLOs ----------------------------------------------------------------------


@dataclass(frozen=True)
class SLO:
    """One service-level objective the campaign attacks.

    ``kind`` selects the evaluation:

    * ``"availability"`` — fraction of arrivals *not* dropped must stay
      >= ``threshold``, on the run total and on every checkpoint
      interval of the serving timeline;
    * ``"p99"`` — the serving p99 sojourn must stay <= ``threshold``;
    * ``"correctness"`` — ``run_faulty(mode="retry")`` under the plan
      must complete and equal the fault-free oracle (``threshold``
      unused);
    * ``"recovery"`` — every healthy rank must be included after
      ``run_faulty(mode="degraded")`` recovery (``threshold`` unused);
      structural candidates only, cross-checked against the
      proven-exact static cut.
    """

    name: str
    kind: str
    threshold: float | None = None

    def __post_init__(self):
        if self.kind not in _SLO_KINDS:
            raise ValueError(
                f"SLO kind must be one of {_SLO_KINDS}, got {self.kind!r}"
            )


def default_slos(
    *,
    availability: float = 0.8,
    p99_factor: float = 3.0,
) -> tuple[SLO, ...]:
    """The stock SLO family (p99 threshold resolved from the baseline).

    ``p99`` ships with ``threshold=None`` — :func:`run_campaign` fills
    in ``p99_factor * baseline_p99 + 3`` after measuring the fault-free
    workload, so the bound adapts to the topology and workload.
    """
    return (
        SLO("availability", "availability", availability),
        SLO("p99_sojourn", "p99", None),
        SLO("result_correctness", "correctness"),
        SLO("recovery_all_included", "recovery"),
    )


# -- report records ------------------------------------------------------------


@dataclass(frozen=True)
class Triage:
    """Static diagnosis of one violation's structural over-approximation."""

    classes: tuple[str, ...]
    blast_radius: tuple[int, ...]
    dead: tuple[int, ...]
    blocked: tuple[int, ...]
    tainted: tuple[int, ...]
    lost_messages: int

    def to_dict(self) -> dict:
        return {
            "classes": list(self.classes),
            "blast_radius": list(self.blast_radius),
            "dead": list(self.dead),
            "blocked": list(self.blocked),
            "tainted": list(self.tainted),
            "lost_messages": self.lost_messages,
        }


@dataclass(frozen=True)
class CampaignViolation:
    """One locally minimal fault set that violates an SLO."""

    slo: str
    kind: str
    threshold: float | None
    observed: float | str
    elements: tuple
    trial: int
    triage: Triage

    @property
    def size(self) -> int:
        return len(self.elements)

    def to_dict(self) -> dict:
        return {
            "slo": self.slo,
            "kind": self.kind,
            "threshold": self.threshold,
            "observed": self.observed,
            "elements": [_element_json(e) for e in self.elements],
            "size": self.size,
            "trial": self.trial,
            "triage": self.triage.to_dict(),
        }


@dataclass(frozen=True)
class CrossCheck:
    """Dynamic-vs-static minimality comparison for one structural SLO."""

    slo: str
    dynamic_size: int | None
    static_size: int | None
    static_exact: bool
    ok: bool

    def to_dict(self) -> dict:
        return {
            "slo": self.slo,
            "dynamic_size": self.dynamic_size,
            "static_size": self.static_size,
            "static_exact": self.static_exact,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class CampaignResult:
    """Everything one campaign run found, JSON- and table-renderable."""

    topology: str
    num_nodes: int
    seed: int
    trials: int
    evaluations: int
    slos: tuple[SLO, ...]
    violations: tuple[CampaignViolation, ...]
    cross_checks: tuple[CrossCheck, ...]

    @property
    def ok(self) -> bool:
        """All cross-checks passed (violations themselves are findings,
        not failures)."""
        return all(c.ok for c in self.cross_checks)

    def to_dict(self) -> dict:
        return {
            "schema": CAMPAIGN_SCHEMA,
            "topology": self.topology,
            "num_nodes": self.num_nodes,
            "seed": self.seed,
            "trials": self.trials,
            "evaluations": self.evaluations,
            "slos": [
                {"name": s.name, "kind": s.kind, "threshold": s.threshold}
                for s in self.slos
            ],
            "violations": [v.to_dict() for v in self.violations],
            "cross_checks": [c.to_dict() for c in self.cross_checks],
            "ok": self.ok,
        }

    def render_table(self) -> str:
        lines = [
            f"campaign on {self.topology} ({self.num_nodes} nodes), "
            f"seed {self.seed}, {self.trials} trials/SLO, "
            f"{self.evaluations} evaluations:"
        ]
        if not self.violations:
            lines.append("  no SLO violations found")
        for v in self.violations:
            thr = "-" if v.threshold is None else f"{v.threshold:g}"
            obs = (
                v.observed if isinstance(v.observed, str)
                else f"{v.observed:g}"
            )
            els = ", ".join(_element_str(e) for e in v.elements)
            classes = ",".join(v.triage.classes) or "none"
            lines.append(
                f"  {v.slo}: size-{v.size} set [{els}] "
                f"(threshold {thr}, observed {obs})"
            )
            lines.append(
                f"    triage: {classes}; blast radius "
                f"{len(v.triage.blast_radius)} rank(s)"
            )
        for c in self.cross_checks:
            tag = "ok" if c.ok else "SOUNDNESS BUG"
            exact = "exact" if c.static_exact else "bound"
            lines.append(
                f"  cross-check {c.slo}: dynamic {c.dynamic_size} vs "
                f"static {c.static_size} ({exact}) -> {tag}"
            )
        return "\n".join(lines)


def _element_json(e: tuple) -> list:
    kind, payload = e
    return [kind, list(payload) if isinstance(payload, tuple) else payload]


def _element_str(e: tuple) -> str:
    kind, payload = e
    return f"{kind}:{payload}"


def validate_report(report: dict) -> list[str]:
    """Schema-drift check of a campaign JSON report; returns problems.

    Used by ``repro campaign --smoke`` (nonzero exit on any finding):
    the top-level, violation, triage and cross-check key sets must match
    the frozen constants exactly, and the schema version must be
    :data:`CAMPAIGN_SCHEMA`.
    """
    problems: list[str] = []

    def check(name: str, got: dict, want: frozenset) -> None:
        keys = set(got)
        if keys != want:
            missing = sorted(want - keys)
            extra = sorted(keys - want)
            problems.append(
                f"{name}: keys drifted (missing {missing}, extra {extra})"
            )

    check("report", report, REPORT_KEYS)
    if report.get("schema") != CAMPAIGN_SCHEMA:
        problems.append(
            f"report: schema {report.get('schema')!r} != {CAMPAIGN_SCHEMA}"
        )
    for i, v in enumerate(report.get("violations", ())):
        check(f"violations[{i}]", v, VIOLATION_KEYS)
        if isinstance(v, dict) and isinstance(v.get("triage"), dict):
            check(f"violations[{i}].triage", v["triage"], TRIAGE_KEYS)
    for i, c in enumerate(report.get("cross_checks", ())):
        check(f"cross_checks[{i}]", c, CROSS_CHECK_KEYS)
    return problems


# -- SLO evaluation ------------------------------------------------------------


class _Evaluator:
    """Evaluates ``violated(slo, elements)`` against one fixed workload.

    The serving workload (arrivals, pairs, horizon, checkpoints) and the
    lockstep oracle are built once, so every probe of the campaign sees
    the same world and verdicts are pure functions of the fault set.
    """

    def __init__(
        self,
        dc: DualCube,
        *,
        seed: int,
        requests_per_node: int,
        correctness_timeout: int,
    ):
        from repro.core.ops import ADD
        from repro.core.run_faulty import run_faulty
        from repro.routing.dualcube_routing import route

        self.dc = dc
        self.seed = seed
        self.correctness_timeout = correctness_timeout
        self.evaluations = 0
        self._run_faulty = run_faulty
        self._op = ADD

        n = dc.num_nodes
        requests = requests_per_node * n
        rate = 0.3 * n
        self.arrivals = poisson_arrivals(rate, requests, seed)
        self.pairs = open_loop_pairs(dc, requests, seed)
        self.router = lambda u, v: route(dc, u, v)
        horizon = float(math.ceil(float(self.arrivals[-1])) + 10)
        self.horizon = horizon
        self.config = ServingConfig(
            horizon=horizon, checkpoint_every=max(2.0, horizon / 8.0)
        )
        # Downtime / outage window used by the dynamic candidates.
        self.w0 = max(1, int(horizon * 0.25))
        self.w1 = max(self.w0 + 1, int(horizon * 0.6))

        self.data = list(range(n))
        self.oracle = run_faulty(
            "prefix", dc, self.data, op=ADD, plan=FaultPlan(), mode="retry"
        ).values
        self.baseline = self._serve(None)

    def _serve(self, plan: FaultPlan | None):
        return run_serving(
            self.dc,
            self.router,
            self.arrivals,
            self.pairs,
            config=self.config,
            fault_plan=plan,
        )

    # Per-kind verdicts ---------------------------------------------------

    def _availability(self, stats) -> float:
        """Worst not-dropped fraction over the total and every
        checkpoint interval (the trailing post-fix intervals included)."""
        worst = 1.0
        if stats.arrivals:
            worst = (stats.arrivals - stats.drops) / stats.arrivals
        prev_a = prev_d = 0
        for cp in stats.checkpoints:
            da = cp.arrivals - prev_a
            dd = cp.drops - prev_d
            prev_a, prev_d = cp.arrivals, cp.drops
            if da > 0:
                # Retransmission drops can land in a later interval than
                # their arrival, so clamp: 0 means "everything lost".
                worst = min(worst, max(0.0, (da - dd) / da))
        return worst

    def violated(self, slo: SLO, elements: tuple) -> tuple[bool, float | str]:
        """Whether ``elements`` violates ``slo``; returns the observation."""
        self.evaluations += 1
        if slo.kind == "availability":
            plan = plan_from_elements(self.dc, elements, seed=self.seed)
            avail = self._availability(self._serve(plan))
            return avail < slo.threshold, avail
        if slo.kind == "p99":
            plan = plan_from_elements(self.dc, elements, seed=self.seed)
            p99 = self._serve(plan).p99
            return p99 > slo.threshold, p99
        if slo.kind == "correctness":
            plan = plan_from_elements(
                self.dc,
                elements,
                seed=self.seed,
                timeout=self.correctness_timeout,
                on_timeout="raise",
            )
            try:
                out = self._run_faulty(
                    "prefix", self.dc, self.data, op=self._op,
                    plan=plan, mode="retry",
                ).values
            except SimulationError as exc:  # timeout/retry-limit/deadlock
                return True, type(exc).__name__
            return out != self.oracle, "mismatch" if out != self.oracle else "match"
        # recovery: structural elements only, degraded collective.
        from repro.analysis.static.faults import fault_set_of

        fs = fault_set_of(elements)
        result = self._run_faulty(
            "prefix", self.dc, self.data, op=self._op,
            faults=fs, mode="degraded",
        )
        excluded_healthy = [
            r for r in result.excluded if r not in fs.nodes
        ]
        return bool(excluded_healthy), float(len(excluded_healthy))

    def seeds(self, slo: SLO) -> tuple[tuple, ...]:
        """Deterministic seed probes tried before the random draws.

        The recovery SLO gets whole-neighborhood crash sets (crashing
        every neighbor of a rank always disconnects it), the same upper
        bound the static ``minimal_cut`` search seeds itself with — the
        shrink pass then works the set down toward kappa(G).
        """
        if slo.kind != "recovery":
            return ()
        return tuple(
            tuple(sorted(("node", v) for v in self.dc.neighbors(r)))
            for r in (0, self.dc.num_nodes // 2)
        )

    # Candidate universes -------------------------------------------------

    def candidates(self, slo: SLO) -> tuple[tuple, ...]:
        dc = self.dc
        n = dc.num_nodes
        if slo.kind == "availability":
            els: list[tuple] = [("node", r) for r in range(n)]
            for cls in range(2):
                for cluster in range(dc.clusters_per_class):
                    els.append(("outage", (cls, cluster, self.w0, self.w1)))
            els.extend(
                ("down", (r, self.w0, self.w1)) for r in range(n)
            )
            return tuple(els)
        if slo.kind == "p99":
            els = [("link", e) for e in sorted(_edges(dc))]
            els.extend(("down", (r, self.w0, self.w1)) for r in range(n))
            return tuple(els)
        if slo.kind == "correctness":
            long_end = 2 + self.correctness_timeout + 2
            els = [("down", (r, 2, long_end)) for r in range(n)]
            els.extend(("down", (r, 3, 4)) for r in range(n))
            return tuple(els)
        return tuple(("node", r) for r in range(n))


def _edges(dc: DualCube) -> set[tuple[int, int]]:
    return {
        (min(u, v), max(u, v))
        for u in range(dc.num_nodes)
        for v in dc.neighbors(u)
    }


# -- triage --------------------------------------------------------------------


def _triage(dc: DualCube, elements: tuple) -> Triage:
    """Classify a violation through the static analyzer.

    The structural over-approximation of the fault set runs through the
    fault-aware abstract interpreter on the prefix collective's schedule
    (the representative lockstep workload), and
    :meth:`FaultImpact.diagnose` names the hang class — ``deadlock``,
    ``orphan``, ``stall`` … — that a blocked operator would see.
    """
    from repro.analysis.static import analyze_fault_impact, extract_schedule
    from repro.core.dual_prefix import dual_prefix_program
    from repro.core.ops import ADD

    view = structural_overapproximation(dc, elements)
    schedule = extract_schedule(
        dc, dual_prefix_program(dc, list(range(dc.num_nodes)), ADD)
    )
    impact = analyze_fault_impact(schedule, view)
    classes = tuple(sorted({v.code for v in impact.diagnose()}))
    return Triage(
        classes=classes,
        blast_radius=impact.blast_radius,
        dead=impact.dead,
        blocked=impact.blocked,
        tainted=impact.tainted,
        lost_messages=len(impact.lost),
    )


# -- the campaign engine -------------------------------------------------------


def _shrink(
    evaluator: _Evaluator, slo: SLO, elements: tuple, observed
) -> tuple[tuple, float | str]:
    """Greedy minimal-hitting-set shrink: drop elements while the
    violation persists (deterministic order, first-to-fixpoint)."""
    cur = list(elements)
    changed = True
    while changed:
        changed = False
        for e in sorted(cur):
            if len(cur) == 1:
                break
            candidate = tuple(x for x in cur if x != e)
            bad, obs = evaluator.violated(slo, candidate)
            if bad:
                cur.remove(e)
                observed = obs
                changed = True
    return tuple(sorted(cur)), observed


def run_campaign(
    dc: DualCube | int,
    *,
    seed: int = 0,
    trials: int = 8,
    max_probe: int = 3,
    requests_per_node: int = 20,
    correctness_timeout: int = 5,
    slos: Sequence[SLO] | None = None,
    availability: float = 0.8,
    p99_factor: float = 3.0,
) -> CampaignResult:
    """Search for the smallest fault sets violating each SLO.

    Per SLO: ``trials`` seeded random probes draw 1..``max_probe``
    elements from the SLO's candidate universe; each violating draw is
    greedily shrunk to a locally minimal violating set, and the smallest
    one found is reported with its static triage.  For the structural
    ``recovery`` SLO the result is cross-checked against the
    proven-exact static node cut — a dynamic answer smaller than the
    exact minimum raises :class:`CampaignError`.

    Deterministic: same arguments, byte-identical
    :meth:`CampaignResult.to_dict`.
    """
    if isinstance(dc, int):
        dc = DualCube(dc)
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if max_probe < 1:
        raise ValueError(f"max_probe must be >= 1, got {max_probe}")

    evaluator = _Evaluator(
        dc,
        seed=seed,
        requests_per_node=requests_per_node,
        correctness_timeout=correctness_timeout,
    )
    if slos is None:
        slos = default_slos(availability=availability, p99_factor=p99_factor)
    # Resolve workload-relative thresholds from the fault-free baseline.
    resolved: list[SLO] = []
    for s in slos:
        if s.kind == "p99" and s.threshold is None:
            resolved.append(
                SLO(s.name, s.kind, p99_factor * evaluator.baseline.p99 + 3.0)
            )
        else:
            resolved.append(s)

    violations: list[CampaignViolation] = []
    cross_checks: list[CrossCheck] = []
    for idx, slo in enumerate(resolved):
        rng = random.Random((seed * 0x9E3779B1 + idx * 0x85EBCA77) & (2**63 - 1))
        universe = evaluator.candidates(slo)
        probes = list(evaluator.seeds(slo))
        for _ in range(trials):
            k = rng.randint(1, min(max_probe, len(universe)))
            probes.append(
                tuple(
                    sorted(
                        universe[i]
                        for i in rng.sample(range(len(universe)), k)
                    )
                )
            )
        best: tuple[tuple, float | str, int] | None = None
        for trial, probe in enumerate(probes):
            bad, observed = evaluator.violated(slo, probe)
            if not bad:
                continue
            minimal, observed = _shrink(evaluator, slo, probe, observed)
            if best is None or len(minimal) < len(best[0]):
                best = (minimal, observed, trial)
                if len(minimal) == 1:
                    break  # cannot shrink below one element
        if best is not None:
            minimal, observed, trial = best
            violations.append(
                CampaignViolation(
                    slo=slo.name,
                    kind=slo.kind,
                    threshold=slo.threshold,
                    observed=observed,
                    elements=minimal,
                    trial=trial,
                    triage=_triage(dc, minimal),
                )
            )
        if slo.kind == "recovery":
            cross_checks.append(
                _cross_check_recovery(
                    dc, slo.name,
                    None if best is None else len(best[0]),
                )
            )

    result = CampaignResult(
        topology=dc.name,
        num_nodes=dc.num_nodes,
        seed=seed,
        trials=trials,
        evaluations=evaluator.evaluations,
        slos=tuple(resolved),
        violations=tuple(violations),
        cross_checks=tuple(cross_checks),
    )
    if not result.ok:
        bad = [c for c in result.cross_checks if not c.ok]
        raise CampaignError(
            f"dynamic campaign beat the proven-exact static cut: {bad} — "
            f"the dynamic search or the engine's fault semantics is unsound"
        )
    return result


def _cross_check_recovery(
    dc: DualCube, slo_name: str, dynamic_size: int | None
) -> CrossCheck:
    """Compare the campaign's recovery answer with the static exact cut.

    ``structural_node_cut`` is proven exact (Menger max-flow witnesses),
    so a *smaller* dynamic answer is impossible unless something is
    unsound; equal or larger (or no dynamic find at all) is fine — the
    randomized probe has no exactness guarantee.
    """
    from repro.analysis.static.faults import structural_node_cut

    static = structural_node_cut(dc, mode="degraded")
    ok = (
        dynamic_size is None
        or static.size is None
        or not static.exact
        or dynamic_size >= static.size
    )
    return CrossCheck(
        slo=slo_name,
        dynamic_size=dynamic_size,
        static_size=static.size,
        static_exact=static.exact,
        ok=ok,
    )
