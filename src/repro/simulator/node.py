"""Per-node execution context handed to SPMD programs."""

from __future__ import annotations

from typing import Any

from repro.simulator.counters import CostCounters
from repro.simulator.trace import TraceRecorder
from repro.topology.base import Topology

__all__ = ["NodeCtx"]


class NodeCtx:
    """What a node program sees: its rank, the topology, and local hooks.

    A program is a generator function ``program(ctx)`` that yields
    communication requests.  Between yields it runs ordinary Python; it
    reports local computation through :meth:`compute` (so the parallel
    computation-step count is measured, not asserted) and state snapshots
    through :meth:`record` (for figure regeneration).
    """

    __slots__ = ("rank", "topo", "_counters", "_trace")

    def __init__(
        self,
        rank: int,
        topo: Topology,
        counters: CostCounters,
        trace: TraceRecorder | None,
    ):
        self.rank = rank
        self.topo = topo
        self._counters = counters
        self._trace = trace

    def compute(self, ops: int = 1) -> None:
        """Account one local computation round of ``ops`` primitive operations."""
        self._counters.record_compute(self.rank, ops)

    def record(self, label: str, value: Any) -> None:
        """Record a labelled state snapshot for this rank (no-op without a trace)."""
        if self._trace is not None:
            self._trace.record(label, self.rank, value)

    def neighbors(self) -> tuple[int, ...]:
        """Neighbors of this rank in the topology."""
        return self.topo.neighbors(self.rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeCtx(rank={self.rank}, topo={self.topo.name})"
