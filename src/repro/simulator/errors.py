"""Simulator exception hierarchy."""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "DeadlockError",
    "LinkError",
    "ProgramError",
    "FaultError",
    "RetryLimitError",
    "RequestTimeoutError",
]


class SimulationError(RuntimeError):
    """Base class for all simulator failures."""


class DeadlockError(SimulationError):
    """No pending request could complete in a cycle.

    Raised with the set of blocked ranks and their requests, which is
    usually enough to spot a mismatched send/recv pair in a node program.
    """

    def __init__(self, cycle: int, blocked: dict):
        self.cycle = cycle
        self.blocked = blocked
        sample = ", ".join(
            f"rank {r}: {req!r}" for r, req in list(blocked.items())[:8]
        )
        more = "" if len(blocked) <= 8 else f" (+{len(blocked) - 8} more)"
        super().__init__(
            f"deadlock at cycle {cycle}: {len(blocked)} blocked requests — "
            f"{sample}{more}"
        )


class LinkError(SimulationError):
    """A message was addressed along a non-existent link."""


class ProgramError(SimulationError):
    """A node program misbehaved (bad request object, yielded after finish, …)."""


class FaultError(SimulationError):
    """Base class for failures of the fault-injection recovery machinery."""


class RetryLimitError(FaultError):
    """A request was dropped more times than the plan's ``max_retries`` allows."""

    def __init__(self, rank: int, request, retries: int, cycle: int):
        self.rank = rank
        self.request = request
        self.retries = retries
        self.cycle = cycle
        super().__init__(
            f"rank {rank} exhausted {retries} retries for {request!r} "
            f"by cycle {cycle}"
        )


class RequestTimeoutError(FaultError):
    """A request stayed pending longer than the plan's ``timeout`` cycles."""

    def __init__(self, rank: int, request, cycle: int, timeout: int):
        self.rank = rank
        self.request = request
        self.cycle = cycle
        self.timeout = timeout
        super().__init__(
            f"rank {rank} timed out after {timeout} cycles waiting on "
            f"{request!r} (cycle {cycle})"
        )
