"""Simulator exception hierarchy."""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "DeadlockError",
    "LinkError",
    "ProgramError",
]


class SimulationError(RuntimeError):
    """Base class for all simulator failures."""


class DeadlockError(SimulationError):
    """No pending request could complete in a cycle.

    Raised with the set of blocked ranks and their requests, which is
    usually enough to spot a mismatched send/recv pair in a node program.
    """

    def __init__(self, cycle: int, blocked: dict):
        self.cycle = cycle
        self.blocked = blocked
        sample = ", ".join(
            f"rank {r}: {req!r}" for r, req in list(blocked.items())[:8]
        )
        more = "" if len(blocked) <= 8 else f" (+{len(blocked) - 8} more)"
        super().__init__(
            f"deadlock at cycle {cycle}: {len(blocked)} blocked requests — "
            f"{sample}{more}"
        )


class LinkError(SimulationError):
    """A message was addressed along a non-existent link."""


class ProgramError(SimulationError):
    """A node program misbehaved (bad request object, yielded after finish, …)."""
