"""Cost accounting shared by the cycle-accurate engine and the vectorized backend.

The paper's theorems count two quantities under the synchronous 1-port
model:

* **communication steps** — lockstep cycles in which messages fly; every
  algorithm here keeps all nodes in lockstep, so engine cycles equal the
  paper's communication steps;
* **computation steps** — parallel rounds of O(1) local work (one
  ``t``/``s`` update pair in the prefix algorithms, one comparison in the
  sort); the per-node op tallies are also kept so the "O(1) per round"
  claim itself is checkable.

Both execution backends feed the same :class:`CostCounters` so benchmark
rows are directly comparable.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["CostCounters", "Packed", "payload_size"]


class Packed:
    """Explicit multi-item message container.

    Algorithms that deliberately batch several key-sized items into one
    message (the sort's packed 3-hop schedule) wrap them in ``Packed`` so
    the payload audit can distinguish a 2-key message from a single value
    that merely *is* a tuple (e.g. a CONCAT partial result).
    """

    __slots__ = ("items",)

    def __init__(self, items: tuple):
        self.items = tuple(items)

    def __len__(self) -> int:
        return len(self.items)

    def __eq__(self, other) -> bool:
        return isinstance(other, Packed) and self.items == other.items

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Packed{self.items!r}"


def payload_size(payload: Any) -> int:
    """Number of key-sized items a message payload carries.

    ``None`` counts as 0 (control-only), :class:`Packed` by item count,
    anything else — including tuples that are single values — as one item.
    """
    if payload is None:
        return 0
    if isinstance(payload, Packed):
        return len(payload)
    return 1


class CostCounters:
    """Mutable cost ledger for one algorithm run.

    Parameters
    ----------
    num_nodes:
        Network size; per-node tallies are dense arrays of this length.
    """

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self.cycles = 0
        self.active_cycles = 0
        self.messages = 0
        self.payload_items = 0
        self.max_message_payload = 0
        self.messages_dropped = 0
        self.retries = 0
        self.timeouts = 0
        self.node_crashes = 0
        self.sends = np.zeros(num_nodes, dtype=np.int64)
        self.recvs = np.zeros(num_nodes, dtype=np.int64)
        self._comp_calls = np.zeros(num_nodes, dtype=np.int64)
        self._comp_ops = np.zeros(num_nodes, dtype=np.int64)
        self._timeline = None

    def attach_timeline(self, recorder) -> None:
        """Mirror bulk lockstep rounds into a timeline recorder.

        The vectorized backends have no engine cycles — their unit of
        progress is the bulk round recorded through
        :meth:`record_comm_step`/:meth:`record_comp_step`.  With a
        recorder attached (duck-typed: anything with ``record_comm_step``
        and ``record_comp_step``, normally a
        :class:`~repro.obs.timeline.TimelineRecorder`), each bulk round
        also emits one coarse per-step timeline record.  Pass ``None`` to
        detach.
        """
        if recorder is not None and not hasattr(recorder, "record_comm_step"):
            raise TypeError(
                f"expected a timeline recorder with record_comm_step/"
                f"record_comp_step or None, got {type(recorder)!r}"
            )
        self._timeline = recorder

    # -- engine-side hooks ---------------------------------------------------

    def record_cycle(self, deliveries: int) -> None:
        """One engine clock tick with ``deliveries`` completed messages."""
        self.cycles += 1
        if deliveries:
            self.active_cycles += 1

    def record_delivery(self, src: int, dst: int, payload: Any) -> None:
        """One message delivered ``src -> dst``."""
        size = payload_size(payload)
        self.messages += 1
        self.payload_items += size
        if size > self.max_message_payload:
            self.max_message_payload = size
        self.sends[src] += 1
        self.recvs[dst] += 1

    def record_drop(self) -> None:
        """One in-flight message lost to fault injection (forces a retry)."""
        self.messages_dropped += 1
        self.retries += 1

    def record_timeout(self) -> None:
        """One request abandoned by the per-request timeout."""
        self.timeouts += 1

    def record_crash(self) -> None:
        """One node killed by the fault plan."""
        self.node_crashes += 1

    def record_compute(self, rank: int, ops: int = 1) -> None:
        """One local computation round of ``ops`` primitive operations at ``rank``."""
        if ops < 0:
            raise ValueError(f"ops must be non-negative, got {ops}")
        self._comp_calls[rank] += 1
        self._comp_ops[rank] += ops

    # -- vectorized-backend hooks ---------------------------------------------

    def record_comm_step(
        self, messages: int, payload_items: int | None = None, max_payload: int = 1
    ) -> None:
        """One lockstep communication round performed in bulk.

        ``messages`` is the number of point-to-point messages in the round;
        ``payload_items`` defaults to one item per message.
        """
        self.cycles += 1
        if messages:
            self.active_cycles += 1
        self.messages += messages
        self.payload_items += (
            messages if payload_items is None else payload_items
        )
        if messages and max_payload > self.max_message_payload:
            self.max_message_payload = max_payload
        if self._timeline is not None:
            self._timeline.record_comm_step(
                messages, payload_items, max_payload
            )

    def record_comp_step(self, ops_each: int = 1, ranks=None) -> None:
        """One lockstep computation round performed in bulk.

        ``ranks`` limits the round to a subset of nodes (array/sequence of
        rank indices); by default every node participates.  A rank listed
        k times is charged k rounds (``np.add.at`` — buffered fancy-index
        ``+=`` would silently collapse duplicates).  A ``range`` charges
        the contiguous slice directly, so callers over huge networks (the
        columnar backend's class-half rounds) never materialize an index
        array.
        """
        if ranks is None:
            self._comp_calls += 1
            self._comp_ops += ops_each
        elif isinstance(ranks, range) and ranks.step == 1:
            self._comp_calls[ranks.start : ranks.stop] += 1
            self._comp_ops[ranks.start : ranks.stop] += ops_each
        else:
            idx = np.asarray(ranks, dtype=np.int64)
            np.add.at(self._comp_calls, idx, 1)
            np.add.at(self._comp_ops, idx, ops_each)
        if self._timeline is not None:
            self._timeline.record_comp_step(ops_each)

    def record_bulk(
        self,
        *,
        cycles: int,
        active_cycles: int,
        messages: int,
        payload_items: int,
        max_message_payload: int,
        sends,
        recvs,
    ) -> None:
        """Flush tallies accumulated outside the ledger (engine fast mode).

        The engine's fast path counts deliveries in plain Python scalars
        and per-node lists, then merges them here in one shot; the final
        ledger state is identical to per-event recording.
        """
        self.cycles += cycles
        self.active_cycles += active_cycles
        self.messages += messages
        self.payload_items += payload_items
        if max_message_payload > self.max_message_payload:
            self.max_message_payload = max_message_payload
        self.sends += np.asarray(sends, dtype=np.int64)
        self.recvs += np.asarray(recvs, dtype=np.int64)

    # -- derived quantities ----------------------------------------------------

    @property
    def comm_steps(self) -> int:
        """Communication steps in the paper's sense (lockstep cycles)."""
        return self.cycles

    @property
    def comp_steps(self) -> int:
        """Parallel computation steps: the longest per-node chain of rounds."""
        return int(self._comp_calls.max(initial=0))

    @property
    def max_node_ops(self) -> int:
        """Largest number of primitive local operations any node performed."""
        return int(self._comp_ops.max(initial=0))

    @property
    def total_ops(self) -> int:
        """Total primitive local operations across all nodes."""
        return int(self._comp_ops.sum())

    def summary(self) -> dict:
        """Compact dict for benchmark tables."""
        return {
            "comm_steps": self.comm_steps,
            "comp_steps": self.comp_steps,
            "messages": self.messages,
            "payload_items": self.payload_items,
            "max_message_payload": self.max_message_payload,
            "max_node_ops": self.max_node_ops,
            "total_ops": self.total_ops,
            "messages_dropped": self.messages_dropped,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "node_crashes": self.node_crashes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.summary()
        body = ", ".join(f"{k}={v}" for k, v in s.items())
        return f"CostCounters({body})"
