"""Synchronous message-passing network simulator.

This package is the substitute for the paper's abstract machine: a
synchronous multicomputer whose nodes are connected by bidirectional
channels under the 1-port model (each node sends at most one and receives
at most one message per clock cycle).  Theorems 1 and 2 are statements
about step counts under exactly this model, so the simulator enforces it
and the benchmark harness reads its counters.

Programming model (mpi4py-flavoured SPMD): every node runs the same
*program*, a Python generator instantiated per rank, which yields
communication requests — :class:`Send`, :class:`Recv`, :class:`SendRecv`,
:class:`Idle` — and receives delivered payloads back at the yield point.
The :class:`Engine` advances all programs in lockstep, one request per
clock cycle, verifying that every message travels along an existing link
and that no node exceeds its port budget.
"""

from repro.simulator.errors import (
    SimulationError,
    DeadlockError,
    LinkError,
    ProgramError,
    FaultError,
    RetryLimitError,
    RequestTimeoutError,
)
from repro.simulator.requests import Send, Recv, SendRecv, Shift, Idle
from repro.simulator.counters import CostCounters, Packed
from repro.simulator.columnar import (
    ColumnarState,
    bit_pair_views,
    dir_bit_views,
    swap_halves,
)
from repro.simulator.faults import FAULTED, FaultPlan
from repro.simulator.message import Message
from repro.simulator.serving import (
    ServingConfig,
    ServingStats,
    SaturationResult,
    run_serving,
    find_saturation,
)
from repro.simulator.node import NodeCtx
from repro.simulator.trace import TraceRecorder
from repro.simulator.engine import (
    Engine,
    EngineResult,
    run_spmd,
    use_matching,
    use_fault_plan,
    use_timeline,
)
from repro.simulator.campaign import (
    SLO,
    CampaignError,
    CampaignResult,
    run_campaign,
    churn_downtimes,
    cluster_outage,
    rolling_restart,
)

__all__ = [
    "SimulationError",
    "DeadlockError",
    "LinkError",
    "ProgramError",
    "FaultError",
    "RetryLimitError",
    "RequestTimeoutError",
    "FAULTED",
    "FaultPlan",
    "ServingConfig",
    "ServingStats",
    "SaturationResult",
    "run_serving",
    "find_saturation",
    "Send",
    "Recv",
    "SendRecv",
    "Shift",
    "Idle",
    "CostCounters",
    "Packed",
    "ColumnarState",
    "bit_pair_views",
    "dir_bit_views",
    "swap_halves",
    "Message",
    "NodeCtx",
    "TraceRecorder",
    "Engine",
    "EngineResult",
    "run_spmd",
    "use_matching",
    "use_fault_plan",
    "use_timeline",
    "SLO",
    "CampaignError",
    "CampaignResult",
    "run_campaign",
    "churn_downtimes",
    "cluster_outage",
    "rolling_restart",
]
