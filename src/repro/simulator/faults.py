"""Fault injection for the lockstep engine.

A :class:`FaultPlan` is a *deterministic* schedule of failures the engine
consults while matching requests (see ``docs/model.md``, "Fault model and
recovery semantics"):

* **node crashes** — ``{rank: cycle}``; at the start of that cycle the
  rank's program is terminated and its pending request discarded;
* **link cuts** — ``{(u, v): cycle}``; from that cycle on, requests whose
  legs cross the link can never match (they block until they time out);
* **message drops** — a seeded Bernoulli draw per *delivered* directed
  message ``(src, dst, cycle)`` (plus an explicit trigger set); a dropped
  message makes the whole exchange it belonged to stay pending, so the
  lockstep pair retries on the next cycle — the engine counts the drop
  and the retry, and enforces :attr:`max_retries` per request;
* **message delays** — a seeded draw per *issued* request
  ``(rank, issue_cycle)`` (plus an explicit trigger map); a delayed
  request is invisible to matching for ``d`` cycles, as if the node
  posted it late;
* **downtimes** — ``(rank, start, end)`` membership intervals: the rank
  is *offline* for cycles ``start..end-1`` and rejoins at ``end``.
  Unlike a crash the program survives; its pending request is simply
  invisible to matching while the node is down (and every link touching
  the node is down for the interval), so lockstep partners stall and
  resume when it returns — the primitive behind churn, correlated
  whole-cluster outages, and rolling-restart sweeps (see
  ``repro.simulator.campaign``).

Randomness comes from a splitmix-style integer hash of
``(seed, kind, endpoints, cycle)`` — a pure function, so verdicts do not
depend on matcher choice, iteration order, or Python hash randomization,
and identical plans reproduce identical runs bit-for-bit.

Recovery knobs ride on the plan: :attr:`max_retries` bounds drop retries,
:attr:`timeout` bounds how many cycles any request may stay pending, and
:attr:`on_timeout` selects whether a timeout raises
:class:`~repro.simulator.errors.RequestTimeoutError` or cancels the
request by resuming the program with the :data:`FAULTED` sentinel (so the
program can reroute).

An *empty* plan (no fault sources, no timeout) makes the engine take the
exact fault-free code path; the differential suite asserts byte-identical
results and cost ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.topology.base import Topology

__all__ = ["FaultPlan", "StaticFaultView", "FAULTED"]

_M64 = (1 << 64) - 1
_TAG_DROP = 0x9E3779B97F4A7C15
_TAG_DELAY = 0xC2B2AE3D27D4EB4F


def _u01(seed: int, tag: int, a: int, b: int, c: int) -> float:
    """Deterministic uniform in [0, 1) from a splitmix-style mix."""
    x = (seed ^ tag) & _M64
    for v in (a + 1, b + 1, c + 1):
        x = (x + v * 0x9E3779B97F4A7C15) & _M64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
        x ^= x >> 31
    return x / 2**64


class _Faulted:
    """Singleton resumed into a program whose request timed out (cancel mode)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "FAULTED"

    def __reduce__(self):  # pragma: no cover - pickling convenience
        return (_faulted_instance, ())


FAULTED = _Faulted()


def _faulted_instance() -> _Faulted:  # pragma: no cover - pickling convenience
    return FAULTED


def _norm_link(link: tuple[int, int]) -> tuple[int, int]:
    a, b = link
    if a == b:
        raise ValueError(f"fault link ({a}, {b}) is a self-loop")
    return (min(a, b), max(a, b))


class FaultPlan:
    """Deterministic failure schedule plus recovery configuration.

    Parameters
    ----------
    node_crashes:
        ``{rank: cycle}`` — the rank dies at the start of that cycle
        (cycle >= 1; cycle 1 means it never completes a request).
    link_cuts:
        ``{(u, v): cycle}`` — the undirected link dies at that cycle.
    downtimes:
        ``(rank, start, end)`` triples — the rank is offline for cycles
        ``start..end-1`` (``1 <= start < end``) and rejoins at ``end``.
        Intervals for the same rank may not overlap.
    drop_rate:
        Probability in [0, 1] that any delivered message is dropped.
    drops:
        Explicit ``(src, dst, cycle)`` triples dropped unconditionally.
    delay_rate:
        Probability in [0, 1] that an issued request is delayed.
    max_delay:
        Delays are uniform on ``1..max_delay`` cycles.
    delays:
        Explicit ``{(rank, issue_cycle): d}`` delays, applied before the
        rate-based draw.
    seed:
        Seed for the deterministic drop/delay hash.
    max_retries:
        Per-request bound on drop-forced retries; exceeding it raises
        :class:`~repro.simulator.errors.RetryLimitError`.
    timeout:
        Cycles a request may stay pending before the timeout action
        fires; ``None`` disables timeouts.
    on_timeout:
        ``"raise"`` (default) raises
        :class:`~repro.simulator.errors.RequestTimeoutError`;
        ``"cancel"`` completes the request locally, resuming the program
        with :data:`FAULTED` so it can reroute.
    """

    def __init__(
        self,
        *,
        node_crashes: Mapping[int, int] | None = None,
        link_cuts: Mapping[tuple[int, int], int] | None = None,
        downtimes: Iterable[tuple[int, int, int]] = (),
        drop_rate: float = 0.0,
        drops: Iterable[tuple[int, int, int]] = (),
        delay_rate: float = 0.0,
        max_delay: int = 3,
        delays: Mapping[tuple[int, int], int] | None = None,
        seed: int = 0,
        max_retries: int = 64,
        timeout: int | None = None,
        on_timeout: str = "raise",
    ):
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        if not 0.0 <= delay_rate <= 1.0:
            raise ValueError(f"delay_rate must be in [0, 1], got {delay_rate}")
        if max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {max_delay}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if timeout is not None and timeout < 1:
            raise ValueError(f"timeout must be >= 1 or None, got {timeout}")
        if on_timeout not in ("raise", "cancel"):
            raise ValueError(
                f"on_timeout must be 'raise' or 'cancel', got {on_timeout!r}"
            )
        self.node_crashes = dict(node_crashes or {})
        for rank, cycle in self.node_crashes.items():
            if cycle < 1:
                raise ValueError(
                    f"crash cycle for rank {rank} must be >= 1, got {cycle}"
                )
        self.link_cuts: dict[tuple[int, int], int] = {}
        for link, cycle in dict(link_cuts or {}).items():
            if cycle < 1:
                raise ValueError(
                    f"cut cycle for link {link} must be >= 1, got {cycle}"
                )
            self.link_cuts[_norm_link(link)] = cycle
        self.downtimes: dict[int, tuple[tuple[int, int], ...]] = {}
        by_rank: dict[int, list[tuple[int, int]]] = {}
        for rank, start, end in downtimes:
            rank, start, end = int(rank), int(start), int(end)
            if start < 1:
                raise ValueError(
                    f"downtime start for rank {rank} must be >= 1, got {start}"
                )
            if end <= start:
                raise ValueError(
                    f"downtime ({rank}, {start}, {end}) must have end > start"
                )
            by_rank.setdefault(rank, []).append((start, end))
        for rank, spans in by_rank.items():
            spans.sort()
            for (_, e0), (s1, _) in zip(spans, spans[1:]):
                if s1 < e0:
                    raise ValueError(
                        f"overlapping downtimes for rank {rank}: {spans}"
                    )
            self.downtimes[rank] = tuple(spans)
        self.drop_rate = float(drop_rate)
        self.drops = frozenset(
            (int(s), int(d), int(c)) for s, d, c in drops
        )
        for s, d, c in self.drops:
            if s == d:
                raise ValueError(f"drop trigger ({s}, {d}, {c}) is a self-loop")
            if c < 1:
                raise ValueError(
                    f"drop trigger ({s}, {d}, {c}) cycle must be >= 1"
                )
        self.delay_rate = float(delay_rate)
        self.max_delay = int(max_delay)
        self.delays = {
            (int(r), int(c)): int(d) for (r, c), d in dict(delays or {}).items()
        }
        for key, d in self.delays.items():
            if d < 1:
                raise ValueError(f"explicit delay {key} -> {d} must be >= 1")
            # Initial requests are issued at cycle 0 (before the first
            # matching cycle), so 0 is a real issue cycle — only negative
            # keys can never fire.
            if key[1] < 0:
                raise ValueError(
                    f"explicit delay key {key} issue cycle must be >= 0"
                )
        self.seed = int(seed)
        self.max_retries = int(max_retries)
        self.timeout = timeout
        self.on_timeout = on_timeout

    # -- schedule queries (all pure functions) ---------------------------------

    @property
    def is_empty(self) -> bool:
        """No fault sources and no timeout: the engine may skip fault logic."""
        return (
            not self.node_crashes
            and not self.link_cuts
            and not self.downtimes
            and not self.drops
            and self.drop_rate == 0.0
            and self.delay_rate == 0.0
            and not self.delays
            and self.timeout is None
        )

    def crashed(self, rank: int, cycle: int) -> bool:
        """Whether ``rank`` is dead at ``cycle``."""
        crash = self.node_crashes.get(rank)
        return crash is not None and crash <= cycle

    def down(self, rank: int, cycle: int) -> bool:
        """Whether ``rank`` is unavailable at ``cycle`` (crashed *or* offline)."""
        if self.crashed(rank, cycle):
            return True
        for start, end in self.downtimes.get(rank, ()):
            if start <= cycle < end:
                return True
            if cycle < start:
                break
        return False

    def link_up(self, u: int, v: int, cycle: int) -> bool:
        """Whether the undirected link ``{u, v}`` is alive at ``cycle``."""
        cut = self.link_cuts.get((min(u, v), max(u, v)))
        if cut is not None and cut <= cycle:
            return False
        return not (self.down(u, cycle) or self.down(v, cycle))

    def dropped(self, src: int, dst: int, cycle: int) -> bool:
        """Whether the message ``src -> dst`` completing at ``cycle`` is lost."""
        if (src, dst, cycle) in self.drops:
            return True
        if self.drop_rate == 0.0:
            return False
        return _u01(self.seed, _TAG_DROP, src, dst, cycle) < self.drop_rate

    def issue_delay(self, rank: int, issue_cycle: int) -> int:
        """Extra cycles the request issued by ``rank`` at ``issue_cycle`` waits."""
        explicit = self.delays.get((rank, issue_cycle))
        if explicit is not None:
            return explicit
        if self.delay_rate == 0.0:
            return 0
        u = _u01(self.seed, _TAG_DELAY, rank, issue_cycle, 0)
        if u >= self.delay_rate:
            return 0
        # Re-mix the sub-rate part into a uniform delay in 1..max_delay.
        # u/delay_rate is in [0, 1) exactly, but the *float* quotient can
        # round up to 1.0, so clamp the bucket instead of wrapping it.
        return 1 + min(
            int((u / self.delay_rate) * self.max_delay), self.max_delay - 1
        )

    def validate_for(self, topo: Topology) -> None:
        """Check every scheduled fault names a real node/link of ``topo``."""
        for rank in self.node_crashes:
            topo.check_node(rank)
        for rank in self.downtimes:
            topo.check_node(rank)
        for s, d, _ in self.drops:
            topo.check_node(s)
            topo.check_node(d)
        for (rank, _), _d in self.delays.items():
            topo.check_node(rank)
        for (u, v) in self.link_cuts:
            if not topo.has_edge(u, v):
                raise ValueError(
                    f"cut link ({u}, {v}) is not an edge of {topo.name}"
                )

    def static_view(self) -> "StaticFaultView":
        """Project the plan onto its statically analyzable part.

        See :class:`StaticFaultView`.
        """
        return StaticFaultView(
            crashes=tuple(sorted(self.node_crashes.items())),
            cuts=tuple(sorted(self.link_cuts.items())),
            downs=tuple(
                (rank, start, end)
                for rank in sorted(self.downtimes)
                for start, end in self.downtimes[rank]
            ),
            transient=bool(
                self.drops
                or self.drop_rate
                or self.delays
                or self.delay_rate
            ),
            timeout=self.timeout,
            on_timeout=self.on_timeout,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.node_crashes:
            parts.append(f"crashes={self.node_crashes}")
        if self.link_cuts:
            parts.append(f"cuts={self.link_cuts}")
        if self.downtimes:
            spans = sum(len(v) for v in self.downtimes.values())
            parts.append(f"downtimes={spans} over {len(self.downtimes)} ranks")
        if self.drop_rate or self.drops:
            parts.append(f"drop_rate={self.drop_rate}, drops={len(self.drops)}")
        if self.delay_rate or self.delays:
            parts.append(f"delay_rate={self.delay_rate}")
        if self.timeout is not None:
            parts.append(f"timeout={self.timeout}/{self.on_timeout}")
        return f"FaultPlan({', '.join(parts) or 'empty'})"


@dataclass(frozen=True)
class StaticFaultView:
    """The timing-resolved, randomness-free projection of a fault plan.

    Static analysis (``repro.analysis.static.faults``) reasons about the
    *structural* faults of a plan: node crashes and link cuts, each pinned
    to a deterministic cycle.  Drops and delays are draws against the
    engine's actual cycle counter, so their effect depends on runtime
    timing; they are summarized by the single :attr:`transient` flag and
    the analyzer refuses plans where it is set (the caller must decide how
    to over-approximate them).  Downtime intervals (:attr:`downs`) are
    likewise *dynamic*: lockstep stalls make schedule steps drift away
    from engine cycles, so a step-indexed analysis of a bounded outage
    window would be unsound — the analyzer refuses those too, and the
    campaign triage (``repro.simulator.campaign``) over-approximates a
    downtime as a crash at its start cycle instead.

    ``crashes`` / ``cuts`` / ``downs`` are sorted tuples so a view is
    hashable and two plans with the same structural faults compare equal.
    """

    crashes: tuple[tuple[int, int], ...] = ()
    cuts: tuple[tuple[tuple[int, int], int], ...] = ()
    downs: tuple[tuple[int, int, int], ...] = ()
    transient: bool = False
    timeout: int | None = None
    on_timeout: str = "raise"

    @classmethod
    def from_faults(
        cls,
        *,
        nodes: Iterable[int] = (),
        links: Iterable[tuple[int, int]] = (),
    ) -> "StaticFaultView":
        """Build a view of *permanent* faults (present from cycle 1).

        Accepts the node/link collections of a
        :class:`repro.topology.faults.FaultSet` directly.
        """
        return cls(
            crashes=tuple(sorted((int(r), 1) for r in set(nodes))),
            cuts=tuple(sorted((_norm_link(e), 1) for e in set(links))),
        )

    def node_dead(self, rank: int, step: int) -> bool:
        """Whether ``rank`` is unavailable during lockstep ``step`` (1-based)."""
        for r, cycle in self.crashes:
            if r == rank and cycle <= step:
                return True
        for r, start, end in self.downs:
            if r == rank and start <= step < end:
                return True
        return False

    def link_down(self, u: int, v: int, step: int) -> bool:
        """Whether the undirected link ``{u, v}`` is unusable at ``step``."""
        key = (min(u, v), max(u, v))
        for link, cycle in self.cuts:
            if link == key and cycle <= step:
                return True
        return self.node_dead(u, step) or self.node_dead(v, step)

    @property
    def is_empty(self) -> bool:
        return (
            not self.crashes
            and not self.cuts
            and not self.downs
            and not self.transient
        )
