"""Message record kept for tracing and debugging."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """One delivered message.

    Attributes
    ----------
    src, dst:
        Endpoint ranks; the link ``{src, dst}`` exists in the topology.
    payload:
        The carried value (a key, a partial sum, or a packed tuple).
    cycle:
        Clock cycle (1-based) in which delivery happened.
    """

    src: int
    dst: int
    payload: Any
    cycle: int
