"""Columnar node state: the whole network as one numpy structured array.

# repro: columnar-hot-path

The engine backend keeps one Python generator per rank and the vectorized
backend one numpy array per algorithm variable, but both still materialize
per-step *gather permutations* (``arr[partner]``) — an O(nodes) index
array plus an O(nodes) gathered copy per dimension-step.  The columnar
backend removes even that: per-rank state lives in named columns of a
single structured array, and a dimension-``b`` exchange is expressed as a
**reshape view** that splits a column into its bit-``b`` = 0/1 halves, so
a whole step executes as one in-place batched combine with no index
arrays and no gathered copies.

The trick is pure address arithmetic: the nodes with bit ``b`` clear and
the nodes with bit ``b`` set alternate in runs of ``2**b``, so reshaping
a length-``L`` column to ``(L >> (b+1), 2, 1 << b)`` puts the two sides
of every dimension-``b`` edge on axis 1.  Numpy guarantees such a
length-factoring reshape of a strided 1-D view is itself a view, and
:func:`bit_pair_views` verifies that with ``np.shares_memory`` so a
silent copy (which would discard the in-place update) is impossible.

Cost accounting is unchanged: columnar executors call the same
:meth:`~repro.simulator.counters.CostCounters.record_comm_step` /
:meth:`~repro.simulator.counters.CostCounters.record_comp_step` hooks as
the vectorized backend, so counters (and any timeline attached via
:meth:`~repro.simulator.counters.CostCounters.attach_timeline`) agree
with the engine exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ColumnarState",
    "bit_pair_views",
    "dir_bit_views",
    "swap_halves",
]


class ColumnarState:
    """Per-rank algorithm state as columns of one structured array.

    Parameters
    ----------
    num_nodes:
        Network size (one record per rank).
    fields:
        Sequence of ``(name, dtype)`` or ``(name, dtype, shape)`` numpy
        structured-dtype field specs — one field per algorithm variable
        (``t``, ``s``, a scratch column, a ``(B,)`` block, ...).

    Columns come back as **views** into the shared record buffer
    (:meth:`column`), so in-place updates through
    :func:`bit_pair_views` / :func:`dir_bit_views` mutate the state
    directly; total memory is O(num_nodes * record size) for the whole
    run.  Object-dtype fields are supported (non-numeric payloads such as
    CONCAT tuples), at Python-loop combine speed.
    """

    def __init__(self, num_nodes: int, fields):
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        specs = [tuple(f) for f in fields]
        if not specs:
            raise ValueError("ColumnarState needs at least one field")
        self.num_nodes = num_nodes
        self._data = np.zeros(num_nodes, dtype=specs)

    @property
    def dtype(self) -> np.dtype:
        """The structured record dtype."""
        return self._data.dtype

    @property
    def nbytes(self) -> int:
        """Total bytes held by the record buffer."""
        return self._data.nbytes

    def column(self, name: str) -> np.ndarray:
        """A named column as a strided view (never a copy)."""
        return self._data[name]

    def columns(self) -> tuple[str, ...]:
        """The declared field names, in order."""
        return tuple(self._data.dtype.names)


def _reshaped_view(col: np.ndarray, shape: tuple) -> np.ndarray:
    """Reshape ``col`` asserting the result still aliases its memory."""
    view = col.reshape(shape)
    if not np.shares_memory(view, col):
        raise ValueError(
            f"reshape to {shape} copied a columnar view (dtype {col.dtype}, "
            f"strides {col.strides}); in-place steps would be lost"
        )
    return view


def bit_pair_views(col: np.ndarray, b: int) -> tuple[np.ndarray, np.ndarray]:
    """Split a column into the two sides of every dimension-``b`` edge.

    ``col`` has length ``L`` along axis 0 (a power of two > ``2**b``);
    trailing axes (e.g. a block axis) ride along.  Returns ``(lo, hi)``
    views — ``lo[r]`` is the node with bit ``b`` clear of pair ``r``,
    ``hi[r]`` its bit-``b`` partner — so one batched in-place combine on
    the pair realizes the whole exchange round with no gathers.
    """
    length = col.shape[0]
    if b < 0 or (1 << (b + 1)) > length:
        raise ValueError(
            f"bit {b} out of range for a length-{length} column"
        )
    view = _reshaped_view(
        col, (length >> (b + 1), 2, 1 << b) + col.shape[1:]
    )
    return view[:, 0], view[:, 1]


def dir_bit_views(
    col: np.ndarray, dir_bit: int, dim: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a column by direction bit ``dir_bit`` *and* pair bit ``dim``.

    Requires ``dir_bit > dim`` (which every generated compare-exchange
    schedule satisfies: merge direction bits sit above the dimensions
    they direct).  Returns ``(asc_lo, asc_hi, desc_lo, desc_hi)`` views:
    the ascending (bit ``dir_bit`` clear) and descending (set) pair
    sides, each split as in :func:`bit_pair_views`.
    """
    length = col.shape[0]
    if dir_bit <= dim:
        raise ValueError(
            f"dir_bit {dir_bit} must exceed the pair dimension {dim}"
        )
    if (1 << (dir_bit + 1)) > length:
        raise ValueError(
            f"direction bit {dir_bit} out of range for a length-{length} column"
        )
    view = _reshaped_view(
        col,
        (
            length >> (dir_bit + 1),
            2,
            1 << (dir_bit - dim - 1),
            2,
            1 << dim,
        )
        + col.shape[1:],
    )
    return view[:, 0, :, 0], view[:, 0, :, 1], view[:, 1, :, 0], view[:, 1, :, 1]


def swap_halves(src: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Exchange over the class (top) address bit: ``out = src[cross]``.

    When the cross-edge dimension is the *top* address bit (as in the
    standard :class:`~repro.topology.dualcube.DualCube` presentation),
    every node's cross partner lives at the mirrored position in the
    other array half, so the full cross-edge exchange is two half-copies
    — no partner index array at all.
    """
    if src.shape != out.shape:
        raise ValueError(
            f"shape mismatch: src {src.shape} vs out {out.shape}"
        )
    half = src.shape[0] >> 1
    if half << 1 != src.shape[0]:
        raise ValueError(
            f"column length must be even, got {src.shape[0]}"
        )
    out[:half] = src[half:]
    out[half:] = src[:half]
    return out
