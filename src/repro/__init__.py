"""repro — Prefix Computation and Sorting in Dual-Cube (Li, Peng, Chu, ICPP 2008).

A complete implementation of the paper's system: the dual-cube
interconnection network in both presentations, a cycle-accurate
synchronous message-passing simulator enforcing the paper's 1-port
bidirectional-channel model, the two headline algorithms (`D_prefix`,
`D_sort`) with hypercube baselines, collective communication, large-input
extensions, and application kernels.

Quickstart::

    import numpy as np
    from repro import DualCube, RecursiveDualCube, dual_prefix, dual_sort, ADD

    dc = DualCube(3)                       # 32 nodes, 3 links each
    prefix = dual_prefix(dc, np.arange(1, 33), ADD)

    rdc = RecursiveDualCube(3)
    sorted_keys = dual_sort(rdc, np.random.permutation(32))

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced figures/theorems.
"""

from repro.topology import (
    DualCube,
    Hypercube,
    RecursiveDualCube,
    CubeConnectedCycles,
    WrappedButterfly,
    DeBruijn,
    ShuffleExchange,
    standard_to_recursive,
    recursive_to_standard,
)
from repro.core import (
    AssocOp,
    ADD,
    MUL,
    MIN,
    MAX,
    CONCAT,
    MATMUL2,
    dual_prefix,
    dual_sort,
    cube_prefix,
    cube_prefix_vec,
    hypercube_bitonic_sort,
    dual_sort_schedule,
    bitonic_schedule,
    is_bitonic,
    large_prefix,
    large_sort,
    sequential_prefix,
)
from repro.simulator import CostCounters, TraceRecorder, run_spmd
from repro.routing import route, broadcast_engine, allreduce_vec, allreduce_engine

__version__ = "1.0.0"

__all__ = [
    "DualCube",
    "Hypercube",
    "RecursiveDualCube",
    "CubeConnectedCycles",
    "WrappedButterfly",
    "DeBruijn",
    "ShuffleExchange",
    "standard_to_recursive",
    "recursive_to_standard",
    "AssocOp",
    "ADD",
    "MUL",
    "MIN",
    "MAX",
    "CONCAT",
    "MATMUL2",
    "dual_prefix",
    "dual_sort",
    "cube_prefix",
    "cube_prefix_vec",
    "hypercube_bitonic_sort",
    "dual_sort_schedule",
    "bitonic_schedule",
    "is_bitonic",
    "large_prefix",
    "large_sort",
    "sequential_prefix",
    "CostCounters",
    "TraceRecorder",
    "run_spmd",
    "route",
    "broadcast_engine",
    "allreduce_vec",
    "allreduce_engine",
    "__version__",
]
