"""Scan (prefix) applications on the dual-cube.

Classic data-parallel kernels from Hillis & Steele's "Data parallel
algorithms" (the paper's reference for prefix computation), each riding on
`D_prefix`: stream compaction, enumeration, first-order linear recurrences
(via a non-commutative matrix scan), and segmented sums.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.dual_prefix import dual_prefix_vec
from repro.core.ops import ADD, MATMUL2, AssocOp
from repro.simulator import CostCounters
from repro.topology.dualcube import DualCube

__all__ = [
    "enumerate_true",
    "stream_compact",
    "linear_recurrence",
    "segmented_sum",
]


def enumerate_true(
    dc: DualCube,
    flags,
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """For each position, how many flags are set strictly before it.

    The diminished +-scan of the 0/1 indicator — the building block of
    compaction, load balancing, and radix partitioning.
    """
    ind = np.asarray(flags, dtype=np.int64)
    if set(np.unique(ind)) - {0, 1}:
        raise ValueError("flags must be 0/1 valued")
    return dual_prefix_vec(dc, ind, ADD, inclusive=False, counters=counters)


def stream_compact(
    dc: DualCube,
    values,
    predicate: Callable,
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Keep the elements satisfying ``predicate``, preserving order.

    One diminished +-scan computes every survivor's output slot; the
    "write" is the trivial permutation step that a real machine would do
    with one routed message per survivor.
    """
    vals = np.asarray(values)
    if vals.shape != (dc.num_nodes,):
        raise ValueError(
            f"expected {dc.num_nodes} values for {dc.name}, got shape {vals.shape}"
        )
    flags = np.fromiter(
        (1 if predicate(v) else 0 for v in vals), dtype=np.int64, count=len(vals)
    )
    slots = enumerate_true(dc, flags, counters=counters)
    kept = flags == 1
    out = np.empty(int(flags.sum()), dtype=vals.dtype)
    out[slots[kept]] = vals[kept]
    return out


def linear_recurrence(
    dc: DualCube,
    a: Sequence[float],
    b: Sequence[float],
    x0: float,
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Solve x_{k+1} = a_k x_k + b_k for k = 0..N-1 with one matrix scan.

    Each step is the affine map M_k = [[a_k, b_k], [0, 1]]; since
    x_k = M_{k-1} ··· M_0 · (x0, 1)ᵀ needs the *later* matrix composed on
    the left, the scan runs under the order-flipped (still associative)
    matrix product — a genuinely non-commutative use of `D_prefix`.

    Returns x_1..x_N.
    """
    av = np.asarray(a, dtype=np.float64)
    bv = np.asarray(b, dtype=np.float64)
    if av.shape != (dc.num_nodes,) or bv.shape != (dc.num_nodes,):
        raise ValueError(
            f"expected {dc.num_nodes} coefficients for {dc.name}, got "
            f"{av.shape} and {bv.shape}"
        )
    flipped = AssocOp(
        "matmul2-flipped",
        lambda p, q: MATMUL2.fn(q, p),
        MATMUL2.identity,
        commutative=False,
    )
    mats = np.empty(dc.num_nodes, dtype=object)
    mats[:] = [(float(ai), float(bi), 0.0, 1.0) for ai, bi in zip(av, bv)]
    prods = dual_prefix_vec(dc, mats, flipped, counters=counters)
    out = np.empty(dc.num_nodes, dtype=np.float64)
    for k, (m00, m01, _m10, _m11) in enumerate(prods):
        out[k] = m00 * x0 + m01
    return out


def segmented_sum(
    dc: DualCube,
    values,
    segment_heads,
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Inclusive sums restarting at every flagged segment head.

    Uses the classic segmented-scan operator — pairs ``(flag, value)``
    with a non-commutative combine that resets across heads — on
    `D_prefix` unchanged, demonstrating that any associative operator
    drops in.
    """
    vals = np.asarray(values, dtype=np.float64)
    heads = np.asarray(segment_heads, dtype=np.int64)
    if vals.shape != (dc.num_nodes,) or heads.shape != (dc.num_nodes,):
        raise ValueError(
            f"expected {dc.num_nodes} values/flags for {dc.name}, got "
            f"{vals.shape} and {heads.shape}"
        )
    if len(heads) and heads[0] != 1:
        raise ValueError("the first element must start a segment (flag 1)")

    def seg_fn(p, q):
        pf, pv = p
        qf, qv = q
        if qf:
            return (1, qv)
        return (pf or qf, pv + qv)

    seg_op = AssocOp("segmented-sum", seg_fn, (0, 0.0), commutative=False)
    pairs = np.empty(dc.num_nodes, dtype=object)
    pairs[:] = [(int(f), float(v)) for f, v in zip(heads, vals)]
    scanned = dual_prefix_vec(dc, pairs, seg_op, counters=counters)
    return np.array([v for _f, v in scanned], dtype=np.float64)
