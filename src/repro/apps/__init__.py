"""Application algorithms built on the dual-cube library.

The paper's future-work item 3 ("investigate and develop more application
algorithms in dual-cube using the proposed techniques"): classic
data-parallel kernels (Hillis & Steele) expressed through `D_prefix` and
`D_sort`.
"""

from repro.apps.scan_apps import (
    stream_compact,
    enumerate_true,
    linear_recurrence,
    segmented_sum,
)
from repro.apps.order_stats import parallel_quantiles, parallel_top_k, parallel_histogram
from repro.apps.linear_algebra import RowBlockMatrix, distributed_matvec, power_iteration
from repro.apps.sample_sort import SampleSortStats, sample_sort

__all__ = [
    "stream_compact",
    "enumerate_true",
    "linear_recurrence",
    "segmented_sum",
    "parallel_quantiles",
    "parallel_top_k",
    "parallel_histogram",
    "RowBlockMatrix",
    "distributed_matvec",
    "power_iteration",
    "SampleSortStats",
    "sample_sort",
]
