"""Order statistics on the dual-cube via `D_sort`.

Once keys are sorted across the network (node address order = rank
order), quantiles, top-k extraction and equi-width histograms are
address arithmetic — the textbook payoff of a sorting network.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.dual_sort import dual_sort_vec
from repro.simulator import CostCounters
from repro.topology.recursive import RecursiveDualCube

__all__ = ["parallel_quantiles", "parallel_top_k", "parallel_histogram"]


def _sorted_keys(
    rdc: RecursiveDualCube, keys, counters: CostCounters | None
) -> np.ndarray:
    arr = np.asarray(keys)
    if arr.shape != (rdc.num_nodes,):
        raise ValueError(
            f"expected {rdc.num_nodes} keys for {rdc.name}, got shape {arr.shape}"
        )
    return dual_sort_vec(rdc, arr, counters=counters)


def parallel_quantiles(
    rdc: RecursiveDualCube,
    keys,
    qs: Sequence[float],
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Empirical quantiles of the distributed keys (nearest-rank method)."""
    s = _sorted_keys(rdc, keys, counters)
    n = len(s)
    out = []
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        rank = min(n - 1, max(0, int(np.ceil(q * n)) - 1))
        out.append(s[rank])
    return np.asarray(out)


def parallel_top_k(
    rdc: RecursiveDualCube,
    keys,
    k: int,
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """The k largest keys in descending order (read off the sorted tail)."""
    if not 1 <= k <= rdc.num_nodes:
        raise ValueError(f"k must be in 1..{rdc.num_nodes}, got {k}")
    s = _sorted_keys(rdc, keys, counters)
    return s[-k:][::-1].copy()


def parallel_histogram(
    rdc: RecursiveDualCube,
    keys,
    bin_edges,
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Histogram counts over ``bin_edges`` (len+1 edges -> len counts).

    Sorting makes each bin a contiguous address range; counts come from
    binary-searching the edges in the sorted sequence.
    """
    edges = np.asarray(bin_edges, dtype=np.float64)
    if edges.ndim != 1 or len(edges) < 2 or (np.diff(edges) <= 0).any():
        raise ValueError("bin_edges must be a strictly increasing 1-D array")
    s = _sorted_keys(rdc, keys, counters)
    positions = np.searchsorted(s, edges, side="left")
    return np.diff(positions)
