"""Sample sort on the dual-cube (a data-dependent contrast to D_sort).

`D_sort` and its blocked variant are *oblivious*: the communication
schedule is fixed, so every key crosses many links.  Sample sort is the
classic data-dependent alternative for N = B·V keys:

1. every node sorts locally and contributes regular samples;
2. the samples are allgathered (2n steps) and V-1 splitters chosen;
3. every key is routed *once* to its destination bucket along a shortest
   path (the data-dependent, irregular phase);
4. buckets sort locally.

The honest cost comparison with the blocked bitonic sort is total
**key-link traversals**: sample sort pays one shortest path per key
(average ~ the mean distance of D_n) versus the bitonic schedule's many
rounds — experiment E16 regenerates the gap, along with sample sort's
weakness (bucket imbalance) that the oblivious algorithm never has.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.dualcube_routing import route_length
from repro.topology.dualcube import DualCube

__all__ = ["SampleSortStats", "sample_sort"]


@dataclass(frozen=True)
class SampleSortStats:
    """Cost and balance metrics of one sample-sort run."""

    num_keys: int
    num_buckets: int
    key_link_traversals: int
    sample_traffic: int
    max_bucket: int
    min_bucket: int
    avg_key_distance: float

    @property
    def imbalance(self) -> float:
        """Largest bucket over the perfectly balanced size (1.0 = flat)."""
        return self.max_bucket / (self.num_keys / self.num_buckets)


def sample_sort(
    dc: DualCube,
    keys,
    *,
    oversample: int = 4,
) -> tuple[np.ndarray, SampleSortStats]:
    """Sort N = B * V numeric keys; returns (sorted array, stats).

    Keys are blocked by node in address order (node u holds
    ``keys[uB:(u+1)B]``); the output is globally sorted.  ``oversample``
    controls splitter quality (samples per node).
    """
    arr = np.asarray(keys)
    v = dc.num_nodes
    if arr.ndim != 1 or len(arr) == 0 or len(arr) % v:
        raise ValueError(
            f"key count {arr.shape} must be a positive multiple of {v}"
        )
    if oversample < 1:
        raise ValueError(f"oversample must be >= 1, got {oversample}")
    b = len(arr) // v
    blocks = np.sort(arr.reshape(v, b), axis=1)

    # Phase 1-2: regular samples, allgather, splitters.
    per_node = min(oversample, b)
    sample_cols = np.linspace(0, b - 1, per_node).astype(int)
    samples = np.sort(blocks[:, sample_cols].reshape(-1))
    # V-1 splitters at regular ranks of the gathered sample.
    ranks = (np.arange(1, v) * len(samples)) // v
    splitters = samples[ranks]
    sample_traffic = v * per_node * 2 * dc.n  # allgather rounds upper bound

    # Phase 3: each key's destination bucket; route each block's keys.
    dest = np.searchsorted(splitters, arr.reshape(v, b), side="right")
    traversals = 0
    total_distance = 0
    bucket_sizes = np.zeros(v, dtype=np.int64)
    for u in range(v):
        uniq, counts = np.unique(dest[u], return_counts=True)
        for d, cnt in zip(uniq, counts):
            bucket_sizes[d] += cnt
            if d != u:
                hops = route_length(dc, u, int(d))
                traversals += hops * int(cnt)
                total_distance += hops * int(cnt)

    # Phase 4: bucket-local sort; concatenation is the global order.
    out = np.sort(arr)  # value-wise identical to bucket concatenation
    stats = SampleSortStats(
        num_keys=len(arr),
        num_buckets=v,
        key_link_traversals=traversals,
        sample_traffic=sample_traffic,
        max_bucket=int(bucket_sizes.max()),
        min_bucket=int(bucket_sizes.min()),
        avg_key_distance=total_distance / len(arr),
    )
    return out, stats
