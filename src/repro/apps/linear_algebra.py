"""Distributed dense linear algebra on the dual-cube.

The classic kernel stack on top of the collectives: a matrix distributed
by row blocks, matrix-vector products via allgather, and power iteration
via matvec + allreduce-normalization.  Costs are expressed in network
steps through the same counters as everything else:

* one matvec = one allgather (2n steps) + local dot products;
* one power-iteration step = matvec + one allreduce (2n steps) for the
  norm.

Numerically everything is NumPy; the communication pattern is what runs
"on" the network (payload/step accounting through
:class:`~repro.simulator.CostCounters` in vectorized form).
"""

from __future__ import annotations

import numpy as np

from repro.simulator import CostCounters
from repro.topology.dualcube import DualCube

__all__ = ["RowBlockMatrix", "distributed_matvec", "power_iteration"]


class RowBlockMatrix:
    """A dense V*V-row matrix distributed over a D_n by row blocks.

    Node ``u`` (in arranged/global order position) owns ``rows_per_node``
    consecutive rows.  The class only stores the layout and the local
    blocks; communication costs are charged when kernels run.
    """

    def __init__(self, dc: DualCube, matrix):
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] % dc.num_nodes:
            raise ValueError(
                f"matrix rows ({mat.shape}) must be a multiple of the "
                f"network size {dc.num_nodes}"
            )
        self.dc = dc
        self.rows_per_node = mat.shape[0] // dc.num_nodes
        self.num_cols = mat.shape[1]
        self.blocks = mat.reshape(
            dc.num_nodes, self.rows_per_node, mat.shape[1]
        ).copy()

    @property
    def shape(self) -> tuple[int, int]:
        """Global (rows, cols)."""
        return (self.dc.num_nodes * self.rows_per_node, self.num_cols)


def _charge_allgather(dc: DualCube, counters: CostCounters | None, items: int) -> None:
    """Charge the 2n-step doubling allgather moving ``items`` values."""
    if counters is None:
        return
    n = dc.n
    v = dc.num_nodes
    per_node = items // v if items >= v else 1
    # Doubling rounds: payload 1, 2, 4, ... blocks per message.
    carried = per_node
    for _ in range(2 * n):
        counters.record_comm_step(
            messages=v, payload_items=v * carried, max_payload=carried
        )
        carried = min(items, carried * 2)


def distributed_matvec(
    mat: RowBlockMatrix,
    x,
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """y = A @ x with A row-block distributed; x allgathered first.

    ``x`` is given in global order; returns the full y (row-block owners
    each produce their slice; concatenated here).
    """
    xv = np.asarray(x, dtype=np.float64)
    if xv.shape != (mat.num_cols,):
        raise ValueError(
            f"x must have length {mat.num_cols}, got {xv.shape}"
        )
    _charge_allgather(mat.dc, counters, mat.num_cols)
    if counters is not None:
        counters.record_comp_step(ops_each=mat.rows_per_node * mat.num_cols)
    # Each node: local block @ full x.
    slices = np.einsum("urc,c->ur", mat.blocks, xv)
    return slices.reshape(-1)


def power_iteration(
    mat: RowBlockMatrix,
    *,
    iterations: int = 50,
    tol: float = 1e-10,
    seed: int = 0,
    counters: CostCounters | None = None,
) -> tuple[float, np.ndarray, int]:
    """Dominant eigenpair by power iteration with distributed matvecs.

    Returns ``(eigenvalue, eigenvector, iterations_used)``.  Each
    iteration charges one matvec allgather plus one allreduce (the norm).
    """
    rows, cols = mat.shape
    if rows != cols:
        raise ValueError(f"power iteration needs a square matrix, got {mat.shape}")
    rng = np.random.default_rng(seed)
    x = rng.normal(size=cols)
    x /= np.linalg.norm(x)
    lam = 0.0
    used = 0
    for k in range(1, iterations + 1):
        used = k
        y = distributed_matvec(mat, x, counters=counters)
        if counters is not None:
            # Norm allreduce: 2n rounds, one partial sum per message.
            for _ in range(2 * mat.dc.n):
                counters.record_comm_step(messages=mat.dc.num_nodes)
            counters.record_comp_step(ops_each=mat.rows_per_node)
        norm = np.linalg.norm(y)
        if norm == 0.0:
            return 0.0, y, used
        lam_new = float(x @ y)  # Rayleigh quotient with the previous x
        x = y / norm
        if abs(lam_new - lam) < tol:
            lam = lam_new
            break
        lam = lam_new
    return lam, x, used
