"""The dual-cube D_n, standard presentation (paper Section 2).

D_n is an undirected graph on ``{0,1}^(2n-1)``; nodes ``u`` and ``v`` are
adjacent iff they differ in exactly one bit position ``i`` and:

* ``i = 2n-2`` — the leftmost (*class*) bit: always an edge, the
  **cross-edge**;
* ``0 <= i <= n-2`` — requires ``u[2n-2] = 0`` (class-0 intra-cluster edge);
* ``n-1 <= i <= 2n-3`` — requires ``u[2n-2] = 1`` (class-1 intra-cluster
  edge).

The address splits into three fields: part I is the rightmost ``n-1`` bits,
part II the next ``n-1`` bits, part III the class bit.  For class 0, part I
is the node ID and part II the cluster ID; for class 1 the roles swap.
Each class has ``2^(n-1)`` clusters, each cluster is an (n-1)-cube, every
node has exactly one cross-edge, and there are no edges between clusters of
the same class.  Degree = n, |V| = 2^(2n-1), diameter = 2n (n >= 2).
"""

from __future__ import annotations

import numpy as np

from repro._bits import (
    bit,
    bit_v,
    extract_field,
    extract_field_v,
    flip_bit,
    flip_bit_v,
    hamming,
    mask,
)
from repro.topology.base import DimensionedTopology

__all__ = ["DualCube"]


class DualCube(DimensionedTopology):
    """The n-connected dual-cube D_n in the standard presentation.

    Parameters
    ----------
    n:
        Connectivity: every node has ``n`` links (``n-1`` inside its
        cluster plus one cross-edge).  The network has ``2**(2n-1)``
        nodes.  ``n = 1`` is the degenerate D_1 = K_2 whose clusters are
        single nodes.

    Notes
    -----
    The paper's evaluation sizes are n = 2 (Fig. 1, 8 nodes) and n = 3
    (Fig. 2-6, 32 nodes); "practical very large machines" correspond to
    n = 8 (32768-node clusters would give 2^15 nodes per cluster — the
    paper's 'tens of thousands of processors with up to eight connections').
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"dual-cube connectivity must be >= 1, got {n}")
        self._n = n
        self._m = n - 1  # cluster (hyper)cube dimension and field width
        self._bits = 2 * n - 1
        self._class_bit = self._bits - 1

    # -- basic shape --------------------------------------------------------

    @property
    def n(self) -> int:
        """Connectivity (links per node)."""
        return self._n

    @property
    def cluster_dim(self) -> int:
        """Dimension of each cluster hypercube: n - 1."""
        return self._m

    @property
    def name(self) -> str:
        return f"D_{self._n}"

    @property
    def num_nodes(self) -> int:
        return 1 << self._bits

    @property
    def num_dimensions(self) -> int:
        return self._bits

    @property
    def class_dimension(self) -> int:
        """The cross-edge dimension: 2n-2 (the leftmost bit)."""
        return self._class_bit

    @property
    def clusters_per_class(self) -> int:
        """2^(n-1) clusters in each class."""
        return 1 << self._m

    @property
    def nodes_per_cluster(self) -> int:
        """2^(n-1) nodes in each cluster."""
        return 1 << self._m

    # -- address fields -----------------------------------------------------

    def class_of(self, u: int) -> int:
        """Class indicator of ``u`` (the leftmost address bit)."""
        self.check_node(u)
        return bit(u, self._class_bit)

    def node_id(self, u: int) -> int:
        """Node ID of ``u`` within its cluster (part I for class 0, part II for class 1)."""
        self.check_node(u)
        if bit(u, self._class_bit) == 0:
            return extract_field(u, 0, self._m)
        return extract_field(u, self._m, self._m)

    def cluster_id(self, u: int) -> int:
        """Cluster ID of ``u`` within its class."""
        self.check_node(u)
        if bit(u, self._class_bit) == 0:
            return extract_field(u, self._m, self._m)
        return extract_field(u, 0, self._m)

    def cluster_key(self, u: int) -> tuple[int, int]:
        """``(class, cluster_id)`` — equal iff two nodes share a cluster (C_u)."""
        return (self.class_of(u), self.cluster_id(u))

    def compose(self, cls: int, cluster: int, node: int) -> int:
        """Build a node address from ``(class, cluster ID, node ID)``."""
        if cls not in (0, 1):
            raise ValueError(f"class must be 0 or 1, got {cls}")
        m = self._m
        if not 0 <= cluster < (1 << m):
            raise ValueError(f"cluster ID {cluster} out of range [0, {1 << m})")
        if not 0 <= node < (1 << m):
            raise ValueError(f"node ID {node} out of range [0, {1 << m})")
        if cls == 0:
            return (cluster << m) | node
        return (1 << self._class_bit) | (node << m) | cluster

    def cluster_members(self, cls: int, cluster: int) -> tuple[int, ...]:
        """All node addresses of cluster ``cluster`` of class ``cls``, by node ID."""
        return tuple(
            self.compose(cls, cluster, j) for j in range(self.nodes_per_cluster)
        )

    def cross_partner(self, u: int) -> int:
        """The unique cross-edge neighbor of ``u`` (class bit flipped)."""
        self.check_node(u)
        return flip_bit(u, self._class_bit)

    def intra_dimensions(self, u: int) -> range:
        """Address-bit dimensions along which ``u`` has intra-cluster edges."""
        self.check_node(u)
        if bit(u, self._class_bit) == 0:
            return range(0, self._m)
        return range(self._m, 2 * self._m)

    def local_to_global_dim(self, u: int, local_dim: int) -> int:
        """Map a cluster-local cube dimension (0..n-2) to the address bit it flips."""
        self.check_node(u)
        if not 0 <= local_dim < self._m:
            raise ValueError(
                f"local dimension {local_dim} out of range [0, {self._m})"
            )
        if bit(u, self._class_bit) == 0:
            return local_dim
        return self._m + local_dim

    # -- adjacency ----------------------------------------------------------

    def neighbors(self, u: int) -> tuple[int, ...]:
        self.check_node(u)
        nbrs = [flip_bit(u, d) for d in self.intra_dimensions(u)]
        nbrs.append(self.cross_partner(u))
        return tuple(nbrs)

    def has_edge(self, u: int, v: int) -> bool:
        self.check_node(u)
        self.check_node(v)
        diff = u ^ v
        if diff == 0 or (diff & (diff - 1)) != 0:
            return False  # not exactly one differing bit
        i = diff.bit_length() - 1
        if i == self._class_bit:
            return True
        if i <= self._m - 1:
            return bit(u, self._class_bit) == 0
        return bit(u, self._class_bit) == 1

    def has_dimension_link(self, u: int, d: int) -> bool:
        self.check_node(u)
        self.check_dimension(d)
        if d == self._class_bit:
            return True
        if d <= self._m - 1:
            return bit(u, self._class_bit) == 0
        return bit(u, self._class_bit) == 1

    # -- metrics ------------------------------------------------------------

    def distance(self, u: int, v: int) -> int:
        """Closed-form shortest-path distance (paper Section 1).

        Hamming distance when ``u`` and ``v`` are in one cluster or in
        clusters of distinct classes; Hamming distance + 2 when in two
        distinct clusters of the same class (one hop to enter the other
        class and one to leave it).
        """
        self.check_node(u)
        self.check_node(v)
        if u == v:
            return 0
        h = hamming(u, v)
        if self.class_of(u) != self.class_of(v):
            return h
        if self.cluster_id(u) == self.cluster_id(v):
            return h
        return h + 2

    def diameter(self) -> int:
        """Closed-form diameter: 2n for n >= 2, 1 for the degenerate D_1."""
        if self._n == 1:
            return 1
        return 2 * self._n

    def edge_count(self) -> int:
        """Closed-form |E| = n * 2^(2n-2) (degree n, 2^(2n-1) nodes)."""
        return self._n << (2 * self._n - 2)

    # -- vectorized field views (fast backend) ------------------------------

    def all_nodes_array(self) -> np.ndarray:
        """All node indices as an int64 array."""
        return np.arange(self.num_nodes, dtype=np.int64)

    def class_of_v(self, u) -> np.ndarray:
        """Vectorized :meth:`class_of`."""
        return bit_v(u, self._class_bit)

    def node_id_v(self, u) -> np.ndarray:
        """Vectorized :meth:`node_id`."""
        u = np.asarray(u)
        cls = bit_v(u, self._class_bit)
        lo = extract_field_v(u, 0, self._m)
        hi = extract_field_v(u, self._m, self._m)
        return np.where(cls == 0, lo, hi)

    def cluster_id_v(self, u) -> np.ndarray:
        """Vectorized :meth:`cluster_id`."""
        u = np.asarray(u)
        cls = bit_v(u, self._class_bit)
        lo = extract_field_v(u, 0, self._m)
        hi = extract_field_v(u, self._m, self._m)
        return np.where(cls == 0, hi, lo)

    def node_mask(self) -> int:
        """Mask of the low (n-1)-bit field."""
        return mask(self._m)

    # -- arithmetic neighbor queries (columnar backend) ----------------------
    #
    # The columnar backend never materializes edge lists; these helpers
    # answer every neighbor/cross-edge question it has with pure address
    # arithmetic on whole index arrays (or, cheaper still, with slices).

    def cross_partner_v(self, u=None) -> np.ndarray:
        """Vectorized :meth:`cross_partner` (defaults to all nodes)."""
        if u is None:
            u = self.all_nodes_array()
        return flip_bit_v(u, self._class_bit)

    def intra_partner_v(self, u, local_dim: int) -> np.ndarray:
        """Partner of each node along cluster-local cube dimension ``local_dim``.

        Vectorized :meth:`local_to_global_dim` + flip: class-0 nodes flip
        address bit ``local_dim``, class-1 nodes bit ``n-1+local_dim``.
        """
        if not 0 <= local_dim < self._m:
            raise ValueError(
                f"local dimension {local_dim} out of range [0, {self._m})"
            )
        u = np.asarray(u, dtype=np.int64)
        step = np.where(
            bit_v(u, self._class_bit) == 1, 1 << self._m, 1
        ).astype(np.int64)
        return u ^ (step << local_dim)

    def local_round_bit(self, cls: int, local_dim: int) -> int:
        """Address bit that cluster-local dimension ``local_dim`` flips in class ``cls``.

        Class-uniform companion of :meth:`local_to_global_dim`: every node
        of one class flips the same address bit at ascend round
        ``local_dim``, which is what lets the columnar backend run a whole
        class's round as one reshape-view combine.
        """
        if cls not in (0, 1):
            raise ValueError(f"class must be 0 or 1, got {cls}")
        if not 0 <= local_dim < self._m:
            raise ValueError(
                f"local dimension {local_dim} out of range [0, {self._m})"
            )
        return local_dim if cls == 0 else self._m + local_dim

    def class_slices(self) -> tuple[slice, slice]:
        """``(class-0, class-1)`` node-index slices.

        The class bit is the *top* address bit, so each class occupies a
        contiguous half of the index space — the property that turns the
        cross-edge exchange into two half-array copies
        (:func:`~repro.simulator.columnar.swap_halves`).
        """
        half = self.num_nodes >> 1
        return slice(0, half), slice(half, self.num_nodes)
