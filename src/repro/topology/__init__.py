"""Interconnection-network topologies.

The dual-cube (the paper's network) plus the hypercube it derives from and
the bounded-degree rivals the paper's introduction compares against.

All topologies share the :class:`~repro.topology.base.Topology` interface:
nodes are integers ``0 .. num_nodes-1``, adjacency is exposed both as
``neighbors(u)`` and, where the network is dimensioned, as per-dimension
partner maps used by the synchronous algorithms.
"""

from repro.topology.base import Topology, DimensionedTopology
from repro.topology.hypercube import Hypercube
from repro.topology.dualcube import DualCube
from repro.topology.recursive import RecursiveDualCube, standard_to_recursive, recursive_to_standard
from repro.topology.ccc import CubeConnectedCycles
from repro.topology.butterfly import WrappedButterfly
from repro.topology.debruijn import DeBruijn
from repro.topology.shuffle_exchange import ShuffleExchange
from repro.topology.metacube import Metacube
from repro.topology.metrics import (
    TopologyMetrics,
    diameter,
    average_distance,
    bfs_distances,
    degree_stats,
    edge_count,
    cost_metric,
    measure,
)
from repro.topology.faults import FaultSet, FaultyTopology
from repro.topology.hamiltonian import hamiltonian_cycle, ring_embedding_dilation
from repro.topology.nx_adapter import to_networkx

__all__ = [
    "Topology",
    "DimensionedTopology",
    "Hypercube",
    "DualCube",
    "RecursiveDualCube",
    "standard_to_recursive",
    "recursive_to_standard",
    "CubeConnectedCycles",
    "WrappedButterfly",
    "DeBruijn",
    "ShuffleExchange",
    "Metacube",
    "TopologyMetrics",
    "diameter",
    "average_distance",
    "bfs_distances",
    "degree_stats",
    "edge_count",
    "cost_metric",
    "measure",
    "FaultSet",
    "FaultyTopology",
    "hamiltonian_cycle",
    "ring_embedding_dilation",
    "to_networkx",
]
