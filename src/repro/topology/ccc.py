"""Cube-connected cycles CCC_q (Preparata & Vuillemin).

One of the bounded-degree hypercube derivatives the paper's introduction
positions the dual-cube against.  CCC_q replaces each node of Q_q by a
q-cycle; node ``(x, p)`` (cube address ``x``, cycle position ``p``) has two
cycle neighbors and one cube neighbor ``(x ^ 2^p, p)``.  Degree 3,
``q * 2^q`` nodes.
"""

from __future__ import annotations

from repro._bits import flip_bit
from repro.topology.base import Topology

__all__ = ["CubeConnectedCycles"]


class CubeConnectedCycles(Topology):
    """CCC_q on ``q * 2**q`` nodes, degree 3.

    Node ``(x, p)`` is encoded as ``x * q + p``.  Requires ``q >= 3`` so
    the cycle edges are distinct (for ``q < 3`` the cycle degenerates).
    """

    def __init__(self, q: int):
        if q < 3:
            raise ValueError(f"CCC requires q >= 3, got {q}")
        self._q = q

    @property
    def q(self) -> int:
        """Underlying cube dimension (= cycle length)."""
        return self._q

    @property
    def name(self) -> str:
        return f"CCC_{self._q}"

    @property
    def num_nodes(self) -> int:
        return self._q << self._q

    def encode(self, x: int, p: int) -> int:
        """Node index of cube address ``x``, cycle position ``p``."""
        if not 0 <= x < (1 << self._q):
            raise ValueError(f"cube address {x} out of range")
        if not 0 <= p < self._q:
            raise ValueError(f"cycle position {p} out of range")
        return x * self._q + p

    def decode(self, u: int) -> tuple[int, int]:
        """Inverse of :meth:`encode`: ``(cube address, cycle position)``."""
        self.check_node(u)
        return (u // self._q, u % self._q)

    def neighbors(self, u: int) -> tuple[int, ...]:
        self.check_node(u)
        x, p = u // self._q, u % self._q
        q = self._q
        return (
            self.encode(x, (p + 1) % q),
            self.encode(x, (p - 1) % q),
            self.encode(flip_bit(x, p), p),
        )
