"""The binary hypercube Q_q.

Q_q has 2^q nodes; nodes are adjacent iff their addresses differ in exactly
one bit.  The hypercube plays two roles in this reproduction: it is the
baseline network the paper compares against (same node count, 2n-1 links
per node vs the dual-cube's n), and each dual-cube *cluster* is a
(n-1)-dimensional hypercube, so the cluster-technique algorithms run
`Cube_prefix` on instances of this class.
"""

from __future__ import annotations

import numpy as np

from repro._bits import flip_bit, flip_bit_v, hamming
from repro.topology.base import DimensionedTopology

__all__ = ["Hypercube"]


class Hypercube(DimensionedTopology):
    """The q-dimensional binary hypercube.

    Parameters
    ----------
    q:
        Number of dimensions; the network has ``2**q`` nodes, each of
        degree ``q``.  ``q = 0`` is the single-node cube (useful as the
        cluster of the degenerate dual-cube D_1).
    """

    def __init__(self, q: int):
        if q < 0:
            raise ValueError(f"hypercube dimension must be >= 0, got {q}")
        self._q = q

    @property
    def q(self) -> int:
        """Cube dimension."""
        return self._q

    @property
    def name(self) -> str:
        return f"Q_{self._q}"

    @property
    def num_nodes(self) -> int:
        return 1 << self._q

    @property
    def num_dimensions(self) -> int:
        return self._q

    def neighbors(self, u: int) -> tuple[int, ...]:
        self.check_node(u)
        return tuple(flip_bit(u, d) for d in range(self._q))

    def has_edge(self, u: int, v: int) -> bool:
        self.check_node(u)
        self.check_node(v)
        return hamming(u, v) == 1

    def has_dimension_link(self, u: int, d: int) -> bool:
        # Every dimension is a direct link in the hypercube.
        self.check_node(u)
        self.check_dimension(d)
        return True

    def distance(self, u: int, v: int) -> int:
        """Shortest-path distance = Hamming distance."""
        self.check_node(u)
        self.check_node(v)
        return hamming(u, v)

    def diameter(self) -> int:
        """Closed-form diameter: q."""
        return self._q

    # -- arithmetic neighbor queries (columnar backend) ----------------------

    def all_nodes_array(self) -> np.ndarray:
        """All node indices as an int64 array."""
        return np.arange(self.num_nodes, dtype=np.int64)

    def partner_v(self, u, d: int) -> np.ndarray:
        """Vectorized :meth:`~repro.topology.base.DimensionedTopology.partner`:
        ``u ^ (1 << d)`` over a whole index array.

        Every hypercube dimension is a direct link, so this answers all
        neighbor queries the columnar backend makes — no edge lists.
        """
        self.check_dimension(d)
        return flip_bit_v(np.asarray(u, dtype=np.int64), d)
