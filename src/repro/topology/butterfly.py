"""Wrapped butterfly BF_q.

Degree-4 bounded-degree hypercube derivative (paper introduction).  Nodes
are ``(level, row)`` with ``level`` in ``0..q-1`` and ``row`` in
``0..2^q-1``; level ``l`` connects to level ``(l+1) mod q`` by a *straight*
edge (same row) and a *cross* edge (row with bit ``l`` flipped).
``q * 2^q`` nodes, degree 4 (for ``q >= 3``).
"""

from __future__ import annotations

from repro._bits import flip_bit
from repro.topology.base import Topology

__all__ = ["WrappedButterfly"]


class WrappedButterfly(Topology):
    """The q-dimensional wrapped butterfly on ``q * 2**q`` nodes.

    Node ``(level l, row r)`` is encoded as ``r * q + l``.  Requires
    ``q >= 3`` so the forward and backward inter-level edges are distinct.
    """

    def __init__(self, q: int):
        if q < 3:
            raise ValueError(f"wrapped butterfly requires q >= 3, got {q}")
        self._q = q

    @property
    def q(self) -> int:
        """Number of levels (= row address width)."""
        return self._q

    @property
    def name(self) -> str:
        return f"BF_{self._q}"

    @property
    def num_nodes(self) -> int:
        return self._q << self._q

    def encode(self, level: int, row: int) -> int:
        """Node index of ``(level, row)``."""
        if not 0 <= level < self._q:
            raise ValueError(f"level {level} out of range")
        if not 0 <= row < (1 << self._q):
            raise ValueError(f"row {row} out of range")
        return row * self._q + level

    def decode(self, u: int) -> tuple[int, int]:
        """Inverse of :meth:`encode`: ``(level, row)``."""
        self.check_node(u)
        return (u % self._q, u // self._q)

    def neighbors(self, u: int) -> tuple[int, ...]:
        self.check_node(u)
        level, row = u % self._q, u // self._q
        q = self._q
        nxt = (level + 1) % q
        prv = (level - 1) % q
        return (
            self.encode(nxt, row),  # straight forward
            self.encode(nxt, flip_bit(row, level)),  # cross forward
            self.encode(prv, row),  # straight backward
            self.encode(prv, flip_bit(row, prv)),  # cross backward
        )
