"""Fault models over topologies.

The dual-cube literature the paper builds on (and its reference on
fault-tolerant hypercube communication) studies behaviour under node and
link failures.  :class:`FaultyTopology` is a live subgraph view of any
topology with a set of failed nodes/links removed; the routing layer and
the fault-tolerance experiments run against it.

D_n has node connectivity n (its degree), so it tolerates any n-1 node
faults without disconnecting the healthy part — verified empirically in
the tests and benchmark F1.
"""

from __future__ import annotations

from typing import Iterable

from repro.topology.base import Topology

__all__ = ["FaultSet", "FaultyTopology"]


class FaultSet:
    """A set of failed nodes and failed (undirected) links."""

    def __init__(
        self,
        nodes: Iterable[int] = (),
        links: Iterable[tuple[int, int]] = (),
    ):
        self.nodes = frozenset(nodes)
        normed = set()
        for a, b in links:
            if a == b:
                raise ValueError(
                    f"faulty link ({a}, {b}) is a self-loop; links must join "
                    f"two distinct nodes"
                )
            normed.add((min(a, b), max(a, b)))
        self.links = frozenset(normed)

    @property
    def num_faults(self) -> int:
        """Total failed components."""
        return len(self.nodes) + len(self.links)

    def node_ok(self, u: int) -> bool:
        """Whether node ``u`` is healthy."""
        return u not in self.nodes

    def link_ok(self, u: int, v: int) -> bool:
        """Whether the link ``{u, v}`` and both endpoints are healthy."""
        return (
            u not in self.nodes
            and v not in self.nodes
            and (min(u, v), max(u, v)) not in self.links
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSet(nodes={sorted(self.nodes)}, links={sorted(self.links)})"

    @classmethod
    def random(cls, topo: Topology, num_nodes: int, num_links: int, rng) -> "FaultSet":
        """Sample distinct faulty nodes and links uniformly from ``topo``."""
        if num_nodes > topo.num_nodes:
            raise ValueError(
                f"cannot fail {num_nodes} of {topo.num_nodes} nodes"
            )
        nodes = rng.choice(topo.num_nodes, size=num_nodes, replace=False)
        edges = list(topo.edges())
        if num_links > len(edges):
            raise ValueError(f"cannot fail {num_links} of {len(edges)} links")
        picks = rng.choice(len(edges), size=num_links, replace=False)
        return cls(nodes=(int(x) for x in nodes), links=(edges[i] for i in picks))


class FaultyTopology(Topology):
    """Live subgraph view: ``base`` minus a :class:`FaultSet`.

    Faulty nodes keep their indices (so addresses stay meaningful) but
    have no edges; querying a faulty node's neighbors returns ``()``.
    """

    def __init__(self, base: Topology, faults: FaultSet):
        self.base = base
        self.faults = faults
        for u in faults.nodes:
            base.check_node(u)
        for a, b in faults.links:
            if not base.has_edge(a, b):
                raise ValueError(f"faulty link ({a}, {b}) is not an edge of {base.name}")
        if len(faults.nodes) >= base.num_nodes:
            raise ValueError(
                f"fault set kills all {base.num_nodes} nodes of {base.name}; "
                f"a faulty topology needs at least one healthy node"
            )

    @property
    def name(self) -> str:
        return f"{self.base.name}-faulty({self.faults.num_faults})"

    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes

    def healthy_nodes(self) -> list[int]:
        """Indices of non-faulty nodes."""
        return [u for u in self.nodes() if self.faults.node_ok(u)]

    def neighbors(self, u: int) -> tuple[int, ...]:
        self.check_node(u)
        if not self.faults.node_ok(u):
            return ()
        return tuple(
            v for v in self.base.neighbors(u) if self.faults.link_ok(u, v)
        )

    def has_edge(self, u: int, v: int) -> bool:
        self.check_node(u)
        self.check_node(v)
        return self.base.has_edge(u, v) and self.faults.link_ok(u, v)
