"""Shuffle-exchange network SE_q as an undirected topology.

Degree-(<=3) bounded-degree network from the paper's introduction.  Node
``u`` has an *exchange* edge to ``u ^ 1`` and *shuffle* edges to its
left/right cyclic bit rotations; self-loop rotations (at 0 and 2^q - 1)
are dropped.
"""

from __future__ import annotations

from repro.topology.base import Topology

__all__ = ["ShuffleExchange"]


class ShuffleExchange(Topology):
    """Undirected shuffle-exchange network on ``2**q`` nodes.

    Parameters
    ----------
    q:
        Address width; ``q >= 2``.
    """

    def __init__(self, q: int):
        if q < 2:
            raise ValueError(f"shuffle-exchange requires q >= 2, got {q}")
        self._q = q

    @property
    def q(self) -> int:
        """Address width."""
        return self._q

    @property
    def name(self) -> str:
        return f"SE_{self._q}"

    @property
    def num_nodes(self) -> int:
        return 1 << self._q

    def rotate_left(self, u: int) -> int:
        """Cyclic left rotation of the q-bit address (the shuffle map)."""
        self.check_node(u)
        q = self._q
        return ((u << 1) | (u >> (q - 1))) & (self.num_nodes - 1)

    def rotate_right(self, u: int) -> int:
        """Cyclic right rotation (the unshuffle map)."""
        self.check_node(u)
        q = self._q
        return (u >> 1) | ((u & 1) << (q - 1))

    def neighbors(self, u: int) -> tuple[int, ...]:
        self.check_node(u)
        out = [u ^ 1]
        for v in (self.rotate_left(u), self.rotate_right(u)):
            if v != u and v not in out:
                out.append(v)
        return tuple(out)
