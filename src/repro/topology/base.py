"""Topology interfaces.

A :class:`Topology` is a finite undirected graph on nodes ``0..num_nodes-1``.
A :class:`DimensionedTopology` additionally organizes (some of) its edges
into *dimensions*: at dimension ``d`` every node has at most one partner,
and a synchronous algorithm step "exchange along dimension d" is then a
perfect (partial) matching.  The hypercube and both dual-cube presentations
are dimensioned; the comparison topologies (CCC, butterfly, …) are plain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

__all__ = ["Topology", "DimensionedTopology"]


class Topology(ABC):
    """Finite undirected graph with integer nodes ``0..num_nodes-1``."""

    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Number of nodes."""

    @abstractmethod
    def neighbors(self, u: int) -> tuple[int, ...]:
        """All neighbors of node ``u``."""

    @property
    def name(self) -> str:
        """Human-readable name used in tables and traces."""
        return type(self).__name__

    def nodes(self) -> range:
        """Iterate node indices."""
        return range(self.num_nodes)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        self.check_node(u)
        self.check_node(v)
        return v in self.neighbors(u)

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        return len(self.neighbors(u))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each, as ``(min, max)`` pairs."""
        for u in self.nodes():
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    def check_node(self, u: int) -> None:
        """Raise ``ValueError`` if ``u`` is not a valid node index."""
        if not 0 <= u < self.num_nodes:
            raise ValueError(
                f"node {u} out of range for {self.name} with "
                f"{self.num_nodes} nodes"
            )

    def validate(self) -> None:
        """Check structural invariants: symmetry, no self-loops, no repeats.

        Intended for tests and for guarding hand-rolled adjacency code; cost
        is O(V * deg^2), fine for the sizes this library simulates.
        """
        for u in self.nodes():
            nbrs = self.neighbors(u)
            if len(set(nbrs)) != len(nbrs):
                raise AssertionError(f"{self.name}: repeated neighbor at {u}")
            for v in nbrs:
                if v == u:
                    raise AssertionError(f"{self.name}: self-loop at {u}")
                self.check_node(v)
                if u not in self.neighbors(v):
                    raise AssertionError(
                        f"{self.name}: asymmetric edge {u}->{v}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(num_nodes={self.num_nodes})"


class DimensionedTopology(Topology):
    """Topology whose edges are organized into exchange dimensions.

    ``partner(u, d)`` is the unique node ``u`` talks to in a synchronous
    step along dimension ``d``; it equals ``u ^ (1 << d)`` in every cube-like
    network here, but the *edge* ``(u, partner)`` may or may not exist in
    the topology — ``has_dimension_link`` distinguishes a one-hop exchange
    from one that must be routed (the dual-cube 3-hop emulation).
    """

    @property
    @abstractmethod
    def num_dimensions(self) -> int:
        """Number of exchange dimensions (address width)."""

    def dimensions(self) -> range:
        """Iterate dimension indices low-to-high."""
        return range(self.num_dimensions)

    def partner(self, u: int, d: int) -> int:
        """The dimension-``d`` exchange partner of ``u`` (XOR convention)."""
        self.check_node(u)
        self.check_dimension(d)
        return u ^ (1 << d)

    def has_dimension_link(self, u: int, d: int) -> bool:
        """Whether ``u`` has a *direct edge* to its dimension-``d`` partner."""
        return self.has_edge(u, self.partner(u, d))

    def check_dimension(self, d: int) -> None:
        """Raise ``ValueError`` if ``d`` is not a valid dimension."""
        if not 0 <= d < self.num_dimensions:
            raise ValueError(
                f"dimension {d} out of range for {self.name} with "
                f"{self.num_dimensions} dimensions"
            )
