"""Hamiltonian cycles in the dual-cube (ring embedding, dilation 1).

A hypercube-like property the paper's Section 1 alludes to ("dual-cube
holds more hypercube-like properties than others"): D_n is Hamiltonian
for n >= 2, so a ring of 2^(2n-1) processes embeds with dilation 1.

Constructive induction over the recursive presentation:

* base D_2 is the 8-cycle (explicit);
* D_n = four D_{n-1} copies + the dimension-(2n-2) links (class-0 nodes)
  and dimension-(2n-3) links (class-1 nodes).  Any Hamiltonian cycle of
  D_{n-1} must contain an intra-cluster edge of *each* class (a node's
  single cross-edge cannot supply both of its cycle edges), so:

  1. lift one D_{n-1} cycle into all four copies;
  2. merge copies (00, 10) and (01, 11) by exchanging a class-0 edge for
     its two dimension-(2n-2) lifts;
  3. merge the two halves by exchanging a class-1 edge for its two
     dimension-(2n-3) lifts.

Every step preserves Hamiltonicity, giving an O(V) construction verified
edge-by-edge in the tests.
"""

from __future__ import annotations

from repro.topology.recursive import RecursiveDualCube

__all__ = ["hamiltonian_cycle", "ring_embedding_dilation"]

# Explicit Hamiltonian cycle of D_2 (the 8-cycle) in the recursive
# presentation; contains class-0 (dim-2) edges (2,6), (4,0) and class-1
# (dim-1) edges (1,3), (7,5).
_D2_CYCLE = (0, 1, 3, 2, 6, 7, 5, 4)


def _cycle_adjacency(cycle: tuple[int, ...]) -> dict[int, list[int]]:
    adj: dict[int, list[int]] = {u: [] for u in cycle}
    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        adj[a].append(b)
        adj[b].append(a)
    return adj


def _walk(adj: dict[int, list[int]]) -> tuple[int, ...]:
    """Reconstruct the node sequence of a 2-regular adjacency map."""
    start = next(iter(adj))
    seq = [start]
    prev = None
    cur = start
    while True:
        a, b = adj[cur]
        nxt = b if a == prev else a
        if nxt == start:
            break
        seq.append(nxt)
        prev, cur = cur, nxt
    if len(seq) != len(adj):
        raise AssertionError("adjacency map is not a single cycle")
    return tuple(seq)


def _find_intra_edge(cycle: tuple[int, ...], cls: int) -> tuple[int, int]:
    """An adjacent pair of the cycle lying in class ``cls`` (intra edge)."""
    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        if a & 1 == cls and b & 1 == cls:
            return (a, b)
    raise AssertionError(
        f"Hamiltonian cycle unexpectedly lacks a class-{cls} intra edge"
    )


def _merge(
    adj: dict[int, list[int]],
    edge_a: tuple[int, int],
    edge_b: tuple[int, int],
) -> None:
    """Exchange two parallel edges for the two rungs joining them.

    ``edge_a = (u, v)`` and ``edge_b = (u', v')`` lie in different cycles
    stored in the same adjacency map; after removal, rungs (u, u') and
    (v, v') join the cycles into one.
    """
    (u, v), (u2, v2) = edge_a, edge_b
    adj[u].remove(v)
    adj[v].remove(u)
    adj[u2].remove(v2)
    adj[v2].remove(u2)
    adj[u].append(u2)
    adj[u2].append(u)
    adj[v].append(v2)
    adj[v2].append(v)


def hamiltonian_cycle(n: int) -> tuple[int, ...]:
    """A Hamiltonian cycle of D_n (recursive presentation), n >= 2.

    Returns the node sequence; consecutive entries (cyclically) are
    adjacent in :class:`~repro.topology.recursive.RecursiveDualCube`.
    """
    if n < 2:
        raise ValueError(
            f"D_n is Hamiltonian for n >= 2 (D_1 is K_2); got n = {n}"
        )
    if n == 2:
        return _D2_CYCLE

    sub = hamiltonian_cycle(n - 1)
    size = 1 << (2 * n - 3)
    top_even = 2 * n - 2  # class-0 joining dimension (flips copy bit 1)
    top_odd = 2 * n - 3  # class-1 joining dimension (flips copy bit 0)

    e0 = _find_intra_edge(sub, 0)
    e1 = _find_intra_edge(sub, 1)

    # Lift the sub-cycle into the four contiguous copies.
    adj: dict[int, list[int]] = {}
    for copy in range(4):
        base = copy * size
        for u, nbrs in _cycle_adjacency(sub).items():
            adj[base + u] = [base + w for w in nbrs]

    def lifted(edge, copy):
        return (copy * size + edge[0], copy * size + edge[1])

    # Merge along the class-0 dimension: copies (00, 10) and (01, 11).
    _merge(adj, lifted(e0, 0b00), lifted(e0, 0b10))
    _merge(adj, lifted(e0, 0b01), lifted(e0, 0b11))
    # Merge the halves along the class-1 dimension: copies (00, 01).
    _merge(adj, lifted(e1, 0b00), lifted(e1, 0b01))
    return _walk(adj)


def ring_embedding_dilation(rdc: RecursiveDualCube, mapping) -> int:
    """Worst-case dilation of a ring-to-network embedding.

    ``mapping[k]`` is the node hosting ring position ``k``; dilation is
    the maximum network distance between consecutive ring positions.  The
    Hamiltonian embedding achieves 1.
    """
    order = list(mapping)
    if sorted(order) != list(rdc.nodes()):
        raise ValueError("mapping must be a permutation of the nodes")
    worst = 0
    for a, b in zip(order, order[1:] + order[:1]):
        worst = max(worst, rdc.distance(a, b))
    return worst
