"""The recursive presentation of the dual-cube (paper Section 4).

The recursive presentation relabels D_n so that:

* bit 0 of the address is the class indicator;
* class-0 clusters span the **even** dimensions ``{2, 4, ..., 2n-2}``;
* class-1 clusters span the **odd** dimensions ``{1, 3, ..., 2n-3}``;
* dimension 0 is the cross-edge.

A node has a *direct link* along dimension ``j`` iff ``j = 0``, or ``j`` is
even and the node is class 0, or ``j`` is odd and the node is class 1 — the
exact condition in the paper's Algorithm 3.  A compare-exchange pair at an
unsupported dimension is emulated by the 3-hop path
``u -> u^1 -> (u^1)^(1<<j) -> u^(1<<j)`` (cross, intra, cross).

The presentation makes the recursive construction explicit:
``D_1 = K_2`` and D_n is four copies of D_{n-1} selected by the top two
address bits ``(a_{2n-2}, a_{2n-3})``, plus the dimension-(2n-2) links
(completing the class-0 cubes) and the dimension-(2n-3) links (class-1).

:func:`standard_to_recursive` / :func:`recursive_to_standard` give the
explicit graph isomorphism to :class:`~repro.topology.dualcube.DualCube`:
writing a standard address as (class c, middle field A, low field B), the
recursive address places B on the even dimensions, A on the odd dimensions,
and c at bit 0 — for *both* classes, which is what makes the map
class-uniform and edge-preserving.
"""

from __future__ import annotations

from repro._bits import bit, deinterleave, flip_bit, interleave
from repro.topology.base import DimensionedTopology
from repro.topology.dualcube import DualCube

__all__ = [
    "RecursiveDualCube",
    "standard_to_recursive",
    "recursive_to_standard",
]


class RecursiveDualCube(DimensionedTopology):
    """D_n under the recursive presentation.

    Isomorphic to :class:`~repro.topology.dualcube.DualCube` with the same
    ``n`` (see :func:`standard_to_recursive`); used by the sorting
    algorithm, whose compare-exchange schedule is naturally expressed in
    these coordinates.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"dual-cube connectivity must be >= 1, got {n}")
        self._n = n
        self._bits = 2 * n - 1

    @property
    def n(self) -> int:
        """Connectivity (links per node)."""
        return self._n

    @property
    def name(self) -> str:
        return f"RD_{self._n}"

    @property
    def num_nodes(self) -> int:
        return 1 << self._bits

    @property
    def num_dimensions(self) -> int:
        return self._bits

    # -- structure ----------------------------------------------------------

    def class_of(self, u: int) -> int:
        """Class indicator: bit 0 of the recursive address."""
        self.check_node(u)
        return u & 1

    def cluster_dimensions(self, u: int) -> range:
        """Dimensions along which ``u`` has intra-cluster (direct) links."""
        self.check_node(u)
        if u & 1 == 0:
            return range(2, self._bits, 2)  # even dims 2..2n-2
        return range(1, self._bits - 1, 2)  # odd dims 1..2n-3

    def has_dimension_link(self, u: int, d: int) -> bool:
        self.check_node(u)
        self.check_dimension(d)
        if d == 0:
            return True
        if d % 2 == 0:
            return u & 1 == 0
        return u & 1 == 1

    def neighbors(self, u: int) -> tuple[int, ...]:
        self.check_node(u)
        nbrs = [flip_bit(u, 0)]
        nbrs.extend(flip_bit(u, d) for d in self.cluster_dimensions(u))
        return tuple(nbrs)

    def has_edge(self, u: int, v: int) -> bool:
        self.check_node(u)
        self.check_node(v)
        diff = u ^ v
        if diff == 0 or (diff & (diff - 1)) != 0:
            return False
        d = diff.bit_length() - 1
        return self.has_dimension_link(u, d)

    def emulation_path(self, u: int, d: int) -> tuple[int, ...]:
        """Hop-by-hop path realizing the dimension-``d`` exchange from ``u``.

        Returns ``(u, partner)`` when a direct link exists, and the 3-hop
        path ``(u, u^1, u^1^(1<<d), u^(1<<d))`` otherwise (paper Section 6:
        cross-edge, intra-cluster edge in the opposite class, cross-edge).
        """
        self.check_node(u)
        self.check_dimension(d)
        target = flip_bit(u, d)
        if self.has_dimension_link(u, d):
            return (u, target)
        v = flip_bit(u, 0)
        w = flip_bit(v, d)
        if flip_bit(w, 0) != target:
            raise ValueError(
                f"emulation path invariant violated for node {u}, "
                f"dimension {d}: relay {w} does not cross back to {target}"
            )
        return (u, v, w, target)

    def exchange_hops(self, u: int, d: int) -> int:
        """Number of hops the dimension-``d`` exchange takes from ``u`` (1 or 3)."""
        return 1 if self.has_dimension_link(u, d) else 3

    # -- recursive construction --------------------------------------------

    def subcube_index(self, u: int) -> int:
        """Which of the four D_{n-1} copies ``u`` lies in (top two bits)."""
        self.check_node(u)
        if self._n == 1:
            raise ValueError("D_1 is the recursion base; it has no sub-dual-cubes")
        return u >> (self._bits - 2)

    def subcube_members(self, i: int) -> range:
        """Node range of sub-dual-cube ``i`` (the copies are contiguous)."""
        if self._n == 1:
            raise ValueError("D_1 is the recursion base; it has no sub-dual-cubes")
        if not 0 <= i < 4:
            raise ValueError(f"sub-dual-cube index must be in 0..3, got {i}")
        size = 1 << (self._bits - 2)
        return range(i * size, (i + 1) * size)

    def sub_dual_cube(self) -> "RecursiveDualCube":
        """The D_{n-1} each of the four copies is isomorphic to."""
        if self._n == 1:
            raise ValueError("D_1 is the recursion base; it has no sub-dual-cubes")
        return RecursiveDualCube(self._n - 1)

    def joining_edges(self) -> list[tuple[int, int]]:
        """The edges the recursive step adds on top of the four D_{n-1}.

        These are exactly the dimension-(2n-2) links of class-0 nodes and
        the dimension-(2n-3) links of class-1 nodes (paper Fig. 4's bold
        lines and curves).
        """
        if self._n == 1:
            raise ValueError("D_1 is the recursion base; it has no joining edges")
        out = []
        top_even = self._bits - 1  # 2n-2
        top_odd = self._bits - 2  # 2n-3
        for u in self.nodes():
            for d in (top_even, top_odd):
                if self.has_dimension_link(u, d):
                    v = flip_bit(u, d)
                    if u < v:
                        out.append((u, v))
        return out

    # -- metrics ------------------------------------------------------------

    def distance(self, u: int, v: int) -> int:
        """Shortest-path distance, via the isomorphism to the standard form."""
        std = DualCube(self._n)
        return std.distance(
            recursive_to_standard(self._n, u), recursive_to_standard(self._n, v)
        )

    def diameter(self) -> int:
        """Closed-form diameter (same as the standard presentation)."""
        return DualCube(self._n).diameter()


def standard_to_recursive(n: int, u: int) -> int:
    """Map a standard-presentation address of D_n to its recursive address.

    Writing ``u = (c, A, B)`` with class bit ``c``, middle (n-1)-bit field
    ``A`` and low field ``B``, the recursive address has ``c`` at bit 0,
    ``A`` spread over the odd dimensions and ``B`` over the even ones.
    """
    m = n - 1
    c = bit(u, 2 * m)
    a = (u >> m) & ((1 << m) - 1)
    b = u & ((1 << m) - 1)
    # interleave(first, second, m): second -> even positions, first -> odd.
    return (interleave(b, a, m) << 1) | c


def recursive_to_standard(n: int, r: int) -> int:
    """Inverse of :func:`standard_to_recursive`."""
    m = n - 1
    c = r & 1
    b_field, a_field = deinterleave(r >> 1, m)
    # deinterleave returns (odd-position bits, even-position bits); the odd
    # positions carried B (the standard low field) and the even positions
    # carried A (the standard middle field).
    return (c << (2 * m)) | (a_field << m) | b_field
