"""Exact structural metrics for topologies (experiment E2).

The paper's comparative claims — dual-cube degree is about half the
same-size hypercube's, diameter is hypercube + 1, "tens of thousands of
processors with up to eight connections" — are regenerated here as exact
measurements: degree statistics, |E|, BFS diameter, average distance, and
the classical (degree x diameter) cost metric.

BFS is run through ``scipy.sparse.csgraph`` on a CSR adjacency matrix,
chunked over source nodes so memory stays O(chunk * V) (per the HPC guide:
vectorize the hot loop, stream over the rest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_array
from scipy.sparse.csgraph import dijkstra

from repro.topology.base import Topology

__all__ = [
    "TopologyMetrics",
    "adjacency_csr",
    "bfs_distances",
    "diameter",
    "average_distance",
    "degree_stats",
    "edge_count",
    "cost_metric",
    "measure",
]


def adjacency_csr(topo: Topology) -> csr_array:
    """Build the CSR adjacency matrix of ``topo`` (unit weights)."""
    indptr = [0]
    indices: list[int] = []
    for u in topo.nodes():
        nbrs = topo.neighbors(u)
        indices.extend(nbrs)
        indptr.append(len(indices))
    data = np.ones(len(indices), dtype=np.int8)
    n = topo.num_nodes
    return csr_array(
        (data, np.asarray(indices, dtype=np.int64), np.asarray(indptr, dtype=np.int64)),
        shape=(n, n),
    )


def bfs_distances(topo: Topology, sources) -> np.ndarray:
    """Unweighted shortest-path distances from ``sources`` to every node.

    Returns a float array of shape ``(len(sources), num_nodes)`` with
    ``inf`` for unreachable nodes.
    """
    adj = adjacency_csr(topo)
    src = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    return dijkstra(adj, directed=False, unweighted=True, indices=src)


def _sweep(topo: Topology, chunk: int = 512) -> tuple[int, float]:
    """All-pairs BFS sweep returning (diameter, average distance).

    Average distance is over ordered pairs of *distinct* nodes.  Raises if
    the graph is disconnected.

    A single-node topology has no distinct pairs: its diameter is 0 and
    the average distance is 0.0 by convention (the ``n * (n - 1)``
    denominator would otherwise divide by zero).
    """
    adj = adjacency_csr(topo)
    n = topo.num_nodes
    if n <= 1:
        return 0, 0.0
    ecc_max = 0
    total = 0.0
    for lo in range(0, n, chunk):
        idx = np.arange(lo, min(lo + chunk, n), dtype=np.int64)
        dist = dijkstra(adj, directed=False, unweighted=True, indices=idx)
        if np.isinf(dist).any():
            raise ValueError(f"{topo.name} is disconnected")
        ecc_max = max(ecc_max, int(dist.max()))
        total += float(dist.sum())
    return ecc_max, total / (n * (n - 1))


def diameter(topo: Topology) -> int:
    """Exact BFS diameter."""
    return _sweep(topo)[0]


def average_distance(topo: Topology) -> float:
    """Exact mean shortest-path distance over distinct ordered pairs."""
    return _sweep(topo)[1]


def degree_stats(topo: Topology) -> tuple[int, int, float]:
    """``(min degree, max degree, mean degree)``."""
    degs = [topo.degree(u) for u in topo.nodes()]
    return (min(degs), max(degs), sum(degs) / len(degs))


def edge_count(topo: Topology) -> int:
    """Number of undirected edges."""
    return sum(topo.degree(u) for u in topo.nodes()) // 2


def cost_metric(max_degree: int, diam: int) -> int:
    """The classical degree x diameter network cost figure."""
    return max_degree * diam


@dataclass(frozen=True)
class TopologyMetrics:
    """One measured row of the E2 comparison table."""

    name: str
    num_nodes: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    diameter: int
    average_distance: float

    @property
    def cost(self) -> int:
        """degree x diameter."""
        return cost_metric(self.max_degree, self.diameter)

    def row(self) -> tuple:
        """Tuple in table-column order."""
        return (
            self.name,
            self.num_nodes,
            self.num_edges,
            self.max_degree,
            self.diameter,
            round(self.average_distance, 3),
            self.cost,
        )


def measure(topo: Topology) -> TopologyMetrics:
    """Measure every metric of ``topo`` exactly (BFS over all sources)."""
    diam, avg = _sweep(topo)
    dmin, dmax, dmean = degree_stats(topo)
    return TopologyMetrics(
        name=topo.name,
        num_nodes=topo.num_nodes,
        num_edges=edge_count(topo),
        min_degree=dmin,
        max_degree=dmax,
        mean_degree=dmean,
        diameter=diam,
        average_distance=avg,
    )
