"""networkx interoperability.

Exports any :class:`~repro.topology.base.Topology` as a
``networkx.Graph`` so downstream users can apply the whole networkx
toolbox (drawing, isomorphism checks, spectral analysis).  The library's
own algorithms never go through networkx — adjacency stays in the compact
integer form — but tests use this adapter to cross-validate structure.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.base import Topology

__all__ = ["to_networkx"]


def to_networkx(topo: Topology, annotate: bool = False) -> nx.Graph:
    """Convert ``topo`` to an undirected ``networkx.Graph``.

    Parameters
    ----------
    topo:
        Any topology.
    annotate:
        When true, nodes carry a ``label`` attribute with the binary
        address (width = bit length of ``num_nodes - 1``), handy for
        drawing the paper's Figs. 1-2.
    """
    g = nx.Graph(name=topo.name)
    g.add_nodes_from(topo.nodes())
    g.add_edges_from(topo.edges())
    if annotate:
        width = max(1, (topo.num_nodes - 1).bit_length())
        for u in topo.nodes():
            g.nodes[u]["label"] = format(u, f"0{width}b")
    return g
