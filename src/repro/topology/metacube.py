"""The metacube MC(k, m) — the authors' generalization of the dual-cube.

The paper's introduction positions the dual-cube inside the authors'
program of low-degree hypercube-like networks; the metacube (Li & Peng,
"Efficient communication in metacube") is the general member:

* a node address is a k-bit **class** ``c`` plus ``2^k`` fields of m bits;
* node ``u`` has m **cluster edges** flipping one bit of field ``c_u``
  (the field selected by its own class), and k **cross edges** flipping
  one class bit each;
* degree k + m, with 2^(k + m·2^k) nodes.

``MC(1, m)`` is exactly the dual-cube D_{m+1} — bit-for-bit, not merely
isomorphic — which the tests verify.  MC(2, m) networks reach enormous
sizes at degree m + 2 (MC(2, 3) has 16384 nodes at degree 5), the
scalability story the dual-cube begins.
"""

from __future__ import annotations

from repro._bits import extract_field, flip_bit
from repro.topology.base import DimensionedTopology

__all__ = ["Metacube"]


class Metacube(DimensionedTopology):
    """MC(k, m): 2^k classes of m-cube clusters.

    Parameters
    ----------
    k:
        Class-field width; ``2^k`` classes, ``k`` cross edges per node.
        ``k >= 1``.
    m:
        Cluster-cube dimension; ``m >= 1``.

    Notes
    -----
    Address layout (low to high): field 0, field 1, …, field ``2^k - 1``
    (m bits each), then the k class bits — matching the dual-cube layout
    at ``k = 1`` (part I, part II, class indicator).
    """

    def __init__(self, k: int, m: int):
        if k < 1:
            raise ValueError(f"metacube class width must be >= 1, got {k}")
        if m < 1:
            raise ValueError(f"metacube cluster dimension must be >= 1, got {m}")
        self._k = k
        self._m = m
        self._fields = 1 << k
        self._bits = k + m * self._fields
        if self._bits > 40:
            raise ValueError(
                f"MC({k}, {m}) would have 2^{self._bits} nodes; "
                "this simulator caps addresses at 40 bits"
            )

    @property
    def k(self) -> int:
        """Class-field width."""
        return self._k

    @property
    def m(self) -> int:
        """Cluster-cube dimension."""
        return self._m

    @property
    def name(self) -> str:
        return f"MC({self._k},{self._m})"

    @property
    def num_nodes(self) -> int:
        return 1 << self._bits

    @property
    def num_dimensions(self) -> int:
        return self._bits

    @property
    def degree_formula(self) -> int:
        """Closed-form degree: k + m."""
        return self._k + self._m

    # -- address fields -----------------------------------------------------

    def class_of(self, u: int) -> int:
        """The k-bit class of ``u``."""
        self.check_node(u)
        return extract_field(u, self._m * self._fields, self._k)

    def field(self, u: int, index: int) -> int:
        """Field ``index`` (0 .. 2^k - 1) of ``u``."""
        self.check_node(u)
        if not 0 <= index < self._fields:
            raise ValueError(
                f"field index {index} out of range [0, {self._fields})"
            )
        return extract_field(u, self._m * index, self._m)

    def node_id(self, u: int) -> int:
        """The active field (node ID within the cluster): field ``class_of(u)``."""
        return self.field(u, self.class_of(u))

    def cluster_key(self, u: int) -> tuple:
        """Hashable cluster identity: class plus every inactive field."""
        c = self.class_of(u)
        inactive = tuple(
            self.field(u, i) for i in range(self._fields) if i != c
        )
        return (c, inactive)

    # -- adjacency ------------------------------------------------------------

    def cluster_dimensions(self, u: int) -> range:
        """Address bits realizing ``u``'s intra-cluster (active-field) edges."""
        self.check_node(u)
        base = self._m * self.class_of(u)
        return range(base, base + self._m)

    def cross_dimensions(self) -> range:
        """Address bits of the k class bits (cross edges, same for all nodes)."""
        return range(self._m * self._fields, self._bits)

    def neighbors(self, u: int) -> tuple[int, ...]:
        self.check_node(u)
        nbrs = [flip_bit(u, d) for d in self.cluster_dimensions(u)]
        nbrs.extend(flip_bit(u, d) for d in self.cross_dimensions())
        return tuple(nbrs)

    def has_edge(self, u: int, v: int) -> bool:
        self.check_node(u)
        self.check_node(v)
        diff = u ^ v
        if diff == 0 or (diff & (diff - 1)) != 0:
            return False
        d = diff.bit_length() - 1
        return self.has_dimension_link(u, d)

    def has_dimension_link(self, u: int, d: int) -> bool:
        self.check_node(u)
        self.check_dimension(d)
        if d >= self._m * self._fields:
            return True  # class bits: cross edges for every node
        return d in self.cluster_dimensions(u)

    def edge_count(self) -> int:
        """Closed-form |E| = (k + m) * 2^(bits - 1)."""
        return (self._k + self._m) << (self._bits - 1)
