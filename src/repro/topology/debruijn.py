"""Binary de Bruijn graph dB(2, q) as an undirected topology.

Degree-(<=4) bounded-degree network from the paper's introduction.  The
directed de Bruijn graph has an arc ``u -> (2u + b) mod 2^q`` for
``b in {0, 1}``; the undirected version used for degree/diameter
comparisons connects each node to its left-shift successors and
right-shift predecessors, dropping self-loops (at 0 and 2^q - 1).
"""

from __future__ import annotations

from repro.topology.base import Topology

__all__ = ["DeBruijn"]


class DeBruijn(Topology):
    """Undirected binary de Bruijn graph on ``2**q`` nodes.

    Parameters
    ----------
    q:
        Address width; ``q >= 2``.
    """

    def __init__(self, q: int):
        if q < 2:
            raise ValueError(f"de Bruijn graph requires q >= 2, got {q}")
        self._q = q

    @property
    def q(self) -> int:
        """Address width."""
        return self._q

    @property
    def name(self) -> str:
        return f"dB_{self._q}"

    @property
    def num_nodes(self) -> int:
        return 1 << self._q

    def successors(self, u: int) -> tuple[int, int]:
        """Directed successors ``(2u) mod 2^q`` and ``(2u + 1) mod 2^q``."""
        self.check_node(u)
        m = self.num_nodes - 1
        return (((u << 1) & m), ((u << 1) & m) | 1)

    def predecessors(self, u: int) -> tuple[int, int]:
        """Directed predecessors ``u >> 1`` and ``(u >> 1) | 2^(q-1)``."""
        self.check_node(u)
        return (u >> 1, (u >> 1) | (1 << (self._q - 1)))

    def neighbors(self, u: int) -> tuple[int, ...]:
        self.check_node(u)
        out: list[int] = []
        for v in (*self.successors(u), *self.predecessors(u)):
            if v != u and v not in out:
                out.append(v)
        return tuple(out)
