"""Metrics registry with JSON-lines and Prometheus text exporters.

A :class:`MetricsRegistry` holds named :class:`Counter`, :class:`Gauge`
and :class:`Histogram` instruments, each optionally labelled, and renders
every sample in two interchange formats:

* **JSON lines** (:meth:`MetricsRegistry.to_jsonlines`) — one JSON object
  per sample, stable key order, suitable for appending to a run log;
* **Prometheus text format** (:meth:`MetricsRegistry.to_prometheus`) —
  ``# HELP``/``# TYPE`` headers, ``_total`` suffix on counters,
  cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count`` on
  histograms, per the text-format spec.

Both exports are deterministic (registration order, sorted label keys),
so golden tests can compare them byte for byte.

:func:`registry_from_counters` and :func:`registry_from_timeline` build a
registry from the simulator's existing instrumentation — the
:class:`~repro.simulator.counters.CostCounters` ledger and the
:class:`~repro.obs.timeline.TimelineRecorder` — so every quantity the
cost model measures is exportable without bespoke glue.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry_from_counters",
    "registry_from_timeline",
]


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(
            f"metric name must be non-empty [a-zA-Z0-9_:], got {name!r}"
        )
    if name[0].isdigit():
        raise ValueError(f"metric name must not start with a digit: {name!r}")
    return name


def _fmt_value(v: float) -> str:
    """Prometheus-style number: integers bare, floats as repr, and the
    spec's special values ``+Inf``/``-Inf``/``NaN`` (Python's ``str``
    would render ``inf``/``-inf``/``nan``, which parsers reject)."""
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if isinstance(v, float) and math.isnan(v):
        return "NaN"
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return str(v)


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        '{}="{}"'.format(
            k, str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


class _Metric:
    """Common shape: a name, help text, and string labels."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        self.name = _check_name(name)
        self.help = help
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge(_Metric):
    """Point-in-time value that can go up or down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by ``amount`` (may be negative)."""
        self.value += amount


class Histogram(_Metric):
    """Cumulative-bucket histogram of observed values."""

    kind = "histogram"

    DEFAULT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 250, 500, 1000)

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        buckets: Sequence[float] | None = None,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in (buckets or self.DEFAULT_BUCKETS))
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram buckets must be distinct and increasing, got {bounds}"
            )
        if bounds[-1] == math.inf:
            # The +Inf bucket is implicit (cumulative() always appends it
            # equal to _count); keeping an explicit one would emit the
            # le="+Inf" sample twice, which the text format forbids.
            bounds = bounds[:-1]
            if not bounds:
                raise ValueError(
                    "histogram needs at least one finite bucket bound"
                )
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)  # non-cumulative per bound
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.inf_count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at ``+Inf``."""
        out = []
        running = 0
        for bound, c in zip(self.bounds, self.bucket_counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + self.inf_count))
        return out


class MetricsRegistry:
    """Ordered collection of metric instruments with shared exporters.

    Instruments are created (or fetched, when the same name+labels was
    registered before) through :meth:`counter`, :meth:`gauge` and
    :meth:`histogram`; re-registering a name under a different instrument
    kind is an error.
    """

    def __init__(self):
        self._metrics: dict[tuple, _Metric] = {}
        self._kinds: dict[str, type] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs) -> _Metric:
        key = (name, tuple(sorted((labels or {}).items())))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"cannot re-register as {cls.kind}"
                )
            return existing
        # A metric *family* (one name) must have one kind across all label
        # sets — a same-name instrument of another kind would share the
        # family's single # TYPE header.
        other = self._kinds.get(name)
        if other is not None and other is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {other.kind} "
                f"(under different labels), cannot re-register as {cls.kind}"
            )
        metric = cls(name, help, labels, **kwargs)
        self._metrics[key] = metric
        self._kinds[name] = cls
        return metric

    def counter(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def metrics(self) -> Iterable[_Metric]:
        """All instruments in registration order."""
        return list(self._metrics.values())

    # -- exporters -------------------------------------------------------------

    def to_jsonlines(self) -> str:
        """One JSON object per instrument, newline-terminated."""
        lines = []
        for m in self.metrics():
            obj: dict = {"name": m.name, "type": m.kind}
            if m.labels:
                obj["labels"] = dict(sorted(m.labels.items()))
            if isinstance(m, Histogram):
                obj["buckets"] = {
                    _fmt_value(b): c for b, c in m.cumulative()
                }
                obj["sum"] = m.sum
                obj["count"] = m.count
            else:
                obj["value"] = m.value
            lines.append(json.dumps(obj, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_prometheus(self) -> str:
        """Prometheus exposition text format, newline-terminated.

        Samples are grouped by metric family (all label sets of one name
        contiguous under a single ``# HELP``/``# TYPE`` header, families
        in first-registration order) — the text format forbids
        interleaving one family's samples with another's.
        """
        families: dict[str, list[_Metric]] = {}
        for m in self.metrics():
            families.setdefault(m.name, []).append(m)
        out: list[str] = []
        for name, members in families.items():
            first = members[0]
            if first.help:
                out.append(f"# HELP {name} {first.help}")
            out.append(f"# TYPE {name} {first.kind}")
            for m in members:
                self._render_samples(m, out)
        return "\n".join(out) + ("\n" if out else "")

    def _render_samples(self, m: _Metric, out: list[str]) -> None:
        sample_name = f"{m.name}_total" if isinstance(m, Counter) else m.name
        if isinstance(m, Histogram):
            for bound, cum in m.cumulative():
                labels = dict(m.labels)
                labels["le"] = _fmt_value(bound)
                out.append(f"{m.name}_bucket{_fmt_labels(labels)} {cum}")
            out.append(
                f"{m.name}_sum{_fmt_labels(m.labels)} {_fmt_value(m.sum)}"
            )
            out.append(f"{m.name}_count{_fmt_labels(m.labels)} {m.count}")
        else:
            out.append(
                f"{sample_name}{_fmt_labels(m.labels)} {_fmt_value(m.value)}"
            )


# -- feeds from the existing instrumentation -----------------------------------

_COUNTER_FIELDS = (
    ("cycles", "repro_comm_steps", "Lockstep communication steps (cycles)"),
    ("active_cycles", "repro_active_cycles", "Cycles in which messages flew"),
    ("messages", "repro_messages", "Point-to-point messages delivered"),
    ("payload_items", "repro_payload_items", "Key-sized payload items carried"),
    ("messages_dropped", "repro_messages_dropped", "Messages lost to fault injection"),
    ("retries", "repro_retries", "Drop-forced request retries"),
    ("timeouts", "repro_timeouts", "Requests abandoned by the timeout"),
    ("node_crashes", "repro_node_crashes", "Nodes killed by the fault plan"),
)


def registry_from_counters(
    counters,
    *,
    registry: MetricsRegistry | None = None,
    labels: dict | None = None,
) -> MetricsRegistry:
    """Feed a :class:`~repro.simulator.counters.CostCounters` ledger.

    Every summary quantity becomes a counter/gauge; the per-node send and
    receive tallies become a histogram each (distribution over nodes), so
    load skew is visible without per-node series.
    """
    reg = registry if registry is not None else MetricsRegistry()
    for attr, name, help in _COUNTER_FIELDS:
        reg.counter(name, help, labels).inc(int(getattr(counters, attr)))
    reg.gauge(
        "repro_comp_steps",
        "Parallel computation steps (longest per-node chain)",
        labels,
    ).set(counters.comp_steps)
    reg.gauge(
        "repro_max_message_payload",
        "Largest payload carried by any single message",
        labels,
    ).set(counters.max_message_payload)
    sends = reg.histogram(
        "repro_node_sends",
        "Distribution of per-node send counts",
        labels,
        buckets=(0, 1, 2, 5, 10, 20, 50, 100, 1000),
    )
    recvs = reg.histogram(
        "repro_node_recvs",
        "Distribution of per-node receive counts",
        labels,
        buckets=(0, 1, 2, 5, 10, 20, 50, 100, 1000),
    )
    for v in counters.sends:
        sends.observe(int(v))
    for v in counters.recvs:
        recvs.observe(int(v))
    return reg


def registry_from_timeline(
    recorder,
    *,
    registry: MetricsRegistry | None = None,
    labels: dict | None = None,
) -> MetricsRegistry:
    """Feed a :class:`~repro.obs.timeline.TimelineRecorder`.

    Emits run-level gauges (cycles, links touched), per-fault-kind
    counters, and histograms of per-cycle message counts and per-link
    total loads — the timeline quantities the E11 congestion experiment
    reads off.
    """
    reg = registry if registry is not None else MetricsRegistry()
    aggs = recorder.cycle_aggregates()
    reg.gauge(
        "repro_timeline_cycles", "Cycles covered by the timeline", labels
    ).set(recorder.num_cycles)
    reg.counter(
        "repro_timeline_messages", "Messages recorded on the timeline", labels
    ).inc(recorder.total_messages)
    for kind, count in sorted(recorder.fault_counts().items()):
        fl = dict(labels or {})
        fl["kind"] = kind
        reg.counter(
            "repro_timeline_faults", "Fault events by kind", fl
        ).inc(count)
    per_cycle = reg.histogram(
        "repro_cycle_messages",
        "Distribution of messages per cycle",
        labels,
        buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128),
    )
    for agg in aggs:
        per_cycle.observe(agg.messages)
    link_hist = reg.histogram(
        "repro_link_load",
        "Distribution of total per-link message loads",
        labels,
        buckets=(1, 2, 4, 8, 16, 32, 64),
    )
    for load in recorder.link_loads().values():
        link_hist.observe(load)
    return reg
