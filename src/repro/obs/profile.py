"""Phase-span profiling hooks.

The step-count theorems talk about *phases* — the local prefix, the
network exchange, and the fold in the blocked algorithms; the recursive
sub-sort/half-merge/full-merge segments in `D_sort` — so wallclock
measurements are only comparable to the model when they split along the
same lines.  A :class:`PhaseProfiler` collects named wallclock spans with
negligible overhead (two ``perf_counter`` calls per span); algorithms
accept an optional profiler and wrap their phases in
:meth:`PhaseProfiler.span`, and the benchmark harness surfaces the
per-phase totals in its records.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["PhaseSpan", "PhaseProfiler", "NULL_PROFILER"]


@dataclass(frozen=True)
class PhaseSpan:
    """One completed phase: ``name`` ran for ``duration_s`` seconds.

    ``start_s`` is the ``perf_counter`` timestamp at entry (only offsets
    between spans of the same profiler are meaningful); ``meta`` carries
    free-form annotations (step index, dimension, ...).
    """

    name: str
    start_s: float
    duration_s: float
    meta: dict = field(default_factory=dict)


class PhaseProfiler:
    """Ordered collection of named wallclock spans.

    Spans may nest and repeat; :meth:`totals` sums durations per name,
    which is how a per-:class:`~repro.core.dual_sort.ScheduleStep` profile
    folds into one number per schedule phase.
    """

    def __init__(self):
        self.spans: list[PhaseSpan] = []

    @contextmanager
    def span(self, name: str, **meta):
        """Time the enclosed block as one :class:`PhaseSpan`."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.spans.append(
                PhaseSpan(
                    name=name,
                    start_s=start,
                    duration_s=time.perf_counter() - start,
                    meta=meta,
                )
            )

    def totals(self) -> dict[str, float]:
        """Summed duration per span name, in first-seen order."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.name] = out.get(s.name, 0.0) + s.duration_s
        return out

    def total_s(self) -> float:
        """Sum of all span durations (nested spans double-count)."""
        return sum(s.duration_s for s in self.spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{k}={v * 1000:.3f}ms" for k, v in self.totals().items()
        )
        return f"PhaseProfiler({parts})"


class _NullProfiler:
    """Do-nothing stand-in so instrumented code needs no per-phase branch."""

    @contextmanager
    def span(self, name: str, **meta):
        yield self


#: Shared no-op profiler; algorithms use it when none was passed so the
#: instrumented code path is identical with profiling disabled.
NULL_PROFILER = _NullProfiler()
