"""Per-cycle runtime timelines of one simulator run.

The engine and the vectorized backends execute the paper's algorithms,
but until now a finished run left behind only *aggregate* cost counters —
no record of **when** each link carried traffic or when a fault struck.
The :class:`TimelineRecorder` is that record: an append-only log of

* :class:`LinkEvent` — one delivered message (cycle, src, dst, payload
  size, request kind), emitted per delivery by the engine's matchers and
  flushed per cycle by the engine's fast bookkeeping path;
* :class:`FaultEvent` — one fault-plan action (drop, timeout, crash)
  with the cycle it occurred in;
* :class:`StepRecord` — one coarse lockstep round from a vectorized
  backend (which has no per-link detail, only per-round aggregates).

The recorder is deliberately dependency-free and cheap: recording is an
append to a Python list, and every derived view (per-cycle aggregates,
link-utilization matrices, :class:`~repro.analysis.static.schedule.CommSchedule`
conversion) is computed on demand.  A run with no recorder attached pays
exactly one ``is None`` check per delivery.

Because the engine emits one :class:`LinkEvent` per delivered message
with the engine's own cycle number, a completed engine timeline carries
the *same* per-cycle event set as the static extractor's
:class:`~repro.analysis.static.schedule.CommSchedule` — which is what
:func:`cross_validate_timeline` checks, making the observability layer
itself verifiable instead of merely emitted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "LinkEvent",
    "FaultEvent",
    "StepRecord",
    "CycleAggregate",
    "TimelineRecorder",
    "cross_validate_timeline",
]

FAULT_KINDS = ("drop", "timeout", "crash", "leave", "join")


@dataclass(frozen=True)
class LinkEvent:
    """One delivered message: ``src -> dst`` completing at ``cycle``.

    ``cycle`` is 1-based and equals the engine cycle of the delivery;
    ``kind`` is the request kind of the sending leg (``"send"``,
    ``"sendrecv"`` or ``"shift"``); ``size`` counts key-sized payload
    items (0 for control-only messages).  The field meanings match
    :class:`~repro.analysis.static.schedule.CommEvent` exactly so the two
    records can be compared field for field.
    """

    cycle: int
    src: int
    dst: int
    size: int = 1
    kind: str = "send"

    @property
    def link(self) -> tuple[int, int]:
        """Undirected link key ``(min, max)``."""
        return (min(self.src, self.dst), max(self.src, self.dst))


@dataclass(frozen=True)
class FaultEvent:
    """One fault-plan action at ``cycle``.

    ``kind`` is one of ``"drop"`` (an in-flight message was lost and will
    be retried), ``"timeout"`` (a request was abandoned/cancelled by the
    per-request timeout), ``"crash"`` (a node was killed), ``"leave"`` (a
    node went offline at the start of a downtime interval) or ``"join"``
    (it rejoined at the interval's end).  ``rank`` is the affected node;
    ``src``/``dst`` identify the dropped message's endpoints when
    meaningful.
    """

    cycle: int
    kind: str
    rank: int | None = None
    src: int | None = None
    dst: int | None = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )


@dataclass(frozen=True)
class StepRecord:
    """One coarse lockstep round from a vectorized backend.

    Vectorized backends perform whole rounds as single array operations,
    so there is no per-link detail to record — only the round aggregate:
    ``messages`` point-to-point transfers carrying ``payload_items``
    items in total (``kind="comm"``), or a computation round of
    ``ops_each`` primitive operations per participating node
    (``kind="comp"``, in which case ``messages`` is 0).  ``step`` numbers
    communication rounds 1-based, mirroring the engine's cycle counter;
    computation rounds carry the step they follow.
    """

    step: int
    kind: str
    messages: int = 0
    payload_items: int = 0
    max_payload: int = 0
    ops_each: int = 0


@dataclass(frozen=True)
class CycleAggregate:
    """Everything that happened in one cycle, folded into one record."""

    cycle: int
    messages: int
    payload_items: int
    link_loads: dict[tuple[int, int], int] = field(default_factory=dict)
    drops: int = 0
    timeouts: int = 0
    crashes: int = 0
    leaves: int = 0
    joins: int = 0

    @property
    def faults(self) -> int:
        """Total fault events this cycle."""
        return self.drops + self.timeouts + self.crashes + self.leaves + self.joins


class TimelineRecorder:
    """Append-only per-cycle event log for one simulator run.

    Parameters
    ----------
    num_nodes:
        Expected network size, when known; purely informational (used by
        renderers to label links consistently).

    A recorder can be handed to the engine (``run_spmd(...,
    timeline=...)`` or the :func:`~repro.simulator.engine.use_timeline`
    context manager) for per-cycle link events, and/or attached to a
    :class:`~repro.simulator.counters.CostCounters` ledger
    (``counters.attach_timeline(...)``) for coarse per-round records from
    the vectorized backends.
    """

    def __init__(self, num_nodes: int | None = None):
        if num_nodes is not None and num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self._events: list[LinkEvent] = []
        self._faults: list[FaultEvent] = []
        self._steps: list[StepRecord] = []
        self._comm_step = 0  # vectorized round counter (mirrors cycles)
        self._cycles = 0  # total cycles reported by the engine

    # -- engine-side hooks -----------------------------------------------------

    def record_message(
        self, cycle: int, src: int, dst: int, size: int = 1, kind: str = "send"
    ) -> None:
        """One message delivered ``src -> dst`` at ``cycle``."""
        self._events.append(LinkEvent(cycle, src, dst, size, kind))

    def record_fault(
        self,
        cycle: int,
        kind: str,
        *,
        rank: int | None = None,
        src: int | None = None,
        dst: int | None = None,
    ) -> None:
        """One fault-plan action (``"drop"``/``"timeout"``/``"crash"``)."""
        self._faults.append(FaultEvent(cycle, kind, rank, src, dst))

    def bulk_load_messages(
        self, events: Iterable[tuple[int, int, int, int, str]]
    ) -> None:
        """Flush buffered ``(cycle, src, dst, size, kind)`` deliveries.

        The engine's fast bookkeeping path buffers deliveries in plain
        tuples and flushes them here in one shot; each tuple keeps its own
        cycle number, so the flushed timeline has the same per-cycle
        resolution as per-event recording (not one end-of-run blob).
        """
        self._events.extend(LinkEvent(*e) for e in events)

    def set_cycles(self, cycles: int) -> None:
        """Total engine cycles executed (idle-only cycles included)."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        if cycles > self._cycles:
            self._cycles = cycles

    # -- vectorized-backend hooks ----------------------------------------------

    def record_comm_step(
        self, messages: int, payload_items: int | None = None, max_payload: int = 1
    ) -> None:
        """One coarse lockstep communication round (vectorized backend)."""
        self._comm_step += 1
        self._steps.append(
            StepRecord(
                step=self._comm_step,
                kind="comm",
                messages=messages,
                payload_items=(
                    messages if payload_items is None else payload_items
                ),
                max_payload=max_payload if messages else 0,
            )
        )
        if self._comm_step > self._cycles:
            self._cycles = self._comm_step

    def record_comp_step(self, ops_each: int = 1) -> None:
        """One coarse lockstep computation round (vectorized backend)."""
        self._steps.append(
            StepRecord(step=self._comm_step, kind="comp", ops_each=ops_each)
        )

    # -- views -----------------------------------------------------------------

    @property
    def events(self) -> tuple[LinkEvent, ...]:
        """Per-delivery link events in recording order."""
        return tuple(self._events)

    @property
    def faults(self) -> tuple[FaultEvent, ...]:
        """Fault events in recording order."""
        return tuple(self._faults)

    @property
    def steps(self) -> tuple[StepRecord, ...]:
        """Coarse vectorized round records in recording order."""
        return tuple(self._steps)

    @property
    def num_cycles(self) -> int:
        """Total cycles covered (engine-reported, or max event cycle)."""
        last_event = max((e.cycle for e in self._events), default=0)
        last_fault = max((f.cycle for f in self._faults), default=0)
        return max(self._cycles, last_event, last_fault)

    @property
    def total_messages(self) -> int:
        """Delivered messages: per-link events plus coarse round tallies."""
        return len(self._events) + sum(s.messages for s in self._steps)

    def fault_counts(self) -> dict[str, int]:
        """``{kind: count}`` over every recorded fault event."""
        counts = {k: 0 for k in FAULT_KINDS}
        for f in self._faults:
            counts[f.kind] += 1
        return counts

    def link_loads(self) -> dict[tuple[int, int], int]:
        """Messages per undirected link over the whole run."""
        loads: Counter = Counter()
        for e in self._events:
            loads[e.link] += 1
        return dict(loads)

    def cycle_aggregates(self) -> list[CycleAggregate]:
        """One :class:`CycleAggregate` per cycle ``1..num_cycles``.

        Engine link events contribute per-link loads; coarse vectorized
        rounds contribute message/payload totals without link detail;
        fault events contribute the per-kind tallies.  Idle cycles appear
        as all-zero aggregates so the list length always equals
        :attr:`num_cycles`.
        """
        cycles = self.num_cycles
        msgs = [0] * (cycles + 1)
        items = [0] * (cycles + 1)
        loads: list[dict | None] = [None] * (cycles + 1)
        drops = [0] * (cycles + 1)
        touts = [0] * (cycles + 1)
        crashes = [0] * (cycles + 1)
        leaves = [0] * (cycles + 1)
        joins = [0] * (cycles + 1)
        for e in self._events:
            msgs[e.cycle] += 1
            items[e.cycle] += e.size
            per = loads[e.cycle]
            if per is None:
                per = loads[e.cycle] = {}
            per[e.link] = per.get(e.link, 0) + 1
        for s in self._steps:
            if s.kind == "comm" and 1 <= s.step <= cycles:
                msgs[s.step] += s.messages
                items[s.step] += s.payload_items
        for f in self._faults:
            if f.kind == "drop":
                drops[f.cycle] += 1
            elif f.kind == "timeout":
                touts[f.cycle] += 1
            elif f.kind == "leave":
                leaves[f.cycle] += 1
            elif f.kind == "join":
                joins[f.cycle] += 1
            else:
                crashes[f.cycle] += 1
        return [
            CycleAggregate(
                cycle=c,
                messages=msgs[c],
                payload_items=items[c],
                link_loads=loads[c] or {},
                drops=drops[c],
                timeouts=touts[c],
                crashes=crashes[c],
                leaves=leaves[c],
                joins=joins[c],
            )
            for c in range(1, cycles + 1)
        ]

    def link_utilization(self) -> tuple[list[tuple[int, int]], list[list[int]]]:
        """Per-link per-cycle load matrix for heatmap rendering.

        Returns ``(links, grid)`` with ``links`` sorted and ``grid[i][c-1]``
        the number of messages link ``links[i]`` carried in cycle ``c``.
        """
        cycles = self.num_cycles
        links = sorted({e.link for e in self._events})
        index = {link: i for i, link in enumerate(links)}
        grid = [[0] * cycles for _ in links]
        for e in self._events:
            grid[index[e.link]][e.cycle - 1] += 1
        return links, grid

    def to_comm_schedule(self, topo=None):
        """The engine-side timeline as a static-analyzer ``CommSchedule``.

        Only per-link events are convertible (coarse vectorized rounds
        carry no endpoints); the result plugs straight into the checkers
        of :mod:`repro.analysis.static` and into
        :func:`cross_validate_timeline`.
        """
        # Imported lazily: the simulator must stay importable without the
        # analysis subsystem and vice versa.
        from repro.analysis.static.schedule import CommEvent, CommSchedule

        events = tuple(
            CommEvent(step=e.cycle, src=e.src, dst=e.dst, kind=e.kind, size=e.size)
            for e in self._events
        )
        n = self.num_nodes
        if n is None:
            n = max((max(e.src, e.dst) for e in self._events), default=-1) + 1
        return CommSchedule(
            num_nodes=n,
            topology=getattr(topo, "name", "?") if topo is not None else "?",
            events=events,
            steps=self.num_cycles,
            completed=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimelineRecorder(cycles={self.num_cycles}, "
            f"events={len(self._events)}, faults={len(self._faults)}, "
            f"steps={len(self._steps)})"
        )


def _events_key(events) -> list[tuple]:
    return sorted((e.step, e.src, e.dst, e.kind, e.size) for e in events)


def cross_validate_timeline(
    recorder: TimelineRecorder, schedule, *, check_kinds: bool = True
) -> list[str]:
    """Compare a recorded timeline against a static ``CommSchedule``.

    ``schedule`` is the extractor's view of the same program (from
    :func:`repro.analysis.static.extract_schedule`).  Returns a list of
    human-readable discrepancies — empty means the recorder's per-cycle
    link events match the static schedule event for event (same cycle,
    endpoints, request kind, and payload size) and the cycle counts
    agree.  ``check_kinds=False`` relaxes the request-kind comparison
    (for schedules rebuilt from message logs, which lose kinds).
    """
    problems: list[str] = []
    recorded = recorder.to_comm_schedule()
    if recorder.num_cycles != schedule.steps:
        problems.append(
            f"cycle count mismatch: timeline has {recorder.num_cycles}, "
            f"static schedule has {schedule.steps}"
        )
    ours = _events_key(recorded.events)
    theirs = _events_key(schedule.events)
    if not check_kinds:
        ours = [(s, a, b, sz) for s, a, b, _k, sz in ours]
        theirs = [(s, a, b, sz) for s, a, b, _k, sz in theirs]
    if ours != theirs:
        missing = [e for e in theirs if e not in set(ours)]
        extra = [e for e in ours if e not in set(theirs)]
        if missing:
            problems.append(
                f"{len(missing)} static event(s) absent from the timeline, "
                f"first: {missing[0]}"
            )
        if extra:
            problems.append(
                f"{len(extra)} timeline event(s) absent from the static "
                f"schedule, first: {extra[0]}"
            )
        if not missing and not extra:
            problems.append(
                "event multiplicities differ between timeline and schedule"
            )
    return problems
