"""Runtime observability: timelines, metrics, and phase profiling.

The simulator's ledgers answer "how much did the run cost"; this package
answers "what happened *when*":

* :mod:`repro.obs.timeline` — per-cycle :class:`TimelineRecorder` of
  link/message/fault events from the engine (both matchers and the fast
  bookkeeping path) plus coarse per-round records from the vectorized
  backends, with :func:`cross_validate_timeline` checking the recording
  against the static analyzer's extracted schedule;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and histograms fed by :class:`~repro.simulator.counters.CostCounters`
  and the recorder, exporting JSON lines and Prometheus text format;
* :mod:`repro.obs.profile` — :class:`PhaseProfiler` wallclock spans for
  algorithm phases, surfaced in ``repro bench`` records.

The ``repro timeline`` CLI command renders a recorded run as an ASCII
link-utilization heatmap; see ``docs/observability.md`` for the tour.
"""

from repro.obs.timeline import (
    CycleAggregate,
    FaultEvent,
    LinkEvent,
    StepRecord,
    TimelineRecorder,
    cross_validate_timeline,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_counters,
    registry_from_timeline,
)
from repro.obs.profile import NULL_PROFILER, PhaseProfiler, PhaseSpan

__all__ = [
    "CycleAggregate",
    "FaultEvent",
    "LinkEvent",
    "StepRecord",
    "TimelineRecorder",
    "cross_validate_timeline",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry_from_counters",
    "registry_from_timeline",
    "PhaseProfiler",
    "PhaseSpan",
    "NULL_PROFILER",
]
