"""Sequential oracles and checkers used by tests, examples, and benches."""

from __future__ import annotations

from typing import Sequence

from repro.core.ops import AssocOp

__all__ = [
    "sequential_prefix",
    "check_prefix",
    "check_sorted",
    "is_permutation_of",
]


def sequential_prefix(values, op: AssocOp, *, inclusive: bool = True) -> list:
    """The ground-truth prefix sequence computed serially."""
    out = []
    acc = op.identity
    for v in values:
        if inclusive:
            acc = op.fn(acc, v)
            out.append(acc)
        else:
            out.append(acc)
            acc = op.fn(acc, v)
    return out


def check_prefix(values, result, op: AssocOp, *, inclusive: bool = True) -> None:
    """Raise ``AssertionError`` unless ``result`` is the prefix of ``values``."""
    expected = sequential_prefix(values, op, inclusive=inclusive)
    got = list(result)
    if len(got) != len(expected):
        raise AssertionError(
            f"prefix length mismatch: expected {len(expected)}, got {len(got)}"
        )
    for k, (e, g) in enumerate(zip(expected, got)):
        if e != g:
            raise AssertionError(
                f"prefix mismatch at index {k}: expected {e!r}, got {g!r}"
            )


def check_sorted(seq: Sequence, *, descending: bool = False) -> None:
    """Raise ``AssertionError`` unless ``seq`` is monotone."""
    items = list(seq)
    for k in range(len(items) - 1):
        a, b = items[k], items[k + 1]
        if (not descending and a > b) or (descending and a < b):
            raise AssertionError(
                f"order violated at index {k}: {a!r} then {b!r} "
                f"({'descending' if descending else 'ascending'})"
            )


def is_permutation_of(a: Sequence, b: Sequence) -> bool:
    """Whether ``a`` is a rearrangement of ``b`` (multiset equality).

    Works for unhashable and even mutually incomparable elements: the
    fast path sorts both sides, and when the elements cannot be ordered
    (mixed types) it falls back to quadratic multiset matching.
    """
    items_a, items_b = list(a), list(b)
    if len(items_a) != len(items_b):
        return False
    try:
        return sorted(items_a) == sorted(items_b)
    except TypeError:
        remaining = list(items_b)
        for x in items_a:
            for k, y in enumerate(remaining):
                if x == y:
                    del remaining[k]
                    break
            else:
                return False
        return True
