"""Associative binary operations for parallel prefix.

The paper's prefix computation is defined over an arbitrary associative
operation (not necessarily commutative).  :class:`AssocOp` packages the
operation with its identity and an optional NumPy ufunc so the vectorized
backend can run at array speed for numeric operations while the same code
path supports exotic ones (tuple concatenation, 2x2 matrix product) that
the tests use to catch operand-ordering bugs — a commutative ``+`` hides
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "AssocOp",
    "ADD",
    "MUL",
    "MIN",
    "MAX",
    "CONCAT",
    "MATMUL2",
    "combine_arrays",
    "combine_into",
]


@dataclass(frozen=True)
class AssocOp:
    """An associative binary operation with identity.

    Attributes
    ----------
    name:
        Label used in traces and benchmark tables.
    fn:
        The scalar operation ``(a, b) -> a ⊕ b``.  Must be associative;
        need *not* be commutative (operand order is preserved everywhere).
    identity:
        Two-sided identity element (the value of an empty/diminished
        prefix).
    ufunc:
        Optional NumPy ufunc implementing ``fn`` elementwise; enables the
        fast array path in the vectorized backend.
    commutative:
        Purely informational; algorithms never rely on it.
    """

    name: str
    fn: Callable[[Any, Any], Any] = field(repr=False)
    identity: Any
    ufunc: Any = field(default=None, repr=False)
    commutative: bool = False

    def __call__(self, a: Any, b: Any) -> Any:
        """Apply the operation to two scalars (in the given order)."""
        return self.fn(a, b)

    def reduce(self, items) -> Any:
        """Left fold of ``items`` starting from the identity."""
        acc = self.identity
        for x in items:
            acc = self.fn(acc, x)
        return acc

    def identity_array(self, n: int) -> np.ndarray:
        """Array of ``n`` identity elements, numeric when possible."""
        if self.ufunc is not None and isinstance(self.identity, (int, float)):
            return np.full(n, self.identity, dtype=np.int64 if isinstance(self.identity, int) else np.float64)
        out = np.empty(n, dtype=object)
        out[:] = [self.identity] * n
        return out


def combine_arrays(op: AssocOp, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``a[k] ⊕ b[k]`` preserving operand order.

    Uses the ufunc when available and the arrays are non-object; falls back
    to a scalar loop over object arrays.
    """
    if (
        op.ufunc is not None
        and a.dtype != object
        and np.asarray(b).dtype != object
    ):
        return op.ufunc(a, b)
    out = np.empty(len(a), dtype=object)
    out[:] = [op.fn(x, y) for x, y in zip(a, b)]
    return out


def combine_into(
    op: AssocOp, a: np.ndarray, b: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Elementwise ``out[k] = a[k] ⊕ b[k]`` written in place into ``out``.

    The columnar backend's combine primitive: ``out`` may alias ``a`` or
    ``b`` exactly (same shape and strides) — each element is read before
    its slot is written, so in-place folds like ``s ⊕= got`` need no
    temporary.  Arrays may be multi-dimensional (pair views).  Uses the
    ufunc when available and non-object; otherwise an ``nditer`` loop
    over object elements, preserving operand order.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if (
        op.ufunc is not None
        and a.dtype != object
        and b.dtype != object
        and out.dtype != object
    ):
        op.ufunc(a, b, out=out)
        return out
    fn = op.fn
    # Scalar element assignment (out[idx] = obj) stores arbitrary objects
    # verbatim; nditer 0-d views would try to broadcast tuple values.
    for idx in np.ndindex(a.shape):
        out[idx] = fn(a[idx], b[idx])
    return out


def _matmul2(a: tuple, b: tuple) -> tuple:
    """2x2 matrix product on row-major 4-tuples (non-commutative test op)."""
    a00, a01, a10, a11 = a
    b00, b01, b10, b11 = b
    return (
        a00 * b00 + a01 * b10,
        a00 * b01 + a01 * b11,
        a10 * b00 + a11 * b10,
        a10 * b01 + a11 * b11,
    )


ADD = AssocOp("add", lambda a, b: a + b, 0, ufunc=np.add, commutative=True)
MUL = AssocOp("mul", lambda a, b: a * b, 1, ufunc=np.multiply, commutative=True)
MIN = AssocOp("min", min, float("inf"), ufunc=np.minimum, commutative=True)
MAX = AssocOp("max", max, float("-inf"), ufunc=np.maximum, commutative=True)
CONCAT = AssocOp("concat", lambda a, b: a + b, (), commutative=False)
MATMUL2 = AssocOp("matmul2", _matmul2, (1, 0, 0, 1), commutative=False)
