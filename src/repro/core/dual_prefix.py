"""Algorithm 2 — D_prefix: parallel prefix in the dual-cube.

The cluster technique (paper Section 3): with inputs arranged so every
cluster holds a consecutive block of ``c`` (see
:mod:`repro.core.arrangement`), the algorithm is

1. inclusive `Cube_prefix` inside every cluster → ``(t, s)``;
2. exchange ``t`` over the cross-edge → ``temp``
   (after which class-1 cluster nodes collectively hold all class-0 block
   totals in node-ID order, and vice versa);
3. diminished `Cube_prefix` on ``temp`` inside every cluster → ``(t', s')``
   (``s'`` = composition of the other class's earlier block totals,
   ``t'`` = that class's half total);
4. exchange ``s'`` over the cross-edge and pre-fold it into ``s``;
5. class-1 nodes pre-fold the first-half total into ``s``.

**Step-5 reconstruction** (see DESIGN.md): the value class-1 nodes need in
step 5 is exactly their own ``t'`` from step 3, so no communication is
required and the default implementation finishes after 2n communication
steps.  The paper's Algorithm 2 spends one more cross-edge exchange here,
giving Theorem 1's 2n+1 count; ``paper_literal=True`` reproduces that
schedule (the exchange is performed and counted; the fold still uses the
locally-correct value).  Outputs are identical; benchmark A1 reports both.

Cost (measured by the engine): 2(n-1)+2 = 2n communication steps
(2n+1 literal) and 2n computation steps — Theorem 1's "at most" bounds.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.arrangement import arrange, arranged_index_v, dearrange
from repro.core.backends import resolve_backend
from repro.core.cube_prefix import ascend_rounds_vec, cube_prefix_program
from repro.core.ops import AssocOp, combine_arrays
from repro.obs.profile import NULL_PROFILER
from repro.simulator import CostCounters, SendRecv, TraceRecorder, run_spmd
from repro.topology.dualcube import DualCube

__all__ = [
    "dual_prefix_program",
    "dual_prefix_engine",
    "dual_prefix_vec",
    "dual_prefix",
    "dual_suffix_vec",
]


def _dual_prefix_node_program(
    ctx,
    dc: DualCube,
    held_value: Any,
    op: AssocOp,
    paper_literal: bool,
    inclusive: bool,
):
    """The per-node SPMD program for Algorithm 2 (returns the prefix ``s``)."""
    u = ctx.rank
    cls = dc.class_of(u)
    nid = dc.node_id(u)
    m = dc.cluster_dim
    gdims = [dc.local_to_global_dim(u, i) for i in range(m)]
    cross = dc.cross_partner(u)

    ctx.record("(a) input", held_value)

    # Step 1: prefix inside the cluster (inclusive or diminished per tag).
    t, s = yield from cube_prefix_program(
        ctx,
        held_value,
        op,
        inclusive=inclusive,
        q=m,
        local_rank=nid,
        global_dims=gdims,
    )
    ctx.record("(b) cluster prefix s", s)
    ctx.record("(b) cluster total t", t)

    # Step 2: block totals cross the class boundary.
    temp = yield SendRecv(cross, t)
    ctx.record("(c) cross total temp", temp)

    # Step 3: diminished prefix of the other class's block totals.
    t2, s2 = yield from cube_prefix_program(
        ctx, temp, op, inclusive=False, q=m, local_rank=nid, global_dims=gdims
    )
    ctx.record("(d) block-prefix s'", s2)
    ctx.record("(d) half total t'", t2)

    # Step 4: earlier-block composition returns over the cross-edge.
    got = yield SendRecv(cross, s2)
    ctx.compute(1)
    s = op(got, s)
    ctx.record("(e) after s' fold", s)

    # Step 5 (paper-literal: one more cross exchange to match Theorem 1's
    # 2n+1 count; the received value is redundant — see module docstring).
    if paper_literal:
        yield SendRecv(cross, t2)
    if cls == 1:
        ctx.compute(1)
        s = op(t2, s)
    ctx.record("(f) final prefix", s)
    return s


def dual_prefix_program(
    dc: DualCube,
    values,
    op: AssocOp,
    *,
    inclusive: bool = True,
    paper_literal: bool = False,
):
    """The SPMD program realizing Algorithm 2 on ``dc``.

    ``values`` is the input sequence in global index order.  Each rank
    returns its arranged-order prefix ``s``.  This is the exact program
    :func:`dual_prefix_engine` runs; it is exposed so the static schedule
    analyzer (:mod:`repro.analysis.static`) can extract its communication
    schedule without an engine run.
    """
    held = arrange(dc, np.asarray(values, dtype=object))

    def program(ctx):
        s = yield from _dual_prefix_node_program(
            ctx, dc, held[ctx.rank], op, paper_literal, inclusive
        )
        return s

    return program


def dual_prefix_engine(
    dc: DualCube,
    values,
    op: AssocOp,
    *,
    inclusive: bool = True,
    paper_literal: bool = False,
    trace: TraceRecorder | None = None,
):
    """Run Algorithm 2 on the cycle-accurate engine.

    Parameters
    ----------
    values:
        The input sequence ``c`` in global index order (one per node).
    paper_literal:
        Reproduce the paper's extra step-5 cross exchange (2n+1 comm
        steps) instead of the locally-completed variant (2n).

    Returns ``(prefixes, result)`` with ``prefixes`` in input-index order
    (``prefixes[k] = c[0] ⊕ … ⊕ c[k]``) and ``result`` the engine result
    carrying the cost counters.
    """
    program = dual_prefix_program(
        dc, values, op, inclusive=inclusive, paper_literal=paper_literal
    )
    result = run_spmd(dc, program, trace=trace)
    held_out = np.empty(dc.num_nodes, dtype=object)
    held_out[:] = result.returns
    return dearrange(dc, held_out), result


def dual_prefix_vec(
    dc: DualCube,
    values,
    op: AssocOp,
    *,
    inclusive: bool = True,
    paper_literal: bool = False,
    counters: CostCounters | None = None,
    trace: TraceRecorder | None = None,
    profiler=None,
) -> np.ndarray:
    """Vectorized Algorithm 2; returns prefixes in input-index order.

    Step-for-step mirror of :func:`dual_prefix_engine` on whole-network
    arrays; the cross-edge exchanges become a single index permutation and
    each cluster round one masked combine.  ``profiler`` (a
    :class:`~repro.obs.profile.PhaseProfiler`) records wallclock spans
    for the algorithm's four segments: ``cluster-prefix`` (step 1),
    ``cross`` (the cross-edge exchanges), ``block-prefix`` (step 3), and
    ``fold`` (steps 4-5).
    """
    vals = np.asarray(values)
    prof = profiler if profiler is not None else NULL_PROFILER
    if vals.shape != (dc.num_nodes,):
        raise ValueError(
            f"expected {dc.num_nodes} values for {dc.name}, got shape {vals.shape}"
        )
    m = dc.cluster_dim
    idx = dc.all_nodes_array()
    cls1 = dc.class_of_v(idx) == 1
    nid = dc.node_id_v(idx)
    cross = idx ^ (1 << dc.class_dimension)
    # Local round i flips address bit i (class 0) or m+i (class 1).
    step = np.where(cls1, 1 << m, 1).astype(np.int64)

    held = vals[arranged_index_v(dc)]
    if trace is not None:
        trace.record_array("(a) input", held)

    def partner(i):
        return idx ^ (step << i)

    def upper(i):
        return (nid >> i) & 1 == 1

    with prof.span("cluster-prefix", rounds=m):
        t = held.copy()
        s = held.copy() if inclusive else op.identity_array(dc.num_nodes)
        t, s = ascend_rounds_vec(t, s, m, partner, upper, op, counters)
    if trace is not None:
        trace.record_array("(b) cluster prefix s", s)
        trace.record_array("(b) cluster total t", t)

    with prof.span("cross"):
        temp = t[cross]
        if counters is not None:
            counters.record_comm_step(messages=dc.num_nodes)
    if trace is not None:
        trace.record_array("(c) cross total temp", temp)

    with prof.span("block-prefix", rounds=m):
        t2 = temp.copy()
        s2 = op.identity_array(dc.num_nodes)
        t2, s2 = ascend_rounds_vec(t2, s2, m, partner, upper, op, counters)
    if trace is not None:
        trace.record_array("(d) block-prefix s'", s2)
        trace.record_array("(d) half total t'", t2)

    with prof.span("cross"):
        got = s2[cross]
        if counters is not None:
            counters.record_comm_step(messages=dc.num_nodes)
            counters.record_comp_step(ops_each=1)
    with prof.span("fold"):
        s = combine_arrays(op, got, s)
    if trace is not None:
        trace.record_array("(e) after s' fold", s)

    with prof.span("fold"):
        if paper_literal and counters is not None:
            counters.record_comm_step(messages=dc.num_nodes)
        s = np.where(cls1, combine_arrays(op, t2, s), s)
        if counters is not None:
            counters.record_comp_step(ops_each=1, ranks=idx[cls1])
    if trace is not None:
        trace.record_array("(f) final prefix", s)

    return dearrange(dc, s)


def dual_prefix(
    dc: DualCube,
    values,
    op: AssocOp,
    *,
    backend: str = "vectorized",
    inclusive: bool = True,
    paper_literal: bool = False,
    counters: CostCounters | None = None,
    trace: TraceRecorder | None = None,
    profiler=None,
    shards: int | None = None,
):
    """Parallel prefix on the dual-cube — the library's headline entry point.

    ``backend`` selects ``"vectorized"`` (fast; returns the prefix array),
    ``"columnar"`` (structured-array state, in-place view combines;
    reaches D_9-D_11), ``"replay"`` (compiled straight-line plan; fastest
    on repeat runs, and the only backend taking ``shards`` for
    per-cluster multiprocessing), or ``"engine"`` (cycle-accurate;
    returns ``(prefixes, EngineResult)``).  Capabilities are declared in
    :mod:`repro.core.backends`: a backend without per-rank traces,
    profiling hooks, external counters, or sharding rejects the
    corresponding keyword with a ``ValueError``.
    """
    run = resolve_backend(
        "dual_prefix",
        backend,
        counters=counters is not None,
        trace=trace is not None,
        profiler=profiler is not None,
        shards=shards is not None,
    )
    return run(
        dc,
        values,
        op,
        inclusive=inclusive,
        paper_literal=paper_literal,
        counters=counters,
        trace=trace,
        profiler=profiler,
        shards=shards,
    )


def dual_suffix_vec(
    dc: DualCube,
    values,
    op: AssocOp,
    *,
    inclusive: bool = True,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Suffix (backward) scan: out[k] = c[k] (\u2295 c[k+1] ... \u2295 c[N-1]).

    Runs `D_prefix` on the reversed sequence under the order-flipped
    (still associative) operation, then reverses back — same 2n
    communication steps, an exact mirror.
    """
    flipped = AssocOp(
        f"{op.name}-flipped",
        lambda a, b: op.fn(b, a),
        op.identity,
        commutative=op.commutative,
    )
    vals = np.asarray(values)
    rev = vals[::-1].copy()
    out = dual_prefix_vec(
        dc, rev, flipped, inclusive=inclusive, counters=counters
    )
    return out[::-1].copy()
