"""Columnar backend: D_prefix / D_sort / large-input variants at scale.

# repro: columnar-hot-path

Third execution backend next to the cycle-accurate engine and the
vectorized backend.  All per-rank state lives in numpy structured arrays
(:class:`~repro.simulator.columnar.ColumnarState`) and every
dimension-step executes as one batched in-place combine over reshape
views (:func:`~repro.simulator.columnar.bit_pair_views`) — no per-rank
Python objects, no materialized edge lists, no per-step gather
permutations.  Topology questions are answered arithmetically
(:meth:`~repro.topology.dualcube.DualCube.class_slices`,
:meth:`~repro.topology.dualcube.DualCube.local_round_bit`).

Two structural facts carry the whole backend:

* in the standard :class:`~repro.topology.dualcube.DualCube` the class
  bit is the **top** address bit, so the two classes are contiguous array
  halves — the cross-edge exchange is two half-copies
  (:func:`~repro.simulator.columnar.swap_halves`), and each class runs
  its ascend round over one fixed address bit
  (``i`` for class 0, ``n-1+i`` for class 1);
* in every generated compare-exchange schedule the direction bit sits
  *above* the paired dimension, so one reshape splits a column into
  ascending/descending × lower/upper quarters and both merge directions
  apply as in-place ``minimum``/``maximum`` with a scratch column.

Cost accounting is call-for-call identical to the vectorized backend
(which matches the engine): the same
:meth:`~repro.simulator.counters.CostCounters.record_comm_step` /
:meth:`~repro.simulator.counters.CostCounters.record_comp_step`
sequence, so comm/comp step counts, message and payload tallies — and
any timeline attached via ``counters.attach_timeline`` — agree exactly
with the engine and the static :class:`CommSchedule`.  Memory stays
O(nodes) (O(N) for the large-input variants).
"""

from __future__ import annotations

import numpy as np

from repro.core.arrangement import arranged_index_v
from repro.core.ops import AssocOp, combine_into
from repro.simulator import CostCounters
from repro.simulator.columnar import (
    ColumnarState,
    bit_pair_views,
    dir_bit_views,
    swap_halves,
)
from repro.topology.dualcube import DualCube

__all__ = [
    "dual_prefix_columnar",
    "execute_schedule_columnar",
    "dual_sort_columnar",
    "large_prefix_columnar",
    "large_sort_columnar",
]


def _state_dtype(vals: np.ndarray, op: AssocOp | None) -> np.dtype:
    """Column dtype able to hold inputs, identities and combine results."""
    if vals.dtype == object or (op is not None and op.ufunc is None):
        return np.dtype(object)
    if op is None:
        return vals.dtype
    return np.result_type(vals.dtype, np.asarray(op.identity).dtype)


def _fill_identity(col: np.ndarray, op: AssocOp) -> None:
    """Set every element of ``col`` to the operation's identity."""
    col[...] = op.identity_array(len(col))


def _ascend_round(
    op: AssocOp,
    t: np.ndarray,
    s: np.ndarray,
    dc: DualCube,
    i: int,
    counters: CostCounters | None,
) -> None:
    """One cluster ascend round, both classes, fully in place.

    Mirrors :func:`~repro.core.cube_prefix.ascend_rounds_vec` round ``i``:
    the upper pair side (bit set) folds the lower side's subcube total
    into both ``s`` and ``t`` (pre-composed — operand order preserved for
    non-commutative ops), the lower side folds the upper total into
    ``t``; both sides of a pair end with ``t = t_lo ⊕ t_hi``.
    """
    for cls, half in enumerate(dc.class_slices()):
        b = dc.local_round_bit(cls, i)
        t_lo, t_hi = bit_pair_views(t[half], b)
        s_hi = bit_pair_views(s[half], b)[1]
        combine_into(op, t_lo, s_hi, s_hi)
        combine_into(op, t_lo, t_hi, t_hi)
        t_lo[...] = t_hi
    if counters is not None:
        counters.record_comm_step(messages=dc.num_nodes)
        counters.record_comp_step(ops_each=2)


def dual_prefix_columnar(
    dc: DualCube,
    values,
    op: AssocOp,
    *,
    inclusive: bool = True,
    paper_literal: bool = False,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Columnar Algorithm 2; returns prefixes in input-index order.

    Step-for-step mirror of :func:`~repro.core.dual_prefix.dual_prefix_vec`
    — identical results and identical counter call sequence — with all
    four algorithm variables (``t``, ``s``, ``t'``, ``s'``) as columns of
    one structured array and every round an in-place pair-view combine.
    The only O(nodes) index arrays are the input/output arrangement
    permutations; no per-step gathers exist at all.
    """
    vals = np.asarray(values)
    n = dc.num_nodes
    if vals.shape != (n,):
        raise ValueError(
            f"expected {n} values for {dc.name}, got shape {vals.shape}"
        )
    if dc.class_dimension != dc.num_dimensions - 1:
        raise ValueError(
            "columnar D_prefix needs the class bit as the top address bit "
            f"(got dimension {dc.class_dimension} of {dc.num_dimensions})"
        )
    m = dc.cluster_dim
    dt = _state_dtype(vals, op)
    state = ColumnarState(n, [("t", dt), ("s", dt), ("t2", dt), ("s2", dt)])
    t = state.column("t")
    s = state.column("s")
    t2 = state.column("t2")
    s2 = state.column("s2")

    t[...] = vals[arranged_index_v(dc)]
    if inclusive:
        s[...] = t
    else:
        _fill_identity(s, op)

    # Step 1: inclusive/diminished Cube_prefix inside every cluster.
    for i in range(m):
        _ascend_round(op, t, s, dc, i, counters)

    # Step 2: block totals cross the class boundary (t2 <- t over the
    # cross-edges, which swap the two class halves).
    swap_halves(t, t2)
    if counters is not None:
        counters.record_comm_step(messages=n)

    # Step 3: diminished prefix of the other class's block totals.
    _fill_identity(s2, op)
    for i in range(m):
        _ascend_round(op, t2, s2, dc, i, counters)

    # Step 4: earlier-block composition returns over the cross-edge and
    # pre-folds into s.  t is dead after step 2; reuse it as the receive
    # buffer.
    swap_halves(s2, t)
    if counters is not None:
        counters.record_comm_step(messages=n)
        counters.record_comp_step(ops_each=1)
    combine_into(op, t, s, s)

    # Step 5 (paper-literal: one redundant cross exchange, counted only —
    # see the dual_prefix module docstring), then the class-1 pre-fold of
    # the first-half total, which is exactly class-1's own t'.
    if paper_literal and counters is not None:
        counters.record_comm_step(messages=n)
    cls1 = dc.class_slices()[1]
    combine_into(op, t2[cls1], s[cls1], s[cls1])
    if counters is not None:
        counters.record_comp_step(ops_each=1, ranks=range(cls1.start, cls1.stop))

    out = np.empty(n, dtype=dt)
    out[arranged_index_v(dc)] = s
    return out


def _merge_pair(
    lo: np.ndarray, hi: np.ndarray, scratch: np.ndarray, descending: bool
) -> None:
    """In-place compare-exchange of the pair views ``lo``/``hi``."""
    if descending:
        np.maximum(lo, hi, out=scratch)
        np.minimum(lo, hi, out=hi)
    else:
        np.minimum(lo, hi, out=scratch)
        np.maximum(lo, hi, out=hi)
    lo[...] = scratch


def _columnar_compare_exchange(key, tmp, step, num_nodes: int) -> None:
    """One schedule step on the key column, fully in place."""
    j = step.dim
    if step.dir_kind == "const":
        lo, hi = bit_pair_views(key, j)
        scratch = bit_pair_views(tmp, j)[0]
        _merge_pair(lo, hi, scratch, bool(step.dir_val))
        return
    if step.dir_val > j:
        asc_lo, asc_hi, desc_lo, desc_hi = dir_bit_views(key, step.dir_val, j)
        sc = dir_bit_views(tmp, step.dir_val, j)
        _merge_pair(asc_lo, asc_hi, sc[0], descending=False)
        _merge_pair(desc_lo, desc_hi, sc[2], descending=True)
        return
    if step.dir_val == j:
        raise ValueError(
            f"degenerate schedule step: direction bit equals the paired "
            f"dimension {j}"
        )
    # Defensive general path (dir bit below the paired dimension — never
    # produced by the generated schedules): both pair sides share the
    # direction bit, so a per-pair mask decides which side keeps the min.
    lo, hi = bit_pair_views(key, j)
    t_lo, t_hi = bit_pair_views(tmp, j)
    rows, inner = lo.shape[0], 1 << j
    addr = (np.arange(rows, dtype=np.int64) << (j + 1))[:, None] | np.arange(
        inner, dtype=np.int64
    )
    desc = (addr >> step.dir_val) & 1 == 1
    np.minimum(lo, hi, out=t_lo)
    np.maximum(lo, hi, out=t_hi)
    lo[...] = np.where(desc, t_hi, t_lo)
    hi[...] = np.where(desc, t_lo, t_hi)


def execute_schedule_columnar(
    topo,
    keys,
    schedule,
    *,
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Columnar compare-exchange schedule executor.

    Results and counters mirror
    :func:`~repro.core.dual_sort.execute_schedule_vec` exactly; state is
    one key column plus one scratch column, and each
    :class:`~repro.core.dual_sort.ScheduleStep` applies as in-place
    ``minimum``/``maximum`` over reshape views split by the step's pair
    dimension and direction bit.
    """
    from repro.core.dual_sort import _check_policy, _count_step

    _check_policy(payload_policy)
    arr = np.asarray(keys)
    n = topo.num_nodes
    if arr.shape != (n,):
        raise ValueError(
            f"expected {n} keys for {topo.name}, got shape {arr.shape}"
        )
    dt = _state_dtype(arr, None)
    state = ColumnarState(n, [("key", dt), ("tmp", dt)])
    key = state.column("key")
    key[...] = arr
    tmp = state.column("tmp")
    for step in schedule:
        _columnar_compare_exchange(key, tmp, step, n)
        if counters is not None:
            _count_step(counters, topo, step.dim, n, payload_policy)
    return key.copy()


def dual_sort_columnar(
    rdc,
    keys,
    *,
    descending: bool = False,
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Columnar Algorithm 3; returns keys sorted in node-address order."""
    from repro.core.dual_sort import dual_sort_schedule

    sched = dual_sort_schedule(rdc.n, descending=descending)
    return execute_schedule_columnar(
        rdc, keys, sched, payload_policy=payload_policy, counters=counters
    )


def large_prefix_columnar(
    dc: DualCube,
    values,
    op: AssocOp,
    *,
    counters: CostCounters | None = None,
    profiler=None,
) -> np.ndarray:
    """Columnar blocked prefix of N = B * 2^(2n-1) values on D_n.

    Mirrors :func:`~repro.core.large_inputs.large_prefix` (same phases,
    same counter calls) with the per-node block as a ``(B,)`` subarray
    field: the local prefix and the offset fold run column-at-a-time in
    place, and the network phase is the diminished
    :func:`dual_prefix_columnar` on the block totals.
    """
    from repro.core.large_inputs import _blocked
    from repro.obs.profile import NULL_PROFILER

    blocks, b = _blocked(values, dc.num_nodes)
    prof = profiler if profiler is not None else NULL_PROFILER
    dt = _state_dtype(blocks, op)
    state = ColumnarState(dc.num_nodes, [("block", dt, (b,))])
    local = state.column("block")
    local[...] = blocks

    with prof.span("local-prefix", block=b):
        for k in range(1, b):
            combine_into(op, local[:, k - 1], local[:, k], local[:, k])
        if counters is not None and b > 1:
            counters.record_comp_step(ops_each=b - 1)

    with prof.span("network"):
        offsets = dual_prefix_columnar(
            dc, local[:, -1], op, inclusive=False, counters=counters
        )

    with prof.span("fold", block=b):
        for k in range(b):
            combine_into(op, offsets, local[:, k], local[:, k])
        if counters is not None:
            counters.record_comp_step(ops_each=b)
    return local.reshape(-1).copy()


def _merge_split(
    lo: np.ndarray, hi: np.ndarray, b: int, descending: bool
) -> None:
    """In-place merge-split: ``lo`` keeps the B smallest of the 2B keys
    (largest when ``descending``), ``hi`` the rest, both sorted."""
    merged = np.sort(np.concatenate([lo, hi], axis=-1), axis=-1)
    if descending:
        lo[...] = merged[..., b:]
        hi[...] = merged[..., :b]
    else:
        lo[...] = merged[..., :b]
        hi[...] = merged[..., b:]


def large_sort_columnar(
    rdc,
    keys,
    *,
    descending: bool = False,
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
    profiler=None,
) -> np.ndarray:
    """Columnar blocked sort of N = B * 2^(2n-1) numeric keys on D_n.

    Mirrors :func:`~repro.core.large_inputs.large_sort` — local sort, then
    the `D_sort` schedule with compare-exchanges replaced by merge-splits
    — with the block state as a ``(B,)`` subarray field and every
    merge-split applied through pair views instead of partner gathers.
    """
    from repro.core.dual_sort import _check_policy, dual_sort_schedule
    from repro.core.large_inputs import _blocked, _count_block_step, _local_sort_ops
    from repro.obs.profile import NULL_PROFILER

    _check_policy(payload_policy)
    blocks, b = _blocked(keys, rdc.num_nodes)
    if blocks.dtype == object:
        raise TypeError("large_sort supports numeric keys only")
    prof = profiler if profiler is not None else NULL_PROFILER
    n = rdc.num_nodes
    state = ColumnarState(n, [("block", blocks.dtype, (b,))])
    arr = state.column("block")

    with prof.span("local-sort", block=b):
        arr[...] = np.sort(blocks, axis=1)
        if counters is not None:
            counters.record_comp_step(ops_each=_local_sort_ops(b))

    for k, step in enumerate(dual_sort_schedule(rdc.n, descending=descending)):
        with prof.span(step.phase, step=k, dim=step.dim):
            j = step.dim
            if step.dir_kind == "const":
                lo, hi = bit_pair_views(arr, j)
                _merge_split(lo, hi, b, bool(step.dir_val))
            elif step.dir_val > j:
                asc_lo, asc_hi, desc_lo, desc_hi = dir_bit_views(
                    arr, step.dir_val, j
                )
                _merge_split(asc_lo, asc_hi, b, descending=False)
                _merge_split(desc_lo, desc_hi, b, descending=True)
            else:
                raise ValueError(
                    f"degenerate schedule step: direction bit "
                    f"{step.dir_val} not above dimension {j}"
                )
            if counters is not None:
                _count_block_step(counters, rdc, step, n, b, payload_policy)
    if descending:
        # Blocks end internally ascending; flatten each high-to-low for a
        # descending global order (local, no messages — as in large_sort).
        arr[...] = arr[:, ::-1].copy()
    return arr.reshape(-1).copy()
