"""Algorithm 1 — Cube_prefix: parallel prefix in a hypercube.

The ascend algorithm: node ``u`` keeps a subcube total ``t`` and a subcube
prefix ``s``; at round ``i`` it exchanges ``t`` with its dimension-``i``
neighbor and folds the received sibling-subcube total into ``t`` (always)
and into ``s`` (when ``u`` lies in the upper half, i.e. bit ``i`` of its
rank is 1, so the sibling subcube holds the *earlier* indices).

The paper writes the folds as ``x ⊕ temp``; for non-commutative operations
the sibling total of the lower half must be *pre*-composed, which is what
this implementation does (``temp ⊕ x`` on the upper side) — the test suite
checks this with tuple concatenation and matrix products.

Three entry points share the logic:

* :func:`cube_prefix_program` — generator *phase* for SPMD programs
  (``yield from`` it inside larger algorithms such as `D_prefix`);
* :func:`cube_prefix` — standalone engine run on a
  :class:`~repro.topology.hypercube.Hypercube`;
* :func:`cube_prefix_vec` — vectorized backend on a value array.

All return/produce the pair ``(t, s)``: the cube-wide total and the
(inclusive or diminished) prefix, exactly Algorithm 1's outputs.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.ops import AssocOp, combine_arrays
from repro.simulator import CostCounters, SendRecv, TraceRecorder, run_spmd
from repro.simulator.node import NodeCtx
from repro.topology.hypercube import Hypercube

__all__ = [
    "cube_prefix_program",
    "cube_prefix",
    "cube_prefix_vec",
    "ascend_rounds_vec",
]


def cube_prefix_program(
    ctx: NodeCtx,
    value: Any,
    op: AssocOp,
    *,
    inclusive: bool = True,
    q: int | None = None,
    local_rank: int | None = None,
    global_dims: Sequence[int] | None = None,
):
    """SPMD phase computing (t, s) over a q-dimensional (sub)cube.

    Parameters
    ----------
    value:
        This node's input ``c[u]``.
    inclusive:
        Algorithm 1's ``tag``: inclusive prefix when true, diminished
        (excluding ``c[u]``) when false.
    q, local_rank, global_dims:
        The embedding of the subcube: ``local_rank`` is this node's rank
        within it (default: the node's own rank), ``global_dims[i]`` the
        address bit that realizes local dimension ``i`` (default: identity).
        `D_prefix` passes the cluster's node ID and its intra-cluster
        dimension map here, running one instance per cluster in parallel.

    Yields communication requests; *returns* ``(t, s)``.
    """
    topo = ctx.topo
    if q is None:
        if not isinstance(topo, Hypercube):
            raise TypeError(
                "q/local_rank/global_dims must be given unless running on a "
                f"Hypercube (got {topo.name})"
            )
        q = topo.q
    if local_rank is None:
        local_rank = ctx.rank
    if global_dims is None:
        global_dims = range(q)

    t = value
    s = value if inclusive else op.identity
    for i, gdim in zip(range(q), global_dims):
        partner = ctx.rank ^ (1 << gdim)
        temp = yield SendRecv(partner, t)
        ctx.compute(2)  # one round: t-fold plus (conditional) s-fold
        if (local_rank >> i) & 1:
            # Upper half: the sibling subcube holds earlier indices.
            s = op(temp, s)
            t = op(temp, t)
        else:
            t = op(t, temp)
    return t, s


def cube_prefix(
    cube: Hypercube,
    values,
    op: AssocOp,
    *,
    inclusive: bool = True,
    trace: TraceRecorder | None = None,
):
    """Run Algorithm 1 on the cycle-accurate engine.

    Returns ``(t_list, s_list, result)`` where ``t_list[u]``/``s_list[u]``
    are node ``u``'s outputs and ``result`` the
    :class:`~repro.simulator.engine.EngineResult` with cost counters.
    """
    vals = list(values)
    if len(vals) != cube.num_nodes:
        raise ValueError(
            f"expected {cube.num_nodes} values for {cube.name}, got {len(vals)}"
        )

    def program(ctx):
        t, s = yield from cube_prefix_program(
            ctx, vals[ctx.rank], op, inclusive=inclusive
        )
        return (t, s)

    result = run_spmd(cube, program, trace=trace)
    t_list = [r[0] for r in result.returns]
    s_list = [r[1] for r in result.returns]
    return t_list, s_list, result


def ascend_rounds_vec(
    t: np.ndarray,
    s: np.ndarray,
    q: int,
    partner_index_fn,
    upper_mask_fn,
    op: AssocOp,
    counters: CostCounters | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The q ascend rounds on whole-network arrays (vectorized backend core).

    ``partner_index_fn(i)`` maps local round ``i`` to the partner-index
    array; ``upper_mask_fn(i)`` to the boolean "upper half" mask.  Shared
    by the standalone hypercube prefix (trivial embeddings) and by
    `D_prefix` (per-class embeddings), so the exchange arithmetic exists
    once.
    """
    for i in range(q):
        partners = partner_index_fn(i)
        upper = upper_mask_fn(i)
        temp = t[partners]
        t = np.where(upper, combine_arrays(op, temp, t), combine_arrays(op, t, temp))
        s = np.where(upper, combine_arrays(op, temp, s), s)
        if counters is not None:
            counters.record_comm_step(messages=len(t))
            counters.record_comp_step(ops_each=2)
    return t, s


def cube_prefix_vec(
    values,
    op: AssocOp,
    *,
    inclusive: bool = True,
    counters: CostCounters | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Algorithm 1 over ``2**q`` values; returns ``(t, s)`` arrays."""
    vals = np.asarray(values)
    n = len(vals)
    if n == 0 or n & (n - 1):
        raise ValueError(f"value count must be a power of two, got {n}")
    q = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    t = vals.copy()
    s = vals.copy() if inclusive else op.identity_array(n)
    return ascend_rounds_vec(
        t,
        s,
        q,
        lambda i: idx ^ (1 << i),
        lambda i: (idx >> i) & 1 == 1,
        op,
        counters,
    )
