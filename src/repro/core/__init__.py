"""The paper's algorithms: parallel prefix and sorting in the dual-cube.

Every algorithm exists in two executions:

* an **engine program** — SPMD generator run on the cycle-accurate
  simulator, which *measures* communication/computation steps under the
  1-port model (this is what validates Theorems 1 and 2);
* a **vectorized backend** — the whole network state as NumPy arrays with
  dimension exchanges as index permutations, which runs orders of
  magnitude faster and is used for large-n benchmarks and traces.

plus two derived high-throughput executions:

* a **columnar backend** — structured-array node state with in-place view
  combines, scaling the same schedules to D_9-D_11;
* a **replay backend** — the communication schedule compiled once (and
  cached) into a straight-line plan of permutations and masks, the
  fastest option on repeat runs and the only one with per-cluster
  multiprocessing sharding.

Backend selection is declarative: every entry point dispatches through
:mod:`repro.core.backends`, where each backend registers its
capabilities (counters/trace/profiler/shards support, return shape)
exactly once.  All executions are cross-checked against each other and
against sequential oracles in the test suite.
"""

from repro.core.ops import (
    AssocOp,
    ADD,
    MUL,
    MIN,
    MAX,
    CONCAT,
    MATMUL2,
    combine_arrays,
    combine_into,
)
from repro.core.arrangement import (
    arranged_index,
    arranged_index_v,
    arrange,
    dearrange,
)
from repro.core.cube_prefix import (
    cube_prefix,
    cube_prefix_vec,
    cube_prefix_program,
)
from repro.core.dual_prefix import (
    dual_prefix,
    dual_prefix_program,
    dual_prefix_vec,
    dual_prefix_engine,
    dual_suffix_vec,
)
from repro.core.backends import (
    BackendSpec,
    backend_names,
    backend_spec,
    entry_points,
    resolve_backend,
)
from repro.core.bitonic import (
    is_bitonic,
    hypercube_bitonic_sort,
    hypercube_bitonic_sort_vec,
    hypercube_bitonic_sort_engine,
    hypercube_bitonic_sort_columnar,
    bitonic_schedule,
)
from repro.core.dual_sort import (
    dual_sort,
    dual_sort_vec,
    dual_sort_engine,
    dual_sort_schedule,
    schedule_program,
    ScheduleStep,
)
from repro.core.large_inputs import (
    large_prefix,
    large_prefix_vec,
    large_prefix_engine,
    large_sort,
    large_sort_vec,
)
from repro.core.columnar import (
    dual_prefix_columnar,
    execute_schedule_columnar,
    dual_sort_columnar,
    large_prefix_columnar,
    large_sort_columnar,
)
from repro.core.replay import (
    clear_plan_cache,
    dual_prefix_replay,
    dual_sort_replay,
    execute_schedule_replay,
    hypercube_bitonic_sort_replay,
    large_prefix_replay,
    large_sort_replay,
    plan_cache_stats,
    registry_from_plan_cache,
)
from repro.core.emulation import (
    emulated_cube_prefix,
    emulated_cube_prefix_vec,
    exchange_algorithm_program,
    run_exchange_algorithm_engine,
    run_exchange_algorithm_vec,
    emulation_comm_steps,
)
from repro.core.ring_sort import (
    ring_sort_engine,
    ring_sort_program,
    ring_sort_vec,
    ring_sort_steps,
)
from repro.core.sorting_networks import (
    bitonic_sort_network,
    odd_even_merge_sort_network,
    schedule_to_network,
    apply_network,
    network_depth,
    comparator_count,
    verify_zero_one,
    is_dimension_exchange_network,
)
from repro.core.run_faulty import FaultyRunResult, build_faulty_program, run_faulty
from repro.core.verify import (
    check_prefix,
    check_sorted,
    is_permutation_of,
    sequential_prefix,
)

__all__ = [
    "AssocOp",
    "ADD",
    "MUL",
    "MIN",
    "MAX",
    "CONCAT",
    "MATMUL2",
    "combine_arrays",
    "combine_into",
    "arranged_index",
    "arranged_index_v",
    "arrange",
    "dearrange",
    "cube_prefix",
    "cube_prefix_vec",
    "cube_prefix_program",
    "dual_prefix",
    "dual_prefix_program",
    "dual_prefix_vec",
    "dual_prefix_engine",
    "dual_suffix_vec",
    "BackendSpec",
    "backend_names",
    "backend_spec",
    "entry_points",
    "resolve_backend",
    "is_bitonic",
    "hypercube_bitonic_sort",
    "hypercube_bitonic_sort_vec",
    "hypercube_bitonic_sort_engine",
    "hypercube_bitonic_sort_columnar",
    "bitonic_schedule",
    "dual_sort",
    "dual_sort_vec",
    "dual_sort_engine",
    "dual_sort_schedule",
    "schedule_program",
    "ScheduleStep",
    "large_prefix",
    "large_prefix_vec",
    "large_prefix_engine",
    "large_sort",
    "large_sort_vec",
    "dual_prefix_columnar",
    "execute_schedule_columnar",
    "dual_sort_columnar",
    "large_prefix_columnar",
    "large_sort_columnar",
    "clear_plan_cache",
    "dual_prefix_replay",
    "dual_sort_replay",
    "execute_schedule_replay",
    "hypercube_bitonic_sort_replay",
    "large_prefix_replay",
    "large_sort_replay",
    "plan_cache_stats",
    "registry_from_plan_cache",
    "emulated_cube_prefix",
    "emulated_cube_prefix_vec",
    "exchange_algorithm_program",
    "run_exchange_algorithm_engine",
    "run_exchange_algorithm_vec",
    "emulation_comm_steps",
    "ring_sort_engine",
    "ring_sort_program",
    "ring_sort_vec",
    "ring_sort_steps",
    "bitonic_sort_network",
    "odd_even_merge_sort_network",
    "schedule_to_network",
    "apply_network",
    "network_depth",
    "comparator_count",
    "verify_zero_one",
    "is_dimension_exchange_network",
    "FaultyRunResult",
    "build_faulty_program",
    "run_faulty",
    "check_prefix",
    "check_sorted",
    "is_permutation_of",
    "sequential_prefix",
]
