"""The backend registry: one declaration per (entry point, backend).

Every headline entry point (`dual_prefix`, `dual_sort`, `large_prefix`,
`large_sort`, `hypercube_bitonic_sort`) accepts a ``backend=`` keyword.
Before this registry existed each entry point carried its own if-chain of
string comparisons, and the chains drifted: option sets differed, error
messages disagreed about where the cycle-accurate variant lives, and
capability guards (trace/profiler) were copy-pasted with different
wording.  The registry is the single source of truth:

* each :class:`BackendSpec` declares a backend's **capabilities** (which
  optional features — ``counters``, ``trace``, ``profiler``, ``shards``
  — it honors) and its **return shape** once;
* :func:`resolve_backend` turns ``(entry point, backend name, requested
  features)`` into a runner callable, raising uniformly-worded errors
  for unknown backends and unsupported features;
* runners import their implementation lazily, so importing an entry
  point never drags in the columnar or replay machinery.

The REP007 lint rule enforces the monopoly: inline ``backend == "..."``
string comparisons are forbidden everywhere outside this module.

Four backends exist (not every entry point has all four):

=============  ==============================================================
``engine``     per-rank generator programs on the cycle-accurate simulator;
               returns ``(result_array, EngineResult)``
``vectorized`` whole-network numpy arrays, gather permutations per step
``columnar``   structured-array state, in-place reshape-view combines
               (the D_9-D_11 scale backend)
``replay``     straight-line plans compiled from the extracted
               :class:`~repro.analysis.static.schedule.CommSchedule`
               (:mod:`repro.core.replay`); optional per-cluster
               multiprocessing sharding for the prefix algorithms
=============  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "BackendSpec",
    "FEATURES",
    "backend_names",
    "backend_spec",
    "entry_points",
    "resolve_backend",
]

# Every optional feature a backend may honor, with the reason text used
# when a caller requests it from a backend that does not.  The trace
# wording is pinned by tests (the columnar suite matches on "no per-rank
# values to trace").
_FEATURE_REASONS = {
    "counters": (
        "takes no external counters (the returned EngineResult carries "
        "its own ledger)"
    ),
    "trace": "keeps no per-rank values to trace",
    "profiler": "has no per-phase profiling hooks",
    "shards": "has no multiprocessing sharding",
}

#: The feature names a :class:`BackendSpec` may declare.
FEATURES = frozenset(_FEATURE_REASONS)

# Appended to unknown-backend errors where a separate cycle-accurate
# function exists outside the backend= dispatch.
_ENGINE_HINTS = {
    "large_prefix": "large_prefix_engine is the cycle-accurate entry point",
}


@dataclass(frozen=True)
class BackendSpec:
    """One backend of one entry point: capabilities + lazy runner.

    ``features`` lists the optional keywords the backend honors
    (subset of :data:`FEATURES`); ``returns`` documents the return
    shape; ``loader`` imports the implementation on first use and
    returns the runner callable (every runner of one entry point shares
    that entry point's full keyword surface).
    """

    entry_point: str
    name: str
    features: frozenset
    returns: str
    description: str
    loader: Callable[[], Callable] = field(repr=False)

    def __post_init__(self):
        unknown = self.features - FEATURES
        if unknown:
            raise ValueError(
                f"backend {self.name!r} declares unknown features "
                f"{sorted(unknown)}; known: {sorted(FEATURES)}"
            )


# -- runner adapters (lazy imports; one shared surface per entry point) --------


def _dual_prefix_vectorized() -> Callable:
    from repro.core.dual_prefix import dual_prefix_vec

    def run(dc, values, op, *, inclusive, paper_literal, counters, trace,
            profiler, shards):
        return dual_prefix_vec(
            dc, values, op, inclusive=inclusive, paper_literal=paper_literal,
            counters=counters, trace=trace, profiler=profiler,
        )

    return run


def _dual_prefix_engine() -> Callable:
    from repro.core.dual_prefix import dual_prefix_engine

    def run(dc, values, op, *, inclusive, paper_literal, counters, trace,
            profiler, shards):
        return dual_prefix_engine(
            dc, values, op, inclusive=inclusive, paper_literal=paper_literal,
            trace=trace,
        )

    return run


def _dual_prefix_columnar() -> Callable:
    from repro.core.columnar import dual_prefix_columnar

    def run(dc, values, op, *, inclusive, paper_literal, counters, trace,
            profiler, shards):
        return dual_prefix_columnar(
            dc, values, op, inclusive=inclusive, paper_literal=paper_literal,
            counters=counters,
        )

    return run


def _dual_prefix_replay() -> Callable:
    from repro.core.replay import dual_prefix_replay

    def run(dc, values, op, *, inclusive, paper_literal, counters, trace,
            profiler, shards):
        return dual_prefix_replay(
            dc, values, op, inclusive=inclusive, paper_literal=paper_literal,
            counters=counters, shards=shards,
        )

    return run


def _dual_sort_vectorized() -> Callable:
    from repro.core.dual_sort import dual_sort_vec

    def run(rdc, keys, *, descending, payload_policy, counters, trace,
            profiler):
        return dual_sort_vec(
            rdc, keys, descending=descending, payload_policy=payload_policy,
            counters=counters, trace=trace, profiler=profiler,
        )

    return run


def _dual_sort_engine() -> Callable:
    from repro.core.dual_sort import dual_sort_engine

    def run(rdc, keys, *, descending, payload_policy, counters, trace,
            profiler):
        return dual_sort_engine(
            rdc, keys, descending=descending, payload_policy=payload_policy,
            trace=trace,
        )

    return run


def _dual_sort_columnar() -> Callable:
    from repro.core.columnar import dual_sort_columnar

    def run(rdc, keys, *, descending, payload_policy, counters, trace,
            profiler):
        return dual_sort_columnar(
            rdc, keys, descending=descending, payload_policy=payload_policy,
            counters=counters,
        )

    return run


def _dual_sort_replay() -> Callable:
    from repro.core.replay import dual_sort_replay

    def run(rdc, keys, *, descending, payload_policy, counters, trace,
            profiler):
        return dual_sort_replay(
            rdc, keys, descending=descending, payload_policy=payload_policy,
            counters=counters,
        )

    return run


def _large_prefix_vectorized() -> Callable:
    from repro.core.large_inputs import large_prefix_vec

    def run(dc, values, op, *, counters, profiler, shards):
        return large_prefix_vec(
            dc, values, op, counters=counters, profiler=profiler
        )

    return run


def _large_prefix_columnar() -> Callable:
    from repro.core.columnar import large_prefix_columnar

    def run(dc, values, op, *, counters, profiler, shards):
        return large_prefix_columnar(
            dc, values, op, counters=counters, profiler=profiler
        )

    return run


def _large_prefix_replay() -> Callable:
    from repro.core.replay import large_prefix_replay

    def run(dc, values, op, *, counters, profiler, shards):
        return large_prefix_replay(
            dc, values, op, counters=counters, profiler=profiler,
            shards=shards,
        )

    return run


def _large_sort_vectorized() -> Callable:
    from repro.core.large_inputs import large_sort_vec

    def run(rdc, keys, *, descending, payload_policy, counters, profiler):
        return large_sort_vec(
            rdc, keys, descending=descending, payload_policy=payload_policy,
            counters=counters, profiler=profiler,
        )

    return run


def _large_sort_columnar() -> Callable:
    from repro.core.columnar import large_sort_columnar

    def run(rdc, keys, *, descending, payload_policy, counters, profiler):
        return large_sort_columnar(
            rdc, keys, descending=descending, payload_policy=payload_policy,
            counters=counters, profiler=profiler,
        )

    return run


def _large_sort_replay() -> Callable:
    from repro.core.replay import large_sort_replay

    def run(rdc, keys, *, descending, payload_policy, counters, profiler):
        return large_sort_replay(
            rdc, keys, descending=descending, payload_policy=payload_policy,
            counters=counters, profiler=profiler,
        )

    return run


def _bitonic_vectorized() -> Callable:
    from repro.core.bitonic import hypercube_bitonic_sort_vec

    def run(keys, *, descending, counters, trace):
        return hypercube_bitonic_sort_vec(
            keys, descending=descending, counters=counters, trace=trace
        )

    return run


def _bitonic_engine() -> Callable:
    from repro.core.bitonic import _sort_cube, hypercube_bitonic_sort_engine

    def run(keys, *, descending, counters, trace):
        arr = list(keys)
        cube = _sort_cube(len(arr))
        return hypercube_bitonic_sort_engine(
            cube, arr, descending=descending, trace=trace
        )

    return run


def _bitonic_columnar() -> Callable:
    from repro.core.bitonic import hypercube_bitonic_sort_columnar

    def run(keys, *, descending, counters, trace):
        return hypercube_bitonic_sort_columnar(
            keys, descending=descending, counters=counters
        )

    return run


def _bitonic_replay() -> Callable:
    from repro.core.replay import hypercube_bitonic_sort_replay

    def run(keys, *, descending, counters, trace):
        return hypercube_bitonic_sort_replay(
            keys, descending=descending, counters=counters
        )

    return run


# -- the registry --------------------------------------------------------------

_ARRAY = "result array"
_PAIR = "(result array, EngineResult)"


def _spec(entry: str, name: str, features, returns: str, description: str,
          loader: Callable[[], Callable]) -> BackendSpec:
    return BackendSpec(
        entry_point=entry,
        name=name,
        features=frozenset(features),
        returns=returns,
        description=description,
        loader=loader,
    )


_REGISTRY: dict[str, dict[str, BackendSpec]] = {}
for _s in (
    _spec("dual_prefix", "vectorized", ("counters", "trace", "profiler"),
          _ARRAY, "numpy gathers per round (default)",
          _dual_prefix_vectorized),
    _spec("dual_prefix", "engine", ("trace",), _PAIR,
          "cycle-accurate SPMD generators", _dual_prefix_engine),
    _spec("dual_prefix", "columnar", ("counters",), _ARRAY,
          "structured-array in-place combines (D_9-D_11)",
          _dual_prefix_columnar),
    _spec("dual_prefix", "replay", ("counters", "shards"), _ARRAY,
          "compiled straight-line plan; optional per-cluster sharding",
          _dual_prefix_replay),
    _spec("dual_sort", "vectorized", ("counters", "trace", "profiler"),
          _ARRAY, "numpy gathers per compare-exchange step (default)",
          _dual_sort_vectorized),
    _spec("dual_sort", "engine", ("trace",), _PAIR,
          "cycle-accurate SPMD generators", _dual_sort_engine),
    _spec("dual_sort", "columnar", ("counters",), _ARRAY,
          "reshape-view compare-exchanges (D_9-D_11)", _dual_sort_columnar),
    _spec("dual_sort", "replay", ("counters",), _ARRAY,
          "compiled straight-line compare-exchange plan", _dual_sort_replay),
    _spec("large_prefix", "vectorized", ("counters", "profiler"), _ARRAY,
          "blocked numpy prefix (default)", _large_prefix_vectorized),
    _spec("large_prefix", "columnar", ("counters", "profiler"), _ARRAY,
          "blocked structured-array prefix (D_9-D_11)",
          _large_prefix_columnar),
    _spec("large_prefix", "replay", ("counters", "profiler", "shards"),
          _ARRAY, "compiled network phase; optional per-cluster sharding",
          _large_prefix_replay),
    _spec("large_sort", "vectorized", ("counters", "profiler"), _ARRAY,
          "blocked merge-split sort (default)", _large_sort_vectorized),
    _spec("large_sort", "columnar", ("counters", "profiler"), _ARRAY,
          "blocked reshape-view merge-splits (D_9-D_11)",
          _large_sort_columnar),
    _spec("large_sort", "replay", ("counters", "profiler"), _ARRAY,
          "compiled merge-split plan", _large_sort_replay),
    _spec("bitonic", "vectorized", ("counters", "trace"), _ARRAY,
          "numpy Batcher network (default)", _bitonic_vectorized),
    _spec("bitonic", "engine", ("trace",), _PAIR,
          "cycle-accurate SPMD generators", _bitonic_engine),
    _spec("bitonic", "columnar", ("counters",), _ARRAY,
          "reshape-view Batcher network", _bitonic_columnar),
    _spec("bitonic", "replay", ("counters",), _ARRAY,
          "compiled straight-line Batcher plan", _bitonic_replay),
):
    _REGISTRY.setdefault(_s.entry_point, {})[_s.name] = _s
del _s


def entry_points() -> tuple[str, ...]:
    """All registered entry points, sorted."""
    return tuple(sorted(_REGISTRY))


def backend_names(entry_point: str) -> tuple[str, ...]:
    """The backend names registered for ``entry_point``, sorted."""
    return tuple(sorted(_table(entry_point)))


def backend_spec(entry_point: str, name: str) -> BackendSpec:
    """The :class:`BackendSpec` of one backend (raises like the dispatch)."""
    table = _table(entry_point)
    spec = table.get(name)
    if spec is None:
        raise ValueError(_unknown_backend_message(entry_point, name, table))
    return spec


def _table(entry_point: str) -> dict[str, BackendSpec]:
    table = _REGISTRY.get(entry_point)
    if table is None:
        raise ValueError(
            f"unknown entry point {entry_point!r}; "
            f"known: {', '.join(sorted(_REGISTRY))}"
        )
    return table


def _unknown_backend_message(
    entry_point: str, name: str, table: dict[str, BackendSpec]
) -> str:
    opts = ", ".join(repr(k) for k in sorted(table))
    hint = _ENGINE_HINTS.get(entry_point)
    suffix = f" ({hint})" if hint else ""
    return (
        f"unknown backend {name!r} for {entry_point}; "
        f"choose one of {opts}{suffix}"
    )


def resolve_backend(entry_point: str, name: str, **requested) -> Callable:
    """Resolve ``(entry point, backend)`` into a runner callable.

    ``requested`` maps feature names (see :data:`FEATURES`) to booleans:
    a feature marked True that the chosen backend does not declare raises
    a uniformly-worded ``ValueError`` naming the backends that do support
    it.  The returned runner takes the entry point's full keyword surface
    (the registry's adapters drop keywords their backend does not use —
    the feature check guarantees those are ``None``).
    """
    table = _table(entry_point)
    spec = table.get(name)
    if spec is None:
        raise ValueError(_unknown_backend_message(entry_point, name, table))
    for feature, wanted in requested.items():
        if feature not in _FEATURE_REASONS:
            raise ValueError(
                f"unknown backend feature {feature!r}; "
                f"known: {', '.join(sorted(_FEATURE_REASONS))}"
            )
        if wanted and feature not in spec.features:
            supported = ", ".join(
                repr(k) for k, s in sorted(table.items())
                if feature in s.features
            )
            raise ValueError(
                f"the {name!r} backend of {entry_point} "
                f"{_FEATURE_REASONS[feature]}; "
                f"{feature} is supported by: {supported}"
            )
    return spec.loader()
