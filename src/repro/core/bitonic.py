"""Bitonic machinery and the hypercube baseline sort (paper Section 5).

A sequence is *bitonic* when it rises then falls, falls then rises, or is
a cyclic rotation of such a sequence.  Batcher's bitonic sort on an n-cube
sorts 2^n keys in n(n+1)/2 compare-exchange steps; the paper's dual-cube
sort emulates exactly this network, so the hypercube version implemented
here is both the correctness oracle and the comparison baseline for
Theorem 2.

The network is expressed as an explicit schedule of
:class:`~repro.core.dual_sort.ScheduleStep` records (dimension +
per-node direction rule), the same representation the dual-cube sort
uses — one schedule executor, two networks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.dual_sort import (
    ScheduleStep,
    execute_schedule_engine,
    execute_schedule_vec,
)
from repro.simulator import CostCounters, TraceRecorder
from repro.topology.hypercube import Hypercube

__all__ = [
    "is_bitonic",
    "bitonic_schedule",
    "hypercube_bitonic_sort",
    "hypercube_bitonic_sort_vec",
    "hypercube_bitonic_sort_engine",
    "hypercube_bitonic_sort_columnar",
]


def _sort_cube(n: int) -> Hypercube:
    """The hypercube sorting ``n`` keys (``n`` must be a power of two)."""
    if n == 0 or n & (n - 1):
        raise ValueError(f"key count must be a power of two, got {n}")
    return Hypercube(n.bit_length() - 1)


def is_bitonic(seq: Sequence) -> bool:
    """Whether ``seq`` is bitonic in the paper's (cyclic) sense.

    Equal neighbors are ignored; the remaining cyclic sequence of
    rise/fall signs must change direction at most twice.
    """
    items = list(seq)
    n = len(items)
    if n <= 2:
        return True
    signs = []
    for k in range(n):
        a, b = items[k], items[(k + 1) % n]
        if a < b:
            signs.append(1)
        elif a > b:
            signs.append(-1)
    if not signs:
        return True
    changes = sum(
        1 for k in range(len(signs)) if signs[k] != signs[(k + 1) % len(signs)]
    )
    return changes <= 2


def bitonic_schedule(q: int, *, descending: bool = False) -> list[ScheduleStep]:
    """Batcher's bitonic sorting network for 2^q keys as a step schedule.

    Stage ``k`` (1-based) merges bitonic blocks of size 2^k with descend
    steps over dimensions ``k-1 .. 0``; within stage ``k < q`` a node's
    direction is address bit ``k`` (blocks alternate), and the final stage
    uses the requested overall direction.  Total steps: q(q+1)/2.
    """
    if q < 0:
        raise ValueError(f"cube dimension must be >= 0, got {q}")
    steps: list[ScheduleStep] = []
    for k in range(1, q + 1):
        for j in range(k - 1, -1, -1):
            if k < q:
                steps.append(ScheduleStep(dim=j, dir_kind="bit", dir_val=k))
            else:
                steps.append(
                    ScheduleStep(dim=j, dir_kind="const", dir_val=int(descending))
                )
    return steps


def hypercube_bitonic_sort_vec(
    keys,
    *,
    descending: bool = False,
    counters: CostCounters | None = None,
    trace: TraceRecorder | None = None,
) -> np.ndarray:
    """Vectorized Batcher bitonic sort of ``2**q`` keys (the E7 baseline)."""
    arr = np.asarray(keys)
    cube = _sort_cube(len(arr))
    sched = bitonic_schedule(cube.q, descending=descending)
    return execute_schedule_vec(cube, arr, sched, counters=counters, trace=trace)


def hypercube_bitonic_sort_columnar(
    keys,
    *,
    descending: bool = False,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Columnar Batcher bitonic sort of ``2**q`` keys.

    Results and counters mirror :func:`hypercube_bitonic_sort_vec`
    exactly; the schedule executes through
    :func:`~repro.core.columnar.execute_schedule_columnar`'s in-place
    reshape views (every hypercube dimension is direct, so the executor's
    dual-cube relay machinery never engages).
    """
    from repro.core.columnar import execute_schedule_columnar

    arr = np.asarray(keys)
    cube = _sort_cube(len(arr))
    sched = bitonic_schedule(cube.q, descending=descending)
    return execute_schedule_columnar(cube, arr, sched, counters=counters)


def hypercube_bitonic_sort_engine(
    cube: Hypercube,
    keys,
    *,
    descending: bool = False,
    trace: TraceRecorder | None = None,
):
    """Cycle-accurate Batcher bitonic sort; returns ``(keys, EngineResult)``."""
    sched = bitonic_schedule(cube.q, descending=descending)
    return execute_schedule_engine(cube, keys, sched, trace=trace)


def hypercube_bitonic_sort(
    keys,
    *,
    descending: bool = False,
    backend: str = "vectorized",
    counters: CostCounters | None = None,
    trace: TraceRecorder | None = None,
):
    """Bitonic sort on the hypercube (baseline public entry point).

    ``backend`` selects ``"vectorized"``, ``"columnar"``, ``"replay"``
    (identical results and counters), or ``"engine"`` (cycle-accurate;
    returns ``(keys, EngineResult)``); capabilities are declared in
    :mod:`repro.core.backends`.
    """
    from repro.core.backends import resolve_backend

    run = resolve_backend(
        "bitonic",
        backend,
        counters=counters is not None,
        trace=trace is not None,
    )
    return run(keys, descending=descending, counters=counters, trace=trace)
