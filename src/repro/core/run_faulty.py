"""Drive the paper's algorithms on a network with faults.

The dual-cube algorithms (Algorithms 2 and 3) are lockstep-symmetric:
every rank must participate in every exchange, so a crashed node or a cut
link stops them cold.  :func:`run_faulty` provides the recovery story the
fault-tolerance experiments need, in three modes (see ``docs/model.md``,
"Fault model and recovery semantics"):

* ``mode="degraded"`` — graceful degradation under *permanent* faults (a
  :class:`~repro.topology.faults.FaultSet`): the surviving ranks complete
  the scan/sort over the healthy subgraph via a BFS-spanning-tree
  gather/compute/scatter collective, and the result reports exactly which
  ranks were excluded (faulty, or healthy but unreachable from the root).
  D_n is n-connected, so with f <= n-1 node faults nothing healthy is
  ever excluded.
* ``mode="reroute"`` — same degraded semantics, but every value travels
  by store-and-forward along the walk
  :func:`~repro.routing.fault_tolerant.adaptive_route` finds (falling
  back to :func:`~repro.routing.fault_tolerant.ft_route` on topologies
  without the dual-cube distance metric).  Hops execute in one global
  deterministic order, which makes the schedule trivially deadlock-free:
  the earliest unfinished hop always has both endpoints ready.
* ``mode="retry"`` — the *real* lockstep algorithms run under a
  transient-fault :class:`~repro.simulator.faults.FaultPlan` (message
  drops, delays, and *downtime* intervals — nodes offline for a bounded
  window, as in churn or a rolling restart); the engine's blocking-drop
  and hold-while-offline semantics make the lockstep pair retry/stall
  until delivery, so the output equals the fault-free output while the
  cost ledger records every drop and retry.  (Pairing a downtime with
  ``on_timeout="cancel"`` lets partners give up instead, which *can*
  corrupt results — exactly the correctness violations the campaign
  driver in :mod:`repro.simulator.campaign` hunts for.)  Permanent
  faults (crashes, link cuts) are rejected here — lockstep programs
  cannot complete without every rank.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.arrangement import arranged_index_v
from repro.core.dual_prefix import dual_prefix_engine
from repro.core.dual_sort import dual_sort_engine
from repro.core.ops import ADD, AssocOp
from repro.routing.fault_tolerant import adaptive_route, ft_route
from repro.simulator.counters import Packed
from repro.simulator.engine import EngineResult, run_spmd, use_fault_plan
from repro.simulator.faults import FaultPlan
from repro.simulator.requests import Recv, Send
from repro.topology.dualcube import DualCube
from repro.topology.faults import FaultSet, FaultyTopology

__all__ = ["FaultyRunResult", "build_faulty_program", "run_faulty"]

_KINDS = ("prefix", "sort")
_MODES = ("degraded", "reroute", "retry")


@dataclass
class FaultyRunResult:
    """Outcome of one fault-tolerant run.

    ``values`` has one slot per node — input-index order for ``prefix``
    (``values[k]`` is the scan over the *surviving* inputs through input
    ``k``), node-address order for ``sort`` (surviving keys sorted onto
    healthy addresses ascending) — with ``None`` at every excluded slot.
    """

    values: list
    excluded: tuple[int, ...]
    healthy: tuple[int, ...]
    result: EngineResult
    mode: str
    kind: str = field(default="")

    @property
    def comm_steps(self) -> int:
        return self.result.comm_steps


def _pack(d: dict) -> Packed:
    """Dict payload as a Packed so the ledger counts its true item load."""
    return Packed(tuple(sorted(d.items())))


def _unpack(p: Packed) -> dict:
    return dict(p.items)


def _bfs_tree(ftopo: FaultyTopology, root: int):
    """Parent/children maps and subtree node-sets of the healthy BFS tree."""
    parent: dict[int, int | None] = {root: None}
    children: dict[int, list[int]] = {root: []}
    order = [root]
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in ftopo.neighbors(u):
            if v not in parent:
                parent[v] = u
                children[v] = []
                children[u].append(v)
                order.append(v)
                queue.append(v)
    subtree: dict[int, set[int]] = {u: {u} for u in parent}
    for u in reversed(order):
        p = parent[u]
        if p is not None:
            subtree[p] |= subtree[u]
    return parent, children, subtree


def _tree_collective(ftopo, parent, children, subtree, contrib, finish):
    """SPMD program: gather ``contrib`` up the tree, ``finish`` at the
    root, scatter each rank's output back down.  Ranks outside the tree
    return ``None`` without communicating."""

    def program(ctx):
        rank = ctx.rank
        if rank not in parent:
            return None
        acc = {rank: contrib[rank]}
        for child in sorted(children[rank]):
            got = yield Recv(child)
            acc.update(_unpack(got))
        up = parent[rank]
        if up is None:
            ctx.compute(max(1, len(acc)))
            out = finish(acc)
        else:
            yield Send(up, _pack(acc))
            got = yield Recv(up)
            out = _unpack(got)
        for child in sorted(children[rank]):
            sub = {w: out[w] for w in subtree[child]}
            yield Send(child, _pack(sub))
        return out[rank]

    return program


def _route_collective(ftopo, root, routes, contrib, finish):
    """SPMD program: store-and-forward every contribution to the root
    along its route, ``finish`` there, forward the outputs back out.

    ``routes[w]`` is the walk ``root -> w``; hops run in one global
    deterministic order (ascending rank, then hop position), so the
    earliest unfinished hop always has both endpoints at it — no
    deadlock, no idle padding needed.
    """
    members = sorted(routes)
    up_hops: list[tuple[int, int, int]] = []  # (src, dst, owner w)
    down_hops: list[tuple[int, int, int]] = []
    for w in members:
        if w == root:
            continue
        walk = routes[w]
        for a, b in zip(walk, walk[1:]):
            down_hops.append((a, b, w))
        rev = walk[::-1]
        for a, b in zip(rev, rev[1:]):
            up_hops.append((a, b, w))

    def program(ctx):
        rank = ctx.rank
        if rank not in routes:
            return None
        store: dict[tuple[str, int], object] = {}
        if rank in contrib:
            store[("val", rank)] = contrib[rank]
        for src, dst, w in up_hops:
            if rank == src:
                yield Send(dst, store.pop(("val", w)))
            elif rank == dst:
                store[("val", w)] = yield Recv(src)
        out = None
        if rank == root:
            gathered = {w: store[("val", w)] for w in members}
            ctx.compute(max(1, len(gathered)))
            outmap = finish(gathered)
            for w in members:
                store[("out", w)] = outmap[w]
            out = outmap[root]
        for src, dst, w in down_hops:
            if rank == src:
                yield Send(dst, store.pop(("out", w)))
            elif rank == dst:
                store[("out", w)] = yield Recv(src)
                if w == rank:
                    out = store[("out", w)]
        return out

    return program


def _prefix_finish(dc: DualCube, data, op: AssocOp):
    """Root-side reduction: inclusive scan over surviving inputs in input
    order, delivered back keyed by rank."""
    arr = arranged_index_v(dc)

    def finish(gathered: dict) -> dict:
        pairs = sorted((int(arr[r]), r) for r in gathered)
        out = {}
        acc = op.identity
        for _, r in pairs:
            acc = op.fn(acc, gathered[r])
            out[r] = acc
        return out

    return finish


def _sort_finish(descending: bool):
    """Root-side reduction: surviving keys sorted onto the surviving
    addresses in ascending address order."""

    def finish(gathered: dict) -> dict:
        keys = sorted(gathered.values(), reverse=descending)
        return dict(zip(sorted(gathered), keys))

    return finish


def build_faulty_program(
    kind: str,
    topo,
    data,
    *,
    op: AssocOp = ADD,
    faults: FaultSet | None = None,
    mode: str = "degraded",
    descending: bool = False,
):
    """Construct the recovery collective :func:`run_faulty` would execute.

    Returns ``(program, ftopo, members)``: the SPMD program, the
    :class:`FaultyTopology` it must run on, and the sorted participating
    ranks.  Only the ``degraded`` and ``reroute`` modes build a dedicated
    program (``retry`` runs the unmodified lockstep algorithms, whose
    programs come from :func:`~repro.core.dual_prefix.dual_prefix_program`
    and :func:`~repro.core.dual_sort.schedule_program`).  Exposed so the
    static schedule analyzer (:mod:`repro.analysis.static`) can verify
    reroute/degraded schedules — edge legality over the healthy subgraph,
    deadlock freedom — without running them.
    """
    if kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
    if mode not in ("degraded", "reroute"):
        raise ValueError(
            f"mode must be 'degraded' or 'reroute', got {mode!r}"
        )
    n = topo.num_nodes
    data = list(data)
    if len(data) != n:
        raise ValueError(f"expected {n} data items for {topo.name}, got {len(data)}")
    faults = faults if faults is not None else FaultSet()
    ftopo = FaultyTopology(topo, faults)
    healthy = ftopo.healthy_nodes()
    root = min(healthy)

    if mode == "degraded":
        parent, children, subtree = _bfs_tree(ftopo, root)
        members = sorted(parent)
    else:  # reroute
        is_dc = isinstance(topo, DualCube)
        routes: dict[int, list[int]] = {root: [root]}
        for w in healthy:
            if w == root:
                continue
            walk = (
                adaptive_route(ftopo, topo, root, w)
                if is_dc
                else ft_route(ftopo, root, w)
            )
            if walk is not None:
                routes[w] = walk
        members = sorted(routes)

    contrib = {}
    if kind == "prefix":
        arr = arranged_index_v(topo)
        for r in members:
            contrib[r] = data[int(arr[r])]
        finish = _prefix_finish(topo, data, op)
    else:
        for r in members:
            contrib[r] = data[r]
        finish = _sort_finish(descending)

    if mode == "degraded":
        program = _tree_collective(
            ftopo, parent, children, subtree, contrib, finish
        )
    else:
        program = _route_collective(ftopo, root, routes, contrib, finish)
    return program, ftopo, members


def run_faulty(
    kind: str,
    topo,
    data,
    *,
    op: AssocOp = ADD,
    faults: FaultSet | None = None,
    plan: FaultPlan | None = None,
    mode: str = "degraded",
    descending: bool = False,
) -> FaultyRunResult:
    """Run ``dual_prefix``/``dual_sort`` semantics on a faulty network.

    Parameters
    ----------
    kind:
        ``"prefix"`` (``topo`` a :class:`DualCube`, ``data`` the input
        sequence in input-index order) or ``"sort"`` (``topo`` a
        recursive-presentation dual-cube, ``data`` keys in node-address
        order).
    faults:
        Permanent faults for ``degraded``/``reroute`` modes.
    plan:
        Transient-fault schedule for ``retry`` mode (drops, delays and
        bounded downtime intervals; crashes/cuts are rejected).
    mode:
        ``"degraded"`` | ``"reroute"`` | ``"retry"`` — see module docs.
    """
    if kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    n = topo.num_nodes
    data = list(data)
    if len(data) != n:
        raise ValueError(f"expected {n} data items for {topo.name}, got {len(data)}")

    if mode == "retry":
        if plan is None:
            raise ValueError("mode='retry' needs a FaultPlan (transient faults)")
        if plan.node_crashes or plan.link_cuts:
            raise ValueError(
                "mode='retry' runs the lockstep algorithms, which cannot "
                "complete under permanent faults; use mode='degraded' or "
                "'reroute' for node crashes and link cuts"
            )
        if faults is not None and (faults.nodes or faults.links):
            raise ValueError("mode='retry' takes transient faults via plan=")
        with use_fault_plan(plan):
            if kind == "prefix":
                out, result = dual_prefix_engine(topo, data, op)
            else:
                out, result = dual_sort_engine(
                    topo, data, descending=descending
                )
        return FaultyRunResult(
            values=list(out),
            excluded=(),
            healthy=tuple(range(n)),
            result=result,
            mode=mode,
            kind=kind,
        )

    if plan is not None and not plan.is_empty:
        raise ValueError(
            f"mode={mode!r} models permanent faults via faults=; transient "
            f"plans belong to mode='retry'"
        )
    program, ftopo, members = build_faulty_program(
        kind, topo, data, op=op, faults=faults, mode=mode,
        descending=descending,
    )

    result = run_spmd(ftopo, program)

    values: list = [None] * n
    if kind == "prefix":
        arr = arranged_index_v(topo)
        for r in members:
            values[int(arr[r])] = result.returns[r]
    else:
        for r in members:
            values[r] = result.returns[r]
    excluded = tuple(sorted(set(range(n)) - set(members)))
    return FaultyRunResult(
        values=values,
        excluded=excluded,
        healthy=tuple(members),
        result=result,
        mode=mode,
        kind=kind,
    )
