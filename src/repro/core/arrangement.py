"""The D_prefix data arrangement (paper Section 3).

`D_prefix` requires the input indices held inside every cluster to be
consecutive.  Class-0 addresses already are (the node ID is the low field),
but class-1 addresses interleave cluster and node IDs the other way round,
so node ``u`` of class 1 holds ``c[u*]`` where ``u*`` swaps the two
(n-1)-bit fields: ``u* = (1, cluster_ID(u), node_ID(u))``.

With this arrangement, class-0 cluster ``k`` holds block ``k`` of the first
half of ``c`` and class-1 cluster ``k`` holds block ``k`` of the second
half, each block in node-ID order — the property every correctness argument
in `D_prefix` rests on (and which ablation A2 demonstrates by dropping it).
"""

from __future__ import annotations

import numpy as np

from repro._bits import swap_fields, swap_fields_v
from repro.topology.dualcube import DualCube

__all__ = ["arranged_index", "arranged_index_v", "arrange", "dearrange"]


def arranged_index(dc: DualCube, u: int) -> int:
    """The global input index ``u*`` whose value node ``u`` holds."""
    dc.check_node(u)
    if dc.class_of(u) == 0:
        return u
    m = dc.cluster_dim
    if m == 0:
        return u
    return swap_fields(u, 0, m, m)


def arranged_index_v(dc: DualCube, u=None) -> np.ndarray:
    """Vectorized :func:`arranged_index` (defaults to all nodes)."""
    if u is None:
        u = dc.all_nodes_array()
    u = np.asarray(u, dtype=np.int64)
    m = dc.cluster_dim
    if m == 0:
        return u.copy()
    swapped = swap_fields_v(u, 0, m, m)
    return np.where(dc.class_of_v(u) == 1, swapped, u)


def arrange(dc: DualCube, values) -> np.ndarray:
    """Distribute input ``values`` onto nodes: node ``u`` gets ``values[u*]``.

    ``values`` must have exactly one entry per node.  Returns an array in
    node order (numeric dtype preserved, otherwise object).
    """
    arr = np.asarray(values)
    if arr.shape != (dc.num_nodes,):
        raise ValueError(
            f"expected {dc.num_nodes} values for {dc.name}, got shape {arr.shape}"
        )
    return arr[arranged_index_v(dc)]


def dearrange(dc: DualCube, held) -> np.ndarray:
    """Inverse of :func:`arrange`: gather per-node state back to input order.

    ``out[u*] = held[u]`` — used to report prefix results indexed like the
    input sequence ``c``.
    """
    arr = np.asarray(held)
    if arr.shape != (dc.num_nodes,):
        raise ValueError(
            f"expected {dc.num_nodes} held values for {dc.name}, got shape {arr.shape}"
        )
    out = np.empty_like(arr)
    out[arranged_index_v(dc)] = arr
    return out
