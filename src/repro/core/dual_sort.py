"""Algorithm 3 — D_sort: bitonic sorting in the dual-cube.

The recursive-structure technique (paper Section 6), expressed as an
explicit *schedule* of compare-exchange steps over the recursive
presentation:

* ``D_sort(D_1, tag)`` is one compare-exchange over dimension 0;
* ``D_sort(D_n, tag)`` recursively sorts the four D_{n-1} copies in
  alternating directions (direction = address bit 2n-3), then runs a
  (2n-2)-step descend merge over dimensions 2n-3..0 directed by address
  bit 2n-2 (ascending lower half, descending upper half — yielding one
  bitonic sequence over all of D_n), then a (2n-1)-step descend merge over
  dimensions 2n-2..0 directed by ``tag``.

Because the algorithm is oblivious, the whole recursion unrolls into a
flat list of :class:`ScheduleStep` — 2n² - n steps — executed by either
backend.  The same executor runs Batcher's network on the hypercube
(:mod:`repro.core.bitonic`), so baseline and dual-cube sorts differ *only*
in topology and schedule, which is exactly what Theorem 2 compares.

Communication cost per step: 1 cycle when every pair has a direct link
(dimension 0, or any dimension on the hypercube); otherwise the supported
half relays for the unsupported half over two cross-edges (paper
Section 6).  Under the 1-port model the paper's 3-time-unit claim is
achievable only if the middle hop carries two keys per message (the
relayed key packed with the relay's own key) — the default
``payload_policy="packed"``.  With strict one-key messages
(``payload_policy="single"``) the step needs 4 cycles; benchmark E8
quantifies both (see DESIGN.md, reconstruction notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs.profile import NULL_PROFILER
from repro.simulator import (
    CostCounters,
    Idle,
    Packed,
    Recv,
    Send,
    SendRecv,
    TraceRecorder,
    run_spmd,
)
from repro.topology.base import DimensionedTopology
from repro.topology.recursive import RecursiveDualCube

__all__ = [
    "ScheduleStep",
    "dual_sort_schedule",
    "schedule_program",
    "execute_schedule_engine",
    "execute_schedule_vec",
    "dual_sort_engine",
    "dual_sort_vec",
    "dual_sort",
    "step_cycle_cost",
]


@dataclass(frozen=True)
class ScheduleStep:
    """One parallel compare-exchange round.

    ``dim`` is the address bit pairing the nodes; the direction at node
    ``u`` is descending iff ``dir_val`` (``dir_kind="const"``) or iff bit
    ``dir_val`` of ``u`` is set (``dir_kind="bit"`` — how sub-sorts and
    half-merges alternate directions per block).  ``phase`` labels the
    recursion segment for traces and figures.
    """

    dim: int
    dir_kind: str
    dir_val: int
    phase: str = ""

    def __post_init__(self):
        if self.dir_kind not in ("const", "bit"):
            raise ValueError(f"dir_kind must be 'const' or 'bit', got {self.dir_kind!r}")
        if self.dir_kind == "const" and self.dir_val not in (0, 1):
            raise ValueError(f"const direction must be 0/1, got {self.dir_val}")

    def descending(self, u: int) -> bool:
        """Whether node ``u`` compares in descending direction."""
        if self.dir_kind == "const":
            return bool(self.dir_val)
        return (u >> self.dir_val) & 1 == 1

    def descending_mask(self, idx: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`descending`."""
        if self.dir_kind == "const":
            return np.full(len(idx), bool(self.dir_val))
        return (idx >> self.dir_val) & 1 == 1


def dual_sort_schedule(n: int, *, descending: bool = False) -> list[ScheduleStep]:
    """Unroll ``D_sort(D_n, tag)`` into its 2n² - n compare-exchange steps."""
    if n < 1:
        raise ValueError(f"dual-cube connectivity must be >= 1, got {n}")

    def build(k: int, kind: str, val: int) -> list[ScheduleStep]:
        if k == 1:
            return [ScheduleStep(0, kind, val, phase="base D_1")]
        steps = build(k - 1, "bit", 2 * k - 3)
        steps.extend(
            ScheduleStep(j, "bit", 2 * k - 2, phase=f"half-merge D_{k}")
            for j in range(2 * k - 3, -1, -1)
        )
        steps.extend(
            ScheduleStep(j, kind, val, phase=f"full-merge D_{k}")
            for j in range(2 * k - 2, -1, -1)
        )
        return steps

    return build(n, "const", int(descending))


def _dim_mode(topo: DimensionedTopology, dim: int) -> str:
    """``"direct"`` when every pair at ``dim`` has a link, else ``"mixed"``.

    In the recursive dual-cube a dimension-``dim`` partner always has the
    same class for ``dim > 0``, so either every node of a class is
    supported or none is — probing one node of each class suffices.
    """
    probes = (0, 1) if topo.num_nodes > 1 else (0,)
    supported = [topo.has_dimension_link(u, dim) for u in probes]
    return "direct" if all(supported) else "mixed"


def step_cycle_cost(
    topo: DimensionedTopology, dim: int, payload_policy: str = "packed"
) -> int:
    """Clock cycles one compare-exchange round costs at ``dim``."""
    if _dim_mode(topo, dim) == "direct":
        return 1
    return 3 if payload_policy == "packed" else 4


def _check_policy(payload_policy: str) -> None:
    if payload_policy not in ("packed", "single"):
        raise ValueError(
            f"payload_policy must be 'packed' or 'single', got {payload_policy!r}"
        )


def _compare_exchange_program(
    ctx,
    topo: DimensionedTopology,
    step: ScheduleStep,
    key,
    payload_policy: str,
    mode: str | None = None,
):
    """One compare-exchange round at one node (generator phase; returns the kept key)."""
    u = ctx.rank
    j = step.dim
    partner = u ^ (1 << j)
    if mode is None:
        mode = _dim_mode(topo, j)
    if mode == "direct":
        got = yield SendRecv(partner, key)
    elif topo.has_dimension_link(u, j):
        # Supported side: relay for the cross neighbor while exchanging.
        cross = u ^ 1
        relayed = yield Recv(cross)
        if payload_policy == "packed":
            pair = yield SendRecv(partner, Packed((relayed, key)))
            back, got = pair.items
            yield Send(cross, back)
        else:
            back = yield SendRecv(partner, relayed)
            yield Send(cross, back)
            got = yield SendRecv(partner, key)
    else:
        # Unsupported side: the exchange runs through the cross neighbor.
        cross = u ^ 1
        yield Send(cross, key)
        yield Idle()
        got = yield Recv(cross)
        if payload_policy == "single":
            yield Idle()
    ctx.compute(1)
    keep_min = ((u >> j) & 1 == 0) != step.descending(u)
    return min(key, got) if keep_min else max(key, got)


def schedule_program(
    topo: DimensionedTopology,
    keys,
    schedule: Sequence[ScheduleStep],
    *,
    payload_policy: str = "packed",
):
    """The SPMD program realizing a compare-exchange ``schedule`` on ``topo``.

    This is the exact program :func:`execute_schedule_engine` runs (so it
    covers `D_sort` and the hypercube bitonic baseline alike); it is
    exposed so the static schedule analyzer (:mod:`repro.analysis.static`)
    can extract its communication schedule without an engine run.
    """
    _check_policy(payload_policy)
    vals = list(keys)
    if len(vals) != topo.num_nodes:
        raise ValueError(
            f"expected {topo.num_nodes} keys for {topo.name}, got {len(vals)}"
        )

    # Dimension modes depend only on (topo, dim); hoist them out of the
    # per-node per-step hot path.
    modes = {d: _dim_mode(topo, d) for d in {s.dim for s in schedule}}

    def program(ctx):
        key = vals[ctx.rank]
        ctx.record("input", key)
        for k, step in enumerate(schedule):
            key = yield from _compare_exchange_program(
                ctx, topo, step, key, payload_policy, modes[step.dim]
            )
            ctx.record(f"step {k:03d} dim {step.dim} [{step.phase}]", key)
        return key

    return program


def execute_schedule_engine(
    topo: DimensionedTopology,
    keys,
    schedule: Sequence[ScheduleStep],
    *,
    payload_policy: str = "packed",
    trace: TraceRecorder | None = None,
):
    """Run a compare-exchange schedule on the cycle-accurate engine.

    Returns ``(sorted_keys, EngineResult)`` with keys in node-address order.
    """
    program = schedule_program(
        topo, keys, schedule, payload_policy=payload_policy
    )
    result = run_spmd(topo, program, trace=trace)
    return list(result.returns), result


def _elementwise_minmax(arr: np.ndarray, other: np.ndarray):
    """Elementwise (min, max) supporting object arrays of orderables."""
    if arr.dtype == object or other.dtype == object:
        lo = np.empty(len(arr), dtype=object)
        hi = np.empty(len(arr), dtype=object)
        for k, (a, b) in enumerate(zip(arr, other)):
            if b < a:
                lo[k], hi[k] = b, a
            else:
                lo[k], hi[k] = a, b
        return lo, hi
    return np.minimum(arr, other), np.maximum(arr, other)


def execute_schedule_vec(
    topo: DimensionedTopology,
    keys,
    schedule: Sequence[ScheduleStep],
    *,
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
    trace: TraceRecorder | None = None,
    profiler=None,
) -> np.ndarray:
    """Vectorized schedule executor (cost counters mirror the engine's cycles).

    ``profiler`` (a :class:`~repro.obs.profile.PhaseProfiler`) records one
    wallclock span per :class:`ScheduleStep`, named by the step's
    recursion segment (``step.phase``) so per-phase totals fall out of
    :meth:`~repro.obs.profile.PhaseProfiler.totals`.
    """
    _check_policy(payload_policy)
    arr = np.asarray(keys).copy()
    n = topo.num_nodes
    if arr.shape != (n,):
        raise ValueError(
            f"expected {n} keys for {topo.name}, got shape {arr.shape}"
        )
    prof = profiler if profiler is not None else NULL_PROFILER
    idx = np.arange(n, dtype=np.int64)
    if trace is not None:
        trace.record_array("input", arr)
    for k, step in enumerate(schedule):
        with prof.span(step.phase, step=k, dim=step.dim):
            partner = idx ^ (1 << step.dim)
            pk = arr[partner]
            keep_min = ((idx >> step.dim) & 1 == 0) != step.descending_mask(idx)
            lo, hi = _elementwise_minmax(arr, pk)
            arr = np.where(keep_min, lo, hi)
            if counters is not None:
                _count_step(counters, topo, step.dim, n, payload_policy)
            if trace is not None:
                trace.record_array(f"step {k:03d} dim {step.dim} [{step.phase}]", arr)
    return arr


def _count_step(
    counters: CostCounters,
    topo: DimensionedTopology,
    dim: int,
    n: int,
    payload_policy: str,
) -> None:
    """Charge the counters exactly what the engine would measure for one step."""
    if _dim_mode(topo, dim) == "direct":
        counters.record_comm_step(messages=n)
    else:
        half = n // 2
        # cycle 1: unsupported -> supported over cross-edges
        counters.record_comm_step(messages=half)
        if payload_policy == "packed":
            # cycle 2: supported pairs exchange (relayed key, own key)
            counters.record_comm_step(
                messages=half, payload_items=2 * half, max_payload=2
            )
        else:
            counters.record_comm_step(messages=half)
        # cycle 3: supported -> unsupported over cross-edges
        counters.record_comm_step(messages=half)
        if payload_policy == "single":
            # cycle 4: supported pairs exchange their own keys
            counters.record_comm_step(messages=half)
    counters.record_comp_step(ops_each=1)


def dual_sort_engine(
    rdc: RecursiveDualCube,
    keys,
    *,
    descending: bool = False,
    payload_policy: str = "packed",
    trace: TraceRecorder | None = None,
):
    """Run Algorithm 3 on the cycle-accurate engine.

    ``keys`` are indexed by recursive-presentation node address; returns
    ``(sorted_keys, EngineResult)``, sorted keys in address order.
    """
    sched = dual_sort_schedule(rdc.n, descending=descending)
    return execute_schedule_engine(
        rdc, keys, sched, payload_policy=payload_policy, trace=trace
    )


def dual_sort_vec(
    rdc: RecursiveDualCube,
    keys,
    *,
    descending: bool = False,
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
    trace: TraceRecorder | None = None,
    profiler=None,
) -> np.ndarray:
    """Vectorized Algorithm 3; returns keys sorted in node-address order."""
    sched = dual_sort_schedule(rdc.n, descending=descending)
    return execute_schedule_vec(
        rdc,
        keys,
        sched,
        payload_policy=payload_policy,
        counters=counters,
        trace=trace,
        profiler=profiler,
    )


def dual_sort(
    rdc: RecursiveDualCube,
    keys,
    *,
    descending: bool = False,
    backend: str = "vectorized",
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
    trace: TraceRecorder | None = None,
    profiler=None,
):
    """Sorting on the dual-cube — the library's headline entry point.

    ``backend`` selects ``"vectorized"`` (fast; returns the sorted array),
    ``"columnar"`` (structured-array state, in-place view compare-exchange;
    reaches D_9-D_11), ``"replay"`` (compiled straight-line plan; fastest
    on repeat runs), or ``"engine"`` (cycle-accurate; returns
    ``(keys, EngineResult)``).  Capabilities are declared in
    :mod:`repro.core.backends`: ``profiler`` records
    per-:class:`ScheduleStep` wallclock spans (vectorized backend only),
    and a backend without per-rank traces keeps no values to ``trace``.
    """
    from repro.core.backends import resolve_backend

    run = resolve_backend(
        "dual_sort",
        backend,
        counters=counters is not None,
        trace=trace is not None,
        profiler=profiler is not None,
    )
    return run(
        rdc,
        keys,
        descending=descending,
        payload_policy=payload_policy,
        counters=counters,
        trace=trace,
        profiler=profiler,
    )
