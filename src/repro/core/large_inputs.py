"""Inputs larger than the network (the paper's future-work item 1).

Both extensions keep the network phase *identical* to the N = P algorithms
and add purely local work, which is the standard blocked technique:

* **large prefix** — each node holds a consecutive block of B = N/P items;
  it computes a local inclusive prefix, runs *diminished* `D_prefix` on
  the block totals (2n communication steps, unchanged), and folds the
  returned offset into every local prefix.  Local computation is
  2B - 1 = O(N/P) operations per node.

* **large sort** — each node locally sorts its block, then the `D_sort`
  compare-exchange schedule runs with every compare-exchange replaced by a
  *merge-split*: partners exchange whole blocks, the "min" side keeps the
  B smallest of the 2B keys, the "max" side the B largest.  Replacing the
  comparators of any sorting network by merge-splits on sorted blocks
  sorts the blocked sequence (Knuth, TAOCP 5.3.4), so correctness is
  inherited from Algorithm 3; communication steps are unchanged while each
  message now carries B keys.
"""

from __future__ import annotations

import numpy as np

from repro.core.dual_prefix import dual_prefix_vec
from repro.core.dual_sort import (
    ScheduleStep,
    _dim_mode,
    dual_sort_schedule,
)
from repro.core.ops import AssocOp, combine_arrays
from repro.obs.profile import NULL_PROFILER as _NULL_PROFILER
from repro.simulator import CostCounters
from repro.topology.dualcube import DualCube
from repro.topology.recursive import RecursiveDualCube

__all__ = [
    "large_prefix",
    "large_prefix_vec",
    "large_prefix_engine",
    "large_sort",
    "large_sort_vec",
]


def _blocked(values, num_nodes: int) -> tuple[np.ndarray, int]:
    """Reshape a flat input into (num_nodes, B) consecutive blocks."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"expected a flat 1-D input, got shape {arr.shape}")
    if len(arr) == 0 or len(arr) % num_nodes:
        raise ValueError(
            f"input length {len(arr)} must be a positive multiple of the "
            f"network size {num_nodes}"
        )
    b = len(arr) // num_nodes
    return arr.reshape(num_nodes, b), b


def _local_sort_ops(b: int) -> int:
    """Charged cost of one local B-key sort: B * ceil(log2 B) comparisons.

    ``(b - 1).bit_length()`` is ceil(log2 b) for b >= 1 (0 for b = 1,
    clamped to one comparison below); ``b.bit_length() - 1`` would be
    *floor*(log2 b), undercharging every non-power-of-two block size.
    """
    return max(1, b * max(1, (b - 1).bit_length()))


def large_prefix(
    dc: DualCube,
    values,
    op: AssocOp,
    *,
    backend: str = "vectorized",
    counters: CostCounters | None = None,
    profiler=None,
    shards: int | None = None,
) -> np.ndarray:
    """Prefix of N = B * 2^(2n-1) values on D_n; returns the full prefix array.

    Global index order: node block k (input order) covers indices
    ``[kB, (k+1)B)``.  Communication cost equals plain `D_prefix`.

    ``backend`` selects ``"vectorized"``, ``"columnar"`` (blocks as
    structured subarray fields; scales to D_9-D_11), or ``"replay"``
    (network phase from the compiled `D_prefix` plan; the only backend
    taking ``shards``) — all with identical results and counters;
    capabilities are declared in :mod:`repro.core.backends`.
    ``profiler`` (a :class:`~repro.obs.profile.PhaseProfiler`) records
    wallclock spans for the three phases the cost model distinguishes:
    ``local-prefix`` (B-1 local rounds), ``network`` (the diminished
    `D_prefix` on block totals — the only communicating phase), and
    ``fold`` (B offset applications).
    """
    from repro.core.backends import resolve_backend

    run = resolve_backend(
        "large_prefix",
        backend,
        counters=counters is not None,
        profiler=profiler is not None,
        shards=shards is not None,
    )
    return run(
        dc, values, op, counters=counters, profiler=profiler, shards=shards
    )


def large_prefix_vec(
    dc: DualCube,
    values,
    op: AssocOp,
    *,
    counters: CostCounters | None = None,
    profiler=None,
) -> np.ndarray:
    """The vectorized blocked prefix (the ``"vectorized"`` backend of
    :func:`large_prefix`; same phases, counters, and profiler spans)."""
    blocks, b = _blocked(values, dc.num_nodes)
    prof = profiler if profiler is not None else _NULL_PROFILER

    # Local inclusive prefix inside each block (vector over nodes, loop
    # over the block — B local rounds).  A copy of an object-dtype input
    # is already object dtype, so no dtype coercion is needed here; the
    # CONCAT regression test pins that behaviour.
    with prof.span("local-prefix", block=b):
        local = blocks.copy()
        for k in range(1, b):
            local[:, k] = combine_arrays(op, local[:, k - 1], local[:, k])
        if counters is not None and b > 1:
            counters.record_comp_step(ops_each=b - 1)

    with prof.span("network"):
        totals = local[:, -1]
        offsets = dual_prefix_vec(
            dc, totals, op, inclusive=False, counters=counters
        )

    with prof.span("fold", block=b):
        out = np.empty_like(local)
        for k in range(b):
            out[:, k] = combine_arrays(op, offsets, local[:, k])
        if counters is not None:
            counters.record_comp_step(ops_each=b)
        return out.reshape(-1)


def large_prefix_engine(
    dc: DualCube,
    values,
    op: AssocOp,
):
    """Cycle-accurate blocked prefix: the N = P schedule with local work.

    Node ``u`` holds the consecutive block at arranged position
    ``arranged_index(u)``; each node computes its local prefix, the
    network runs the diminished `D_prefix` on block totals (2n steps,
    single-total messages), and the offset folds into every local value.
    Returns ``(prefix_array, EngineResult)`` with the prefix in global
    index order.
    """
    from repro.core.arrangement import arranged_index
    from repro.core.dual_prefix import _dual_prefix_node_program
    from repro.simulator import run_spmd

    blocks, b = _blocked(values, dc.num_nodes)

    def program(ctx):
        u = ctx.rank
        block = list(blocks[arranged_index(dc, u)])
        for k in range(1, b):
            block[k] = op(block[k - 1], block[k])
        if b > 1:
            ctx.compute(b - 1)
        # The network phase runs on the *held* totals directly; passing
        # inclusive=False yields the composition of all earlier blocks.
        offset = yield from _dual_prefix_node_program(
            ctx, dc, block[-1], op, paper_literal=False, inclusive=False
        )
        ctx.compute(b)
        return [op(offset, x) for x in block]

    result = run_spmd(dc, program)
    out = np.empty(dc.num_nodes * b, dtype=object)
    for u in dc.nodes():
        g = arranged_index(dc, u)
        out[g * b : (g + 1) * b] = result.returns[u]
    return out, result


def _count_block_step(
    counters: CostCounters,
    topo: RecursiveDualCube,
    step: ScheduleStep,
    n: int,
    b: int,
    payload_policy: str,
) -> None:
    """Cycle/message accounting for one merge-split round with B-key blocks."""
    if _dim_mode(topo, step.dim) == "direct":
        counters.record_comm_step(messages=n, payload_items=n * b, max_payload=b)
        counters.record_comp_step(ops_each=2 * b)
        return
    half = n // 2
    counters.record_comm_step(messages=half, payload_items=half * b, max_payload=b)
    if payload_policy == "packed":
        counters.record_comm_step(
            messages=half, payload_items=2 * half * b, max_payload=2 * b
        )
    else:
        counters.record_comm_step(
            messages=half, payload_items=half * b, max_payload=b
        )
    counters.record_comm_step(messages=half, payload_items=half * b, max_payload=b)
    if payload_policy == "single":
        counters.record_comm_step(
            messages=half, payload_items=half * b, max_payload=b
        )
    counters.record_comp_step(ops_each=2 * b)


def large_sort(
    rdc: RecursiveDualCube,
    keys,
    *,
    descending: bool = False,
    backend: str = "vectorized",
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
    profiler=None,
) -> np.ndarray:
    """Sort N = B * 2^(2n-1) numeric keys on D_n; returns the sorted array.

    Keys are indexed by (recursive node address, block offset); the output
    is the globally sorted flat sequence in that same blocked order.

    ``backend`` selects ``"vectorized"``, ``"columnar"`` (merge-splits
    through reshape views; scales to D_9-D_11), or ``"replay"``
    (compiled-plan permutations and masks) — all with identical results
    and counters; capabilities are declared in
    :mod:`repro.core.backends`.  ``profiler`` records one wallclock span
    per merge-split round, named by the round's recursion segment
    (``step.phase``), plus a ``local-sort`` span for the initial
    per-block sort.
    """
    from repro.core.backends import resolve_backend

    run = resolve_backend(
        "large_sort",
        backend,
        counters=counters is not None,
        profiler=profiler is not None,
    )
    return run(
        rdc,
        keys,
        descending=descending,
        payload_policy=payload_policy,
        counters=counters,
        profiler=profiler,
    )


def large_sort_vec(
    rdc: RecursiveDualCube,
    keys,
    *,
    descending: bool = False,
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
    profiler=None,
) -> np.ndarray:
    """The vectorized blocked sort (the ``"vectorized"`` backend of
    :func:`large_sort`; same phases, counters, and profiler spans)."""
    if payload_policy not in ("packed", "single"):
        raise ValueError(
            f"payload_policy must be 'packed' or 'single', got {payload_policy!r}"
        )
    blocks, b = _blocked(keys, rdc.num_nodes)
    if blocks.dtype == object:
        raise TypeError("large_sort supports numeric keys only")
    prof = profiler if profiler is not None else _NULL_PROFILER
    with prof.span("local-sort", block=b):
        arr = np.sort(blocks, axis=1)
        if counters is not None:
            # Local sort: ~B log2 B comparisons per node, one local round.
            counters.record_comp_step(ops_each=_local_sort_ops(b))

    idx = np.arange(rdc.num_nodes, dtype=np.int64)
    for k, step in enumerate(dual_sort_schedule(rdc.n, descending=descending)):
        with prof.span(step.phase, step=k, dim=step.dim):
            partner = idx ^ (1 << step.dim)
            pk = arr[partner]
            keep_min = ((idx >> step.dim) & 1 == 0) != step.descending_mask(idx)
            merged = np.sort(np.concatenate([arr, pk], axis=1), axis=1)
            arr = np.where(keep_min[:, None], merged[:, :b], merged[:, b:])
            if counters is not None:
                _count_block_step(counters, rdc, step, rdc.num_nodes, b, payload_policy)
    if descending:
        # Merge-split keeps blocks internally ascending; a descending global
        # order needs each block flattened high-to-low (local, no messages).
        arr = arr[:, ::-1]
    return arr.reshape(-1)
