"""Comparator networks: Batcher's bitonic and odd-even merge sorts.

Paper Section 5: "Batcher's O(n²)-time bitonic and odd-even merge sorting
algorithms are presently the fastest practical deterministic sorting
algorithms" for the hypercube.  This module builds both as explicit
comparator networks — stages of independent ``(i, j)`` comparators — so
the reproduction can compare them and explain why the dual-cube sort
builds on *bitonic*:

* every bitonic comparator pairs indices differing in one bit, i.e. a
  dimension exchange a cube-like network executes natively;
* odd-even merge uses comparators at distance 2^k between *odd* indices
  (``i`` and ``i + 2^k`` with ``i`` odd), which are not dimension
  exchanges, so each would need routing on a hypercube or dual-cube.

Correctness of both networks is certified through the 0-1 principle
(exhaustively for small widths in the tests).
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

import numpy as np

__all__ = [
    "Comparator",
    "bitonic_sort_network",
    "odd_even_merge_sort_network",
    "schedule_to_network",
    "apply_network",
    "network_depth",
    "comparator_count",
    "verify_zero_one",
    "is_dimension_exchange_network",
]

Comparator = tuple[int, int]
Stage = list[Comparator]


def _check_width(width: int) -> None:
    if width < 1 or width & (width - 1):
        raise ValueError(f"network width must be a power of two, got {width}")


def bitonic_sort_network(width: int) -> list[Stage]:
    """Batcher's bitonic sorting network as comparator stages.

    Stage (k, j) compares ``i`` with ``i | 2^j`` for every ``i`` with bit
    ``j`` clear, direction by bit ``k`` of ``i`` — exactly the schedule
    :func:`repro.core.bitonic.bitonic_schedule` runs on the hypercube,
    rendered as explicit comparators.
    """
    _check_width(width)
    q = width.bit_length() - 1
    stages: list[Stage] = []
    for k in range(1, q + 1):
        for j in range(k - 1, -1, -1):
            stage: Stage = []
            for i in range(width):
                if i & (1 << j):
                    continue
                partner = i | (1 << j)
                descending = k < q and (i >> k) & 1
                stage.append((partner, i) if descending else (i, partner))
            stages.append(stage)
    return stages


def odd_even_merge_sort_network(width: int) -> list[Stage]:
    """Batcher's odd-even merge sorting network as comparator stages.

    Recursive: sort both halves, then odd-even merge.  The merge's
    inner comparators pair ``i`` with ``i + step`` at *odd* multiples —
    not single-bit partners, hence not native cube exchanges.
    """
    _check_width(width)

    def merge_stages(lo: int, length: int, step0: int) -> list[Stage]:
        # Merge the sequence at indices lo, lo+step0, ... (length items).
        if length <= 1:
            return []
        if length == 2:
            return [[(lo, lo + step0)]]
        half = merge_stages(lo, (length + 1) // 2, step0 * 2)
        other = merge_stages(lo + step0, length // 2, step0 * 2)
        combined: list[Stage] = []
        for a, b in zip(half, other):
            combined.append(a + b)
        longer = half if len(half) > len(other) else other
        combined.extend(longer[len(combined):])
        final: Stage = []
        for k in range(1, length - 1, 2):
            final.append((lo + k * step0, lo + (k + 1) * step0))
        combined.append(final)
        return combined

    def sort_stages(lo: int, length: int) -> list[Stage]:
        if length <= 1:
            return []
        half = length // 2
        left = sort_stages(lo, half)
        right = sort_stages(lo + half, length - half)
        merged: list[Stage] = []
        for a, b in zip(left, right):
            merged.append(a + b)
        longer = left if len(left) > len(right) else right
        merged.extend(longer[len(merged):])
        merged.extend(merge_stages(lo, length, 1))
        return merged

    return sort_stages(0, width)


def schedule_to_network(schedule, width: int) -> list[Stage]:
    """Render a compare-exchange schedule as an explicit comparator network.

    Each :class:`~repro.core.dual_sort.ScheduleStep` becomes one stage:
    the pair ``(i, i | 2^dim)`` ordered by the step's per-node direction
    (``(hi, lo)`` when descending, so the max lands at the low index).
    Composing with :func:`verify_zero_one` certifies a whole `D_sort`
    schedule exhaustively — independent of either executor.
    """
    _check_width(width)
    stages: list[Stage] = []
    for step in schedule:
        stage: Stage = []
        for i in range(width):
            if i & (1 << step.dim):
                continue
            partner = i | (1 << step.dim)
            if step.descending(i):
                stage.append((partner, i))
            else:
                stage.append((i, partner))
        stages.append(stage)
    return stages


def apply_network(keys, stages: Sequence[Stage]) -> np.ndarray:
    """Run a comparator network over a key array (returns a sorted copy
    when the network is a sorting network)."""
    arr = np.array(keys)
    for stage in stages:
        seen: set[int] = set()
        for lo, hi in stage:
            if lo in seen or hi in seen:
                raise ValueError(
                    f"stage reuses index: comparator ({lo}, {hi})"
                )
            seen.update((lo, hi))
            if arr[hi] < arr[lo]:
                arr[lo], arr[hi] = arr[hi], arr[lo]
    return arr


def network_depth(stages: Sequence[Stage]) -> int:
    """Number of parallel stages."""
    return len(stages)


def comparator_count(stages: Sequence[Stage]) -> int:
    """Total comparators across all stages."""
    return sum(len(s) for s in stages)


def verify_zero_one(stages: Sequence[Stage], width: int) -> bool:
    """Exhaustive 0-1 principle check: the network sorts every 0/1 input.

    Exponential in ``width`` — intended for widths <= 16.
    """
    for bits in product((0, 1), repeat=width):
        out = apply_network(np.array(bits), stages)
        if list(out) != sorted(bits):
            return False
    return True


def is_dimension_exchange_network(stages: Sequence[Stage]) -> bool:
    """Whether every comparator pairs indices differing in exactly one bit.

    True for bitonic (why the dual-cube sort can emulate it hop-bounded),
    false for odd-even merge at widths >= 4.
    """
    for stage in stages:
        for lo, hi in stage:
            diff = lo ^ hi
            if diff == 0 or diff & (diff - 1):
                return False
    return True
