"""Generic hypercube-algorithm emulation on the dual-cube.

The paper's second design technique, stated generally in its conclusion:

    "Since most of the algorithms in hypercube are recursive, the
    algorithms that emulate these hypercube algorithms can be developed
    using the second technique.  However, the overhead for the emulation
    will be [3] times of the corresponding hypercube algorithm in the
    worst-case due to the lack of edges."

`D_sort` is one instance (Batcher's network emulated step by step).  This
module exposes the technique itself: any hypercube algorithm expressed as
a sequence of *dimension-exchange rounds* — each node exchanges a value
with its dimension-``d`` partner, then updates local state — runs on the
recursive dual-cube unchanged, with unsupported dimensions emulated by
the 3-hop relay schedule (packed 2-key messages, see
:mod:`repro.core.dual_sort`).

The star witness is :func:`emulated_cube_prefix`: Algorithm 1 run on
D_n via emulation.  Comparing it to `D_prefix` (the cluster technique)
quantifies the paper's closing argument — when the inter-cluster
communication can be designed directly, the cluster technique wins
(2n steps vs ~3(2n-1) for emulation).  Ablation A4 prints the table.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.core.ops import AssocOp, combine_arrays
from repro.simulator import (
    CostCounters,
    Idle,
    Packed,
    Recv,
    Send,
    SendRecv,
    TraceRecorder,
    run_spmd,
)
from repro.topology.base import DimensionedTopology
from repro.topology.hypercube import Hypercube
from repro.topology.recursive import RecursiveDualCube

__all__ = [
    "ExchangeRound",
    "exchange_value_program",
    "exchange_algorithm_program",
    "run_exchange_algorithm_engine",
    "run_exchange_algorithm_vec",
    "emulated_cube_prefix",
    "emulated_cube_prefix_vec",
    "emulation_comm_steps",
]

# An exchange algorithm is a list of rounds; each round names the
# dimension and an update ``state, received -> state`` applied at every
# node after the exchange.  The exchanged value is produced by
# ``outgoing(state)``.
ExchangeRound = tuple[int, Callable[[Any], Any], Callable[[Any, Any, int], Any]]


def exchange_value_program(
    ctx, topo: DimensionedTopology, dim: int, value: Any
):
    """One full-duplex value exchange along ``dim`` (generator phase).

    Direct pairs complete in 1 cycle.  On topologies with unsupported
    dimensions (the recursive dual-cube), the supported half relays for
    the unsupported half using the packed 3-cycle schedule; this is the
    communication kernel shared by every emulated hypercube algorithm.
    Returns the partner's value.
    """
    u = ctx.rank
    partner = u ^ (1 << dim)
    probes = (0, 1) if topo.num_nodes > 1 else (0,)
    uniform = all(topo.has_dimension_link(p, dim) for p in probes)
    if uniform:
        got = yield SendRecv(partner, value)
        return got
    if topo.has_dimension_link(u, dim):
        cross = u ^ 1
        relayed = yield Recv(cross)
        pair = yield SendRecv(partner, Packed((relayed, value)))
        back, got = pair.items
        yield Send(cross, back)
        return got
    cross = u ^ 1
    yield Send(cross, value)
    yield Idle()
    got = yield Recv(cross)
    return got


def exchange_algorithm_program(
    topo: DimensionedTopology,
    initial: Sequence[Any],
    rounds: Sequence[ExchangeRound],
):
    """The SPMD program realizing a dimension-exchange algorithm on ``topo``.

    This is the exact program :func:`run_exchange_algorithm_engine` runs;
    it is exposed so the static schedule analyzer
    (:mod:`repro.analysis.static`) can extract its communication schedule
    without an engine run.
    """
    states = list(initial)
    if len(states) != topo.num_nodes:
        raise ValueError(
            f"expected {topo.num_nodes} states for {topo.name}, got {len(states)}"
        )

    def program(ctx):
        state = states[ctx.rank]
        for dim, outgoing, update in rounds:
            got = yield from exchange_value_program(
                ctx, topo, dim, outgoing(state)
            )
            ctx.compute(1)
            state = update(state, got, ctx.rank)
            ctx.record(f"round dim {dim}", state)
        return state

    return program


def run_exchange_algorithm_engine(
    topo: DimensionedTopology,
    initial: Sequence[Any],
    rounds: Sequence[ExchangeRound],
    *,
    trace: TraceRecorder | None = None,
):
    """Run a dimension-exchange algorithm on the cycle-accurate engine.

    ``initial[u]`` is node ``u``'s starting state; each round
    ``(dim, outgoing, update)`` exchanges ``outgoing(state)`` along
    ``dim`` and sets ``state = update(state, received, rank)``.
    Returns ``(final_states, EngineResult)``.
    """
    program = exchange_algorithm_program(topo, initial, rounds)
    result = run_spmd(topo, program, trace=trace)
    return list(result.returns), result


def run_exchange_algorithm_vec(
    topo: DimensionedTopology,
    initial: np.ndarray,
    rounds: Sequence[tuple[int, Callable, Callable]],
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Vectorized executor for dimension-exchange algorithms.

    ``outgoing(states)`` and ``update(states, received, idx)`` operate on
    whole arrays.  Counters charge 1 cycle for uniform dimensions and the
    packed 3-cycle relay cost otherwise — identical to the engine.
    """
    states = np.asarray(initial).copy()
    n = topo.num_nodes
    if states.shape[0] != n:
        raise ValueError(
            f"expected {n} states for {topo.name}, got shape {states.shape}"
        )
    idx = np.arange(n, dtype=np.int64)
    probes = (0, 1) if n > 1 else (0,)
    for dim, outgoing, update in rounds:
        out_vals = outgoing(states)
        received = out_vals[idx ^ (1 << dim)]
        if counters is not None:
            if all(topo.has_dimension_link(p, dim) for p in probes):
                counters.record_comm_step(messages=n)
            else:
                half = n // 2
                counters.record_comm_step(messages=half)
                counters.record_comm_step(
                    messages=half, payload_items=2 * half, max_payload=2
                )
                counters.record_comm_step(messages=half)
            counters.record_comp_step(ops_each=1)
        states = update(states, received, idx)
    return states


def _prefix_rounds_scalar(q: int, op: AssocOp, inclusive: bool):
    """Algorithm 1's ascend rounds as scalar ExchangeRounds on (t, s) pairs."""

    def make_update(i: int):
        def update(state, got, rank):
            t, s = state
            if (rank >> i) & 1:
                return (op(got, t), op(got, s))
            return (op(t, got), s)

        return update

    return [(i, lambda st: st[0], make_update(i)) for i in range(q)]


def emulated_cube_prefix(
    topo: DimensionedTopology,
    values,
    op: AssocOp,
    *,
    inclusive: bool = True,
    trace: TraceRecorder | None = None,
):
    """Algorithm 1 emulated on ``topo`` (engine backend).

    On a hypercube this is plain `Cube_prefix`; on the recursive
    dual-cube every odd (class-0-unsupported) dimension is 3-hop
    emulated.  The prefix order follows node addresses; returns
    ``(t_list, s_list, EngineResult)``.
    """
    vals = list(values)
    n = topo.num_nodes
    if n & (n - 1):
        raise ValueError("node count must be a power of two")
    q = n.bit_length() - 1
    init = [(v, v if inclusive else op.identity) for v in vals]
    rounds = _prefix_rounds_scalar(q, op, inclusive)
    finals, result = run_exchange_algorithm_engine(topo, init, rounds, trace=trace)
    return [f[0] for f in finals], [f[1] for f in finals], result


def emulated_cube_prefix_vec(
    topo: DimensionedTopology,
    values,
    op: AssocOp,
    *,
    inclusive: bool = True,
    counters: CostCounters | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`emulated_cube_prefix`; returns ``(t, s)`` arrays."""
    vals = np.asarray(values)
    n = topo.num_nodes
    if vals.shape != (n,):
        raise ValueError(f"expected {n} values, got shape {vals.shape}")
    if n & (n - 1):
        raise ValueError("node count must be a power of two")
    q = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    t = vals.copy()
    s = vals.copy() if inclusive else op.identity_array(n)
    probes = (0, 1) if n > 1 else (0,)
    for i in range(q):
        temp = t[idx ^ (1 << i)]
        upper = (idx >> i) & 1 == 1
        if counters is not None:
            if all(topo.has_dimension_link(p, i) for p in probes):
                counters.record_comm_step(messages=n)
            else:
                half = n // 2
                counters.record_comm_step(messages=half)
                counters.record_comm_step(
                    messages=half, payload_items=2 * half, max_payload=2
                )
                counters.record_comm_step(messages=half)
            counters.record_comp_step(ops_each=2)
        t = np.where(upper, combine_arrays(op, temp, t), combine_arrays(op, t, temp))
        s = np.where(upper, combine_arrays(op, temp, s), s)
    return t, s


def emulation_comm_steps(topo: DimensionedTopology, dims: Sequence[int]) -> int:
    """Closed-form cycles for an exchange sequence under packed emulation."""
    probes = (0, 1) if topo.num_nodes > 1 else (0,)
    total = 0
    for d in dims:
        uniform = all(topo.has_dimension_link(p, d) for p in probes)
        total += 1 if uniform else 3
    return total
