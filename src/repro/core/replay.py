"""Replay backend: execute precompiled straight-line plans.

The fourth execution backend (next to ``engine``, ``vectorized``,
``columnar``): every core algorithm's communication schedule is oblivious,
so :mod:`repro.analysis.static.compile` compiles it **once** per
``(algorithm, topology)`` into a plan of gather permutations and masks,
and this module replays the plan with no matching fixed point, no request
decoding, and no per-step index arithmetic — just ``take``/``ufunc``/
``where`` over preallocated buffers.  On repeat runs (plans cached
in-process) that beats the vectorized backend, which re-derives every
partner permutation and direction mask per call.

Plans live in a module-level cache keyed by
``("prefix", topology, paper_literal)`` or ``("schedule", topology, kind,
descending)``; :func:`plan_cache_stats` exposes hit/miss/compile-time
counters and :func:`registry_from_plan_cache` feeds them into a
:class:`~repro.obs.metrics.MetricsRegistry` as ``repro_replay_*`` series.

**Sharding** (`D_prefix` family only): the two `Cube_prefix` phases touch
no cross-class edge — clusters are independent (n-1)-cubes between the
cross-edge barrier steps — so ``shards=k`` runs each ascend phase with
cluster blocks distributed over ``k`` forked workers writing into shared
memory, and the main process performs the cross exchanges and folds at
the barriers.  Sharding requires a numeric dtype and an operation with a
numpy ufunc (worker slabs combine in place); counters are charged by the
main process — the ledger is data-independent, so it is identical to the
unsharded run.

Cost accounting is call-for-call identical to the vectorized backend
(the same ``record_comm_step``/``record_comp_step`` sequence), so step
counts, message/payload tallies, and attached timelines agree exactly
with the engine and the static :class:`CommSchedule`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.static.compile import (
    check_shard_plan,
    compile_prefix_plan,
    compile_schedule_plan,
)
from repro.core.ops import AssocOp, combine_arrays
from repro.simulator import CostCounters

__all__ = [
    "clear_plan_cache",
    "plan_cache_stats",
    "registry_from_plan_cache",
    "get_prefix_plan",
    "get_schedule_plan",
    "dual_prefix_replay",
    "execute_schedule_replay",
    "dual_sort_replay",
    "hypercube_bitonic_sort_replay",
    "large_prefix_replay",
    "large_sort_replay",
]


# -- the compiled-plan cache ---------------------------------------------------

_PLAN_CACHE: dict[tuple, object] = {}
_STATS = {"hits": 0, "misses": 0, "compile_seconds": 0.0, "validated": 0}


def _cached_plan(key: tuple, build):
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _STATS["hits"] += 1
        return plan
    _STATS["misses"] += 1
    t0 = time.perf_counter()
    plan = build()
    _STATS["compile_seconds"] += time.perf_counter() - t0
    if plan.validated:
        _STATS["validated"] += 1
    _PLAN_CACHE[key] = plan
    return plan


def plan_cache_stats() -> dict:
    """A snapshot of the compiled-plan cache: hits, misses, size,
    cumulative compile seconds, and how many plans were auto-validated
    against the extractor."""
    return dict(_STATS, size=len(_PLAN_CACHE))


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the cache statistics."""
    _PLAN_CACHE.clear()
    _STATS.update(hits=0, misses=0, compile_seconds=0.0, validated=0)


def registry_from_plan_cache(*, registry=None, labels: dict | None = None):
    """Feed the plan-cache statistics into a metrics registry.

    Returns the registry (a fresh
    :class:`~repro.obs.metrics.MetricsRegistry` unless one is passed),
    carrying ``repro_replay_plan_cache_hits`` / ``_misses`` /
    ``_validated`` counters and ``repro_replay_plan_cache_size`` /
    ``repro_replay_plan_compile_seconds`` gauges.
    """
    from repro.obs.metrics import MetricsRegistry

    reg = registry if registry is not None else MetricsRegistry()
    stats = plan_cache_stats()
    reg.counter(
        "repro_replay_plan_cache_hits",
        "Replay plan cache hits", labels,
    ).inc(stats["hits"])
    reg.counter(
        "repro_replay_plan_cache_misses",
        "Replay plan cache misses (compilations)", labels,
    ).inc(stats["misses"])
    reg.counter(
        "repro_replay_plan_cache_validated",
        "Compiled plans auto-validated against the extractor", labels,
    ).inc(stats["validated"])
    reg.gauge(
        "repro_replay_plan_cache_size",
        "Compiled plans currently cached", labels,
    ).set(stats["size"])
    reg.gauge(
        "repro_replay_plan_compile_seconds",
        "Cumulative wallclock spent compiling plans", labels,
    ).set(stats["compile_seconds"])
    return reg


def get_prefix_plan(dc, *, paper_literal: bool = False):
    """The cached (compiling on first use) `D_prefix` plan for ``dc``."""
    return _cached_plan(
        ("prefix", dc.name, paper_literal),
        lambda: compile_prefix_plan(dc, paper_literal=paper_literal),
    )


def get_schedule_plan(topo, schedule_factory, *, kind: str,
                      descending: bool = False):
    """The cached compare-exchange plan for ``topo``.

    ``schedule_factory()`` produces the
    :class:`~repro.core.dual_sort.ScheduleStep` list; it is only called
    on a cache miss.
    """
    return _cached_plan(
        ("schedule", topo.name, kind, descending),
        lambda: compile_schedule_plan(
            topo, schedule_factory(), kind=kind, descending=descending
        ),
    )


# -- D_prefix replay -----------------------------------------------------------


def dual_prefix_replay(
    dc,
    values,
    op: AssocOp,
    *,
    inclusive: bool = True,
    paper_literal: bool = False,
    counters: CostCounters | None = None,
    shards: int | None = None,
) -> np.ndarray:
    """Replay Algorithm 2 from its compiled plan.

    Results and counter sequence are byte-identical to
    :func:`~repro.core.dual_prefix.dual_prefix_vec`; the arrangement
    permutation, per-round partner permutations, and fold masks come from
    the cached :class:`~repro.analysis.static.compile.PrefixPlan` instead
    of being re-derived per call.  ``shards=k`` (k >= 2) distributes the
    cluster-local ascend phases over ``k`` forked workers (numeric
    ufunc operations only); the cross-edge steps stay in the main
    process as barriers.
    """
    vals = np.asarray(values)
    if vals.shape != (dc.num_nodes,):
        raise ValueError(
            f"expected {dc.num_nodes} values for {dc.name}, got shape {vals.shape}"
        )
    plan = get_prefix_plan(dc, paper_literal=paper_literal)
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > 1 and len(plan.rounds) > 0:
            return _dual_prefix_replay_sharded(
                dc, vals, op, plan, inclusive=inclusive, counters=counters,
                shards=shards,
            )
    n = dc.num_nodes
    held = vals[plan.input_perm]
    t = held.copy()
    s = held.copy() if inclusive else op.identity_array(n)
    t, s = _replay_rounds(plan, t, s, op, counters)

    temp = t[plan.cross]
    if counters is not None:
        counters.record_comm_step(messages=n)

    t2 = temp.copy()
    s2 = op.identity_array(n)
    t2, s2 = _replay_rounds(plan, t2, s2, op, counters)

    got = s2[plan.cross]
    if counters is not None:
        counters.record_comm_step(messages=n)
        counters.record_comp_step(ops_each=1)
    s = combine_arrays(op, got, s)

    if plan.paper_literal and counters is not None:
        counters.record_comm_step(messages=n)
    s = np.where(plan.cls1_mask, combine_arrays(op, t2, s), s)
    if counters is not None:
        counters.record_comp_step(ops_each=1, ranks=plan.cls1_ranks)

    out = np.empty_like(s)
    out[plan.input_perm] = s
    return out


def _replay_rounds(plan, t, s, op, counters):
    """The m ascend rounds from precompiled permutations (both phases
    replay the same tuple) — op-for-op the vectorized
    :func:`~repro.core.cube_prefix.ascend_rounds_vec`."""
    for r in plan.rounds:
        temp = t[r.perm]
        t = np.where(
            r.upper, combine_arrays(op, temp, t), combine_arrays(op, t, temp)
        )
        s = np.where(r.upper, combine_arrays(op, temp, s), s)
        if counters is not None:
            counters.record_comm_step(messages=len(t))
            counters.record_comp_step(ops_each=2)
    return t, s


# -- sharded D_prefix ----------------------------------------------------------


def _shard_worker(task):
    """Run all m ascend rounds on one block of clusters, in shared memory.

    ``task`` = (t_name, s_name, dtype_str, n, m, cls, start, stop, ufunc).
    Class-0 clusters are contiguous rows of the lower half; class-1
    clusters are columns of the upper half, so those slabs move through a
    transpose copy.  The in-place round body is the columnar backend's
    (s_hi = t_lo + s_hi; t_hi = t_lo + t_hi; t_lo = t_hi), which computes
    the same per-element operand order as the vectorized rounds.
    """
    from multiprocessing import shared_memory

    t_name, s_name, dtype_str, n, m, cls, start, stop, ufunc = task
    dt = np.dtype(dtype_str)
    shm_t = shared_memory.SharedMemory(name=t_name)
    shm_s = shared_memory.SharedMemory(name=s_name)
    try:
        half = n // 2
        width = 1 << m
        t_all = np.ndarray((n,), dtype=dt, buffer=shm_t.buf)
        s_all = np.ndarray((n,), dtype=dt, buffer=shm_s.buf)
        if cls == 0:
            t_view = t_all[:half].reshape(-1, width)[start:stop]
            s_view = s_all[:half].reshape(-1, width)[start:stop]
            slab_t = np.ascontiguousarray(t_view)
            slab_s = np.ascontiguousarray(s_view)
        else:
            t_view = t_all[half:].reshape(width, -1)[:, start:stop]
            s_view = s_all[half:].reshape(width, -1)[:, start:stop]
            slab_t = np.ascontiguousarray(t_view.T)
            slab_s = np.ascontiguousarray(s_view.T)
        nc = slab_t.shape[0]
        for i in range(m):
            tv = slab_t.reshape(nc, -1, 2, 1 << i)
            sv = slab_s.reshape(nc, -1, 2, 1 << i)
            t_lo = tv[:, :, 0, :]
            t_hi = tv[:, :, 1, :]
            s_hi = sv[:, :, 1, :]
            ufunc(t_lo, s_hi, out=s_hi)
            ufunc(t_lo, t_hi, out=t_hi)
            t_lo[...] = t_hi
        if cls == 0:
            t_view[...] = slab_t
            s_view[...] = slab_s
        else:
            t_view[...] = slab_t.T
            s_view[...] = slab_s.T
    finally:
        shm_t.close()
        shm_s.close()


def _cluster_blocks(num_clusters: int, shards: int) -> list:
    """Split ``num_clusters`` cluster indices into <= ``shards`` blocks."""
    bounds = np.linspace(0, num_clusters, min(shards, num_clusters) + 1)
    bounds = np.unique(bounds.astype(int))
    return [
        (int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a
    ]


def _swapped_halves(arr: np.ndarray) -> np.ndarray:
    """The cross-edge exchange on a class-contiguous array."""
    half = len(arr) // 2
    out = np.empty_like(arr)
    out[:half] = arr[half:]
    out[half:] = arr[:half]
    return out


def _dual_prefix_replay_sharded(
    dc, vals, op, plan, *, inclusive, counters, shards
):
    import multiprocessing

    if op.ufunc is None:
        raise ValueError(
            f"sharded replay requires an operation with a numpy ufunc "
            f"(got {op.name!r}); run with shards=None"
        )
    if vals.dtype == object:
        raise ValueError(
            "sharded replay supports numeric values only; run with "
            "shards=None"
        )
    if dc.class_dimension != dc.num_dimensions - 1:
        raise ValueError(
            "sharded replay needs the class bit as the top address bit "
            f"(got dimension {dc.class_dimension} of {dc.num_dimensions})"
        )
    n = dc.num_nodes
    m = dc.cluster_dim
    dt = np.result_type(vals.dtype, np.asarray(op.identity).dtype)
    ufunc = op.ufunc
    ctx = multiprocessing.get_context("fork")
    from multiprocessing import shared_memory

    shm_t = shared_memory.SharedMemory(create=True, size=max(1, dt.itemsize * n))
    shm_s = shared_memory.SharedMemory(create=True, size=max(1, dt.itemsize * n))
    try:
        t = np.ndarray((n,), dtype=dt, buffer=shm_t.buf)
        s = np.ndarray((n,), dtype=dt, buffer=shm_s.buf)
        held = vals[plan.input_perm].astype(dt, copy=False)
        t[...] = held
        if inclusive:
            s[...] = held
        else:
            s[...] = op.identity_array(n).astype(dt, copy=False)

        blocks = _cluster_blocks(1 << m, shards)
        tasks = [
            (shm_t.name, shm_s.name, dt.str, n, m, cls, a, b, ufunc)
            for cls in (0, 1)
            for a, b in blocks
        ]
        # Prove the workers' shared-memory write sets pairwise disjoint
        # before anything forks; a racing plan raises ShardRaceError here.
        check_shard_plan(n, m, [(t[5], t[6], t[7]) for t in tasks])

        def charge_rounds():
            if counters is not None:
                for _ in range(m):
                    counters.record_comm_step(messages=n)
                    counters.record_comp_step(ops_each=2)

        with ctx.Pool(processes=min(shards, len(tasks))) as pool:
            # Phase 1: cluster-local ascend rounds (workers), then the
            # cross-edge barrier (main process).
            pool.map(_shard_worker, tasks)
            charge_rounds()
            s_phase1 = s.copy()
            temp = _swapped_halves(t)
            if counters is not None:
                counters.record_comm_step(messages=n)

            # Phase 2: the same rounds on the crossed totals.
            t[...] = temp
            s[...] = op.identity_array(n).astype(dt, copy=False)
            pool.map(_shard_worker, tasks)
            charge_rounds()

        # Folds (main process; identical op order to the unsharded path).
        got = _swapped_halves(s)
        if counters is not None:
            counters.record_comm_step(messages=n)
            counters.record_comp_step(ops_each=1)
        folded = ufunc(got, s_phase1)
        if plan.paper_literal and counters is not None:
            counters.record_comm_step(messages=n)
        folded = np.where(plan.cls1_mask, ufunc(t, folded), folded)
        if counters is not None:
            counters.record_comp_step(ops_each=1, ranks=plan.cls1_ranks)

        out = np.empty(n, dtype=folded.dtype)
        out[plan.input_perm] = folded
        return out
    finally:
        shm_t.close()
        shm_s.close()
        shm_t.unlink()
        shm_s.unlink()


# -- compare-exchange replay ---------------------------------------------------


def execute_schedule_replay(
    topo,
    keys,
    plan,
    *,
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Execute a compiled :class:`SchedulePlan` on a key array.

    Results and counters mirror
    :func:`~repro.core.dual_sort.execute_schedule_vec` exactly; numeric
    dtypes run through four preallocated buffers (``take`` / ``minimum``
    / ``maximum`` / masked ``copyto``) with no per-step allocation,
    object dtypes fall back to the vectorized element loop.
    """
    from repro.core.dual_sort import _check_policy, _count_step, _elementwise_minmax

    _check_policy(payload_policy)
    arr = np.asarray(keys).copy()
    n = topo.num_nodes
    if arr.shape != (n,):
        raise ValueError(
            f"expected {n} keys for {topo.name}, got shape {arr.shape}"
        )
    if arr.dtype == object:
        for cs in plan.steps:
            pk = arr[cs.perm]
            lo, hi = _elementwise_minmax(arr, pk)
            arr = np.where(cs.keep_min, lo, hi)
            if counters is not None:
                _count_step(counters, topo, cs.dim, n, payload_policy)
        return arr
    pk = np.empty_like(arr)
    lo = np.empty_like(arr)
    hi = np.empty_like(arr)
    for cs in plan.steps:
        np.take(arr, cs.perm, out=pk)
        np.minimum(arr, pk, out=lo)
        np.maximum(arr, pk, out=hi)
        np.copyto(hi, lo, where=cs.keep_min)
        arr, hi = hi, arr
        if counters is not None:
            _count_step(counters, topo, cs.dim, n, payload_policy)
    return arr


def dual_sort_replay(
    rdc,
    keys,
    *,
    descending: bool = False,
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Replay Algorithm 3 from its compiled plan; byte-identical results
    and counters to :func:`~repro.core.dual_sort.dual_sort_vec`."""
    from repro.core.dual_sort import dual_sort_schedule

    plan = get_schedule_plan(
        rdc,
        lambda: dual_sort_schedule(rdc.n, descending=descending),
        kind="dual_sort",
        descending=descending,
    )
    return execute_schedule_replay(
        rdc, keys, plan, payload_policy=payload_policy, counters=counters
    )


def hypercube_bitonic_sort_replay(
    keys,
    *,
    descending: bool = False,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Replay Batcher's bitonic network from its compiled plan."""
    from repro.core.bitonic import _sort_cube, bitonic_schedule

    arr = np.asarray(keys)
    cube = _sort_cube(len(arr))
    plan = get_schedule_plan(
        cube,
        lambda: bitonic_schedule(cube.q, descending=descending),
        kind="bitonic",
        descending=descending,
    )
    return execute_schedule_replay(cube, arr, plan, counters=counters)


# -- large-input replay --------------------------------------------------------


def large_prefix_replay(
    dc,
    values,
    op: AssocOp,
    *,
    counters: CostCounters | None = None,
    profiler=None,
    shards: int | None = None,
) -> np.ndarray:
    """Replay the blocked prefix: local phases as in
    :func:`~repro.core.large_inputs.large_prefix`, the network phase from
    the compiled `D_prefix` plan (optionally sharded)."""
    from repro.core.large_inputs import _blocked
    from repro.obs.profile import NULL_PROFILER

    blocks, b = _blocked(values, dc.num_nodes)
    prof = profiler if profiler is not None else NULL_PROFILER

    with prof.span("local-prefix", block=b):
        local = blocks.copy()
        for k in range(1, b):
            local[:, k] = combine_arrays(op, local[:, k - 1], local[:, k])
        if counters is not None and b > 1:
            counters.record_comp_step(ops_each=b - 1)

    with prof.span("network"):
        totals = local[:, -1]
        offsets = dual_prefix_replay(
            dc, totals, op, inclusive=False, counters=counters, shards=shards
        )

    with prof.span("fold", block=b):
        out = np.empty_like(local)
        for k in range(b):
            out[:, k] = combine_arrays(op, offsets, local[:, k])
        if counters is not None:
            counters.record_comp_step(ops_each=b)
        return out.reshape(-1)


def large_sort_replay(
    rdc,
    keys,
    *,
    descending: bool = False,
    payload_policy: str = "packed",
    counters: CostCounters | None = None,
    profiler=None,
) -> np.ndarray:
    """Replay the blocked sort: merge-split rounds over the compiled
    `D_sort` plan's permutations and keep-min masks."""
    from repro.core.dual_sort import _check_policy, dual_sort_schedule
    from repro.core.large_inputs import (
        _blocked,
        _count_block_step,
        _local_sort_ops,
    )
    from repro.obs.profile import NULL_PROFILER

    _check_policy(payload_policy)
    blocks, b = _blocked(keys, rdc.num_nodes)
    if blocks.dtype == object:
        raise TypeError("large_sort supports numeric keys only")
    prof = profiler if profiler is not None else NULL_PROFILER
    plan = get_schedule_plan(
        rdc,
        lambda: dual_sort_schedule(rdc.n, descending=descending),
        kind="dual_sort",
        descending=descending,
    )
    with prof.span("local-sort", block=b):
        arr = np.sort(blocks, axis=1)
        if counters is not None:
            counters.record_comp_step(ops_each=_local_sort_ops(b))

    n = rdc.num_nodes
    for cs in plan.steps:
        with prof.span(cs.phase, step=cs.index, dim=cs.dim):
            pk = arr[cs.perm]
            merged = np.sort(np.concatenate([arr, pk], axis=1), axis=1)
            arr = np.where(cs.keep_min[:, None], merged[:, :b], merged[:, b:])
            if counters is not None:
                _count_block_step(counters, rdc, cs.step, n, b, payload_policy)
    if descending:
        arr = arr[:, ::-1]
    return arr.reshape(-1)
