"""Odd-even transposition sort on the Hamiltonian ring.

A third sorting algorithm for the dual-cube, enabled by the dilation-1
ring embedding: treat ring positions as a linear array and run odd-even
transposition — V phases of disjoint neighbor compare-exchanges, each a
single real link.

Cost: exactly V = 2^(2n-1) communication steps and V comparison rounds.
Versus `D_sort`'s 6n²-7n+2 steps this loses badly asymptotically
(exponential vs quadratic in n) but *wins at n = 2* (8 < 12) — the
crossover experiment E15 regenerates, a textbook illustration of why the
paper builds logarithmic-depth networks instead of systolic ones.

Keys end sorted by *ring position*; :func:`ring_sort_vec` reports them in
ring order, and the node-order view is available through the cycle.
"""

from __future__ import annotations

import numpy as np

from repro.simulator import CostCounters, Idle, SendRecv, run_spmd
from repro.topology.hamiltonian import hamiltonian_cycle
from repro.topology.recursive import RecursiveDualCube

__all__ = [
    "ring_sort_program",
    "ring_sort_engine",
    "ring_sort_vec",
    "ring_sort_steps",
]


def ring_sort_steps(num_nodes: int) -> int:
    """Closed-form communication steps: V phases."""
    return num_nodes


def ring_sort_vec(
    rdc: RecursiveDualCube,
    keys,
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Vectorized odd-even transposition over ring positions.

    ``keys[u]`` is node ``u``'s key; returns the sorted sequence in ring
    order (position 0 smallest).
    """
    arr = np.asarray(keys)
    v = rdc.num_nodes
    if arr.shape != (v,):
        raise ValueError(f"expected {v} keys for {rdc.name}, got shape {arr.shape}")
    cycle = hamiltonian_cycle(rdc.n)
    line = arr[np.array(cycle)].copy()  # keys laid out by ring position
    for phase in range(v):
        start = phase % 2
        # Compare positions (start, start+1), (start+2, start+3), ...
        lo = line[start : v - 1 : 2]
        hi = line[start + 1 : v : 2]
        swap = hi < lo
        new_lo = np.where(swap, hi, lo)
        new_hi = np.where(swap, lo, hi)
        line[start : v - 1 : 2] = new_lo
        line[start + 1 : v : 2] = new_hi
        if counters is not None:
            pairs = len(lo)
            counters.record_comm_step(messages=2 * pairs)
            counters.record_comp_step(ops_each=1)
    return line


def ring_sort_program(
    rdc: RecursiveDualCube,
    keys,
):
    """The SPMD program realizing odd-even transposition on the ring.

    This is the exact program :func:`ring_sort_engine` runs; it is exposed
    so the static schedule analyzer (:mod:`repro.analysis.static`) can
    extract its communication schedule without an engine run.
    """
    vals = list(keys)
    v = rdc.num_nodes
    if len(vals) != v:
        raise ValueError(f"expected {v} keys for {rdc.name}, got {len(vals)}")
    cycle = hamiltonian_cycle(rdc.n)
    pos_of = {node: k for k, node in enumerate(cycle)}

    def program(ctx):
        u = ctx.rank
        pos = pos_of[u]
        key = vals[u]
        for phase in range(v):
            if pos % 2 == phase % 2 and pos + 1 < v:
                partner = cycle[pos + 1]
                got = yield SendRecv(partner, key)
                ctx.compute(1)
                key = min(key, got)
            elif pos % 2 != phase % 2 and pos > 0:
                partner = cycle[pos - 1]
                got = yield SendRecv(partner, key)
                ctx.compute(1)
                key = max(key, got)
            else:
                yield Idle()
        return key

    return program


def ring_sort_engine(
    rdc: RecursiveDualCube,
    keys,
):
    """Cycle-accurate odd-even transposition on the embedded ring.

    Returns ``(sorted_in_ring_order, EngineResult)``.
    """
    program = ring_sort_program(rdc, keys)
    cycle = hamiltonian_cycle(rdc.n)
    v = rdc.num_nodes
    result = run_spmd(rdc, program)
    return [result.returns[cycle[k]] for k in range(v)], result
