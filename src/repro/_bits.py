"""Bit-manipulation kernel shared by all addressing code.

Every topology in this library addresses nodes as unsigned integers whose
binary representation is split into *fields* (class bit, cluster ID, node
ID, …).  This module provides the scalar primitives plus NumPy-vectorized
equivalents used by the fast execution backend, so that the field algebra
lives in exactly one place.

Scalar functions accept and return Python ``int``; vectorized functions
(suffixed ``_v``) accept anything ``numpy.asarray`` can digest and return
``numpy.ndarray`` of an integer dtype.  All bit indices are zero-based from
the least-significant bit.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "bit",
    "set_bit",
    "clear_bit",
    "flip_bit",
    "mask",
    "extract_field",
    "insert_field",
    "swap_fields",
    "hamming",
    "popcount",
    "to_bits",
    "from_bits",
    "bit_string",
    "gray_code",
    "gray_rank",
    "interleave",
    "deinterleave",
    "bit_v",
    "flip_bit_v",
    "extract_field_v",
    "insert_field_v",
    "swap_fields_v",
    "popcount_v",
    "hamming_v",
    "iter_neighbors_xor",
]


def bit(x: int, i: int) -> int:
    """Return bit ``i`` of ``x`` (0 or 1)."""
    return (x >> i) & 1


def set_bit(x: int, i: int) -> int:
    """Return ``x`` with bit ``i`` set to 1."""
    return x | (1 << i)


def clear_bit(x: int, i: int) -> int:
    """Return ``x`` with bit ``i`` cleared to 0."""
    return x & ~(1 << i)


def flip_bit(x: int, i: int) -> int:
    """Return ``x`` with bit ``i`` complemented (the XOR neighbor)."""
    return x ^ (1 << i)


def mask(width: int) -> int:
    """Return a mask of ``width`` low-order ones; ``mask(0) == 0``."""
    if width < 0:
        raise ValueError(f"field width must be non-negative, got {width}")
    return (1 << width) - 1


def extract_field(x: int, lo: int, width: int) -> int:
    """Return the ``width``-bit field of ``x`` starting at bit ``lo``."""
    return (x >> lo) & mask(width)


def insert_field(x: int, lo: int, width: int, value: int) -> int:
    """Return ``x`` with the ``width``-bit field at ``lo`` replaced by ``value``.

    ``value`` is truncated to ``width`` bits.
    """
    m = mask(width)
    return (x & ~(m << lo)) | ((value & m) << lo)


def swap_fields(x: int, lo_a: int, lo_b: int, width: int) -> int:
    """Return ``x`` with the two ``width``-bit fields at ``lo_a``/``lo_b`` swapped.

    The fields must not overlap.  This is the dual-cube ``u*`` data
    arrangement primitive (swap cluster-ID and node-ID fields).
    """
    if abs(lo_a - lo_b) < width:
        raise ValueError(
            f"fields overlap: lo_a={lo_a}, lo_b={lo_b}, width={width}"
        )
    a = extract_field(x, lo_a, width)
    b = extract_field(x, lo_b, width)
    x = insert_field(x, lo_a, width, b)
    return insert_field(x, lo_b, width, a)


def popcount(x: int) -> int:
    """Number of set bits in ``x`` (x >= 0)."""
    return x.bit_count()


def hamming(u: int, v: int) -> int:
    """Hamming distance between the binary representations of ``u`` and ``v``."""
    return (u ^ v).bit_count()


def to_bits(x: int, width: int) -> tuple[int, ...]:
    """Return ``width`` bits of ``x`` as a tuple, most-significant first."""
    return tuple(bit(x, i) for i in range(width - 1, -1, -1))


def from_bits(bits: Iterable[int]) -> int:
    """Inverse of :func:`to_bits`: most-significant-first bit sequence -> int."""
    x = 0
    for b in bits:
        x = (x << 1) | (b & 1)
    return x


def bit_string(x: int, width: int) -> str:
    """Binary string of ``x`` zero-padded to ``width`` characters."""
    return format(x, f"0{width}b")


def gray_code(i: int) -> int:
    """The ``i``-th binary-reflected Gray code."""
    return i ^ (i >> 1)


def gray_rank(g: int) -> int:
    """Inverse of :func:`gray_code`."""
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i


def interleave(a: int, b: int, width: int) -> int:
    """Interleave two ``width``-bit values: bit i of ``a`` -> bit 2i+1, of ``b`` -> bit 2i.

    Used by the recursive-presentation isomorphism, where cluster-ID and
    node-ID fields become the odd/even dimension sets.
    """
    out = 0
    for i in range(width):
        out |= bit(b, i) << (2 * i)
        out |= bit(a, i) << (2 * i + 1)
    return out


def deinterleave(x: int, width: int) -> tuple[int, int]:
    """Inverse of :func:`interleave`: return ``(a, b)`` from the interleaved value."""
    a = 0
    b = 0
    for i in range(width):
        b |= bit(x, 2 * i) << i
        a |= bit(x, 2 * i + 1) << i
    return a, b


def iter_neighbors_xor(x: int, dims: Iterable[int]) -> Iterator[int]:
    """Yield ``x ^ (1 << d)`` for each dimension ``d`` in ``dims``."""
    for d in dims:
        yield x ^ (1 << d)


# ---------------------------------------------------------------------------
# Vectorized equivalents.  These operate on whole node-index arrays at once;
# the fast backend keeps the entire network state in NumPy arrays and uses
# these to compute exchange permutations without Python-level loops.
# ---------------------------------------------------------------------------


def _as_int_array(x) -> np.ndarray:
    arr = np.asarray(x)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"expected an integer array, got dtype {arr.dtype}")
    return arr


def bit_v(x, i: int) -> np.ndarray:
    """Vectorized :func:`bit`."""
    return (_as_int_array(x) >> i) & 1


def flip_bit_v(x, i: int) -> np.ndarray:
    """Vectorized :func:`flip_bit` — the dimension-``i`` exchange permutation."""
    arr = _as_int_array(x)
    return arr ^ arr.dtype.type(1 << i)


def extract_field_v(x, lo: int, width: int) -> np.ndarray:
    """Vectorized :func:`extract_field`."""
    arr = _as_int_array(x)
    return (arr >> lo) & arr.dtype.type(mask(width))


def insert_field_v(x, lo: int, width: int, value) -> np.ndarray:
    """Vectorized :func:`insert_field`."""
    arr = _as_int_array(x)
    m = arr.dtype.type(mask(width))
    val = np.asarray(value, dtype=arr.dtype) & m
    return (arr & ~(m << lo)) | (val << lo)


def swap_fields_v(x, lo_a: int, lo_b: int, width: int) -> np.ndarray:
    """Vectorized :func:`swap_fields`."""
    if abs(lo_a - lo_b) < width:
        raise ValueError(
            f"fields overlap: lo_a={lo_a}, lo_b={lo_b}, width={width}"
        )
    arr = _as_int_array(x)
    a = extract_field_v(arr, lo_a, width)
    b = extract_field_v(arr, lo_b, width)
    out = insert_field_v(arr, lo_a, width, b)
    return insert_field_v(out, lo_b, width, a)


def popcount_v(x) -> np.ndarray:
    """Vectorized :func:`popcount` (64-bit inputs)."""
    arr = _as_int_array(x).astype(np.uint64)
    out = np.zeros(arr.shape, dtype=np.int64)
    while arr.any():
        out += (arr & np.uint64(1)).astype(np.int64)
        arr >>= np.uint64(1)
    return out


def hamming_v(u, v) -> np.ndarray:
    """Vectorized :func:`hamming`."""
    return popcount_v(_as_int_array(u) ^ _as_int_array(v))
