"""Static verification of Theorems 1 and 2 over extracted schedules.

:func:`verify_prefix_schedule` / :func:`verify_sort_schedule` extract the
full communication schedule of Algorithm 2 / Algorithm 3 on D_n and run
every checker over it: edge legality against the actual dual-cube,
pairing/deadlock freedom, the 1-port discipline, and the theorem step
bounds together with the repo's exact cost-model predictions.
:func:`verify_theorems` sweeps both over a range of n — the ``repro
check-schedule`` CLI command and the ``make check`` gate.

:func:`core_schedule_cases` enumerates extraction cases for *every*
engine algorithm in :mod:`repro.core` (including the ``run_faulty``
degraded/reroute recovery collectives); the test suite extracts and
checks each one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.complexity import (
    dual_prefix_comm_exact,
    dual_prefix_comp_exact,
    dual_sort_comm_exact,
    dual_sort_comp_exact,
    theorem1_comm_bound,
    theorem1_comp_bound,
    theorem2_comm_bound,
    theorem2_comp_bound,
)
from repro.analysis.static.checkers import run_schedule_checks
from repro.analysis.static.extract import extract_schedule
from repro.analysis.static.schedule import CommSchedule, Violation
from repro.core.bitonic import bitonic_schedule
from repro.core.dual_prefix import dual_prefix_program
from repro.core.dual_sort import dual_sort_schedule, schedule_program
from repro.core.emulation import exchange_algorithm_program
from repro.core.ops import ADD
from repro.core.ring_sort import ring_sort_program
from repro.core.run_faulty import build_faulty_program
from repro.topology.dualcube import DualCube
from repro.topology.faults import FaultSet
from repro.topology.hypercube import Hypercube
from repro.topology.recursive import RecursiveDualCube

__all__ = [
    "ScheduleReport",
    "verify_prefix_schedule",
    "verify_sort_schedule",
    "verify_theorems",
    "core_schedule_cases",
]


@dataclass(frozen=True)
class ScheduleReport:
    """Outcome of statically verifying one algorithm instance.

    ``ok`` is True iff every checker came back clean; ``violations``
    carries the findings otherwise.
    """

    algo: str
    n: int
    num_nodes: int
    comm_steps: int
    comm_bound: int
    comp_steps: int
    comp_bound: int
    schedule: CommSchedule
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def verify_prefix_schedule(
    n: int, *, paper_literal: bool = False
) -> ScheduleReport:
    """Statically verify Theorem 1's claims for D_prefix on D_n.

    Extracts the schedule of :func:`~repro.core.dual_prefix.dual_prefix_program`
    and checks: every message rides a D_n edge, the schedule completes
    with no deadlock, the 1-port discipline holds, communication steps
    are <= 2n+1 (and exactly match the cost model: 2n, or 2n+1 with
    ``paper_literal``), computation steps <= 2n.
    """
    dc = DualCube(n)
    values = list(range(dc.num_nodes))
    program = dual_prefix_program(
        dc, values, ADD, paper_literal=paper_literal
    )
    schedule = extract_schedule(dc, program)
    violations = run_schedule_checks(
        schedule,
        dc,
        comm_bound=theorem1_comm_bound(n),
        comp_bound=theorem1_comp_bound(n),
        comm_exact=dual_prefix_comm_exact(n, paper_literal=paper_literal),
        comp_exact=dual_prefix_comp_exact(n),
    )
    return ScheduleReport(
        algo="dual_prefix" + (" (paper-literal)" if paper_literal else ""),
        n=n,
        num_nodes=dc.num_nodes,
        comm_steps=schedule.comm_steps,
        comm_bound=theorem1_comm_bound(n),
        comp_steps=schedule.comp_steps,
        comp_bound=theorem1_comp_bound(n),
        schedule=schedule,
        violations=tuple(violations),
    )


def verify_sort_schedule(
    n: int, *, payload_policy: str = "packed"
) -> ScheduleReport:
    """Statically verify Theorem 2's claims for D_sort on D_n.

    Extracts the schedule of the unrolled compare-exchange program and
    checks: edge legality on the recursive dual-cube, completion with no
    deadlock, 1-port discipline, communication steps <= 6n²-3n-2 (the
    paper's bound; the packed relay model predicts exactly 6n²-7n+2),
    comparison steps <= 2n²-n.
    """
    rdc = RecursiveDualCube(n)
    keys = list(range(rdc.num_nodes))[::-1]
    program = schedule_program(
        rdc, keys, dual_sort_schedule(n), payload_policy=payload_policy
    )
    schedule = extract_schedule(rdc, program)
    comm_bound = max(
        theorem2_comm_bound(n),
        dual_sort_comm_exact(n, payload_policy=payload_policy),
    )
    violations = run_schedule_checks(
        schedule,
        rdc,
        comm_bound=comm_bound,
        comp_bound=theorem2_comp_bound(n),
        comm_exact=dual_sort_comm_exact(n, payload_policy=payload_policy),
        comp_exact=dual_sort_comp_exact(n),
    )
    return ScheduleReport(
        algo="dual_sort"
        + ("" if payload_policy == "packed" else f" ({payload_policy})"),
        n=n,
        num_nodes=rdc.num_nodes,
        comm_steps=schedule.comm_steps,
        comm_bound=comm_bound,
        comp_steps=schedule.comp_steps,
        comp_bound=theorem2_comp_bound(n),
        schedule=schedule,
        violations=tuple(violations),
    )


def verify_theorems(
    min_n: int = 2,
    max_n: int = 5,
    *,
    algos: tuple[str, ...] = ("prefix", "sort"),
    paper_literal: bool = False,
    payload_policy: str = "packed",
) -> list[ScheduleReport]:
    """Verify Theorems 1 and 2 statically for every n in ``min_n..max_n``."""
    if min_n < 1 or max_n < min_n:
        raise ValueError(
            f"need 1 <= min_n <= max_n, got min_n={min_n}, max_n={max_n}"
        )
    for algo in algos:
        if algo not in ("prefix", "sort"):
            raise ValueError(
                f"algos must name 'prefix'/'sort', got {algo!r}"
            )
    reports: list[ScheduleReport] = []
    for n in range(min_n, max_n + 1):
        if "prefix" in algos:
            reports.append(
                verify_prefix_schedule(n, paper_literal=paper_literal)
            )
        if "sort" in algos:
            reports.append(
                verify_sort_schedule(n, payload_policy=payload_policy)
            )
    return reports


def _prefix_exchange_rounds(q: int):
    """Algorithm 1's ascend rounds as scalar exchange rounds on (t, s)."""

    def make_update(i: int):
        def update(state, got, rank):
            t, s = state
            if (rank >> i) & 1:
                return (got + t, got + s)
            return (t + got, s)

        return update

    return [(i, lambda st: st[0], make_update(i)) for i in range(q)]


def core_schedule_cases(n: int = 2) -> list[tuple[str, object, object]]:
    """Extraction cases ``(name, topo, program)`` covering repro.core.

    One entry per engine algorithm family: the two headline algorithms
    (both variants each), the hypercube bitonic baseline, generic
    hypercube emulation on both topologies, the ring sort, and the
    ``run_faulty`` degraded and reroute recovery collectives under a
    single node fault.  Every returned program must extract to a
    completed schedule that passes edge-legality, pairing, and
    congestion checks — the test suite asserts exactly that.
    """
    dc = DualCube(n)
    rdc = RecursiveDualCube(n)
    cube = Hypercube(2 * n - 1)
    vals = list(range(dc.num_nodes))
    keys = vals[::-1]
    cases: list[tuple[str, object, object]] = [
        (
            "dual_prefix",
            dc,
            dual_prefix_program(dc, vals, ADD),
        ),
        (
            "dual_prefix paper-literal",
            dc,
            dual_prefix_program(dc, vals, ADD, paper_literal=True),
        ),
        (
            "dual_sort packed",
            rdc,
            schedule_program(rdc, keys, dual_sort_schedule(n)),
        ),
        (
            "dual_sort single",
            rdc,
            schedule_program(
                rdc, keys, dual_sort_schedule(n), payload_policy="single"
            ),
        ),
        (
            "hypercube_bitonic",
            cube,
            schedule_program(cube, keys, bitonic_schedule(2 * n - 1)),
        ),
        (
            "emulated_cube_prefix",
            rdc,
            exchange_algorithm_program(
                rdc,
                [(v, v) for v in vals],
                _prefix_exchange_rounds(2 * n - 1),
            ),
        ),
        (
            "cube_prefix (exchange form)",
            cube,
            exchange_algorithm_program(
                cube,
                [(v, v) for v in vals],
                _prefix_exchange_rounds(2 * n - 1),
            ),
        ),
        (
            "ring_sort",
            rdc,
            ring_sort_program(rdc, keys),
        ),
    ]
    if dc.num_nodes > 2:
        faults = FaultSet(nodes=frozenset({dc.num_nodes - 1}))
        for mode in ("degraded", "reroute"):
            program, ftopo, _members = build_faulty_program(
                "prefix", dc, vals, faults=faults, mode=mode
            )
            cases.append((f"run_faulty {mode} (1 node down)", ftopo, program))
    return cases
