"""The :class:`CommSchedule` IR — a static view of one SPMD execution.

A schedule is the complete per-step record of what an SPMD program *would*
communicate: one :class:`CommEvent` per delivered message (lockstep step,
source, destination, request kind, payload item count), plus the requests
still pending if the program can never finish (:class:`BlockedOp`).  The
IR is plain data: checkers consume it without caring whether it came from
the record-only extractor, an engine message log, or a hand-written
fixture in a test.

Step numbering matches the engine's cycle count, so ``comm_steps`` of an
extracted schedule equals the ``comm_steps`` a real engine run would
measure — which is what lets the Theorem 1/2 bounds be checked statically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CommEvent", "BlockedOp", "CommSchedule", "Violation"]

# Request kinds as they appear in the IR.
KINDS = ("idle", "send", "recv", "sendrecv", "shift")


@dataclass(frozen=True)
class CommEvent:
    """One delivered message: ``src -> dst`` completing at ``step``.

    ``step`` is 1-based and equals the engine cycle in which the transfer
    completes; ``kind`` is the request kind of the *sending* leg
    (``"send"``, ``"sendrecv"`` or ``"shift"``); ``size`` counts
    key-sized payload items (0 for control-only messages).
    """

    step: int
    src: int
    dst: int
    kind: str = "send"
    size: int = 1


@dataclass(frozen=True)
class BlockedOp:
    """A request that never completed (present only in stalled schedules).

    ``send_to``/``recv_from`` are the counterpart ranks of the two
    possible legs (``None`` when the leg is absent); ``issued_step`` is
    the step at which the request was posted.
    """

    rank: int
    kind: str
    send_to: int | None = None
    recv_from: int | None = None
    issued_step: int = 0

    def waits_on(self) -> tuple[int, ...]:
        """The ranks whose cooperation this request needs to complete."""
        legs = []
        if self.send_to is not None:
            legs.append(self.send_to)
        if self.recv_from is not None and self.recv_from != self.send_to:
            legs.append(self.recv_from)
        return tuple(legs)


@dataclass(frozen=True)
class CommSchedule:
    """Full communication schedule of one SPMD program.

    ``steps`` counts executed lockstep steps (idle-only steps included,
    exactly like the engine's cycle counter); ``comp_steps`` is the
    longest per-rank chain of :meth:`~repro.simulator.node.NodeCtx.compute`
    rounds.  ``completed`` is False when extraction stalled (deadlock,
    orphan receive, mismatched pairing) or hit the step budget
    (``truncated``); the unfinished requests are then in ``blocked``.
    """

    num_nodes: int
    topology: str
    events: tuple[CommEvent, ...]
    steps: int
    comp_steps: int = 0
    completed: bool = True
    blocked: tuple[BlockedOp, ...] = ()
    stalled_at: int | None = None
    truncated: bool = False

    @property
    def comm_steps(self) -> int:
        """Communication steps in the paper's sense (alias of ``steps``)."""
        return self.steps

    @property
    def messages(self) -> int:
        """Total delivered messages."""
        return len(self.events)

    def events_at(self, step: int) -> tuple[CommEvent, ...]:
        """All transfers completing at lockstep step ``step``."""
        return tuple(e for e in self.events if e.step == step)

    def link_loads(self) -> dict[tuple[int, int], int]:
        """Messages per undirected link ``(min, max)`` over the whole run."""
        loads: dict[tuple[int, int], int] = {}
        for e in self.events:
            key = (min(e.src, e.dst), max(e.src, e.dst))
            loads[key] = loads.get(key, 0) + 1
        return loads

    def max_link_load(self) -> int:
        """Heaviest per-link message count (0 for an empty schedule)."""
        loads = self.link_loads()
        return max(loads.values()) if loads else 0


@dataclass(frozen=True)
class Violation:
    """One checker finding over a :class:`CommSchedule`.

    ``code`` identifies the rule (``"illegal-edge"``, ``"deadlock"``,
    ``"orphan"``, ``"port-limit"``, ``"link-congestion"``,
    ``"comm-bound"``, …); ``step``/``rank`` locate it when meaningful.
    """

    code: str
    message: str
    step: int | None = None
    rank: int | None = None

    def __str__(self) -> str:
        where = []
        if self.step is not None:
            where.append(f"step {self.step}")
        if self.rank is not None:
            where.append(f"rank {self.rank}")
        loc = f" ({', '.join(where)})" if where else ""
        return f"[{self.code}]{loc} {self.message}"
