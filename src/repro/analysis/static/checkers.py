"""Checkers over the :class:`~repro.analysis.static.schedule.CommSchedule` IR.

Each checker returns a list of
:class:`~repro.analysis.static.schedule.Violation` (empty = clean) and is
pure over the IR, so the same checks apply to extracted schedules, engine
message logs, and hand-built fixtures alike.

* :func:`check_edge_legality` — every transfer (delivered or blocked)
  must traverse an actual edge of the given topology;
* :func:`check_pairing` — send/recv pairing: a completed schedule is
  clean by construction, a stalled one is diagnosed through its wait-for
  graph (deadlock cycles, orphan receives, mismatched counterparts);
* :func:`check_congestion` — the 1-port model (<= 1 send and <= 1 receive
  per node per step, <= 1 message per directed link per step) plus an
  optional aggregate per-link load bound;
* :func:`check_bounds` — communication/computation step counts against
  theorem bounds and exact cost-model predictions.

Violation codes are grouped into classes with stable CLI exit codes
(:data:`EXIT_CODES`, :func:`exit_code_for`): legality 2, pairing 3,
congestion 4, bounds 5, fault impact 6.  When several classes fire, the
lowest (most fundamental) code wins, so ``repro check-schedule --json``
and ``repro check-faults`` report comparably in scripts and CI.
"""

from __future__ import annotations

from repro.analysis.static.schedule import CommSchedule, Violation
from repro.topology.base import Topology

__all__ = [
    "check_edge_legality",
    "check_pairing",
    "check_congestion",
    "check_bounds",
    "run_schedule_checks",
    "VIOLATION_CLASSES",
    "EXIT_CODES",
    "exit_code_for",
]

# Violation-code -> class.  Exit code 1 stays reserved for generic CLI
# errors (bad arguments, unknown topology), so classes start at 2.
VIOLATION_CLASSES: dict[str, str] = {
    "illegal-edge": "legality",
    "race": "legality",
    "stall": "pairing",
    "livelock": "pairing",
    "orphan": "pairing",
    "mismatch": "pairing",
    "deadlock": "pairing",
    "port-limit": "congestion",
    "link-congestion": "congestion",
    "comm-bound": "bounds",
    "comp-bound": "bounds",
    "comm-exact": "bounds",
    "comp-exact": "bounds",
    "impact": "impact",
}

EXIT_CODES: dict[str, int] = {
    "legality": 2,
    "pairing": 3,
    "congestion": 4,
    "bounds": 5,
    "impact": 6,
}


def exit_code_for(violations) -> int:
    """CLI exit code for a violation list: 0 clean, else the lowest class
    code present (unknown codes count as generic failures, exit 1)."""
    codes = set()
    for v in violations:
        cls = VIOLATION_CLASSES.get(v.code)
        codes.add(EXIT_CODES[cls] if cls is not None else 1)
    return min(codes) if codes else 0


def _legal_endpoint(u: int, v: int, topo: Topology, n: int) -> str | None:
    """Reason the ``u -> v`` hop is illegal, or None when it is fine."""
    if not 0 <= v < n:
        return f"endpoint {v} is outside 0..{n - 1}"
    if u == v:
        return f"rank {u} addresses itself"
    if not topo.has_edge(u, v):
        return f"no edge {u} <-> {v} in {topo.name}"
    return None


def check_edge_legality(
    schedule: CommSchedule, topo: Topology
) -> list[Violation]:
    """Every transfer must traverse a real edge of ``topo``.

    Both delivered events and the legs of blocked requests are checked,
    so an illegal endpoint is reported even when it (also) prevents the
    schedule from completing.  Repeated use of the same illegal pair is
    reported once per (src, dst) to keep reports readable.
    """
    if topo.num_nodes != schedule.num_nodes:
        return [
            Violation(
                "illegal-edge",
                f"schedule has {schedule.num_nodes} ranks but {topo.name} "
                f"has {topo.num_nodes} nodes",
            )
        ]
    n = topo.num_nodes
    out: list[Violation] = []
    seen: set[tuple[int, int]] = set()
    for e in schedule.events:
        pair = (e.src, e.dst)
        if pair in seen:
            continue
        seen.add(pair)
        reason = _legal_endpoint(e.src, e.dst, topo, n)
        if reason is not None:
            out.append(
                Violation(
                    "illegal-edge",
                    f"{e.kind} {e.src} -> {e.dst}: {reason}",
                    step=e.step,
                    rank=e.src,
                )
            )
    for b in schedule.blocked:
        for other in b.waits_on():
            pair = (b.rank, other)
            if pair in seen:
                continue
            seen.add(pair)
            reason = _legal_endpoint(b.rank, other, topo, n)
            if reason is not None:
                out.append(
                    Violation(
                        "illegal-edge",
                        f"blocked {b.kind} at rank {b.rank} targets "
                        f"{other}: {reason}",
                        rank=b.rank,
                    )
                )
    return out


def _find_cycle(edges: dict[int, tuple[int, ...]]) -> list[int] | None:
    """One cycle in the wait-for graph as a rank list, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {u: WHITE for u in edges}
    for start in edges:
        if color[start] != WHITE:
            continue
        # Iterative DFS keeping the gray path for cycle reconstruction.
        path: list[int] = []
        stack: list[tuple[int, int]] = [(start, 0)]
        while stack:
            u, i = stack.pop()
            if i == 0:
                color[u] = GRAY
                path.append(u)
            targets = edges.get(u, ())
            if i < len(targets):
                stack.append((u, i + 1))
                v = targets[i]
                if v not in color:
                    continue
                if color[v] == GRAY:
                    return path[path.index(v):] + [v]
                if color[v] == WHITE:
                    stack.append((v, 0))
            else:
                color[u] = BLACK
                path.pop()
    return None


def check_pairing(schedule: CommSchedule) -> list[Violation]:
    """Send/recv pairing: diagnose why a schedule cannot complete.

    A completed schedule pairs by construction (a message is only ever
    delivered into a matching counterpart) and returns no findings.  A
    stalled schedule is diagnosed from its blocked requests:

    * ``orphan`` — a request waits on a rank that has already terminated
      (the classic orphan receive / unreceived send);
    * ``mismatch`` — both sides are present but their legs do not
      reciprocate (``Send`` facing ``Send``, ``SendRecv`` facing a bare
      ``Recv``, or a counterpart engaged with a third rank);
    * ``deadlock`` — a cycle in the wait-for graph over blocked ranks;
    * ``stall``/``livelock`` — the summary finding carrying the step.
    """
    out: list[Violation] = []
    if schedule.completed and not schedule.truncated:
        return out
    blocked = {b.rank: b for b in schedule.blocked}
    if schedule.truncated:
        out.append(
            Violation(
                "livelock",
                f"no completion within the step budget after step "
                f"{schedule.steps}; {len(blocked)} requests pending",
            )
        )
    else:
        out.append(
            Violation(
                "stall",
                f"schedule stalls at step {schedule.stalled_at}: "
                f"{len(blocked)} blocked requests can never complete",
                step=schedule.stalled_at,
            )
        )

    edges: dict[int, tuple[int, ...]] = {}
    for b in blocked.values():
        waiting: list[int] = []
        for other in b.waits_on():
            peer = blocked.get(other)
            if peer is None:
                out.append(
                    Violation(
                        "orphan",
                        f"{b.kind} at rank {b.rank} waits on rank {other}, "
                        f"which "
                        + (
                            "does not exist"
                            if not 0 <= other < schedule.num_nodes
                            else "has terminated"
                        ),
                        rank=b.rank,
                    )
                )
                continue
            waiting.append(other)
            reciprocates = b.rank in peer.waits_on()
            kinds_ok = (b.kind == "sendrecv") == (peer.kind == "sendrecv")
            if not reciprocates or not kinds_ok:
                out.append(
                    Violation(
                        "mismatch",
                        f"{b.kind} at rank {b.rank} faces {peer.kind} at "
                        f"rank {other}, which does not reciprocate",
                        rank=b.rank,
                    )
                )
        edges[b.rank] = tuple(waiting)

    cycle = _find_cycle(edges)
    if cycle is not None:
        out.append(
            Violation(
                "deadlock",
                "wait-for cycle among blocked ranks: "
                + " -> ".join(map(str, cycle)),
                rank=cycle[0],
            )
        )
    return out


def check_congestion(
    schedule: CommSchedule,
    *,
    port_limit: int = 1,
    max_link_load: int | None = None,
) -> list[Violation]:
    """1-port discipline per step, plus an optional aggregate link bound.

    Per lockstep step every node may send at most ``port_limit`` messages
    and receive at most ``port_limit`` messages, and each directed link
    may carry at most one message.  ``max_link_load`` additionally bounds
    the total messages any undirected link carries over the whole run
    (the per-link congestion budget).
    """
    out: list[Violation] = []
    by_step: dict[int, list] = {}
    for e in schedule.events:
        by_step.setdefault(e.step, []).append(e)
    for step in sorted(by_step):
        sends: dict[int, int] = {}
        recvs: dict[int, int] = {}
        links: dict[tuple[int, int], int] = {}
        for e in by_step[step]:
            sends[e.src] = sends.get(e.src, 0) + 1
            recvs[e.dst] = recvs.get(e.dst, 0) + 1
            links[(e.src, e.dst)] = links.get((e.src, e.dst), 0) + 1
        for rank, count in sorted(sends.items()):
            if count > port_limit:
                out.append(
                    Violation(
                        "port-limit",
                        f"rank {rank} sends {count} messages in one step "
                        f"(limit {port_limit})",
                        step=step,
                        rank=rank,
                    )
                )
        for rank, count in sorted(recvs.items()):
            if count > port_limit:
                out.append(
                    Violation(
                        "port-limit",
                        f"rank {rank} receives {count} messages in one "
                        f"step (limit {port_limit})",
                        step=step,
                        rank=rank,
                    )
                )
        for (src, dst), count in sorted(links.items()):
            if count > 1:
                out.append(
                    Violation(
                        "link-congestion",
                        f"directed link {src} -> {dst} carries {count} "
                        f"messages in one step",
                        step=step,
                        rank=src,
                    )
                )
    if max_link_load is not None:
        for (u, v), load in sorted(schedule.link_loads().items()):
            if load > max_link_load:
                out.append(
                    Violation(
                        "link-congestion",
                        f"link {u} <-> {v} carries {load} messages over "
                        f"the run (budget {max_link_load})",
                        rank=u,
                    )
                )
    return out


def check_bounds(
    schedule: CommSchedule,
    *,
    comm_bound: int | None = None,
    comp_bound: int | None = None,
    comm_exact: int | None = None,
    comp_exact: int | None = None,
) -> list[Violation]:
    """Step counts against theorem bounds and exact model predictions.

    ``comm_bound``/``comp_bound`` are "at most" claims (Theorems 1/2);
    ``comm_exact``/``comp_exact`` assert the closed-form cost model hits
    the schedule exactly.  An incomplete schedule fails outright — its
    step count is meaningless.
    """
    out: list[Violation] = []
    if not schedule.completed:
        out.append(
            Violation(
                "comm-bound",
                "schedule never completes; step bounds are vacuous",
            )
        )
        return out
    if comm_bound is not None and schedule.comm_steps > comm_bound:
        out.append(
            Violation(
                "comm-bound",
                f"{schedule.comm_steps} communication steps exceed the "
                f"bound {comm_bound}",
            )
        )
    if comp_bound is not None and schedule.comp_steps > comp_bound:
        out.append(
            Violation(
                "comp-bound",
                f"{schedule.comp_steps} computation steps exceed the "
                f"bound {comp_bound}",
            )
        )
    if comm_exact is not None and schedule.comm_steps != comm_exact:
        out.append(
            Violation(
                "comm-exact",
                f"{schedule.comm_steps} communication steps != model "
                f"prediction {comm_exact}",
            )
        )
    if comp_exact is not None and schedule.comp_steps != comp_exact:
        out.append(
            Violation(
                "comp-exact",
                f"{schedule.comp_steps} computation steps != model "
                f"prediction {comp_exact}",
            )
        )
    return out


def run_schedule_checks(
    schedule: CommSchedule,
    topo: Topology,
    *,
    comm_bound: int | None = None,
    comp_bound: int | None = None,
    comm_exact: int | None = None,
    comp_exact: int | None = None,
    max_link_load: int | None = None,
) -> list[Violation]:
    """All checkers in sequence; empty list means the schedule is clean."""
    out = check_edge_legality(schedule, topo)
    out += check_pairing(schedule)
    out += check_congestion(schedule, max_link_load=max_link_load)
    out += check_bounds(
        schedule,
        comm_bound=comm_bound,
        comp_bound=comp_bound,
        comm_exact=comm_exact,
        comp_exact=comp_exact,
    )
    return out
