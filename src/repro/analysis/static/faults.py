"""Static fault-impact analysis over :class:`CommSchedule` IR.

PR 4 verified the *fault-free* schedules; this module answers the next
question without running the engine: **what breaks when faults strike?**
Three analyses, all pure over the IR plus a
:class:`~repro.simulator.faults.StaticFaultView`:

* :func:`analyze_fault_impact` — a fault-aware abstract interpreter.
  Walks the schedule step by step, removes every transfer a crash or cut
  makes impossible, and propagates the loss through the send/recv
  dependence DAG.  Under ``"block"`` semantics (no timeout) a rank whose
  exchange fails blocks forever, so loss cascades as *blocking*; under
  ``"cancel"`` semantics (``timeout`` + ``on_timeout="cancel"``) the rank
  continues with the :data:`~repro.simulator.faults.FAULTED` sentinel, so
  loss cascades as *taint*.  The result's **blast radius** is the exact
  rank set whose outputs are undelivered (dead or blocked) or corrupted
  (tainted), and its fault-pruned schedule feeds straight into
  :func:`~repro.analysis.static.checkers.check_pairing` for wait-for-graph
  deadlock/orphan diagnosis (:meth:`FaultImpact.diagnose`).

* :func:`recovery_impact` — the static prediction of
  :func:`~repro.core.run_faulty.run_faulty`'s exclusion set: healthy
  membership by BFS reachability (``degraded``) or route existence
  (``reroute``) from ``root = min(healthy)``.  The differential suite
  asserts it matches the dynamic outcome for every single-node and
  single-link fault on D_2..D_4 under both engine matchers.

* :func:`minimal_cut` and friends — the smallest fault set violating a
  correctness predicate.  The generic search is greedy (plus caller
  seeds) for an upper bound, then branch-and-bound by iterative
  deepening under an evaluation budget; :func:`structural_node_cut` /
  :func:`structural_link_cut` compute the all-ranks-included cuts
  exactly via Menger max-flow sweeps, and :func:`minimal_cut_table`
  produces the E19 table for D_2..D_5 vs Q_5.

Note the taint analysis is **rank-level**: a rank that receives any
fault-influenced payload counts as corrupted, even if the value it
finally returns happens to be unaffected.  That is the right granularity
for blast-radius triage (and matches the engine's timeline-derived taint
closure, asserted in the differential tests).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterable, Sequence

from repro.analysis.static.checkers import check_pairing
from repro.analysis.static.schedule import (
    BlockedOp,
    CommEvent,
    CommSchedule,
    Violation,
)
from repro.routing.fault_tolerant import adaptive_route, ft_route
from repro.simulator.faults import FaultPlan, StaticFaultView
from repro.topology.base import Topology
from repro.topology.dualcube import DualCube
from repro.topology.faults import FaultSet, FaultyTopology

__all__ = [
    "FaultImpact",
    "analyze_fault_impact",
    "RecoveryImpact",
    "recovery_impact",
    "fault_set_of",
    "all_included_violated",
    "rank_included_violated",
    "quorum_violated",
    "CutResult",
    "minimal_cut",
    "structural_node_cut",
    "structural_link_cut",
    "quorum_node_cut",
    "minimal_cut_table",
]

_SEMANTICS = ("block", "cancel")
_RECOVERY_MODES = ("degraded", "reroute")


def _as_view(faults) -> StaticFaultView:
    """Coerce FaultSet / FaultPlan / StaticFaultView to a static view."""
    if isinstance(faults, StaticFaultView):
        return faults
    if isinstance(faults, FaultPlan):
        return faults.static_view()
    if isinstance(faults, FaultSet):
        return StaticFaultView.from_faults(
            nodes=faults.nodes, links=faults.links
        )
    raise TypeError(
        f"expected FaultSet, FaultPlan or StaticFaultView, got "
        f"{type(faults).__name__}"
    )


# -- blast radius: the fault-aware abstract interpreter ------------------------


@dataclass(frozen=True)
class FaultImpact:
    """Outcome of :func:`analyze_fault_impact` on one schedule.

    ``dead`` are ranks whose crash cycle falls inside the schedule;
    ``blocked`` (``"block"`` semantics) are alive ranks whose request can
    never complete; ``tainted`` (``"cancel"`` semantics) are alive ranks
    that lost an exchange or received fault-influenced data.  ``schedule``
    is the fault-pruned :class:`CommSchedule` — delivered events only,
    with one synthesized :class:`BlockedOp` per blocked rank — ready for
    the pairing checker.
    """

    semantics: str
    num_nodes: int
    dead: tuple[int, ...]
    blocked: tuple[int, ...]
    tainted: tuple[int, ...]
    lost: tuple[CommEvent, ...]
    schedule: CommSchedule

    @property
    def blast_radius(self) -> tuple[int, ...]:
        """Ranks whose outputs are corrupted or undelivered."""
        return tuple(
            sorted(set(self.dead) | set(self.blocked) | set(self.tainted))
        )

    @property
    def delivered(self) -> int:
        """Messages that still complete under the faults."""
        return len(self.schedule.events)

    def diagnose(self) -> list[Violation]:
        """Wait-for-graph diagnosis of the fault-pruned schedule.

        Re-runs :func:`~repro.analysis.static.checkers.check_pairing`, so
        a hang shows up as the blocking cycle (``deadlock``) or as waits
        on terminated ranks (``orphan``), not as a timeout.
        """
        return check_pairing(self.schedule)


def _synth_blocked_op(rank: int, step: int,
                      lost: Sequence[CommEvent]) -> BlockedOp:
    """Reconstruct the pending request of ``rank`` from its lost legs."""
    outs = [e for e in lost if e.src == rank]
    ins = [e for e in lost if e.dst == rank]
    if outs:
        e = outs[0]
        if e.kind == "sendrecv":
            return BlockedOp(rank=rank, kind="sendrecv", send_to=e.dst,
                             recv_from=e.dst, issued_step=step)
        if e.kind == "shift":
            recv_from = ins[0].src if ins else None
            return BlockedOp(rank=rank, kind="shift", send_to=e.dst,
                             recv_from=recv_from, issued_step=step)
        return BlockedOp(rank=rank, kind="send", send_to=e.dst,
                         issued_step=step)
    return BlockedOp(rank=rank, kind="recv", recv_from=ins[0].src,
                     issued_step=step)


def analyze_fault_impact(
    schedule: CommSchedule,
    faults,
    *,
    semantics: str | None = None,
) -> FaultImpact:
    """Forward taint/blocking propagation of ``faults`` through ``schedule``.

    ``faults`` is a :class:`~repro.topology.faults.FaultSet` (permanent),
    a :class:`~repro.simulator.faults.FaultPlan` (crashes/cuts with
    cycles; transient drop/delay plans and downtime-interval plans are
    rejected — their effect is timing-dependent), or a
    :class:`StaticFaultView`.

    ``semantics`` defaults to what the plan implies: ``"cancel"`` when it
    carries ``on_timeout="cancel"`` with a timeout, else ``"block"``.
    Per lockstep step, an event is lost when an endpoint is dead, the
    link is down, or (``"block"``) an endpoint already blocked; because a
    request's legs stand or fall together, loss reaches a fixed point
    within the step (a failed rank's other legs fail too — all members of
    a failed lockstep exchange are affected).  Under ``"block"`` the
    failed alive ranks block from that step on; under ``"cancel"`` they
    continue tainted, and every delivered message from a tainted sender
    taints its receiver.
    """
    view = _as_view(faults)
    if view.transient:
        raise ValueError(
            "fault plan has drop/delay randomness; static impact analysis "
            "covers deterministic crashes and cuts only (run mode='retry' "
            "dynamically for transient plans)"
        )
    if view.downs:
        raise ValueError(
            "fault plan has downtime intervals; lockstep stalls make "
            "schedule steps drift from engine cycles, so a step-indexed "
            "analysis of a bounded outage window would be unsound — "
            "over-approximate each downtime as a crash at its start cycle "
            "(see repro.simulator.campaign.structural_overapproximation) "
            "or run the plan dynamically"
        )
    if not schedule.completed:
        raise ValueError(
            "impact analysis needs a completed baseline schedule; this one "
            f"stalls at step {schedule.stalled_at}"
        )
    if semantics is None:
        semantics = (
            "cancel"
            if view.timeout is not None and view.on_timeout == "cancel"
            else "block"
        )
    if semantics not in _SEMANTICS:
        raise ValueError(
            f"semantics must be one of {_SEMANTICS}, got {semantics!r}"
        )
    crash_cycle = dict(view.crashes)
    for rank in crash_cycle:
        if not 0 <= rank < schedule.num_nodes:
            raise ValueError(
                f"crash rank {rank} outside 0..{schedule.num_nodes - 1}"
            )

    by_step: dict[int, list[CommEvent]] = {}
    for e in schedule.events:
        by_step.setdefault(e.step, []).append(e)

    blocked_at: dict[int, int] = {}
    blocked_ops: list[BlockedOp] = []
    tainted: set[int] = set()
    kept: list[CommEvent] = []
    lost_all: list[CommEvent] = []

    for step in sorted(by_step):
        events = by_step[step]
        lost: set[int] = set()
        for i, e in enumerate(events):
            if (
                view.node_dead(e.src, step)
                or view.node_dead(e.dst, step)
                or view.link_down(e.src, e.dst, step)
                or (
                    semantics == "block"
                    and (e.src in blocked_at or e.dst in blocked_at)
                )
            ):
                lost.add(i)
        # A request's legs stand or fall together: any rank with a lost
        # leg this step loses its whole exchange (fixed point — shift
        # rings can cascade all the way around).
        while True:
            failed = {events[i].src for i in lost} | {
                events[i].dst for i in lost
            }
            grown = {
                i
                for i, e in enumerate(events)
                if i not in lost and (e.src in failed or e.dst in failed)
            }
            if not grown:
                break
            lost |= grown

        taint_at_entry = frozenset(tainted)
        lost_here = [events[i] for i in sorted(lost)]
        for i, e in enumerate(events):
            if i in lost:
                lost_all.append(e)
            else:
                kept.append(e)
                if semantics == "cancel" and e.src in taint_at_entry:
                    tainted.add(e.dst)
        if not lost_here:
            continue
        for rank in sorted(failed):
            # Ranks that die within the schedule are terminated, not
            # blocked/tainted — their partners orphan on them instead.
            if crash_cycle.get(rank, schedule.steps + 1) <= schedule.steps:
                continue
            if semantics == "block":
                if rank not in blocked_at:
                    blocked_at[rank] = step
                    blocked_ops.append(
                        _synth_blocked_op(rank, step, lost_here)
                    )
            else:
                tainted.add(rank)

    dead = tuple(
        sorted(r for r, c in crash_cycle.items() if c <= schedule.steps)
    )
    blocked_ops.sort(key=lambda b: b.rank)
    completed = not blocked_ops
    pruned = CommSchedule(
        num_nodes=schedule.num_nodes,
        topology=schedule.topology,
        events=tuple(kept),
        steps=(
            schedule.steps
            if completed
            else max((e.step for e in kept), default=0)
        ),
        comp_steps=schedule.comp_steps,
        completed=completed,
        blocked=tuple(blocked_ops),
        stalled_at=(
            None
            if completed
            else min(b.issued_step for b in blocked_ops)
        ),
    )
    return FaultImpact(
        semantics=semantics,
        num_nodes=schedule.num_nodes,
        dead=dead,
        blocked=tuple(sorted(blocked_at)),
        tainted=tuple(sorted(tainted)),
        lost=tuple(lost_all),
        schedule=pruned,
    )


# -- recovery-collective exclusion prediction ----------------------------------


@dataclass(frozen=True)
class RecoveryImpact:
    """Static prediction of a :func:`~repro.core.run_faulty.run_faulty`
    outcome: which ranks participate and which are excluded."""

    mode: str
    root: int
    members: tuple[int, ...]
    excluded: tuple[int, ...]
    num_nodes: int

    @property
    def blast_radius(self) -> tuple[int, ...]:
        """Ranks without a (correct) output — the exclusion set."""
        return self.excluded


def recovery_impact(
    topo: Topology,
    faults: FaultSet | None = None,
    *,
    mode: str = "degraded",
) -> RecoveryImpact:
    """Predict ``run_faulty``'s exclusion set without running anything.

    ``degraded`` membership is BFS reachability from ``min(healthy)``
    over the healthy subgraph; ``reroute`` membership is route existence
    (:func:`~repro.routing.fault_tolerant.adaptive_route` on dual-cubes,
    :func:`~repro.routing.fault_tolerant.ft_route` otherwise) — the same
    reachability laws the dynamic collectives are built from, checked
    here against the *executed* outcome by the differential suite.
    """
    if mode not in _RECOVERY_MODES:
        raise ValueError(
            f"mode must be one of {_RECOVERY_MODES}, got {mode!r}"
        )
    faults = faults if faults is not None else FaultSet()
    ftopo = FaultyTopology(topo, faults)
    healthy = ftopo.healthy_nodes()
    root = min(healthy)
    members: set[int] = {root}
    if mode == "degraded":
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in ftopo.neighbors(u):
                if v not in members:
                    members.add(v)
                    queue.append(v)
    else:
        is_dc = isinstance(topo, DualCube)
        for w in healthy:
            if w == root:
                continue
            walk = (
                adaptive_route(ftopo, topo, root, w)
                if is_dc
                else ft_route(ftopo, root, w)
            )
            if walk is not None:
                members.add(w)
    n = topo.num_nodes
    member_t = tuple(sorted(members))
    excluded = tuple(sorted(set(range(n)) - members))
    return RecoveryImpact(
        mode=mode,
        root=root,
        members=member_t,
        excluded=excluded,
        num_nodes=n,
    )


# -- correctness predicates over fault elements --------------------------------


def fault_set_of(elements: Iterable[tuple]) -> FaultSet:
    """Build a :class:`FaultSet` from ``("node", r)`` / ``("link", (u, v))``
    elements (the currency of the minimal-cut search)."""
    nodes: list[int] = []
    links: list[tuple[int, int]] = []
    for kind, payload in elements:
        if kind == "node":
            nodes.append(payload)
        elif kind == "link":
            links.append(payload)
        else:
            raise ValueError(
                f"fault element kind must be 'node' or 'link', got {kind!r}"
            )
    return FaultSet(nodes=nodes, links=links)


def _recovery_or_none(topo, elements, mode) -> RecoveryImpact | None:
    fs = fault_set_of(elements)
    if len(fs.nodes) >= topo.num_nodes:
        return None  # every node down: no run at all
    return recovery_impact(topo, fs, mode=mode)


def all_included_violated(
    topo: Topology, *, mode: str = "degraded"
) -> Callable[[tuple], bool]:
    """Predicate: some *healthy* rank is excluded from the collective."""

    def violated(elements: tuple) -> bool:
        ri = _recovery_or_none(topo, elements, mode)
        if ri is None:
            return True
        fs = fault_set_of(elements)
        return any(r not in fs.nodes for r in ri.excluded)

    return violated


def rank_included_violated(
    topo: Topology, rank: int, *, mode: str = "degraded"
) -> Callable[[tuple], bool]:
    """Predicate: ``rank`` (e.g. the root, 0) gets no correct output."""
    topo.check_node(rank)

    def violated(elements: tuple) -> bool:
        ri = _recovery_or_none(topo, elements, mode)
        return ri is None or rank in ri.excluded

    return violated


def quorum_violated(
    topo: Topology, frac: float = 0.75, *, mode: str = "degraded"
) -> Callable[[tuple], bool]:
    """Predicate: fewer than ``ceil(frac * n)`` ranks get outputs."""
    if not 0.0 < frac <= 1.0:
        raise ValueError(f"quorum fraction must be in (0, 1], got {frac}")
    need = math.ceil(frac * topo.num_nodes)

    def violated(elements: tuple) -> bool:
        ri = _recovery_or_none(topo, elements, mode)
        return ri is None or len(ri.members) < need

    return violated


# -- minimal-cut search --------------------------------------------------------


@dataclass(frozen=True)
class CutResult:
    """Outcome of a minimal-cut search.

    ``found`` — some violating fault set was found; ``elements`` is then
    the smallest one seen.  ``exact`` — every smaller size was fully
    enumerated (the cut is provably minimal), not just the best within
    the evaluation ``budget``.
    """

    elements: tuple
    found: bool
    exact: bool
    evaluations: int

    @property
    def size(self) -> int | None:
        return len(self.elements) if self.found else None


def minimal_cut(
    violated: Callable[[tuple], bool],
    candidates: Sequence,
    *,
    score: Callable[[tuple], float] | None = None,
    seeds: Iterable[tuple] = (),
    max_size: int | None = None,
    budget: int = 50_000,
) -> CutResult:
    """Smallest subset of ``candidates`` for which ``violated`` holds.

    Deterministic greedy + branch-and-bound: the upper bound comes from
    caller-provided ``seeds`` (each minimized by element removal) and a
    greedy pass (guided by ``score`` when given, else candidate order);
    then iterative-deepening enumeration proves or improves it, spending
    at most ``budget`` predicate evaluations overall.  Predicates need
    **not** be monotone (``run_faulty``'s root is ``min(healthy)``, so
    adding a fault can shrink the exclusion set) — which is exactly why
    the deepening pass enumerates sizes exhaustively instead of pruning
    supersets.
    """
    cands = list(candidates)
    evals = 0
    exhausted = False

    def check(subset: tuple) -> bool:
        nonlocal evals, exhausted
        if evals >= budget:
            exhausted = True
            raise _BudgetExhausted
        evals += 1
        return violated(subset)

    def minimize(subset: tuple) -> tuple:
        current = list(subset)
        for elem in list(current):
            if len(current) == 1:
                break
            trial = tuple(e for e in current if e != elem)
            if check(trial):
                current = list(trial)
        return tuple(current)

    best: tuple | None = None
    try:
        if check(()):
            return CutResult((), True, True, evals)

        for seed in seeds:
            seed = tuple(seed)
            if (best is None or len(seed) < len(best)) and check(seed):
                best = minimize(seed)

        # Greedy pass: grow a violating set one element at a time.
        chosen: list = []
        remaining = list(cands)
        limit = max_size if max_size is not None else len(cands)
        while remaining and len(chosen) < limit:
            if best is not None and len(chosen) + 1 >= len(best):
                break  # cannot beat the current upper bound
            if score is None:
                pick = remaining[0]
            else:
                pick = max(
                    remaining,
                    key=lambda c: (score(tuple(chosen) + (c,)),
                                   -remaining.index(c)),
                )
            chosen.append(pick)
            remaining.remove(pick)
            if check(tuple(chosen)):
                trimmed = minimize(tuple(chosen))
                if best is None or len(trimmed) < len(best):
                    best = trimmed
                break

        # Branch-and-bound by iterative deepening: enumerate sizes
        # 1..k-1 exhaustively under the budget.
        ceiling = len(best) if best is not None else (
            min(limit, len(cands)) + 1
        )
        levels_proved = 0
        for size in range(1, ceiling):
            if max_size is not None and size > max_size:
                break
            hit_subset: tuple | None = None
            for subset in combinations(cands, size):
                if check(subset):
                    hit_subset = subset
                    break
            if hit_subset is not None:
                return CutResult(
                    tuple(hit_subset), True, levels_proved == size - 1,
                    evals,
                )
            levels_proved = size
        if best is not None:
            return CutResult(
                tuple(best), True, levels_proved >= len(best) - 1, evals
            )
    except _BudgetExhausted:
        pass

    if best is not None:
        return CutResult(tuple(best), True, False, evals)
    # Nothing violated: exact only if every allowed size was enumerated.
    full = (not exhausted) and (max_size is None or max_size >= len(cands))
    return CutResult((), False, full, evals)


class _BudgetExhausted(Exception):
    """Internal: the evaluation budget ran out mid-search."""


# -- exact structural cuts via Menger max-flow ---------------------------------


def _unit_max_flow(num_nodes: int, arcs: dict[tuple[int, int], int],
                   source: int, sink: int, limit: int) -> tuple[int, set]:
    """Edmonds-Karp on unit-ish capacities; stops early at ``limit``.

    Returns ``(flow, reachable)`` where ``reachable`` is the residual
    source side (empty when the early-stop triggered — the caller only
    needs the cut when the flow is a new minimum, i.e. below ``limit``).
    """
    caps = dict(arcs)
    out: dict[int, list[int]] = {u: [] for u in range(num_nodes)}
    for (u, v) in list(caps):
        out[u].append(v)
        if (v, u) not in caps:
            caps[(v, u)] = 0
            out[v].append(u)
    flow = 0
    while flow < limit:
        parent: dict[int, int] = {source: source}
        queue = deque([source])
        while queue and sink not in parent:
            u = queue.popleft()
            for v in out[u]:
                if v not in parent and caps[(u, v)] > 0:
                    parent[v] = u
                    queue.append(v)
        if sink not in parent:
            reach = set(parent)
            return flow, reach
        v = sink
        while v != source:
            u = parent[v]
            caps[(u, v)] -= 1
            caps[(v, u)] += 1
            v = u
        flow += 1
    return flow, set()


def _node_split_arcs(topo: Topology, source: int, sink: int):
    """Arc capacities for vertex connectivity: ``v_in=2v``, ``v_out=2v+1``;
    internal arcs cost 1 except at the terminals."""
    n = topo.num_nodes
    big = n * n
    arcs: dict[tuple[int, int], int] = {}
    for v in range(n):
        arcs[(2 * v, 2 * v + 1)] = big if v in (source, sink) else 1
    for u, v in topo.edges():
        arcs[(2 * u + 1, 2 * v)] = big
        arcs[(2 * v + 1, 2 * u)] = big
    return 2 * n, arcs


def structural_node_cut(topo: Topology, *, mode: str = "degraded"
                        ) -> CutResult:
    """Exact smallest crash set excluding a healthy rank (Menger).

    A crash set excludes a healthy rank iff it disconnects the healthy
    subgraph, so the answer is the vertex connectivity kappa(G).  By
    Menger, sweeping max-flow over sources ``{0} + N(0)`` and all
    non-adjacent sinks witnesses every minimum separator (a separator
    avoiding 0 is seen from source 0; one containing 0 leaves a neighbor
    of 0 on each side).  The witness is re-verified against the recovery
    predicate before returning.
    """
    n = topo.num_nodes
    best = len(topo.neighbors(0))
    witness: tuple[int, ...] = tuple(sorted(topo.neighbors(0)))
    flows = 0
    seen_pairs: set[tuple[int, int]] = set()
    for source in (0, *topo.neighbors(0)):
        banned = {source, *topo.neighbors(source)}
        for sink in range(n):
            if sink in banned:
                continue
            pair = (min(source, sink), max(source, sink))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            num, arcs = _node_split_arcs(topo, source, sink)
            flow, reach = _unit_max_flow(
                num, arcs, 2 * source, 2 * sink + 1, best
            )
            flows += 1
            if flow < best:
                best = flow
                witness = tuple(
                    sorted(
                        v
                        for v in range(n)
                        if 2 * v in reach and 2 * v + 1 not in reach
                    )
                )
    elements = tuple(("node", r) for r in witness)
    if not all_included_violated(topo, mode=mode)(elements):
        raise ValueError(
            f"internal error: flow witness {witness} does not exclude a "
            f"healthy rank on {topo.name}"
        )
    return CutResult(elements, True, True, flows)


def structural_link_cut(topo: Topology, *, mode: str = "degraded"
                        ) -> CutResult:
    """Exact smallest link-cut set excluding a healthy rank (Menger).

    Edge connectivity lambda(G): every minimum edge cut separates node 0
    from some node, so the source-0 sweep over all sinks is exhaustive.
    """
    n = topo.num_nodes
    best = len(topo.neighbors(0))
    witness = tuple(
        sorted((min(0, v), max(0, v)) for v in topo.neighbors(0))
    )
    flows = 0
    base_arcs: dict[tuple[int, int], int] = {}
    for u, v in topo.edges():
        base_arcs[(u, v)] = 1
        base_arcs[(v, u)] = 1
    for sink in range(1, n):
        flow, reach = _unit_max_flow(n, base_arcs, 0, sink, best)
        flows += 1
        if flow < best:
            best = flow
            witness = tuple(
                sorted(
                    (min(u, v), max(u, v))
                    for u, v in topo.edges()
                    if (u in reach) != (v in reach)
                )
            )
    elements = tuple(("link", e) for e in witness)
    if not all_included_violated(topo, mode=mode)(elements):
        raise ValueError(
            f"internal error: flow witness {witness} does not exclude a "
            f"healthy rank on {topo.name}"
        )
    return CutResult(elements, True, True, flows)


# -- quorum cuts: region-growing seeds + generic search ------------------------


def _region_seeds(topo: Topology, need_excluded: int) -> list[tuple]:
    """Candidate crash sets from boundary isolation.

    Grow a connected region ``S`` from each seed (preferring neighbors
    that keep the boundary small) and propose crashing its boundary: if
    ``min(healthy)`` lands inside ``S``, everything outside is excluded;
    otherwise ``S`` plus the boundary is.  Region 0 (containing the
    default root) is the usual winner — crashing ``N(0)`` strands the
    root, excluding ``n - |S|`` ranks for only ``deg`` crashes.
    """
    n = topo.num_nodes
    seeds: list[tuple] = []
    for start in range(min(n, 4)):
        region = {start}
        boundary = set(topo.neighbors(start))
        for _ in range(min(n - 1, 2 * need_excluded)):
            root = min(set(range(n)) - boundary)
            excl = (n - len(region)) if root in region else (
                len(region) + len(boundary)
            )
            if excl >= need_excluded:
                seeds.append(tuple(("node", r) for r in sorted(boundary)))
            if not boundary:
                break
            grow = min(
                boundary,
                key=lambda v: len(
                    set(topo.neighbors(v)) - region - boundary
                ),
            )
            region.add(grow)
            boundary = {
                v
                for u in region
                for v in topo.neighbors(u)
                if v not in region
            }
    return seeds


def quorum_node_cut(
    topo: Topology,
    frac: float = 0.75,
    *,
    mode: str = "degraded",
    budget: int = 20_000,
) -> CutResult:
    """Smallest crash set dropping participation below ``ceil(frac * n)``.

    Region-growing isolation seeds provide the upper bound.  In
    ``degraded`` mode a connectivity lower bound applies: crashing fewer
    than kappa(G) nodes leaves the healthy subgraph connected, so every
    healthy rank participates and the quorum only fails once
    ``n - k < need`` — the cut is at least ``min(kappa, n - need + 1)``,
    and a seed matching it is provably minimal without enumeration.
    Otherwise the generic greedy + branch-and-bound pass proves
    minimality when the budget allows (``exact`` reports which).
    """
    n = topo.num_nodes
    need = math.ceil(frac * n)
    violated = quorum_violated(topo, frac, mode=mode)
    candidates = [("node", r) for r in range(n)]

    if mode == "degraded":
        kappa = structural_node_cut(topo, mode=mode).size
        lower = min(kappa, n - need + 1)
        for seed in sorted(_region_seeds(topo, n - need + 1), key=len):
            if len(seed) <= lower and violated(seed):
                return CutResult(tuple(seed), True, True, 1)

    def score(elements: tuple) -> float:
        ri = _recovery_or_none(topo, elements, mode)
        return float(n) if ri is None else float(len(ri.excluded))

    return minimal_cut(
        violated,
        candidates,
        score=score,
        seeds=_region_seeds(topo, n - need + 1),
        budget=budget,
    )


# -- the E19 table -------------------------------------------------------------


def minimal_cut_table(
    max_n: int = 4,
    *,
    quorum_frac: float = 0.75,
    budget: int = 20_000,
    mode: str = "degraded",
) -> list[dict]:
    """E19: minimal fault sets violating the recovery predicates.

    One row per network — D_2..D_``max_n`` and the size-matched Q_5 —
    with the exact all-ranks-included node and link cuts (Menger) and
    the quorum-``quorum_frac`` crash cut (search; ``quorum_exact`` says
    whether the budget sufficed to prove it minimal).  Fully
    deterministic: same inputs, same table.
    """
    from repro.topology.hypercube import Hypercube

    if max_n < 2:
        raise ValueError(f"max_n must be >= 2, got {max_n}")
    topos: list[Topology] = [DualCube(i) for i in range(2, max_n + 1)]
    topos.append(Hypercube(5))
    rows: list[dict] = []
    for topo in topos:
        node_cut = structural_node_cut(topo, mode=mode)
        link_cut = structural_link_cut(topo, mode=mode)
        quorum = quorum_node_cut(
            topo, quorum_frac, mode=mode, budget=budget
        )
        rows.append(
            {
                "topology": topo.name,
                "num_nodes": topo.num_nodes,
                "degree": len(topo.neighbors(0)),
                "node_cut": node_cut.size,
                "node_witness": [r for _, r in node_cut.elements],
                "link_cut": link_cut.size,
                "link_witness": [list(e) for _, e in link_cut.elements],
                "quorum_cut": quorum.size,
                "quorum_exact": quorum.exact,
                "quorum_witness": [r for _, r in quorum.elements],
                "quorum_frac": quorum_frac,
                "evaluations": quorum.evaluations,
            }
        )
    return rows
