"""Schedule extraction: SPMD program -> :class:`CommSchedule`.

:func:`extract_schedule` runs every node program against a record-only
:class:`RecordingCtx` stub inside a lightweight lockstep interpreter that
mirrors the engine's matching semantics (greatest fixed point of "all my
legs face a completing counterpart") but

* performs **no cost accounting** and keeps **no trace** — it only logs
  ``(step, src, dst, kind, size)`` tuples;
* performs **no link validation** — a message over a non-existent edge is
  recorded and left for :func:`~repro.analysis.static.checkers.check_edge_legality`
  to flag, so illegal programs can be analyzed instead of crashing;
* never raises on deadlock — a step in which nothing completes ends
  extraction with ``completed=False`` and the blocked requests captured
  for wait-for-graph diagnosis by
  :func:`~repro.analysis.static.checkers.check_pairing`.

Payloads *are* forwarded between paired requests (a data-dependent
program could not otherwise run to completion), but nothing else of the
dynamic execution is kept.  Because the interpreter takes the same
lockstep small-steps as the engine, the extracted ``steps`` count equals
the engine's measured ``comm_steps`` for any program that completes.

:func:`schedule_from_messages` is the second extraction path: it rebuilds
a :class:`CommSchedule` from an engine run captured with
``log_messages=True``, for cross-validating the extractor against the
real engine.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.analysis.static.schedule import BlockedOp, CommEvent, CommSchedule
from repro.simulator.counters import payload_size
from repro.simulator.errors import ProgramError
from repro.simulator.requests import Idle, Recv, Request, Send, SendRecv, Shift
from repro.topology.base import Topology

__all__ = ["RecordingCtx", "extract_schedule", "schedule_from_messages"]


class RecordingCtx:
    """Record-only stand-in for :class:`~repro.simulator.node.NodeCtx`.

    Presents the same surface a node program uses — ``rank``, ``topo``,
    :meth:`compute`, :meth:`record`, :meth:`neighbors` — but only counts
    computation rounds; state snapshots are dropped.
    """

    __slots__ = ("rank", "topo", "_comp_rounds")

    def __init__(self, rank: int, topo: Topology, comp_rounds: list[int]):
        self.rank = rank
        self.topo = topo
        self._comp_rounds = comp_rounds

    def compute(self, ops: int = 1) -> None:
        """Count one local computation round (``ops`` must be >= 0)."""
        if ops < 0:
            raise ValueError(f"ops must be non-negative, got {ops}")
        self._comp_rounds[self.rank] += 1

    def record(self, label: str, value: Any) -> None:
        """State snapshots are not part of the schedule; dropped."""

    def neighbors(self) -> tuple[int, ...]:
        """Neighbors of this rank in the topology."""
        return self.topo.neighbors(self.rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecordingCtx(rank={self.rank}, topo={self.topo.name})"


# Request kind codes for the slot arrays (mirrors the engine's encoding).
_IDLE, _SEND, _RECV, _SENDRECV, _SHIFT = range(5)
_KIND_NAMES = ("idle", "send", "recv", "sendrecv", "shift")


def extract_schedule(
    topo: Topology,
    program: Callable[[Any], Generator[Request, Any, Any]],
    *,
    max_steps: int = 1_000_000,
) -> CommSchedule:
    """Extract the full communication schedule of ``program`` on ``topo``.

    Returns a :class:`CommSchedule`; never raises on deadlock, orphan
    receives, or illegal edges — those become schedule properties for the
    checkers.  A yield that is not a request object, or a negative
    ``compute`` count, still raises (they are Python-level program bugs,
    not schedule properties).
    """
    n = topo.num_nodes
    comp_rounds = [0] * n
    gens: list[Generator[Request, Any, Any] | None] = [None] * n

    # Decoded request slots (valid where has_req[rank] is set).
    has_req = bytearray(n)
    kind = bytearray(n)
    send_to = [-1] * n
    recv_from = [-1] * n
    payloads: list[Any] = [None] * n
    issued_step = [0] * n

    npending = 0
    step = 0
    events: list[CommEvent] = []

    def advance(rank: int, value: Any) -> None:
        nonlocal npending
        gen = gens[rank]
        if gen is None:
            return
        try:
            req = gen.send(value)
        except StopIteration:
            gens[rank] = None
            return
        if isinstance(req, SendRecv):
            kind[rank] = _SENDRECV
            send_to[rank] = req.peer
            recv_from[rank] = req.peer
            payloads[rank] = req.payload
        elif isinstance(req, Send):
            kind[rank] = _SEND
            send_to[rank] = req.dst
            recv_from[rank] = -1
            payloads[rank] = req.payload
        elif isinstance(req, Recv):
            kind[rank] = _RECV
            send_to[rank] = -1
            recv_from[rank] = req.src
            payloads[rank] = None
        elif isinstance(req, Idle):
            kind[rank] = _IDLE
            send_to[rank] = -1
            recv_from[rank] = -1
            payloads[rank] = None
        elif isinstance(req, Shift):
            kind[rank] = _SHIFT
            send_to[rank] = req.dst
            recv_from[rank] = req.src
            payloads[rank] = req.payload
        else:
            raise ProgramError(
                f"rank {rank} yielded {req!r}; expected "
                f"Send/Recv/SendRecv/Shift/Idle"
            )
        has_req[rank] = 1
        issued_step[rank] = step + 1
        npending += 1

    for rank in range(n):
        ctx = RecordingCtx(rank, topo, comp_rounds)
        gen = program(ctx)
        if not hasattr(gen, "send"):
            raise ProgramError(
                f"program must be a generator function, got {type(gen)!r} "
                f"at rank {rank}"
            )
        gens[rank] = gen
        advance(rank, None)

    # Per-step scratch (see the engine's indexed matcher, which this
    # mirrors minus validation, faults, and cost bookkeeping).
    alive = bytearray(n)
    deps: list[list[int]] = [[] for _ in range(n)]
    incoming: list[Any] = [None] * n

    def satisfied(rank: int) -> bool:
        if kind[rank] == _SENDRECV:
            p = send_to[rank]
            if not 0 <= p < n:
                return False
            return bool(
                alive[p] and kind[p] == _SENDRECV and send_to[p] == rank
            )
        st = send_to[rank]
        if st >= 0:
            if not 0 <= st < n:
                return False
            if not (
                alive[st] and recv_from[st] == rank and kind[st] != _SENDRECV
            ):
                return False
        rf = recv_from[rank]
        if rf >= 0:
            if not 0 <= rf < n:
                return False
            if not (
                alive[rf] and send_to[rf] == rank and kind[rf] != _SENDRECV
            ):
                return False
        return True

    stalled_at: int | None = None
    truncated = False

    while npending:
        if step >= max_steps:
            truncated = True
            break

        completed: list[int] = []
        active_ranks: list[int] = []
        touched: list[int] = []
        for rank in range(n):
            if not has_req[rank]:
                continue
            if kind[rank] == _IDLE:
                incoming[rank] = None
                completed.append(rank)
            else:
                alive[rank] = 1
                active_ranks.append(rank)

        for rank in active_ranks:
            st = send_to[rank]
            if 0 <= st < n:
                lst = deps[st]
                if not lst:
                    touched.append(st)
                lst.append(rank)
            rf = recv_from[rank]
            if 0 <= rf < n and rf != st:
                lst = deps[rf]
                if not lst:
                    touched.append(rf)
                lst.append(rank)

        stack: list[int] = []
        for rank in active_ranks:
            if not satisfied(rank):
                alive[rank] = 0
                stack.extend(deps[rank])
        while stack:
            rank = stack.pop()
            if alive[rank] and not satisfied(rank):
                alive[rank] = 0
                stack.extend(deps[rank])

        for rank in active_ranks:
            if not alive[rank]:
                continue
            st = send_to[rank]
            if st >= 0:
                events.append(
                    CommEvent(
                        step=step + 1,
                        src=rank,
                        dst=st,
                        kind=_KIND_NAMES[kind[rank]],
                        size=payload_size(payloads[rank]),
                    )
                )
            rf = recv_from[rank]
            incoming[rank] = payloads[rf] if rf >= 0 else None
            completed.append(rank)

        for rank in active_ranks:
            alive[rank] = 0
        for p in touched:
            deps[p].clear()

        if not completed:
            stalled_at = step + 1
            break

        step += 1
        completed.sort()
        npending -= len(completed)
        for rank in completed:
            has_req[rank] = 0
        for rank in completed:
            advance(rank, incoming[rank])

    blocked = tuple(
        BlockedOp(
            rank=r,
            kind=_KIND_NAMES[kind[r]],
            send_to=send_to[r] if send_to[r] >= 0 else None,
            recv_from=recv_from[r] if recv_from[r] >= 0 else None,
            issued_step=issued_step[r],
        )
        for r in range(n)
        if has_req[r]
    )
    return CommSchedule(
        num_nodes=n,
        topology=topo.name,
        events=tuple(events),
        steps=step,
        comp_steps=max(comp_rounds) if comp_rounds else 0,
        completed=not blocked,
        blocked=blocked,
        stalled_at=stalled_at,
        truncated=truncated,
    )


def schedule_from_messages(result, topo: Topology) -> CommSchedule:
    """Rebuild a :class:`CommSchedule` from an engine run's message log.

    ``result`` is an :class:`~repro.simulator.engine.EngineResult`
    produced with ``log_messages=True``.  Send-leg kinds are not
    recoverable from the log, so every event is tagged ``"send"``; step
    numbering, endpoints, and payload sizes match the engine exactly,
    which makes this the cross-validation oracle for
    :func:`extract_schedule`.
    """
    if result.message_log is None:
        raise ValueError(
            "engine result has no message log; run with log_messages=True"
        )
    events = tuple(
        CommEvent(
            step=m.cycle,
            src=m.src,
            dst=m.dst,
            kind="send",
            size=payload_size(m.payload),
        )
        for m in result.message_log
    )
    return CommSchedule(
        num_nodes=topo.num_nodes,
        topology=topo.name,
        events=events,
        steps=result.comm_steps,
        comp_steps=result.comp_steps,
        completed=True,
    )
