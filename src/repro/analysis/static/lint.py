"""Repo-wide AST linter (stdlib ``ast`` only — no third-party deps).

Rules encode this repo's source conventions; the simulator and analysis
code must stay deterministic, raise real exceptions, and keep a declared
public surface:

* **REP001 no-assert** — ``assert`` in library code vanishes under
  ``python -O``; raise ``ValueError``/``ProgramError`` instead.
* **REP002 unseeded-random** — global-state RNG calls
  (``random.random()``, ``np.random.rand()``, bare ``default_rng()``)
  make runs irreproducible; construct a seeded generator.
* **REP003 bare-except** — ``except:`` swallows ``KeyboardInterrupt``
  and hides simulator errors; name the exception.
* **REP004 print-call** — library modules must stay silent; printing is
  the CLI's and the viz layer's job (``cli.py`` and ``viz/`` are exempt).
* **REP005 missing-__all__** — a module defining public functions or
  classes must declare ``__all__`` so the public surface is explicit.
* **REP006 per-rank-loop** — in files marked ``# repro:
  columnar-hot-path``, a ``for`` loop (or comprehension) iterating over
  per-rank collections (``range(num_nodes)``, ``all_nodes_array()``,
  ``nodes()``, ...) defeats the backend's whole point; vectorize over
  ranks instead.  Loops over rounds, schedule steps or block slots are
  fine — only rank-indexed iteration is flagged.
* **REP007 inline-backend-compare** — comparing a variable or attribute
  named ``backend`` against a string literal (``backend == "engine"``,
  ``args.backend != "columnar"``) re-creates the drifting if-chains the
  backend registry replaced; dispatch through
  ``repro.core.backends.resolve_backend`` (or key a dict/set on the
  name).  Only ``repro/core/backends.py`` itself is exempt.

Suppress a finding in place with ``# noqa`` (all rules) or
``# noqa: REP001,REP004`` (specific rules).  Whole rule families are
relaxed per *path profile* (:data:`RULE_PROFILES`): ``tests/`` code may
assert (pytest rewrites them) and needs no ``__all__``; ``benchmarks/``
additionally may print (they are scripts).  The profile is picked from
the path by :func:`profile_for`, so ``make lint`` covers
``src tests benchmarks`` with one configuration and no flag soup.
``repro lint`` runs :func:`lint_paths` and exits non-zero on any
finding.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass

__all__ = [
    "LINT_RULES",
    "RULE_PROFILES",
    "LintViolation",
    "profile_for",
    "lint_source",
    "lint_file",
    "lint_paths",
]

LINT_RULES = {
    "REP001": "assert statement in library code (stripped under python -O)",
    "REP002": "unseeded / global-state RNG call (irreproducible runs)",
    "REP003": "bare except: swallows KeyboardInterrupt and simulator errors",
    "REP004": "print() in library code (only cli.py and viz/ may print)",
    "REP005": "module defines public names but declares no __all__",
    "REP006": "per-rank Python loop in a columnar-hot-path file",
    "REP007": "inline backend string comparison outside the backend registry",
}

# Rules disabled per path profile.  The empty default ("src") applies
# everywhere no named profile matches; tests keep full determinism rules
# but may assert and skip __all__; benchmarks are scripts and may also
# print.
RULE_PROFILES: dict[str, frozenset[str]] = {
    "src": frozenset(),
    "tests": frozenset({"REP001", "REP005"}),
    "benchmarks": frozenset({"REP001", "REP004", "REP005"}),
}


def profile_for(path: str) -> str:
    """Profile name for ``path``: first path segment naming a profile
    (``tests``/``benchmarks`` anywhere in the path), else ``"src"``."""
    parts = path.replace("\\", "/").split("/")
    for part in parts[:-1]:
        if part in RULE_PROFILES and part != "src":
            return part
    return "src"


# Directory names never descended into by lint_paths.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".pytest_cache",
    "build",
    "dist",
    ".venv",
}

# RNG callables that are fine unconditionally: they wrap explicit state
# (Generator takes a seeded bit generator) or OS entropy by design.
_RNG_ALWAYS_OK = {"Generator", "SystemRandom", "BitGenerator"}
# Constructors that are reproducible exactly when given an explicit seed.
_RNG_SEEDED_CTORS = {
    "default_rng",
    "Random",
    "SeedSequence",
    "PCG64",
    "MT19937",
    "Philox",
    "RandomState",
}

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.I)

# Files opting into REP006 carry this marker (anywhere in the source —
# the convention is the module docstring's second line).
_HOT_PATH_RE = re.compile(r"#\s*repro:\s*columnar-hot-path")

# Identifiers that mean "one element per rank" when they appear in the
# iterable expression of a loop.  ``range(m)`` / ``enumerate(schedule)`` /
# ``range(1, b)`` never mention these, so round/step/block loops pass.
_PER_RANK_NAMES = {
    "num_nodes",
    "nodes",
    "all_nodes_array",
    "ranks",
    "node_ids",
    "arange",
}


@dataclass(frozen=True)
class LintViolation:
    """One lint finding: rule ``code`` at ``path:line``."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _noqa_map(source: str) -> dict[int, set[str] | None]:
    """Per-line suppressions: ``None`` = all rules, else a code set."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return out


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted path, from every import statement."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                local = a.asname or a.name.split(".")[0]
                canonical = a.name if a.asname else a.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _canonical_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Canonical dotted path of the called symbol, aliases resolved."""
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    root = aliases.get(head, head)
    return f"{root}.{rest}" if rest else root


def _rng_finding(canonical: str, nargs: int) -> str | None:
    """REP002 message for a call to ``canonical``, or None if fine."""
    for prefix in ("numpy.random.", "random."):
        if canonical.startswith(prefix):
            tail = canonical[len(prefix):]
            break
    else:
        return None
    if "." in tail or tail in _RNG_ALWAYS_OK:
        return None
    if tail in _RNG_SEEDED_CTORS:
        if nargs == 0:
            return (
                f"{canonical}() without an explicit seed; "
                f"pass a seed for reproducible runs"
            )
        return None
    return (
        f"{canonical}() draws from global RNG state; "
        f"use a seeded generator (numpy.random.default_rng(seed))"
    )


def _missing_all(tree: ast.Module, path: str) -> bool:
    """True when the module defines public names but no ``__all__``."""
    base = os.path.basename(path)
    if base.startswith("_") and base != "__init__.py":
        return False
    has_public = False
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and not node.name.startswith("_"):
            has_public = True
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Name) and t.id == "__all__":
                return False
    return has_public


def _iter_idents(node: ast.expr):
    """All Name ids and Attribute attrs mentioned in an expression."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _per_rank_loops(tree: ast.Module) -> list[tuple[int, str, str]]:
    """REP006 findings: loops whose iterable is a per-rank collection."""
    iters: list[ast.expr] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            iters.extend(gen.iter for gen in node.generators)
    out = []
    for it in iters:
        hits = sorted(set(_iter_idents(it)) & _PER_RANK_NAMES)
        if hits:
            out.append(
                (
                    it.lineno,
                    "REP006",
                    f"per-rank Python loop (iterates over {', '.join(hits)}) "
                    f"in a columnar-hot-path file; vectorize over ranks "
                    f"instead",
                )
            )
    return out


def _print_exempt(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return os.path.basename(path) == "cli.py" or "viz" in parts


def _backend_registry_exempt(path: str) -> bool:
    """REP007 exemption: the registry module itself."""
    parts = path.replace("\\", "/").split("/")
    return parts[-2:] == ["core", "backends.py"]


def _is_backend_ident(node: ast.expr) -> bool:
    return (isinstance(node, ast.Name) and node.id == "backend") or (
        isinstance(node, ast.Attribute) and node.attr == "backend"
    )


def _backend_compare_findings(node: ast.Compare) -> list[tuple[int, str, str]]:
    """REP007 findings in one comparison (``==``/``!=`` legs only)."""
    out = []
    operands = [node.left, *node.comparators]
    for cmp_op, left, right in zip(node.ops, operands, operands[1:]):
        if not isinstance(cmp_op, (ast.Eq, ast.NotEq)):
            continue
        for a, b in ((left, right), (right, left)):
            if (
                _is_backend_ident(a)
                and isinstance(b, ast.Constant)
                and isinstance(b.value, str)
            ):
                out.append(
                    (
                        node.lineno,
                        "REP007",
                        f"inline backend string comparison "
                        f"(backend == {b.value!r}); dispatch through "
                        f"repro.core.backends.resolve_backend",
                    )
                )
                break
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    disabled: frozenset[str] | None = None,
) -> list[LintViolation]:
    """Lint one module's source text; returns findings (empty = clean).

    ``disabled`` suppresses whole rule codes; ``None`` (default) uses the
    path's profile (:func:`profile_for`).
    """
    if disabled is None:
        disabled = RULE_PROFILES[profile_for(path)]
    tree = ast.parse(source, filename=path)
    noqa = _noqa_map(source)
    aliases = _import_aliases(tree)
    raw: list[tuple[int, str, str]] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            raw.append(
                (node.lineno, "REP001", LINT_RULES["REP001"])
            )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            raw.append((node.lineno, "REP003", LINT_RULES["REP003"]))
        elif isinstance(node, ast.Compare):
            if not _backend_registry_exempt(path):
                raw.extend(_backend_compare_findings(node))
        elif isinstance(node, ast.Call):
            canonical = _canonical_call(node, aliases)
            if canonical is None:
                continue
            if canonical == "print" and not _print_exempt(path):
                raw.append(
                    (
                        node.lineno,
                        "REP004",
                        "print() in library code; return data or use the CLI",
                    )
                )
                continue
            nargs = len(node.args) + len(node.keywords)
            msg = _rng_finding(canonical, nargs)
            if msg is not None:
                raw.append((node.lineno, "REP002", msg))

    if _missing_all(tree, path):
        raw.append(
            (
                1,
                "REP005",
                "module defines public functions/classes but no __all__",
            )
        )

    if _HOT_PATH_RE.search(source):
        raw.extend(_per_rank_loops(tree))

    out: list[LintViolation] = []
    for line, code, message in sorted(raw):
        if code in disabled:
            continue
        if line in noqa:
            codes = noqa[line]
            if codes is None or code in codes:
                continue
        out.append(LintViolation(path=path, line=line, code=code, message=message))
    return out


def lint_file(
    path: str, *, disabled: frozenset[str] | None = None
) -> list[LintViolation]:
    """Lint one ``.py`` file from disk (profile rules apply, see
    :func:`lint_source`)."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path, disabled=disabled)


def lint_paths(paths) -> list[LintViolation]:
    """Lint files and directory trees; cache/build dirs are skipped.

    Directories are walked recursively for ``*.py`` files; explicit file
    arguments are linted even if a skip rule would exclude them.  Each
    file is linted under its path's rule profile (:func:`profile_for`),
    so one invocation can cover ``src tests benchmarks``.
    """
    out: list[LintViolation] = []
    for target in paths:
        if os.path.isdir(target):
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.extend(lint_file(os.path.join(dirpath, name)))
        else:
            out.extend(lint_file(target))
    return out
