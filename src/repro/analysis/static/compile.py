"""Schedule compilation: algorithms -> straight-line replay plans.

PR 4 proved every core algorithm's communication schedule is *oblivious*
(input-independent) by extracting it with :func:`extract_schedule`; PR 6
proved the columnar backend matches it step for step.  This module takes
the next step the ROADMAP calls schedule-JIT: since the schedule is a
constant of ``(algorithm, topology)``, compile it **once** into a plan of
precomputed gather permutations and masks, so the replay backend
(:mod:`repro.core.replay`) executes with no matching fixed point, no
request decoding, and no per-step index arithmetic at runtime.

Two plan shapes cover the core algorithms:

* :class:`PrefixPlan` — Algorithm 2 (`D_prefix`).  The two `Cube_prefix`
  phases use the *same* ``m`` ascend rounds, so the plan stores each
  round's partner permutation and upper-half mask once and the executor
  runs them twice, with the cross-edge permutation and the class-1 fold
  indices precomputed alongside.
* :class:`SchedulePlan` — any compare-exchange schedule (`D_sort`,
  Batcher's bitonic network).  Each
  :class:`~repro.core.dual_sort.ScheduleStep` compiles to a
  :class:`CompiledStep` carrying the partner permutation and keep-min
  mask that the vectorized executor would otherwise recompute per step.

Compilation is *structural* (no abstract interpretation), which keeps it
O(steps x nodes) and viable at D_9+.  To keep the structural compiler
honest, :func:`plan_comm_schedule` reconstructs the predicted
:class:`CommSchedule` from a plan, and the ``compile_*`` functions verify
it — event set and step count — against the record-only extractor on
networks up to :data:`VALIDATE_MAX_NODES` nodes (above that the
per-node-program extractor is the thing replay exists to avoid).  A
divergence raises :class:`PlanError` instead of producing wrong answers.

The module also hosts the **shard-disjointness race checker** for the
parallel execution paths: the sharded replay fork-pool writes two shared
memory buffers from concurrent workers, and the columnar backend's
in-place rounds write three reshape views of the same arrays.  Both
write sets are pure index arithmetic over the plan, so
:func:`check_shard_plan` / :func:`check_columnar_round` prove them
pairwise disjoint symbolically (:class:`WriteSpan` strided-block algebra
— exact, no ``shares_memory`` at runtime) and raise
:class:`ShardRaceError` *before* any worker is forked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.static.extract import extract_schedule
from repro.analysis.static.schedule import CommEvent, CommSchedule

__all__ = [
    "VALIDATE_MAX_NODES",
    "PlanError",
    "ShardRaceError",
    "PrefixRound",
    "PrefixPlan",
    "CompiledStep",
    "SchedulePlan",
    "compile_prefix_plan",
    "compile_schedule_plan",
    "plan_comm_schedule",
    "WriteSpan",
    "spans_overlap",
    "shard_task_spans",
    "check_shard_plan",
    "columnar_round_spans",
    "check_columnar_round",
]

#: Largest network on which compilation auto-validates its plan against
#: the record-only extractor (beyond this the extractor's per-node
#: generator cost is exactly what replay exists to avoid).
VALIDATE_MAX_NODES = 512


class PlanError(ValueError):
    """A compiled plan disagrees with the extracted schedule."""


class ShardRaceError(PlanError):
    """A parallel plan's write sets could race (overlap or escape)."""


@dataclass(frozen=True)
class PrefixRound:
    """One ascend round: partner permutation + upper-half mask."""

    perm: np.ndarray
    upper: np.ndarray


@dataclass(frozen=True)
class PrefixPlan:
    """Straight-line plan for Algorithm 2 on one dual-cube.

    ``rounds`` holds the ``m`` cluster ascend rounds **once**; both
    `Cube_prefix` phases replay the same tuple.  ``input_perm`` is the
    u*-arrangement permutation (also the inverse map for output),
    ``cross`` the cross-edge permutation, ``cls1_mask``/``cls1_ranks``
    the class-1 fold mask and rank list.  ``comm_steps`` is the
    predicted communication step count (2n, or 2n+1 paper-literal).
    """

    topology: str
    n: int
    num_nodes: int
    paper_literal: bool
    input_perm: np.ndarray
    cross: np.ndarray
    rounds: tuple
    cls1_mask: np.ndarray
    cls1_ranks: np.ndarray
    comm_steps: int
    comp_steps: int
    validated: bool


@dataclass(frozen=True)
class CompiledStep:
    """One compare-exchange round with its runtime arrays precomputed.

    ``step`` keeps the original :class:`~repro.core.dual_sort.ScheduleStep`
    so the executor can charge counters through the same accounting
    helpers as the vectorized backend.
    """

    index: int
    step: object
    perm: np.ndarray
    keep_min: np.ndarray

    @property
    def dim(self) -> int:
        """The paired address dimension (from the source step)."""
        return self.step.dim

    @property
    def phase(self) -> str:
        """The recursion segment label (from the source step)."""
        return self.step.phase


@dataclass(frozen=True)
class SchedulePlan:
    """Straight-line plan for one compare-exchange schedule."""

    topology: str
    kind: str
    num_nodes: int
    descending: bool
    steps: tuple
    validated: bool


def compile_prefix_plan(dc, *, paper_literal: bool = False,
                        validate: bool | None = None) -> PrefixPlan:
    """Compile `D_prefix` on ``dc`` into a :class:`PrefixPlan`.

    ``validate=None`` (default) verifies the plan against the extractor
    iff ``dc.num_nodes <= VALIDATE_MAX_NODES``; pass True/False to force.
    """
    n = dc.num_nodes
    m = dc.cluster_dim
    idx = dc.all_nodes_array()
    cls1 = dc.class_of_v(idx) == 1
    nid = dc.node_id_v(idx)
    cross = idx ^ (1 << dc.class_dimension)
    step = np.where(cls1, 1 << m, 1).astype(np.int64)
    rounds = tuple(
        PrefixRound(perm=idx ^ (step << i), upper=(nid >> i) & 1 == 1)
        for i in range(m)
    )
    from repro.core.arrangement import arranged_index_v

    plan = PrefixPlan(
        topology=dc.name,
        n=dc.n,
        num_nodes=n,
        paper_literal=paper_literal,
        input_perm=arranged_index_v(dc),
        cross=cross,
        rounds=rounds,
        cls1_mask=cls1,
        cls1_ranks=idx[cls1],
        comm_steps=2 * m + 2 + (1 if paper_literal else 0),
        comp_steps=2 * m + 2,
        validated=False,
    )
    if validate is None:
        validate = n <= VALIDATE_MAX_NODES
    if not validate:
        return plan
    from repro.core.dual_prefix import dual_prefix_program
    from repro.core.ops import ADD

    program = dual_prefix_program(
        dc, np.arange(n, dtype=object), ADD, paper_literal=paper_literal
    )
    _check_against_extraction(plan, dc, program)
    return _replace_validated(plan)


def compile_schedule_plan(topo, schedule: Sequence, *, kind: str,
                          descending: bool = False,
                          validate: bool | None = None) -> SchedulePlan:
    """Compile a compare-exchange ``schedule`` on ``topo``.

    ``kind`` labels the plan family for caching/metrics (``"dual_sort"``,
    ``"bitonic"``); validation semantics match
    :func:`compile_prefix_plan` (the extraction runs under the default
    ``"packed"`` payload policy — perms and masks are policy-independent).
    """
    n = topo.num_nodes
    idx = np.arange(n, dtype=np.int64)
    steps = tuple(
        CompiledStep(
            index=k,
            step=s,
            perm=idx ^ (1 << s.dim),
            keep_min=((idx >> s.dim) & 1 == 0) != s.descending_mask(idx),
        )
        for k, s in enumerate(schedule)
    )
    plan = SchedulePlan(
        topology=topo.name,
        kind=kind,
        num_nodes=n,
        descending=descending,
        steps=steps,
        validated=False,
    )
    if validate is None:
        validate = n <= VALIDATE_MAX_NODES
    if not validate:
        return plan
    from repro.core.dual_sort import schedule_program

    program = schedule_program(topo, list(range(n)), list(schedule))
    _check_against_extraction(plan, topo, program)
    return _replace_validated(plan)


def _replace_validated(plan):
    from dataclasses import replace

    return replace(plan, validated=True)


def plan_comm_schedule(plan, topo, *, payload_policy: str = "packed"
                       ) -> CommSchedule:
    """Reconstruct the :class:`CommSchedule` a plan predicts.

    The inverse direction of compilation: from the straight-line plan
    back to per-step ``(src, dst, kind, size)`` events, comparable
    one-for-one with :func:`extract_schedule` output and usable with
    :func:`~repro.obs.cross_validate_timeline`.  Intended for validation
    sizes (it loops per node); the replay executor never calls it.
    """
    if isinstance(plan, PrefixPlan):
        return _prefix_comm_schedule(plan, topo)
    if isinstance(plan, SchedulePlan):
        return _schedule_comm_schedule(plan, topo, payload_policy)
    raise TypeError(f"expected PrefixPlan or SchedulePlan, got {type(plan)!r}")


def _prefix_comm_schedule(plan: PrefixPlan, topo) -> CommSchedule:
    events = []
    step = 0

    def ascend_phase(step0: int) -> int:
        s = step0
        for r in plan.rounds:
            s += 1
            events.extend(
                CommEvent(step=s, src=int(u), dst=int(r.perm[u]),
                          kind="sendrecv", size=1)
                for u in range(plan.num_nodes)
            )
        return s

    def cross_step(step0: int) -> int:
        s = step0 + 1
        events.extend(
            CommEvent(step=s, src=int(u), dst=int(plan.cross[u]),
                      kind="sendrecv", size=1)
            for u in range(plan.num_nodes)
        )
        return s

    step = ascend_phase(step)
    step = cross_step(step)
    step = ascend_phase(step)
    step = cross_step(step)
    if plan.paper_literal:
        step = cross_step(step)
    return CommSchedule(
        num_nodes=plan.num_nodes,
        topology=plan.topology,
        events=tuple(events),
        steps=step,
        comp_steps=plan.comp_steps,
        completed=True,
    )


def _schedule_comm_schedule(plan: SchedulePlan, topo,
                            payload_policy: str) -> CommSchedule:
    from repro.core.dual_sort import _check_policy, _dim_mode

    _check_policy(payload_policy)
    n = plan.num_nodes
    events = []
    step = 0
    for cs in plan.steps:
        dim = cs.dim
        if _dim_mode(topo, dim) == "direct":
            step += 1
            events.extend(
                CommEvent(step=step, src=u, dst=int(cs.perm[u]),
                          kind="sendrecv", size=1)
                for u in range(n)
            )
            continue
        supported = [u for u in range(n) if topo.has_dimension_link(u, dim)]
        unsupported = [u for u in range(n)
                       if not topo.has_dimension_link(u, dim)]
        # cycle 1: unsupported -> supported over cross-edges
        step += 1
        events.extend(
            CommEvent(step=step, src=u, dst=u ^ 1, kind="send", size=1)
            for u in unsupported
        )
        # cycle 2: supported pairs exchange (2-key packed, else the relay)
        step += 1
        size = 2 if payload_policy == "packed" else 1
        events.extend(
            CommEvent(step=step, src=u, dst=int(cs.perm[u]),
                      kind="sendrecv", size=size)
            for u in supported
        )
        # cycle 3: supported -> unsupported over cross-edges
        step += 1
        events.extend(
            CommEvent(step=step, src=u, dst=u ^ 1, kind="send", size=1)
            for u in supported
        )
        if payload_policy == "single":
            # cycle 4: supported pairs exchange their own keys
            step += 1
            events.extend(
                CommEvent(step=step, src=u, dst=int(cs.perm[u]),
                          kind="sendrecv", size=1)
                for u in supported
            )
    return CommSchedule(
        num_nodes=n,
        topology=plan.topology,
        events=tuple(events),
        steps=step,
        comp_steps=len(plan.steps),
        completed=True,
    )


def _check_against_extraction(plan, topo, program) -> None:
    predicted = plan_comm_schedule(plan, topo)
    extracted = extract_schedule(topo, program)
    if not extracted.completed:
        raise PlanError(
            f"extraction of {plan.topology} schedule did not complete "
            f"(stalled at step {extracted.stalled_at})"
        )
    problems = []
    if predicted.steps != extracted.steps:
        problems.append(
            f"step count {predicted.steps} != extracted {extracted.steps}"
        )
    if predicted.comp_steps != extracted.comp_steps:
        problems.append(
            f"comp steps {predicted.comp_steps} != extracted "
            f"{extracted.comp_steps}"
        )
    key = lambda e: (e.step, e.src, e.dst, e.kind, e.size)  # noqa: E731
    pred = sorted(map(key, predicted.events))
    extr = sorted(map(key, extracted.events))
    if pred != extr:
        diff = set(pred).symmetric_difference(extr)
        sample = sorted(diff)[:5]
        problems.append(
            f"{len(diff)} event(s) differ; first: {sample}"
        )
    if problems:
        raise PlanError(
            f"compiled plan for {plan.topology} diverges from the "
            f"extracted schedule: " + "; ".join(problems)
        )


# -- shard-disjointness race checking ------------------------------------------


@dataclass(frozen=True)
class WriteSpan:
    """A strided-block write set: elements ``base + k*stride + j`` for
    ``k < count``, ``j < block``, inside the address space ``buffer``.

    This is exactly the footprint of a numpy reshape-view write — a
    contiguous slab is ``count=1``, an interleaved view (every other
    ``2**b``-block, a transposed column) has ``count > 1`` — so the write
    sets of the sharded replay workers and the columnar rounds are all
    expressible, and overlap between two spans is decidable by integer
    division instead of runtime ``shares_memory``.
    """

    buffer: str
    base: int
    stride: int
    count: int
    block: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.count < 1 or self.block < 1:
            raise ValueError(f"malformed span {self}")
        if self.count > 1 and self.stride < self.block:
            raise ValueError(
                f"span {self} overlaps itself: stride {self.stride} < "
                f"block {self.block}"
            )

    @property
    def stop(self) -> int:
        """One past the largest element."""
        return self.base + (self.count - 1) * self.stride + self.block

    def elements(self) -> frozenset[int]:
        """The concrete element set (test/debug aid; O(count * block))."""
        return frozenset(
            self.base + k * self.stride + j
            for k in range(self.count)
            for j in range(self.block)
        )


def spans_overlap(a: WriteSpan, b: WriteSpan) -> bool:
    """Exact strided-block intersection test.

    Per block ``[x, x + a.block)`` of ``a``, the blocks of ``b`` that can
    intersect it start at ``b.base + j*b.stride`` with
    ``x - b.block < b.base + j*b.stride < x + a.block``; solving for the
    integer ``j`` range makes the test O(min(count)) with no element
    enumeration.
    """
    if a.buffer != b.buffer:
        return False
    if a.count > b.count:
        a, b = b, a
    for k in range(a.count):
        x = a.base + k * a.stride
        j_min = (x - b.block - b.base) // b.stride + 1
        j_max = -((b.base - x - a.block) // b.stride) - 1
        if max(j_min, 0) <= min(j_max, b.count - 1):
            return True
    return False


def _check_disjoint(
    spans: Sequence[tuple[str, WriteSpan]], what: str
) -> None:
    """Pairwise disjointness over labelled spans, or :class:`ShardRaceError`."""
    for i in range(len(spans)):
        for j in range(i + 1, len(spans)):
            (name_a, a), (name_b, b) = spans[i], spans[j]
            if spans_overlap(a, b):
                raise ShardRaceError(
                    f"{what}: write sets of {name_a} and {name_b} overlap "
                    f"in buffer {a.buffer!r} ({a} vs {b})"
                )


def shard_task_spans(
    n: int, m: int, tasks: Sequence[tuple[int, int, int]]
) -> list[tuple[str, WriteSpan]]:
    """Write spans of the sharded-replay fork-pool tasks.

    ``tasks`` are ``(cls, start, stop)`` cluster blocks over a length-``n``
    state with ``2**m``-node clusters (the triples carried by
    ``repro.core.replay._shard_worker``).  A class-0 worker writes
    contiguous rows ``[start*width, stop*width)`` of the lower half; a
    class-1 worker writes columns ``[start, stop)`` of the upper half's
    ``(width, half/width)`` view — an interleaved span with stride
    ``half // width``.  Both the ``t`` and ``s`` buffers get the same
    footprint.
    """
    half = n // 2
    width = 1 << m
    if n <= 0 or n % 2 or half % width:
        raise ShardRaceError(
            f"shard geometry n={n}, m={m} does not split into two halves "
            f"of whole {width}-node clusters"
        )
    rows = half // width
    spans: list[tuple[str, WriteSpan]] = []
    for cls, start, stop in tasks:
        if cls not in (0, 1):
            raise ShardRaceError(f"shard task has class {cls}, not 0/1")
        limit = rows if cls == 0 else half // width
        if not 0 <= start < stop <= limit:
            raise ShardRaceError(
                f"shard task class {cls} block [{start}, {stop}) escapes "
                f"its 0..{limit} cluster range"
            )
        name = f"shard(cls={cls}, [{start}:{stop}))"
        for buf in ("t", "s"):
            if cls == 0:
                span = WriteSpan(
                    buffer=buf,
                    base=start * width,
                    stride=half,
                    count=1,
                    block=(stop - start) * width,
                )
            else:
                span = WriteSpan(
                    buffer=buf,
                    base=half + start,
                    stride=half // width,
                    count=width,
                    block=stop - start,
                )
            if span.stop > (half if cls == 0 else n):
                raise ShardRaceError(
                    f"{name} writes past its half: span {span} in a "
                    f"length-{n} state"
                )
            spans.append((name, span))
    return spans


def check_shard_plan(
    n: int, m: int, tasks: Sequence[tuple[int, int, int]]
) -> list[tuple[str, WriteSpan]]:
    """Verify a sharded-replay task list is race-free; returns its spans.

    Raises :class:`ShardRaceError` when any two tasks' write sets
    overlap or a task escapes its class half — called by
    ``_dual_prefix_replay_sharded`` before the pool forks, so a racing
    plan can never reach shared memory.
    """
    spans = shard_task_spans(n, m, tasks)
    _check_disjoint(spans, f"shard plan (n={n}, m={m})")
    return spans


def columnar_round_spans(
    length: int, bit: int
) -> list[tuple[str, WriteSpan]]:
    """Write spans of one columnar ``bit_pair_views`` combine round.

    The round body writes ``s_hi``, ``t_hi`` and ``t_lo``, where lo/hi
    are the bit-``bit`` pair sides of a length-``length`` column: every
    other ``2**bit``-block, stride ``2**(bit+1)``.
    """
    if bit < 0 or (1 << (bit + 1)) > length:
        raise ShardRaceError(
            f"bit {bit} out of range for a length-{length} column"
        )
    blk = 1 << bit
    pairs = length >> (bit + 1)

    def side(buf: str, hi: bool) -> WriteSpan:
        return WriteSpan(
            buffer=buf,
            base=blk if hi else 0,
            stride=2 * blk,
            count=pairs,
            block=blk,
        )

    return [
        ("t_lo", side("t", False)),
        ("t_hi", side("t", True)),
        ("s_hi", side("s", True)),
    ]


def check_columnar_round(
    length: int, bit: int
) -> list[tuple[str, WriteSpan]]:
    """Verify one columnar round's in-place writes cannot race.

    Raises :class:`ShardRaceError` on overlap or an out-of-column span;
    returns the spans otherwise.
    """
    spans = columnar_round_spans(length, bit)
    for name, span in spans:
        if span.stop > length:
            raise ShardRaceError(
                f"columnar round bit {bit}: {name} span {span} escapes "
                f"the length-{length} column"
            )
    _check_disjoint(spans, f"columnar round (length={length}, bit={bit})")
    return spans
