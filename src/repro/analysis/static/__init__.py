"""Static analysis of communication schedules and repo source.

The paper's theorems are *static* claims about communication schedules:
D_prefix finishes within 2n+1 communication / 2n computation steps,
D_sort within 6n²-3n-2 / 2n²-n, and every message travels along a real
dual-cube edge.  This subsystem checks those claims without trusting a
dynamic run:

* :mod:`repro.analysis.static.schedule` — the :class:`CommSchedule` IR:
  a topology-agnostic per-step record of every message transfer;
* :mod:`repro.analysis.static.extract` — obtains a :class:`CommSchedule`
  from any SPMD program (record-only lockstep interpretation) or from an
  engine message log;
* :mod:`repro.analysis.static.checkers` — edge legality against any
  :class:`~repro.topology.base.Topology`, send/recv pairing with
  wait-for-graph deadlock/orphan diagnosis, 1-port and per-link
  congestion bounds, and theorem step-count bounds;
* :mod:`repro.analysis.static.theorems` — Theorem 1/2 verification
  drivers over D_2..D_5 plus schedule cases for every engine algorithm
  in :mod:`repro.core`;
* :mod:`repro.analysis.static.compile` — turns the extracted schedules
  around: compiles `D_prefix` and step-schedule algorithms into
  straight-line plans of permutations and masks (validated against
  :func:`extract_schedule`) that the ``"replay"`` backend executes, and
  proves the sharded/columnar write sets race-free before forking
  (:class:`WriteSpan` algebra, ``repro check-faults --plan``);
* :mod:`repro.analysis.static.faults` — fault-impact analysis: blast
  radius by forward taint/blocking propagation through a schedule,
  deadlock/orphan diagnosis of the fault-pruned schedule, static
  prediction of ``run_faulty`` exclusion sets, and minimal-cut search
  with exact Menger structural cuts (``repro check-faults``);
* :mod:`repro.analysis.static.lint` — a stdlib-``ast`` repo linter with
  repro-specific rules and per-path rule profiles (``repro lint``).

See ``docs/static-analysis.md`` for the full tour.
"""

from repro.analysis.static.schedule import (
    BlockedOp,
    CommEvent,
    CommSchedule,
    Violation,
)
from repro.analysis.static.extract import (
    RecordingCtx,
    extract_schedule,
    schedule_from_messages,
)
from repro.analysis.static.checkers import (
    EXIT_CODES,
    VIOLATION_CLASSES,
    check_bounds,
    check_congestion,
    check_edge_legality,
    check_pairing,
    exit_code_for,
    run_schedule_checks,
)
from repro.analysis.static.faults import (
    CutResult,
    FaultImpact,
    RecoveryImpact,
    all_included_violated,
    analyze_fault_impact,
    fault_set_of,
    minimal_cut,
    minimal_cut_table,
    quorum_node_cut,
    quorum_violated,
    rank_included_violated,
    recovery_impact,
    structural_link_cut,
    structural_node_cut,
)
from repro.analysis.static.theorems import (
    ScheduleReport,
    core_schedule_cases,
    verify_prefix_schedule,
    verify_sort_schedule,
    verify_theorems,
)
from repro.analysis.static.compile import (
    CompiledStep,
    PlanError,
    PrefixPlan,
    SchedulePlan,
    ShardRaceError,
    WriteSpan,
    check_columnar_round,
    check_shard_plan,
    columnar_round_spans,
    compile_prefix_plan,
    compile_schedule_plan,
    plan_comm_schedule,
    shard_task_spans,
    spans_overlap,
)
from repro.analysis.static.lint import (
    LINT_RULES,
    RULE_PROFILES,
    LintViolation,
    lint_file,
    lint_paths,
    lint_source,
    profile_for,
)

__all__ = [
    "BlockedOp",
    "CommEvent",
    "CommSchedule",
    "Violation",
    "RecordingCtx",
    "extract_schedule",
    "schedule_from_messages",
    "check_bounds",
    "check_congestion",
    "check_edge_legality",
    "check_pairing",
    "run_schedule_checks",
    "EXIT_CODES",
    "VIOLATION_CLASSES",
    "exit_code_for",
    "FaultImpact",
    "analyze_fault_impact",
    "RecoveryImpact",
    "recovery_impact",
    "fault_set_of",
    "all_included_violated",
    "rank_included_violated",
    "quorum_violated",
    "CutResult",
    "minimal_cut",
    "structural_node_cut",
    "structural_link_cut",
    "quorum_node_cut",
    "minimal_cut_table",
    "ScheduleReport",
    "core_schedule_cases",
    "verify_prefix_schedule",
    "verify_sort_schedule",
    "verify_theorems",
    "CompiledStep",
    "PlanError",
    "ShardRaceError",
    "PrefixPlan",
    "SchedulePlan",
    "compile_prefix_plan",
    "compile_schedule_plan",
    "plan_comm_schedule",
    "WriteSpan",
    "spans_overlap",
    "shard_task_spans",
    "check_shard_plan",
    "columnar_round_spans",
    "check_columnar_round",
    "LINT_RULES",
    "RULE_PROFILES",
    "LintViolation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "profile_for",
]
