"""Persistence of experiment results.

Benchmark runs persist their regenerated artifacts as plain text under
``benchmarks/out/``; this module adds structured JSON records for
programmatic consumers (cost counters + parameters + environment), and
the collector the ``report`` CLI uses to enumerate what a run produced.
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.simulator.counters import CostCounters

__all__ = ["ExperimentRecord", "save_record", "load_record", "collect_artifacts"]


@dataclass
class ExperimentRecord:
    """One structured measurement: what ran, on what, and what it cost."""

    experiment: str
    parameters: dict
    counters: dict
    notes: str = ""
    environment: dict = field(default_factory=dict)

    @classmethod
    def from_counters(
        cls,
        experiment: str,
        parameters: dict,
        counters: CostCounters,
        *,
        notes: str = "",
    ) -> "ExperimentRecord":
        """Snapshot a counters object into a record."""
        return cls(
            experiment=experiment,
            parameters=dict(parameters),
            counters=counters.summary(),
            notes=notes,
            environment={
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
        )


def save_record(record: ExperimentRecord, path) -> Path:
    """Write a record as JSON; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(asdict(record), indent=2, sort_keys=True) + "\n")
    return p


def load_record(path) -> ExperimentRecord:
    """Read a record written by :func:`save_record`."""
    data = json.loads(Path(path).read_text())
    return ExperimentRecord(**data)


def collect_artifacts(directory) -> dict[str, str]:
    """Map artifact name -> first line (title) for every ``*.txt`` artifact."""
    out: dict[str, str] = {}
    d = Path(directory)
    if not d.is_dir():
        return out
    for f in sorted(d.glob("*.txt")):
        first = f.read_text().splitlines()
        out[f.stem] = first[0] if first else ""
    return out
