"""Cost models and reporting helpers for the reproduction benchmarks."""

from repro.analysis.complexity import (
    theorem1_comm_bound,
    theorem1_comp_bound,
    dual_prefix_comm_exact,
    dual_prefix_comp_exact,
    hypercube_prefix_steps,
    theorem2_comm_bound,
    theorem2_comp_bound,
    dual_sort_comm_exact,
    dual_sort_comp_exact,
    hypercube_bitonic_steps,
    sort_overhead_ratio,
    dual_cube_nodes,
    dual_cube_edges,
    dual_cube_diameter,
    hypercube_same_size_dim,
)
from repro.analysis.tables import format_table, format_markdown_table
from repro.analysis.io import ExperimentRecord, save_record, load_record, collect_artifacts

__all__ = [
    "theorem1_comm_bound",
    "theorem1_comp_bound",
    "dual_prefix_comm_exact",
    "dual_prefix_comp_exact",
    "hypercube_prefix_steps",
    "theorem2_comm_bound",
    "theorem2_comp_bound",
    "dual_sort_comm_exact",
    "dual_sort_comp_exact",
    "hypercube_bitonic_steps",
    "sort_overhead_ratio",
    "dual_cube_nodes",
    "dual_cube_edges",
    "dual_cube_diameter",
    "hypercube_same_size_dim",
    "format_table",
    "format_markdown_table",
    "ExperimentRecord",
    "save_record",
    "load_record",
    "collect_artifacts",
]
