"""Closed-form cost models (the paper's Theorems 1-2 and their derivations).

Every formula carries its derivation so the benchmark tables can print
"paper bound" next to "exact model prediction" next to "measured".  The
paper's numeric claims were reconstructed from its recurrences (the OCR of
the source lost the digits — see DESIGN.md):

* Theorem 1 (prefix): T_comm = 2(n-1) + 3 = 2n + 1, T_comp = 2(n-1) + 2
  = 2n.  The step-5 exchange is redundant (DESIGN.md), so the optimized
  schedule measures 2n.

* Theorem 2 (sorting): the paper charges every merge step 3 time-units:
  T_comm(n) = T_comm(n-1) + 3((2n-2) + (2n-1)), T_comm(1) = 1
  → 6n² - 3n - 2.  The dimension-0 steps (one per merge loop) are in fact
  direct cross-edges costing 1 cycle, so the engine measures
  T(n) = T(n-1) + 3(4n-3) - 4 → **6n² - 7n + 2** (packed 3-cycle relay) or
  T(n) = T(n-1) + 4(4n-5) + 2 → **8n² - 10n + 3** (strict one-key
  messages, 4-cycle relay); both ≤/≈ the paper's bound shape.
  Comparisons: T_comp(n) = T_comp(n-1) + (4n-3) → 2n² - n, which equals
  the same-size hypercube's n(2n-1) exactly — the overhead is pure
  communication, ratio → 3.
"""

from __future__ import annotations

__all__ = [
    "theorem1_comm_bound",
    "theorem1_comp_bound",
    "dual_prefix_comm_exact",
    "dual_prefix_comp_exact",
    "hypercube_prefix_steps",
    "theorem2_comm_bound",
    "theorem2_comp_bound",
    "dual_sort_comm_exact",
    "dual_sort_comp_exact",
    "hypercube_bitonic_steps",
    "sort_overhead_ratio",
    "dual_cube_nodes",
    "dual_cube_edges",
    "dual_cube_diameter",
    "hypercube_same_size_dim",
]


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"dual-cube connectivity must be >= 1, got {n}")


# -- structure ---------------------------------------------------------------


def dual_cube_nodes(n: int) -> int:
    """|V(D_n)| = 2^(2n-1)."""
    _check_n(n)
    return 1 << (2 * n - 1)


def dual_cube_edges(n: int) -> int:
    """|E(D_n)| = n * 2^(2n-2) (degree n everywhere)."""
    _check_n(n)
    return n << (2 * n - 2)


def dual_cube_diameter(n: int) -> int:
    """Diameter of D_n: 2n (1 for the degenerate D_1)."""
    _check_n(n)
    return 1 if n == 1 else 2 * n


def hypercube_same_size_dim(n: int) -> int:
    """Dimension of the hypercube with as many nodes as D_n: 2n - 1."""
    _check_n(n)
    return 2 * n - 1


# -- Theorem 1: parallel prefix ------------------------------------------------


def theorem1_comm_bound(n: int) -> int:
    """Paper's communication bound for D_prefix: 2n + 1."""
    _check_n(n)
    return 2 * n + 1


def theorem1_comp_bound(n: int) -> int:
    """Paper's computation bound for D_prefix: 2n."""
    _check_n(n)
    return 2 * n


def dual_prefix_comm_exact(n: int, *, paper_literal: bool = False) -> int:
    """Engine-exact communication steps: 2n (+1 with the literal step 5)."""
    _check_n(n)
    return 2 * n + (1 if paper_literal else 0)


def dual_prefix_comp_exact(n: int) -> int:
    """Engine-exact computation steps: 2n (class-1 nodes' chain)."""
    _check_n(n)
    return 2 * n


def hypercube_prefix_steps(q: int) -> int:
    """Cube_prefix on Q_q: q communication and q computation steps."""
    if q < 0:
        raise ValueError(f"cube dimension must be >= 0, got {q}")
    return q


# -- Theorem 2: sorting ---------------------------------------------------------


def theorem2_comm_bound(n: int) -> int:
    """Paper's communication bound for D_sort: 6n² - 3n - 2."""
    _check_n(n)
    return 6 * n * n - 3 * n - 2


def theorem2_comp_bound(n: int) -> int:
    """Paper's comparison bound for D_sort: 2n² - n."""
    _check_n(n)
    return 2 * n * n - n


def dual_sort_comm_exact(n: int, *, payload_policy: str = "packed") -> int:
    """Engine-exact communication steps of D_sort.

    ``packed``: 6n² - 7n + 2 (3-cycle relay, 2-key middle messages);
    ``single``: 8n² - 10n + 3 (4-cycle relay, 1-key messages).
    """
    _check_n(n)
    if payload_policy == "packed":
        return 6 * n * n - 7 * n + 2
    if payload_policy == "single":
        return 8 * n * n - 10 * n + 3
    raise ValueError(
        f"payload_policy must be 'packed' or 'single', got {payload_policy!r}"
    )


def dual_sort_comp_exact(n: int) -> int:
    """Engine-exact comparison steps of D_sort: 2n² - n (one per round)."""
    _check_n(n)
    return 2 * n * n - n


def hypercube_bitonic_steps(q: int) -> int:
    """Batcher bitonic sort on Q_q: q(q+1)/2 steps of each kind."""
    if q < 0:
        raise ValueError(f"cube dimension must be >= 0, got {q}")
    return q * (q + 1) // 2


def sort_overhead_ratio(n: int, *, payload_policy: str = "packed") -> float:
    """D_sort comm steps over the same-size hypercube's — the paper's "< 3x"."""
    _check_n(n)
    return dual_sort_comm_exact(n, payload_policy=payload_policy) / (
        hypercube_bitonic_steps(hypercube_same_size_dim(n))
    )
