"""Plain-text and Markdown table rendering for the benchmark harness.

The paper has no numeric tables (its evaluation is figures + theorems),
so the harness prints its regenerated artifacts as aligned text tables —
one per experiment — and EXPERIMENTS.md embeds the Markdown form.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(rows: Iterable[Sequence]) -> list[list[str]]:
    out = []
    for row in rows:
        out.append(
            [
                f"{cell:.3f}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    return out


def format_table(headers: Sequence[str], rows: Iterable[Sequence], *, title: str = "") -> str:
    """Monospace-aligned table with optional title line."""
    srows = _stringify(rows)
    cols = [list(c) for c in zip(*([list(map(str, headers))] + srows))] if srows else [
        [h] for h in map(str, headers)
    ]
    widths = [max(len(v) for v in col) for col in cols]
    sep = "-+-".join("-" * w for w in widths)

    def fmt(row):
        return " | ".join(v.rjust(w) for v, w in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(map(str, headers))))
    lines.append(sep)
    lines.extend(fmt(r) for r in srows)
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """GitHub-flavoured Markdown table."""
    srows = _stringify(rows)
    head = "| " + " | ".join(map(str, headers)) + " |"
    rule = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(r) + " |" for r in srows]
    return "\n".join([head, rule, *body])
