"""Command-line interface: ``python -m repro <command>``.

Gives the library's headline results from a shell — network facts, the
theorem tables, a prefix/sort run with measured costs, routing demos,
and the random-traffic comparison — without writing any Python.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__
from repro.analysis.complexity import (
    dual_prefix_comm_exact,
    dual_sort_comm_exact,
    hypercube_bitonic_steps,
    hypercube_prefix_steps,
    theorem1_comm_bound,
    theorem1_comp_bound,
    theorem2_comm_bound,
    theorem2_comp_bound,
)
from repro.analysis.tables import format_table
from repro.core.dual_prefix import dual_prefix_vec
from repro.core.dual_sort import dual_sort_vec
from repro.core.ops import ADD
from repro.routing.dualcube_routing import route
from repro.simulator import CostCounters
from repro.simulator.traffic import (
    hypercube_dimension_order_path,
    random_pairs,
    run_traffic,
)
from repro.topology import DualCube, Hypercube, RecursiveDualCube
from repro.viz.ascii_art import render_clusters, render_route

__all__ = ["main", "build_parser"]


def _cmd_info(args) -> int:
    dc = DualCube(args.n)
    print(
        f"{dc.name}: {dc.num_nodes} nodes, {dc.edge_count()} edges, "
        f"degree {dc.n}, diameter {dc.diameter()}, "
        f"2 classes x {dc.clusters_per_class} clusters x "
        f"{dc.nodes_per_cluster} nodes"
    )
    if args.layout:
        print(render_clusters(dc))
    return 0


def _cmd_theorems(args) -> int:
    rows1 = [
        (
            n,
            2 ** (2 * n - 1),
            dual_prefix_comm_exact(n),
            theorem1_comm_bound(n),
            hypercube_prefix_steps(2 * n - 1),
            theorem1_comp_bound(n),
        )
        for n in range(1, args.max_n + 1)
    ]
    print(
        format_table(
            ["n", "nodes", "comm (ours)", "bound 2n+1", "Q_(2n-1)", "comp 2n"],
            rows1,
            title="Theorem 1 — D_prefix",
        )
    )
    print()
    rows2 = [
        (
            n,
            2 ** (2 * n - 1),
            dual_sort_comm_exact(n),
            theorem2_comm_bound(n),
            hypercube_bitonic_steps(2 * n - 1),
            round(dual_sort_comm_exact(n) / hypercube_bitonic_steps(2 * n - 1), 3),
            theorem2_comp_bound(n),
        )
        for n in range(1, args.max_n + 1)
    ]
    print(
        format_table(
            ["n", "nodes", "comm (ours)", "bound", "Q_(2n-1)", "ratio", "comp"],
            rows2,
            title="Theorem 2 — D_sort",
        )
    )
    return 0


def _cmd_prefix(args) -> int:
    dc = DualCube(args.n)
    rng = np.random.default_rng(args.seed)
    vals = rng.integers(0, 100, dc.num_nodes)
    counters = CostCounters(dc.num_nodes)
    out = dual_prefix_vec(dc, vals, ADD, counters=counters)
    print(f"input : {[int(v) for v in vals[: args.show]]}...")
    print(f"prefix: {[int(v) for v in out[: args.show]]}...")
    print(
        f"cost: {counters.comm_steps} comm steps "
        f"(bound {theorem1_comm_bound(args.n)}), "
        f"{counters.comp_steps} comp steps"
    )
    return 0


def _cmd_sort(args) -> int:
    rdc = RecursiveDualCube(args.n)
    rng = np.random.default_rng(args.seed)
    keys = rng.permutation(rdc.num_nodes)
    counters = CostCounters(rdc.num_nodes)
    out = dual_sort_vec(rdc, keys, counters=counters)
    ok = list(out) == sorted(keys)
    print(f"keys  : {[int(v) for v in keys[: args.show]]}...")
    print(f"sorted: {[int(v) for v in out[: args.show]]}...  ({'ok' if ok else 'WRONG'})")
    print(
        f"cost: {counters.comm_steps} comm steps "
        f"(bound {theorem2_comm_bound(args.n)}), "
        f"{counters.comp_steps} comparison steps"
    )
    return 0 if ok else 1


def _cmd_route(args) -> int:
    dc = DualCube(args.n)
    path = route(dc, args.src, args.dst)
    print(render_route(dc, path))
    return 0


def _cmd_traffic(args) -> int:
    n = args.n
    dc = DualCube(n)
    cube = Hypercube(2 * n - 1)
    rng = np.random.default_rng(args.seed)
    pairs = random_pairs(dc.num_nodes, args.pairs, rng)
    stats_d = run_traffic(dc, lambda u, v: route(dc, u, v), pairs)
    stats_q = run_traffic(cube, hypercube_dimension_order_path, pairs)
    print(
        format_table(
            ["network", "pairs", "avg hops", "max link load", "imbalance", "loaded links", "links", "retrans", "path hops"],
            [stats_d.row(), stats_q.row()],
            title=f"Random traffic, {args.pairs} pairs",
        )
    )
    return 0


def _cmd_hamiltonian(args) -> int:
    from repro.topology import RecursiveDualCube as RDC
    from repro.topology import hamiltonian_cycle, ring_embedding_dilation

    rdc = RDC(args.n)
    cyc = hamiltonian_cycle(args.n)
    print(f"Hamiltonian cycle of {rdc.name} ({rdc.num_nodes} nodes), dilation "
          f"{ring_embedding_dilation(rdc, cyc)}:")
    shown = " -> ".join(map(str, cyc[: args.show]))
    print(f"  {shown}{' -> ...' if len(cyc) > args.show else ''}")
    return 0


def _cmd_collectives(args) -> int:
    from repro.routing import (
        allgather_engine,
        allreduce_engine,
        broadcast_engine,
        gather_engine,
        scatter_engine,
    )

    dc = DualCube(args.n)
    vals = list(range(dc.num_nodes))
    rows = []
    _, res = broadcast_engine(dc, 0, 42)
    rows.append(("broadcast", res.comm_steps, res.counters.messages, res.counters.payload_items))
    _, res = allreduce_engine(dc, vals, ADD)
    rows.append(("allreduce", res.comm_steps, res.counters.messages, res.counters.payload_items))
    _, res = scatter_engine(dc, 0, vals)
    rows.append(("scatter", res.comm_steps, res.counters.messages, res.counters.payload_items))
    _, res = gather_engine(dc, 0, vals)
    rows.append(("gather", res.comm_steps, res.counters.messages, res.counters.payload_items))
    _, res = allgather_engine(dc, vals)
    rows.append(("allgather", res.comm_steps, res.counters.messages, res.counters.payload_items))
    print(
        format_table(
            ["collective", "steps", "messages", "payload items"],
            rows,
            title=f"Collectives on {dc.name} (diameter {dc.diameter()})",
        )
    )
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.perf.bench import (
        compare_bench,
        load_bench,
        merge_bench,
        run_bench,
        run_bench_campaign,
        run_bench_columnar,
        run_bench_replay,
        run_bench_serving,
        write_bench,
    )

    backend = args.backend
    if backend in ("columnar", "replay", "serving", "campaign") and args.faults:
        print("--faults is the core suite only (engine-backed scenarios)")
        return 2
    suites = {
        "columnar": lambda: run_bench_columnar(
            max_n=args.max_n if args.max_n is not None else 11,
            repeats=args.repeats,
            smoke=args.smoke,
            seed=args.seed,
        ),
        "replay": lambda: run_bench_replay(
            max_n=args.max_n if args.max_n is not None else 5,
            repeats=args.repeats,
            smoke=args.smoke,
            seed=args.seed,
        ),
        "serving": lambda: run_bench_serving(
            max_n=args.max_n if args.max_n is not None else 4,
            repeats=args.repeats,
            smoke=args.smoke,
            seed=args.seed,
        ),
        "campaign": lambda: run_bench_campaign(
            max_n=args.max_n if args.max_n is not None else 3,
            repeats=args.repeats,
            smoke=args.smoke,
            seed=args.seed,
        ),
        "core": lambda: run_bench(
            max_n=args.max_n if args.max_n is not None else 5,
            repeats=args.repeats,
            smoke=args.smoke,
            seed=args.seed,
            faults_only=args.faults,
        ),
    }
    payload = suites[backend]()
    rows = [
        (
            r["bench"],
            r["backend"],
            r["n"],
            r["num_nodes"],
            f"{r['wall_s'] * 1000:.3f}",
            r["comm_steps"],
            r["comp_steps"],
            r["messages"],
            r["max_message_payload"],
            r.get("messages_dropped", 0),
            f"{r.get('peak_mem_mb', 0.0):.1f}",
        )
        for r in payload["records"]
    ]
    print(
        format_table(
            ["bench", "backend", "n", "nodes", "wall ms", "comm", "comp", "msgs", "peak payload", "drops", "peak MB"],
            rows,
            title="repro bench" + (" (smoke)" if args.smoke else ""),
        )
    )
    if args.faults:
        default_out = "BENCH_faults_smoke.json" if args.smoke else "BENCH_faults.json"
    elif args.smoke:
        default_out = {
            "columnar": "BENCH_columnar_smoke.json",
            "replay": "BENCH_replay_smoke.json",
            "serving": "BENCH_serving_smoke.json",
            "campaign": "BENCH_campaign_smoke.json",
            "core": "BENCH_smoke.json",
        }[backend]
    else:
        default_out = "BENCH_core.json"
    out = args.out or default_out

    # Load the comparison baseline *before* writing: --compare pointed at
    # the output path itself (the usual CI idiom) must gate against the
    # committed baseline, not the file this run just overwrote.  A missing
    # baseline is a first run, not a regression.
    previous = None
    if args.compare:
        if Path(args.compare).exists():
            previous = load_bench(args.compare)
        else:
            print(f"no baseline at {args.compare}; recording a fresh one")

    if (
        backend in ("columnar", "replay", "serving", "campaign")
        and not args.smoke
        and Path(out).exists()
    ):
        # A full columnar, replay, serving or campaign sweep lands next to
        # the core suite's records instead of clobbering them.
        payload = merge_bench(load_bench(out), payload)
    path = write_bench(payload, out)
    print(f"wrote {path} ({len(payload['records'])} records)")

    if previous is not None:
        problems = compare_bench(
            payload, previous, wall_factor=args.wall_factor
        )
        if problems:
            print(f"\nREGRESSIONS vs {args.compare}:")
            for p in problems:
                print(f"  - {p}")
            return 1
        print(f"no regressions vs {args.compare}")
    return 0


def _serve_workload(topo, arrival: str, rate: float, requests: int, seed: int):
    from repro.simulator.serving import (
        deterministic_arrivals,
        onoff_arrivals,
        open_loop_pairs,
        poisson_arrivals,
    )

    total_rate = rate * topo.num_nodes
    make = {
        "poisson": lambda: poisson_arrivals(total_rate, requests, seed),
        "deterministic": lambda: deterministic_arrivals(total_rate, requests),
        "bursty": lambda: onoff_arrivals(total_rate, requests, seed),
    }[arrival]
    return make(), open_loop_pairs(topo, requests, seed)


def _cmd_serve(args) -> int:
    from pathlib import Path

    from repro.obs import TimelineRecorder
    from repro.simulator import FaultPlan
    from repro.simulator.serving import (
        ServingConfig,
        bfs_router,
        find_saturation,
        registry_from_serving,
        run_serving,
    )
    from repro.topology import Metacube
    from repro.viz.ascii_art import render_timeline_heatmap

    n = args.n
    dc = DualCube(n)
    cube = Hypercube(2 * n - 1)
    networks: list[tuple] = [
        (dc, lambda u, v: route(dc, u, v)),
        (cube, hypercube_dimension_order_path),
    ]
    if args.metacube and n >= 3:
        # MC(2, n-2) matches the dual-cube's degree (n) at a comparable
        # size — the authors' generalized family joining the comparison.
        mc = Metacube(2, n - 2)
        networks.append((mc, bfs_router(mc)))

    if args.sweep:
        rows = []
        for topo, router in networks:
            sat = find_saturation(
                topo,
                router,
                seed=args.seed,
                requests=args.requests,
                service_time=args.service_time,
            )
            rows.append(sat.row())
        print(
            format_table(
                ["network", "knee rate/node", "diverged at", "base p99", "threshold", "probes"],
                rows,
                title=(
                    f"Saturation sweep (p99 knee), fixed window, "
                    f">= {args.requests} requests per probe"
                ),
            )
        )
        return 0

    plan = None
    if args.drop_rate > 0:
        plan = FaultPlan(drop_rate=args.drop_rate, seed=args.seed, max_retries=200)
    config = ServingConfig(
        service_time=args.service_time,
        queue_capacity=args.capacity,
        policy=args.policy,
        deadline=args.deadline,
        horizon=args.horizon,
    )
    rows = []
    registry = None
    for topo, router in networks:
        arrivals, pairs = _serve_workload(
            topo, args.arrival, args.rate, args.requests, args.seed
        )
        recorder = TimelineRecorder(num_nodes=topo.num_nodes)
        stats = run_serving(
            topo, router, arrivals, pairs,
            config=config, fault_plan=plan, timeline=recorder,
        )
        rows.append(stats.row())
        # One registry for all networks: registry_from_serving labels every
        # series by topology, so the export stays one valid document.
        registry = registry_from_serving(stats, registry=registry)
        if args.heatmap:
            print(f"\n{topo.name} queue activity:")
            print(render_timeline_heatmap(recorder, max_links=args.heatmap_links))
    print(
        format_table(
            ["network", "arrivals", "completed", "drops", "misses", "p50", "p99", "p999", "goodput", "util"],
            rows,
            title=(
                f"Open-loop serving: {args.arrival} arrivals, "
                f"{args.rate}/node/t, {args.requests} requests"
            ),
        )
    )
    if args.export_jsonl:
        Path(args.export_jsonl).write_text(registry.to_jsonlines())
        print(f"wrote {args.export_jsonl}")
    if args.export_prom:
        Path(args.export_prom).write_text(registry.to_prometheus())
        print(f"wrote {args.export_prom}")
    return 0


def _run_recorded(algo: str, n: int, seed: int):
    """Run ``algo`` on the engine with a timeline attached.

    Returns ``(topo, recorder, engine_result, static_schedule)`` where the
    static schedule is the analyzer's extraction of the *same* program —
    the ground truth the recorded timeline is validated against.
    """
    from repro.analysis.static.extract import extract_schedule
    from repro.core.dual_prefix import dual_prefix_engine, dual_prefix_program
    from repro.core.dual_sort import (
        dual_sort_engine,
        dual_sort_schedule,
        schedule_program,
    )
    from repro.obs import TimelineRecorder
    from repro.simulator import use_timeline

    rng = np.random.default_rng(seed)
    if algo == "prefix":
        dc = DualCube(n)
        vals = [int(v) for v in rng.integers(0, 100, dc.num_nodes)]
        recorder = TimelineRecorder(num_nodes=dc.num_nodes)
        with use_timeline(recorder):
            _, result = dual_prefix_engine(dc, vals, ADD)
        static = extract_schedule(dc, dual_prefix_program(dc, vals, ADD))
        return dc, recorder, result, static
    rdc = RecursiveDualCube(n)
    keys = [int(k) for k in rng.permutation(rdc.num_nodes)]
    recorder = TimelineRecorder(num_nodes=rdc.num_nodes)
    with use_timeline(recorder):
        _, result = dual_sort_engine(rdc, keys)
    static = extract_schedule(
        rdc, schedule_program(rdc, keys, dual_sort_schedule(rdc.n))
    )
    return rdc, recorder, result, static


def _cmd_timeline(args) -> int:
    from pathlib import Path

    from repro.obs import (
        cross_validate_timeline,
        registry_from_counters,
        registry_from_timeline,
    )
    from repro.viz.ascii_art import render_timeline_heatmap

    algos = ("prefix", "sort") if args.smoke else (args.algo,)
    n = 2 if args.smoke else args.n
    status = 0
    for algo in algos:
        topo, recorder, result, static = _run_recorded(algo, n, args.seed)
        counts = recorder.fault_counts()
        print(
            f"{algo} on {topo.name}: {recorder.num_cycles} cycles, "
            f"{recorder.total_messages} messages, "
            f"{sum(counts.values())} faults"
        )
        if not args.smoke:
            print(render_timeline_heatmap(recorder))
        problems = cross_validate_timeline(recorder, static)
        if problems:
            status = 1
            print(f"timeline DIVERGES from the static schedule ({algo}):")
            for p in problems:
                print(f"  - {p}")
        else:
            print(
                f"  validated: timeline matches the static schedule "
                f"({len(static.events)} events over {static.steps} cycles)"
            )
        registry = registry_from_counters(result.counters)
        registry_from_timeline(recorder, registry=registry)
        if args.smoke:
            # Exercise both exporters end to end; emptiness would mean the
            # wiring silently broke even if the run itself was fine.
            jsonl = registry.to_jsonlines()
            prom = registry.to_prometheus()
            if not jsonl.strip() or not prom.strip():
                status = 1
                print("  exporter produced empty output")
            else:
                print(
                    f"  exporters ok: {len(jsonl.splitlines())} jsonl rows, "
                    f"{len(prom.splitlines())} prometheus lines"
                )
        if args.export_jsonl:
            Path(args.export_jsonl).write_text(registry.to_jsonlines())
            print(f"  wrote {args.export_jsonl}")
        if args.export_prom:
            Path(args.export_prom).write_text(registry.to_prometheus())
            print(f"  wrote {args.export_prom}")
    return status


def _cmd_lint(args) -> int:
    import json

    from repro.analysis.static import lint_paths

    paths = args.paths or ["src"]
    violations = lint_paths(paths)
    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "path": v.path,
                        "line": v.line,
                        "code": v.code,
                        "message": v.message,
                    }
                    for v in violations
                ],
                indent=2,
            )
        )
        return 1 if violations else 0
    if args.format == "github":
        # GitHub Actions workflow-command annotations: the runner turns
        # these lines into inline PR review comments.
        for v in violations:
            print(
                f"::error file={v.path},line={v.line},"
                f"title={v.code}::{v.message}"
            )
        return 1 if violations else 0
    for v in violations:
        print(v)
    if violations:
        print(f"{len(violations)} lint finding(s)")
        return 1
    print(f"lint clean: {', '.join(paths)}")
    return 0


def _violation_dict(v) -> dict:
    from repro.analysis.static import VIOLATION_CLASSES

    return {
        "code": v.code,
        "class": VIOLATION_CLASSES.get(v.code),
        "message": v.message,
        "step": v.step,
        "rank": v.rank,
    }


def _cmd_check_schedule(args) -> int:
    import json

    from repro.analysis.static import exit_code_for, verify_theorems

    algos = ("prefix", "sort") if args.algo == "both" else (args.algo,)
    reports = verify_theorems(
        args.min_n,
        args.max_n,
        algos=algos,
        paper_literal=args.paper_literal,
        payload_policy=args.payload_policy,
    )
    all_violations = [v for r in reports for v in r.violations]
    if args.json:
        print(
            json.dumps(
                {
                    "reports": [
                        {
                            "algo": r.algo,
                            "n": r.n,
                            "num_nodes": r.num_nodes,
                            "comm_steps": r.comm_steps,
                            "comm_bound": r.comm_bound,
                            "comp_steps": r.comp_steps,
                            "comp_bound": r.comp_bound,
                            "ok": r.ok,
                            "violations": [
                                _violation_dict(v) for v in r.violations
                            ],
                        }
                        for r in reports
                    ],
                    "ok": not all_violations,
                },
                indent=2,
            )
        )
        return exit_code_for(all_violations)
    rows = [
        (
            r.algo,
            r.n,
            r.num_nodes,
            r.comm_steps,
            r.comm_bound,
            r.comp_steps,
            r.comp_bound,
            "ok" if r.ok else "FAIL",
        )
        for r in reports
    ]
    print(
        format_table(
            ["algorithm", "n", "nodes", "comm", "bound", "comp", "bound", "verdict"],
            rows,
            title="Static schedule verification (Theorems 1 and 2)",
        )
    )
    failed = [r for r in reports if not r.ok]
    for r in failed:
        print(f"\n{r.algo} n={r.n}:")
        for v in r.violations:
            print(f"  {v}")
    if failed:
        return exit_code_for(all_violations)
    print(
        "\nall schedules edge-legal, deadlock-free, 1-port clean, "
        "within theorem bounds"
    )
    return 0


def _faults_schedule(kind: str, n: int):
    """Extract the baseline CommSchedule for the impact analysis."""
    from repro.analysis.static import extract_schedule
    from repro.core.dual_prefix import dual_prefix_program
    from repro.core.dual_sort import dual_sort_schedule, schedule_program

    if kind == "prefix":
        dc = DualCube(n)
        return dc, extract_schedule(
            dc, dual_prefix_program(dc, list(range(dc.num_nodes)), ADD)
        )
    rdc = RecursiveDualCube(n)
    return rdc, extract_schedule(
        rdc,
        schedule_program(
            rdc, list(range(rdc.num_nodes)), dual_sort_schedule(rdc.n)
        ),
    )


def _parse_crash(spec: str) -> tuple[int, int]:
    """``R`` or ``R@C`` -> (rank, cycle), cycle defaulting to 1."""
    rank, _, cyc = spec.partition("@")
    return int(rank), (int(cyc) if cyc else 1)


def _parse_cut(spec: str) -> tuple[tuple[int, int], int]:
    """``U:V`` or ``U:V@C`` -> ((min, max), cycle)."""
    edge, _, cyc = spec.partition("@")
    u, sep, v = edge.partition(":")
    if not sep:
        raise ValueError(f"link cut {spec!r} is not of the form U:V[@C]")
    a, b = int(u), int(v)
    return (min(a, b), max(a, b)), (int(cyc) if cyc else 1)


def _check_faults_plan(args) -> int:
    import json

    from repro.analysis.static import (
        ShardRaceError,
        check_columnar_round,
        check_shard_plan,
    )
    from repro.core.replay import _cluster_blocks

    checked = []
    try:
        for n in range(2, args.max_n + 1):
            dc = DualCube(n)
            num, m = dc.num_nodes, dc.cluster_dim
            for shards in (2, 3, 4, 5, 8):
                blocks = _cluster_blocks(1 << m, shards)
                tasks = [(c, a, b) for c in (0, 1) for a, b in blocks]
                spans = check_shard_plan(num, m, tasks)
                checked.append(
                    {
                        "plan": f"shard n={n} shards={shards}",
                        "tasks": len(tasks),
                        "spans": len(spans),
                    }
                )
            for bit in range(m):
                spans = check_columnar_round(num // 2, bit)
                checked.append(
                    {
                        "plan": f"columnar n={n} bit={bit}",
                        "tasks": 1,
                        "spans": len(spans),
                    }
                )
    except ShardRaceError as e:
        if args.json:
            print(json.dumps({"ok": False, "error": str(e)}, indent=2))
        else:
            print(f"RACE: {e}")
        return 2
    if args.json:
        print(json.dumps({"ok": True, "checked": checked}, indent=2))
        return 0
    print(
        format_table(
            ["plan", "tasks", "write spans"],
            [(c["plan"], c["tasks"], c["spans"]) for c in checked],
            title="Shard-disjointness race check",
        )
    )
    print(
        f"\nall {len(checked)} plans race-free "
        f"(pairwise-disjoint write sets per round)"
    )
    return 0


def _check_faults_minimal_cut(args) -> int:
    import json

    from repro.analysis.static import minimal_cut_table

    rows = minimal_cut_table(
        max_n=args.max_n, quorum_frac=args.quorum, budget=args.budget
    )
    if args.json:
        print(json.dumps({"rows": rows}, indent=2))
        return 0
    print(
        format_table(
            ["network", "nodes", "degree", "node cut", "link cut",
             f"quorum-{args.quorum} cut", "exact", "evals"],
            [
                (
                    r["topology"],
                    r["num_nodes"],
                    r["degree"],
                    r["node_cut"],
                    r["link_cut"],
                    r["quorum_cut"],
                    "yes" if r["quorum_exact"] else "upper bound",
                    r["evaluations"],
                )
                for r in rows
            ],
            title="E19 — minimal fault sets violating recovery predicates",
        )
    )
    print(
        "\nnode/link cuts are exact (Menger max-flow); witnesses, e.g. "
        f"{rows[0]['topology']}: crash {rows[0]['node_witness']}"
    )
    return 0


def _cmd_check_faults(args) -> int:
    import json

    from repro.analysis.static import analyze_fault_impact, exit_code_for
    from repro.simulator.faults import StaticFaultView

    if args.plan:
        return _check_faults_plan(args)
    if args.minimal_cut:
        return _check_faults_minimal_cut(args)

    crashes = tuple(sorted(_parse_crash(s) for s in args.crash))
    cuts = tuple(sorted(_parse_cut(s) for s in args.cut))
    view = StaticFaultView(
        crashes=crashes,
        cuts=cuts,
        timeout=args.timeout,
        on_timeout="cancel" if args.semantics == "cancel" else "raise",
    )
    topo, schedule = _faults_schedule(args.kind, args.n)
    impact = analyze_fault_impact(schedule, view, semantics=args.semantics)
    violations = impact.diagnose()
    if args.json:
        print(
            json.dumps(
                {
                    "kind": args.kind,
                    "topology": topo.name,
                    "num_nodes": impact.num_nodes,
                    "semantics": impact.semantics,
                    "crashes": [list(c) for c in crashes],
                    "cuts": [[list(e), c] for e, c in cuts],
                    "blast_radius": list(impact.blast_radius),
                    "dead": list(impact.dead),
                    "blocked": list(impact.blocked),
                    "tainted": list(impact.tainted),
                    "lost_messages": len(impact.lost),
                    "delivered_messages": impact.delivered,
                    "violations": [_violation_dict(v) for v in violations],
                },
                indent=2,
            )
        )
    else:
        print(
            f"{args.kind} on {topo.name} ({impact.num_nodes} ranks), "
            f"{impact.semantics} semantics:"
        )
        print(
            f"  faults: {len(crashes)} crash(es), {len(cuts)} cut(s) -> "
            f"{len(impact.lost)} of "
            f"{len(impact.lost) + impact.delivered} messages lost"
        )
        print(
            f"  blast radius: {len(impact.blast_radius)} rank(s) "
            f"{list(impact.blast_radius)}"
        )
        print(
            f"    dead {list(impact.dead)}, blocked {list(impact.blocked)}, "
            f"tainted {list(impact.tainted)}"
        )
        if violations:
            print("  diagnosis:")
            for v in violations:
                print(f"    {v}")
        else:
            print("  schedule completes under these faults")
    if violations:
        return exit_code_for(violations)
    return 6 if impact.blast_radius else 0


def _cmd_campaign(args) -> int:
    import json

    from repro.simulator.campaign import (
        CampaignError,
        run_campaign,
        validate_report,
    )

    try:
        result = run_campaign(
            args.n,
            seed=args.seed,
            trials=args.trials,
            max_probe=args.max_probe,
            requests_per_node=args.requests_per_node,
            availability=args.availability,
            correctness_timeout=args.correctness_timeout,
        )
    except CampaignError as exc:
        print(f"campaign soundness failure: {exc}", file=sys.stderr)
        return 3
    report = result.to_dict()
    if args.smoke:
        problems = validate_report(report)
        if problems:
            for p in problems:
                print(f"schema drift: {p}", file=sys.stderr)
            return 1
        print(
            f"campaign smoke ok: {result.topology}, "
            f"{len(result.violations)} violation(s), "
            f"{result.evaluations} evaluations, "
            f"cross-checks {'ok' if result.ok else 'FAILED'}"
        )
        return 0
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(result.render_table())
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.analysis.io import collect_artifacts

    out_dir = Path(args.dir)
    arts = collect_artifacts(out_dir)
    if not arts:
        print(f"no artifacts under {out_dir} — run: pytest benchmarks/ --benchmark-only")
        return 1
    print(f"{len(arts)} regenerated artifacts under {out_dir}:")
    for name, title in arts.items():
        print(f"  {name:36s} {title}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Dual-cube prefix computation and sorting (Li, Peng, Chu, ICPP 2008)",
    )
    p.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    sp = sub.add_parser("info", help="network facts for D_n")
    sp.add_argument("-n", type=int, default=3)
    sp.add_argument("--layout", action="store_true", help="print the cluster diagram")
    sp.set_defaults(fn=_cmd_info)

    sp = sub.add_parser("theorems", help="Theorem 1/2 cost tables")
    sp.add_argument("--max-n", type=int, default=8)
    sp.set_defaults(fn=_cmd_theorems)

    sp = sub.add_parser("prefix", help="run D_prefix with measured costs")
    sp.add_argument("-n", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--show", type=int, default=8)
    sp.set_defaults(fn=_cmd_prefix)

    sp = sub.add_parser("sort", help="run D_sort with measured costs")
    sp.add_argument("-n", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--show", type=int, default=8)
    sp.set_defaults(fn=_cmd_sort)

    sp = sub.add_parser("route", help="shortest path between two nodes")
    sp.add_argument("-n", type=int, default=3)
    sp.add_argument("src", type=int)
    sp.add_argument("dst", type=int)
    sp.set_defaults(fn=_cmd_route)

    sp = sub.add_parser("traffic", help="random-traffic comparison vs hypercube")
    sp.add_argument("-n", type=int, default=3)
    sp.add_argument("--pairs", type=int, default=500)
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(fn=_cmd_traffic)

    sp = sub.add_parser(
        "serve",
        help="open-loop queueing simulation vs hypercube (tail latency, saturation)",
    )
    sp.add_argument("-n", type=int, default=3)
    sp.add_argument(
        "--arrival", choices=["poisson", "deterministic", "bursty"],
        default="poisson",
    )
    sp.add_argument(
        "--rate", type=float, default=0.3,
        help="per-node arrival rate (requests per node per service unit)",
    )
    sp.add_argument("--requests", type=int, default=2000)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--service-time", type=float, default=1.0)
    sp.add_argument(
        "--capacity", type=int, default=None,
        help="per-link waiting-buffer capacity (default: unbounded)",
    )
    sp.add_argument("--policy", choices=["drop", "block"], default="drop")
    sp.add_argument(
        "--deadline", type=float, default=None,
        help="per-request sojourn budget; finishing later counts as a miss",
    )
    sp.add_argument(
        "--horizon", type=float, default=None,
        help="stop the clock here; unfinished requests count as in-flight",
    )
    sp.add_argument(
        "--drop-rate", type=float, default=0.0,
        help="FaultPlan drop probability per hop crossing (seeded, forces retransmits)",
    )
    sp.add_argument(
        "--sweep", action="store_true",
        help="bisect offered load to each network's p99 saturation knee (E18)",
    )
    sp.add_argument(
        "--metacube", action="store_true",
        help="add MC(2, n-2) to the comparison (same degree as D_n; needs n >= 3)",
    )
    sp.add_argument("--heatmap", action="store_true", help="render per-link queue activity")
    sp.add_argument("--heatmap-links", type=int, default=64)
    sp.add_argument("--export-jsonl", default=None, metavar="PATH")
    sp.add_argument("--export-prom", default=None, metavar="PATH")
    sp.set_defaults(fn=_cmd_serve)

    sp = sub.add_parser("hamiltonian", help="Hamiltonian cycle / ring embedding")
    sp.add_argument("-n", type=int, default=3)
    sp.add_argument("--show", type=int, default=16)
    sp.set_defaults(fn=_cmd_hamiltonian)

    sp = sub.add_parser("collectives", help="cycle-accurate collective costs")
    sp.add_argument("-n", type=int, default=3)
    sp.set_defaults(fn=_cmd_collectives)

    sp = sub.add_parser(
        "bench", help="timed core benchmarks -> BENCH_core.json (+ regression check)"
    )
    sp.add_argument(
        "--max-n", type=int, default=None,
        help="largest dual-cube n, from 2 (default: 5 core, 11 columnar)",
    )
    sp.add_argument("--repeats", type=int, default=3, help="wallclock best-of repeats")
    sp.add_argument(
        "--backend",
        choices=["core", "columnar", "replay", "serving", "campaign"],
        default="core",
        help="core = vectorized+engine suite; columnar = structured-array "
             "backend sweep to D_11; replay = compiled-plan backend sweep "
             "plus one sharded row; serving = open-loop queueing scenarios; "
             "campaign = randomized SLO fault-campaign sweep "
             "(full runs merge into BENCH_core.json)",
    )
    sp.add_argument(
        "--smoke", action="store_true",
        help="quick wiring check (core/replay: n<=3, serving: n=2, 1 repeat; "
             "columnar: n=9 only)",
    )
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument(
        "--faults", action="store_true",
        help="run only the fault-injection scenario family (degraded node/link, seeded drop+retry)",
    )
    sp.add_argument(
        "--out", default=None, help="output path (default BENCH_core.json; smoke: BENCH_smoke.json)"
    )
    sp.add_argument(
        "--compare", default=None, metavar="PREV_JSON",
        help="regression-check against a previous bench file (exit 1 on regression)",
    )
    sp.add_argument(
        "--wall-factor", type=float, default=1.5,
        help="allowed wallclock slowdown factor for --compare",
    )
    sp.set_defaults(fn=_cmd_bench)

    sp = sub.add_parser(
        "timeline",
        help="record an engine run per cycle: link heatmap, validation, metrics export",
    )
    sp.add_argument("--algo", choices=["prefix", "sort"], default="prefix")
    sp.add_argument("-n", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument(
        "--export-jsonl", default=None, metavar="PATH",
        help="write the run's metrics as JSON lines",
    )
    sp.add_argument(
        "--export-prom", default=None, metavar="PATH",
        help="write the run's metrics in Prometheus text format",
    )
    sp.add_argument(
        "--smoke", action="store_true",
        help="CI wiring check: n=2, both algorithms, validate + exercise both "
             "exporters, no heatmap (exit 1 on any divergence)",
    )
    sp.set_defaults(fn=_cmd_timeline)

    sp = sub.add_parser("lint", help="repo lint (REP001-REP007, stdlib ast)")
    sp.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: src); tests/ and "
             "benchmarks/ get relaxed rule profiles",
    )
    sp.add_argument(
        "--format", choices=["human", "json", "github"], default="human",
        help="output format: human lines (default), a JSON array, or "
             "GitHub Actions ::error annotations",
    )
    sp.set_defaults(fn=_cmd_lint)

    sp = sub.add_parser(
        "check-schedule",
        help="statically verify Theorem 1/2 schedules (edges, deadlock, bounds)",
    )
    sp.add_argument("--min-n", type=int, default=2)
    sp.add_argument("--max-n", type=int, default=5)
    sp.add_argument(
        "--algo", choices=["prefix", "sort", "both"], default="both"
    )
    sp.add_argument(
        "--paper-literal", action="store_true",
        help="verify the paper-literal D_prefix variant (2n+1 steps)",
    )
    sp.add_argument(
        "--payload-policy", choices=["packed", "single"], default="packed",
        help="relay payload policy for the D_sort schedule",
    )
    sp.add_argument(
        "--json", action="store_true",
        help="emit reports + violations as JSON; exit code is the lowest "
             "violation class (2 legality, 3 pairing, 4 congestion, 5 bounds)",
    )
    sp.set_defaults(fn=_cmd_check_schedule)

    sp = sub.add_parser(
        "check-faults",
        help="static fault-impact analysis: blast radius, deadlock "
             "diagnosis, shard-race check (--plan), minimal cuts "
             "(--minimal-cut)",
    )
    sp.add_argument("--kind", choices=["prefix", "sort"], default="prefix")
    sp.add_argument("-n", type=int, default=3)
    sp.add_argument(
        "--crash", action="append", default=[], metavar="R[@C]",
        help="crash rank R at cycle C (default 1); repeatable",
    )
    sp.add_argument(
        "--cut", action="append", default=[], metavar="U:V[@C]",
        help="cut link U-V at cycle C (default 1); repeatable",
    )
    sp.add_argument(
        "--semantics", choices=["block", "cancel"], default="block",
        help="block: no timeout, failed ranks block (deadlock diagnosis); "
             "cancel: timeout+cancel, failed ranks continue tainted",
    )
    sp.add_argument(
        "--timeout", type=int, default=None,
        help="request timeout recorded in the analyzed fault view",
    )
    sp.add_argument(
        "--plan", action="store_true",
        help="instead: race-check the sharded replay plans and columnar "
             "rounds (exit 2 on any overlapping write sets)",
    )
    sp.add_argument(
        "--minimal-cut", action="store_true",
        help="instead: compute the E19 minimal-cut table "
             "(D_2..D_max_n vs Q_5)",
    )
    sp.add_argument(
        "--max-n", type=int, default=4,
        help="largest dual-cube n for --plan / --minimal-cut "
             "(--minimal-cut 5 takes ~30s: exact flow cuts on 2048 nodes)",
    )
    sp.add_argument(
        "--quorum", type=float, default=0.75,
        help="quorum fraction for the --minimal-cut quorum predicate",
    )
    sp.add_argument(
        "--budget", type=int, default=20_000,
        help="predicate-evaluation budget for the --minimal-cut search",
    )
    sp.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON; exit codes: 0 clean, 2 race, "
             "3 pairing violation, 6 nonempty blast radius",
    )
    sp.set_defaults(fn=_cmd_check_faults)

    sp = sub.add_parser(
        "campaign",
        help="randomized SLO fault campaign (churn, outages, rolling "
             "restarts) with static triage and minimal-cut cross-check",
    )
    sp.add_argument("-n", type=int, default=2)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument(
        "--trials", type=int, default=8,
        help="random probes per SLO (plus deterministic seed probes)",
    )
    sp.add_argument(
        "--max-probe", type=int, default=3,
        help="largest random fault set drawn per probe",
    )
    sp.add_argument("--requests-per-node", type=int, default=20)
    sp.add_argument(
        "--availability", type=float, default=0.8,
        help="availability SLO: min fraction of arrivals not dropped",
    )
    sp.add_argument(
        "--correctness-timeout", type=int, default=5,
        help="retry-mode request timeout the correctness SLO runs under",
    )
    sp.add_argument("--json", action="store_true")
    sp.add_argument("--out", default=None, help="write the JSON report here")
    sp.add_argument(
        "--smoke", action="store_true",
        help="run a small campaign and exit nonzero on report-schema "
             "drift or a failed cross-check (CI gate)",
    )
    sp.set_defaults(fn=_cmd_campaign)

    sp = sub.add_parser("report", help="list regenerated experiment artifacts")
    sp.add_argument("--dir", default="benchmarks/out")
    sp.set_defaults(fn=_cmd_report)

    return p


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
