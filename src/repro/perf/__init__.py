"""Persistent performance harness (``repro bench``).

Times the library's headline algorithms — `D_prefix`, `D_sort`, the
blocked large-input variants, and the random-traffic experiment — across
their backends (vectorized, engine, columnar, compiled replay), the
open-loop serving scenarios, and a range of network sizes, and writes a
machine-readable
``BENCH_core.json`` so every change leaves a measured perf trajectory
behind (wallclock, comm/comp steps, messages, peak payload).
``compare_bench`` turns two such files into a regression check: cost
counters must match exactly, wallclock within a factor;
``compare_bench_detailed`` returns the same findings as structured
:class:`~repro.perf.bench.BenchRegression` records naming exactly which
counter moved.
"""

from repro.perf.bench import (
    BenchRecord,
    BenchRegression,
    compare_bench,
    compare_bench_detailed,
    load_bench,
    merge_bench,
    run_bench,
    run_bench_columnar,
    run_bench_replay,
    run_bench_serving,
    write_bench,
)

__all__ = [
    "BenchRecord",
    "BenchRegression",
    "compare_bench",
    "compare_bench_detailed",
    "load_bench",
    "merge_bench",
    "run_bench",
    "run_bench_columnar",
    "run_bench_replay",
    "run_bench_serving",
    "write_bench",
]
