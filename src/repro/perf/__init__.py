"""Persistent performance harness (``repro bench``).

Times the library's headline algorithms — `D_prefix` (both backends),
`D_sort` (both backends), the blocked large-input variants, and the
random-traffic experiment — across a range of network sizes and writes a
machine-readable ``BENCH_core.json`` so every change leaves a measured
perf trajectory behind (wallclock, comm/comp steps, messages, peak
payload).  ``compare_bench`` turns two such files into a regression
check: cost counters must match exactly, wallclock within a factor.
"""

from repro.perf.bench import (
    BenchRecord,
    compare_bench,
    load_bench,
    merge_bench,
    run_bench,
    run_bench_columnar,
    write_bench,
)

__all__ = [
    "BenchRecord",
    "compare_bench",
    "load_bench",
    "merge_bench",
    "run_bench",
    "run_bench_columnar",
    "write_bench",
]
