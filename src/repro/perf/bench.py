"""Timed benchmark suite behind the ``repro bench`` CLI subcommand.

Every benchmark runs the real algorithm with a fresh
:class:`~repro.simulator.counters.CostCounters` ledger and reports both
the measured step/message costs (deterministic — they double as a
correctness fingerprint) and the best-of-``repeats`` wallclock.  Records
go into a flat JSON document written at the repo root by default
(``BENCH_core.json``; ``BENCH_smoke.json`` for ``--smoke`` runs) so perf
history can be diffed and regression-checked with ``--compare``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.obs.profile import PhaseProfiler

from repro.core.dual_prefix import dual_prefix_engine, dual_prefix_vec
from repro.core.dual_sort import dual_sort_engine, dual_sort_vec
from repro.core.large_inputs import large_prefix, large_sort
from repro.core.ops import ADD
from repro.core.run_faulty import run_faulty
from repro.routing.dualcube_routing import route
from repro.simulator import CostCounters, FaultPlan
from repro.simulator.serving import (
    ServingConfig,
    onoff_arrivals,
    open_loop_pairs,
    poisson_arrivals,
    run_serving,
)
from repro.simulator.traffic import random_pairs, run_traffic
from repro.topology.dualcube import DualCube
from repro.topology.faults import FaultSet
from repro.topology.recursive import RecursiveDualCube

__all__ = [
    "BenchRecord",
    "BenchRegression",
    "run_bench",
    "run_bench_columnar",
    "run_bench_replay",
    "run_bench_serving",
    "run_bench_campaign",
    "merge_bench",
    "write_bench",
    "load_bench",
    "compare_bench",
    "compare_bench_detailed",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 3

# Schemas this loader still understands.  Version 2 added the per-record
# ``phases`` dict (wallclock split per algorithm phase); version 3 added
# ``peak_mem_mb`` (tracemalloc peak, columnar records only).  Older files
# simply lack the fields, and ``compare_bench`` only reads the exact-cost
# fields, so old baselines keep regression-checking new runs.
_SUPPORTED_SCHEMAS = (1, 2, 3)

# Backends whose records carry the tracemalloc peak-memory column: the
# ones making a memory claim (columnar's O(nodes) state, replay's
# compiled-plan buffers).
_PEAK_MEM_BACKENDS = frozenset({"columnar", "replay"})

# Cost fields that must reproduce exactly between runs (they are
# deterministic functions of the algorithm, not the machine).  The fault
# counters are deterministic too — seeded drop schedules are pure hashes —
# so their drift is a regression exactly like cost drift.
_EXACT_FIELDS = (
    "comm_steps",
    "comp_steps",
    "messages",
    "payload_items",
    "max_message_payload",
    "messages_dropped",
    "retries",
    "timeouts",
)


@dataclass(frozen=True)
class BenchRecord:
    """One (benchmark, backend, n) measurement."""

    bench: str
    backend: str
    n: int
    num_nodes: int
    wall_s: float
    comm_steps: int
    comp_steps: int
    messages: int
    payload_items: int
    max_message_payload: int
    messages_dropped: int = 0
    retries: int = 0
    timeouts: int = 0
    # Wallclock seconds per algorithm phase (schema v2; empty when the
    # benchmark has no phase instrumentation).  Not regression-checked:
    # timings are machine-dependent, unlike the exact cost fields.
    phases: dict = field(default_factory=dict)
    # Peak Python-heap allocation during one run, in MiB (schema v3;
    # tracemalloc, recorded for columnar records only — it is the O(nodes)
    # memory claim made observable).  Not regression-checked.
    peak_mem_mb: float = 0.0

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.bench, self.backend, self.n)


def _time_best(fn: Callable[[], CostCounters], repeats: int) -> tuple[float, CostCounters]:
    """Best-of-``repeats`` wallclock; counters from the final run."""
    best = float("inf")
    counters: CostCounters | None = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        counters = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    if counters is None:
        raise ValueError("benchmark produced no run; repeats must be >= 1")
    return best, counters


def _from_counters(
    bench: str,
    backend: str,
    n: int,
    num_nodes: int,
    wall: float,
    c: CostCounters,
    phases: dict | None = None,
    peak_mem_mb: float = 0.0,
) -> BenchRecord:
    s = c.summary()
    return BenchRecord(
        bench=bench,
        backend=backend,
        n=n,
        num_nodes=num_nodes,
        wall_s=wall,
        comm_steps=s["comm_steps"],
        comp_steps=s["comp_steps"],
        messages=s["messages"],
        payload_items=s["payload_items"],
        max_message_payload=s["max_message_payload"],
        messages_dropped=s["messages_dropped"],
        retries=s["retries"],
        timeouts=s["timeouts"],
        phases=dict(phases or {}),
        peak_mem_mb=peak_mem_mb,
    )


def _peak_mem_mb(fn: Callable[[], object]) -> float:
    """Peak Python-heap MiB over one call of ``fn`` (tracemalloc).

    Run separately from the timed repeats — tracing slows allocation, so
    folding it into the wallclock loop would taint the timings.
    """
    import tracemalloc

    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)


def _bench_dual_prefix(
    n: int, backend: str, rng, repeats: int, shards: int | None = None
) -> BenchRecord:
    dc = DualCube(n)
    vals = rng.integers(0, 1000, dc.num_nodes)

    def run_vectorized() -> CostCounters:
        counters = CostCounters(dc.num_nodes)
        dual_prefix_vec(dc, vals, ADD, counters=counters)
        return counters

    def run_columnar() -> CostCounters:
        from repro.core.columnar import dual_prefix_columnar

        counters = CostCounters(dc.num_nodes)
        dual_prefix_columnar(dc, vals, ADD, counters=counters)
        return counters

    def run_replay() -> CostCounters:
        from repro.core.replay import dual_prefix_replay

        counters = CostCounters(dc.num_nodes)
        dual_prefix_replay(dc, vals, ADD, counters=counters, shards=shards)
        return counters

    def run_engine() -> CostCounters:
        _, result = dual_prefix_engine(dc, vals, ADD)
        return result.counters

    run = {
        "vectorized": run_vectorized,
        "columnar": run_columnar,
        "replay": run_replay,
        "engine": run_engine,
    }[backend]
    wall, counters = _time_best(run, repeats)
    peak = _peak_mem_mb(run) if backend in _PEAK_MEM_BACKENDS else 0.0
    # A sharded replay run gets its own backend label so the record keys
    # (and regression baselines) stay distinct from the in-process row.
    label = f"{backend}-sharded" if shards else backend
    return _from_counters(
        "dual_prefix", label, n, dc.num_nodes, wall, counters,
        peak_mem_mb=peak,
    )


def _bench_dual_sort(n: int, backend: str, rng, repeats: int) -> BenchRecord:
    rdc = RecursiveDualCube(n)
    keys = rng.permutation(rdc.num_nodes)

    phase_box: dict = {}

    def run_vectorized() -> CostCounters:
        counters = CostCounters(rdc.num_nodes)
        prof = PhaseProfiler()
        dual_sort_vec(rdc, keys, counters=counters, profiler=prof)
        phase_box.update(prof.totals())
        return counters

    def run_columnar() -> CostCounters:
        from repro.core.columnar import dual_sort_columnar

        counters = CostCounters(rdc.num_nodes)
        dual_sort_columnar(rdc, keys, counters=counters)
        return counters

    def run_replay() -> CostCounters:
        from repro.core.replay import dual_sort_replay

        counters = CostCounters(rdc.num_nodes)
        dual_sort_replay(rdc, keys, counters=counters)
        return counters

    def run_engine() -> CostCounters:
        _, result = dual_sort_engine(rdc, keys)
        return result.counters

    run = {
        "vectorized": run_vectorized,
        "columnar": run_columnar,
        "replay": run_replay,
        "engine": run_engine,
    }[backend]
    wall, counters = _time_best(run, repeats)
    peak = _peak_mem_mb(run) if backend in _PEAK_MEM_BACKENDS else 0.0
    return _from_counters(
        "dual_sort", backend, n, rdc.num_nodes, wall, counters, phase_box,
        peak_mem_mb=peak,
    )


def _bench_large_prefix(
    n: int, block: int, rng, repeats: int, backend: str = "vectorized"
) -> BenchRecord:
    dc = DualCube(n)
    vals = rng.integers(0, 1000, dc.num_nodes * block)

    phase_box: dict = {}

    def run() -> CostCounters:
        counters = CostCounters(dc.num_nodes)
        prof = PhaseProfiler()
        large_prefix(
            dc, vals, ADD, backend=backend, counters=counters, profiler=prof
        )
        phase_box.update(prof.totals())
        return counters

    wall, counters = _time_best(run, repeats)
    peak = _peak_mem_mb(run) if backend in _PEAK_MEM_BACKENDS else 0.0
    return _from_counters(
        f"large_prefix_b{block}", backend, n, dc.num_nodes, wall, counters,
        phase_box, peak_mem_mb=peak,
    )


def _bench_large_sort(
    n: int, block: int, rng, repeats: int, backend: str = "vectorized"
) -> BenchRecord:
    rdc = RecursiveDualCube(n)
    keys = rng.permutation(rdc.num_nodes * block)

    phase_box: dict = {}

    def run() -> CostCounters:
        counters = CostCounters(rdc.num_nodes)
        prof = PhaseProfiler()
        large_sort(
            rdc, keys, backend=backend, counters=counters, profiler=prof
        )
        phase_box.update(prof.totals())
        return counters

    wall, counters = _time_best(run, repeats)
    peak = _peak_mem_mb(run) if backend in _PEAK_MEM_BACKENDS else 0.0
    return _from_counters(
        f"large_sort_b{block}", backend, n, rdc.num_nodes, wall, counters,
        phase_box, peak_mem_mb=peak,
    )


# The fault scenario family (``repro bench --faults``): dual_prefix and
# dual_sort under one node fault, one link fault (degraded mode over the
# healthy subgraph), and a seeded 5%-drop plan with retry.  All three are
# deterministic, so their counters regression-check like any other record.
_FAULT_DROP_PLAN = dict(drop_rate=0.05, seed=7, max_retries=200)


def _fault_scenarios(topo):
    v = topo.neighbors(2)[0]
    return (
        ("degraded-node", FaultSet(nodes=[1]), None, "degraded"),
        ("degraded-link", FaultSet(links=[(2, v)]), None, "degraded"),
        ("retry-drop", None, FaultPlan(**_FAULT_DROP_PLAN), "retry"),
    )


def _bench_faulty(kind: str, n: int, rng, repeats: int) -> list[BenchRecord]:
    if kind == "prefix":
        topo = DualCube(n)
        data = rng.integers(0, 1000, topo.num_nodes).tolist()
    else:
        topo = RecursiveDualCube(n)
        data = rng.permutation(topo.num_nodes).tolist()
    records = []
    for backend, faults, plan, mode in _fault_scenarios(topo):

        def run(faults=faults, plan=plan, mode=mode) -> CostCounters:
            res = run_faulty(
                kind, topo, data, faults=faults, plan=plan, mode=mode
            )
            return res.result.counters

        wall, counters = _time_best(run, repeats)
        records.append(
            _from_counters(
                f"fault_{kind}", backend, n, topo.num_nodes, wall, counters
            )
        )
    return records


def _bench_traffic(n: int, pairs_per_node: int, rng, repeats: int) -> BenchRecord:
    dc = DualCube(n)
    pairs = random_pairs(dc.num_nodes, pairs_per_node * dc.num_nodes, rng)

    stats_box = {}

    def run() -> CostCounters:
        stats_box["stats"] = run_traffic(dc, lambda u, v: route(dc, u, v), pairs)
        # Traffic has no lockstep ledger; express its volume in the same
        # schema: one message per hop, single-key payloads.
        counters = CostCounters(dc.num_nodes)
        counters.messages = stats_box["stats"].total_hops
        counters.payload_items = stats_box["stats"].total_hops
        counters.max_message_payload = 1 if pairs else 0
        return counters

    wall, counters = _time_best(run, repeats)
    return _from_counters("run_traffic", "router", n, dc.num_nodes, wall, counters)


def _bench_fault_traffic(n: int, pairs_per_node: int, rng, repeats: int) -> BenchRecord:
    """Random traffic under the seeded drop plan (the E11 fault row).

    The counter mapping keeps both hop ledgers visible: ``messages`` is
    physical link crossings (``total_hops``, attempts included),
    ``payload_items`` is logical hops (``path_hops``), and ``retries`` is
    the retransmission count — so ``messages - payload_items == retries``
    reproduces exactly run over run.
    """
    dc = DualCube(n)
    pairs = random_pairs(dc.num_nodes, pairs_per_node * dc.num_nodes, rng)
    plan = FaultPlan(**_FAULT_DROP_PLAN)

    def run() -> CostCounters:
        stats = run_traffic(
            dc, lambda u, v: route(dc, u, v), pairs, fault_plan=plan
        )
        counters = CostCounters(dc.num_nodes)
        counters.messages = stats.total_hops
        counters.payload_items = stats.path_hops
        counters.max_message_payload = 1 if pairs else 0
        counters.retries = stats.retransmissions
        counters.messages_dropped = stats.retransmissions
        return counters

    wall, counters = _time_best(run, repeats)
    return _from_counters("fault_traffic", "router", n, dc.num_nodes, wall, counters)


# The serving scenario family (``repro bench --backend serving``).  Every
# scenario is a fixed seeded workload, so its ServingStats — and therefore
# the counter mapping below — reproduce exactly and regression-check like
# any other record:
#
#   messages         = hops_served       (physical crossings, retransmits in)
#   payload_items    = path_hops         (logical crossings)
#   retries          = retransmissions + blocked backpressure re-offers
#   messages_dropped = fault-plan losses + queue/retry-limit request drops
#   timeouts         = deadline misses
_SERVE_RATE = 0.3  # per-node Poisson rate: ~27% of the D_3 saturation knee
_SERVE_DROP_PLAN = dict(drop_rate=0.05, seed=7, max_retries=200)


def _serving_counters(num_nodes: int, stats) -> CostCounters:
    counters = CostCounters(num_nodes)
    counters.messages = stats.hops_served
    counters.payload_items = stats.path_hops
    counters.max_message_payload = 1 if stats.arrivals else 0
    counters.retries = stats.retransmissions + stats.blocked_retries
    counters.messages_dropped = stats.retransmissions + stats.drops
    counters.timeouts = stats.deadline_misses
    return counters


def _bench_serving(
    bench: str,
    n: int,
    requests: int,
    seed: int,
    repeats: int,
    *,
    arrival: str = "poisson",
    rate_scale: float = 1.0,
    config: ServingConfig | None = None,
    plan: FaultPlan | None = None,
) -> BenchRecord:
    dc = DualCube(n)
    rate = _SERVE_RATE * rate_scale * dc.num_nodes
    if arrival == "poisson":
        arrivals = poisson_arrivals(rate, requests, seed)
    else:
        arrivals = onoff_arrivals(rate, requests, seed)
    pairs = open_loop_pairs(dc, requests, seed)

    def run() -> CostCounters:
        stats = run_serving(
            dc,
            lambda u, v: route(dc, u, v),
            arrivals,
            pairs,
            config=config,
            fault_plan=plan,
        )
        return _serving_counters(dc.num_nodes, stats)

    wall, counters = _time_best(run, repeats)
    return _from_counters(bench, "serving", n, dc.num_nodes, wall, counters)


def run_bench_serving(
    *,
    max_n: int = 4,
    repeats: int = 3,
    smoke: bool = False,
    seed: int = 0,
    requests_per_node: int = 20,
) -> dict:
    """Run the serving suite and return the JSON-ready payload.

    Sweeps an open-loop Poisson workload at a fixed sub-saturation
    per-node rate over D_2..D_``max_n``, plus three fixed-size scenario
    rows: bursty on/off arrivals, a finite-capacity run with deadlines
    (drops and misses exercised), and the seeded 5%-drop fault plan
    disturbing the live queues (retransmissions exercised).  ``smoke``
    caps the sweep at n = 2 with one repeat — the CI wiring check behind
    ``make bench-serving-smoke``.
    """
    if max_n < 2:
        raise ValueError(f"max_n must be >= 2, got {max_n}")
    if smoke:
        max_n = 2
        repeats = 1

    records: list[BenchRecord] = []
    for n in range(2, max_n + 1):
        requests = requests_per_node * DualCube(n).num_nodes
        records.append(
            _bench_serving("serve_poisson", n, requests, seed + n, repeats)
        )

    # Scenario rows at one fixed size.  Bursty carries a deadline (the
    # bursts make the tail miss it), and the capacity row runs overloaded
    # with a one-slot buffer, so each row's counter fingerprint actually
    # exercises its machinery — misses, drops — rather than reproducing
    # the poisson row's hop totals.
    sn = min(3, max_n)
    requests = requests_per_node * DualCube(sn).num_nodes
    records.append(
        _bench_serving(
            "serve_bursty", sn, requests, seed + sn, repeats,
            arrival="bursty",
            config=ServingConfig(deadline=15.0),
        )
    )
    records.append(
        _bench_serving(
            "serve_capacity", sn, requests, seed + sn, repeats,
            rate_scale=6.0,
            config=ServingConfig(queue_capacity=1, deadline=12.0),
        )
    )
    records.append(
        _bench_serving(
            "serve_fault", sn, requests, seed + sn, repeats,
            plan=FaultPlan(**_SERVE_DROP_PLAN),
        )
    )

    return {
        "schema": SCHEMA_VERSION,
        "suite": "serving",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": smoke,
        "repeats": repeats,
        "seed": seed,
        "records": [asdict(r) for r in records],
    }


def _campaign_counters(num_nodes: int, result) -> CostCounters:
    # The campaign's fingerprint lives in the exact-cost fields: probe
    # evaluations, violation count and minimal-set sizes, and triage class
    # totals are all pure functions of (topology, seed), so baseline drift
    # means the search or the simulators underneath it changed behaviour.
    counters = CostCounters(num_nodes)
    counters.messages = result.evaluations
    counters.payload_items = sum(v.size for v in result.violations)
    counters.max_message_payload = max(
        (v.size for v in result.violations), default=0
    )
    counters.timeouts = len(result.violations)
    counters.retries = sum(len(v.triage.classes) for v in result.violations)
    counters.messages_dropped = len(result.cross_checks)
    return counters


def _bench_campaign(
    n: int, seed: int, repeats: int, *, trials: int = 4
) -> BenchRecord:
    from repro.simulator.campaign import run_campaign

    dc = DualCube(n)

    def run() -> CostCounters:
        result = run_campaign(dc, seed=seed, trials=trials)
        return _campaign_counters(dc.num_nodes, result)

    wall, counters = _time_best(run, repeats)
    return _from_counters(
        "fault_campaign", "campaign", n, dc.num_nodes, wall, counters
    )


def run_bench_campaign(
    *,
    max_n: int = 3,
    repeats: int = 2,
    smoke: bool = False,
    seed: int = 0,
    trials: int = 4,
) -> dict:
    """Run the fault-campaign suite and return the JSON-ready payload.

    Sweeps the randomized SLO fault campaign over D_2..D_``max_n``.  Each
    record's cost columns encode the campaign fingerprint — evaluations as
    ``messages``, violation count as ``timeouts``, summed and peak minimal
    fault-set sizes as ``payload_items`` / ``max_message_payload``, triage
    class totals as ``retries`` — so the regression gate catches any change
    to probe generation, SLO evaluation, greedy shrinking, or the engines
    the campaign drives.  ``smoke`` caps the sweep at n = 2 with one repeat
    — the CI wiring check behind ``make bench-campaign-smoke``.
    """
    if max_n < 2:
        raise ValueError(f"max_n must be >= 2, got {max_n}")
    if smoke:
        max_n = 2
        repeats = 1

    records = [
        _bench_campaign(n, seed + n, repeats, trials=trials)
        for n in range(2, max_n + 1)
    ]

    return {
        "schema": SCHEMA_VERSION,
        "suite": "campaign",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": smoke,
        "repeats": repeats,
        "seed": seed,
        "records": [asdict(r) for r in records],
    }


def run_bench(
    *,
    max_n: int = 5,
    repeats: int = 3,
    smoke: bool = False,
    seed: int = 0,
    block: int = 8,
    pairs_per_node: int = 4,
    faults_only: bool = False,
) -> dict:
    """Run the core suite and return the JSON-ready payload.

    ``smoke`` caps the sweep at n=3 with a single repeat — a wiring check
    cheap enough for CI, not a measurement.  ``faults_only`` runs just the
    fault scenario family (``repro bench --faults``).
    """
    if max_n < 2:
        raise ValueError(f"max_n must be >= 2, got {max_n}")
    if smoke:
        max_n = min(max_n, 3)
        repeats = 1

    records: list[BenchRecord] = []
    if not faults_only:
        for n in range(2, max_n + 1):
            rng = np.random.default_rng(seed + n)
            records.append(_bench_dual_prefix(n, "vectorized", rng, repeats))
            records.append(_bench_dual_prefix(n, "engine", rng, repeats))
            records.append(_bench_dual_sort(n, "vectorized", rng, repeats))
            records.append(_bench_dual_sort(n, "engine", rng, repeats))
            records.append(_bench_large_prefix(n, block, rng, repeats))
            records.append(_bench_large_sort(n, block, rng, repeats))
            records.append(_bench_traffic(n, pairs_per_node, rng, repeats))

    # Fault scenarios run at one fixed size (the paper's n=3, or n=2 when
    # the sweep is capped lower) so the record set is stable across max_n.
    fn = min(3, max_n)
    rng = np.random.default_rng(seed + fn)
    records.extend(_bench_faulty("prefix", fn, rng, repeats))
    records.extend(_bench_faulty("sort", fn, rng, repeats))
    records.append(_bench_fault_traffic(fn, pairs_per_node, rng, repeats))

    return {
        "schema": SCHEMA_VERSION,
        "suite": "faults" if faults_only else "core",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": smoke,
        "repeats": repeats,
        "seed": seed,
        "records": [asdict(r) for r in records],
    }


def run_bench_columnar(
    *,
    max_n: int = 11,
    repeats: int = 1,
    smoke: bool = False,
    seed: int = 0,
    block: int = 8,
) -> dict:
    """Run the columnar-backend suite and return the JSON-ready payload.

    The sweep covers dual_prefix and dual_sort for n = 2..``max_n``
    (default 11 — D_11 is 2^21 nodes, seconds per run on the columnar
    backend) plus the blocked large-input variants up to n = 9, where the
    N = 8 * 2^17 input keeps the large benches in the same seconds range.
    ``smoke`` runs only n = min(9, max_n), single repeat — the CI wiring
    check behind ``make bench-columnar-smoke``.  Every record carries the
    tracemalloc ``peak_mem_mb`` so the O(nodes) memory claim is visible in
    the table.
    """
    if max_n < 2:
        raise ValueError(f"max_n must be >= 2, got {max_n}")
    if smoke:
        sizes: tuple[int, ...] = (min(9, max_n),)
        repeats = 1
    else:
        sizes = tuple(range(2, max_n + 1))

    records: list[BenchRecord] = []
    for n in sizes:
        rng = np.random.default_rng(seed + n)
        records.append(_bench_dual_prefix(n, "columnar", rng, repeats))
        records.append(_bench_dual_sort(n, "columnar", rng, repeats))
        if not smoke and n <= 9:
            records.append(
                _bench_large_prefix(n, block, rng, repeats, "columnar")
            )
            records.append(
                _bench_large_sort(n, block, rng, repeats, "columnar")
            )

    return {
        "schema": SCHEMA_VERSION,
        "suite": "columnar",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": smoke,
        "repeats": repeats,
        "seed": seed,
        "records": [asdict(r) for r in records],
    }


def run_bench_replay(
    *,
    max_n: int = 5,
    repeats: int = 3,
    smoke: bool = False,
    seed: int = 0,
    block: int = 8,
    shards: int = 4,
) -> dict:
    """Run the replay-backend suite and return the JSON-ready payload.

    Sweeps the four algorithm benches on the compiled-plan replay backend
    for n = 2..``max_n``.  Because ``_time_best`` reuses one closure across
    repeats, the first repeat pays plan compilation and the rest hit the
    plan cache — exactly the repeat-run scenario replay optimizes, and the
    regime where it should beat the vectorized rows at n >= 4.  One extra
    sharded dual_prefix row (backend ``replay-sharded``, ``shards``
    workers) runs at n = 9 on a full sweep so the multiprocessing path is
    exercised at D_9 scale; ``smoke`` caps the sweep at n = 3, single
    repeat, and runs the sharded row at the cap instead (the CI wiring
    check behind ``make bench-replay-smoke``).
    """
    if max_n < 2:
        raise ValueError(f"max_n must be >= 2, got {max_n}")
    if smoke:
        max_n = min(max_n, 3)
        repeats = 1

    records: list[BenchRecord] = []
    for n in range(2, max_n + 1):
        rng = np.random.default_rng(seed + n)
        records.append(_bench_dual_prefix(n, "replay", rng, repeats))
        records.append(_bench_dual_sort(n, "replay", rng, repeats))
        records.append(_bench_large_prefix(n, block, rng, repeats, "replay"))
        records.append(_bench_large_sort(n, block, rng, repeats, "replay"))

    sharded_n = max_n if smoke else 9
    rng = np.random.default_rng(seed + sharded_n)
    records.append(
        _bench_dual_prefix(sharded_n, "replay", rng, repeats, shards=shards)
    )

    return {
        "schema": SCHEMA_VERSION,
        "suite": "replay",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": smoke,
        "repeats": repeats,
        "seed": seed,
        "records": [asdict(r) for r in records],
    }


def merge_bench(base: dict, new: dict) -> dict:
    """Merge two bench payloads into one document.

    Metadata (schema, timestamps, suite) comes from ``new``; records merge
    by (bench, backend, n) key with ``new`` winning collisions, output
    sorted by key so the merged file is deterministic.  This is how
    columnar sweeps land next to the core suite's rows in one
    ``BENCH_core.json`` instead of clobbering them.
    """
    by_key = {
        (r["bench"], r["backend"], r["n"]): r
        for payload in (base, new)
        for r in payload["records"]
    }
    merged = dict(new)
    merged["records"] = [by_key[k] for k in sorted(by_key)]
    return merged


def write_bench(payload: dict, path: str | Path) -> Path:
    """Write a bench payload as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict:
    """Load a bench payload, checking the schema version."""
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema not in _SUPPORTED_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(expected one of {_SUPPORTED_SCHEMAS})"
        )
    return payload


@dataclass(frozen=True)
class BenchRegression:
    """One regression vs a baseline, naming exactly what moved.

    ``field`` is the offending counter name (one of the exact-cost
    fields), ``"wall_s"`` for a wallclock regression, or ``"record"``
    when the whole record disappeared; ``baseline``/``current`` carry the
    two values so callers can report the delta without re-parsing the
    message.  ``str()`` renders the human-readable line ``repro bench
    --compare`` prints.
    """

    bench: str
    backend: str
    n: int
    field: str
    baseline: object
    current: object
    message: str

    def __str__(self) -> str:
        return self.message


def compare_bench_detailed(
    current: dict, previous: dict, *, wall_factor: float = 1.5
) -> list[BenchRegression]:
    """Regression-check ``current`` against ``previous``, structured.

    Returns one :class:`BenchRegression` per problem (empty = clean):

    * any cost-counter field differing on a shared (bench, backend, n)
      key — these are deterministic, so a difference is a semantic change;
    * wallclock more than ``wall_factor`` times the previous value;
    * records present previously but missing now (dropped coverage).

    Records that are new in ``current`` are fine (coverage grew).
    """
    if wall_factor <= 0:
        raise ValueError(f"wall_factor must be positive, got {wall_factor}")
    cur = {(r["bench"], r["backend"], r["n"]): r for r in current["records"]}
    prev = {(r["bench"], r["backend"], r["n"]): r for r in previous["records"]}

    problems: list[BenchRegression] = []
    for key in sorted(prev):
        bench, backend, n = key
        label = f"{bench}/{backend} n={n}"
        if key not in cur:
            problems.append(
                BenchRegression(
                    bench, backend, n, "record", prev[key], None,
                    f"{label}: record disappeared from current run",
                )
            )
            continue
        c, p = cur[key], prev[key]
        for name in _EXACT_FIELDS:
            # .get: bench files written before the fault counters existed
            # lack the new fields; treat absent as 0 rather than KeyError.
            cv, pv = c.get(name, 0), p.get(name, 0)
            if cv != pv:
                problems.append(
                    BenchRegression(
                        bench, backend, n, name, pv, cv,
                        f"{label}: {name} changed {pv} -> {cv} "
                        f"(cost counters must reproduce exactly)",
                    )
                )
        if p["wall_s"] > 0 and c["wall_s"] > p["wall_s"] * wall_factor:
            problems.append(
                BenchRegression(
                    bench, backend, n, "wall_s", p["wall_s"], c["wall_s"],
                    f"{label}: wallclock regressed "
                    f"{p['wall_s']:.6f}s -> {c['wall_s']:.6f}s "
                    f"(> {wall_factor:.2f}x)",
                )
            )
    return problems


def compare_bench(
    current: dict, previous: dict, *, wall_factor: float = 1.5
) -> list[str]:
    """Regression-check ``current`` against ``previous``.

    The human-readable view of :func:`compare_bench_detailed` — one
    rendered line per regression, empty list when clean.
    """
    return [
        str(r)
        for r in compare_bench_detailed(
            current, previous, wall_factor=wall_factor
        )
    ]
