"""ASCII renderers for topologies, routes, and key states."""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Topology
from repro.topology.dualcube import DualCube

__all__ = [
    "render_adjacency_matrix",
    "render_clusters",
    "render_route",
    "render_key_grid",
    "render_timeline_heatmap",
]


def render_adjacency_matrix(topo: Topology, *, max_nodes: int = 64) -> str:
    """Dense 0/1 adjacency matrix as a character grid (small networks)."""
    n = topo.num_nodes
    if n > max_nodes:
        raise ValueError(
            f"{topo.name} has {n} nodes; adjacency art capped at {max_nodes}"
        )
    width = len(str(n - 1))
    header = " " * (width + 1) + " ".join(
        str(v).rjust(1) for v in range(n)
    )
    lines = [f"{topo.name} adjacency:", header]
    for u in range(n):
        nbrs = set(topo.neighbors(u))
        row = " ".join("#" if v in nbrs else "." for v in range(n))
        lines.append(f"{str(u).rjust(width)} {row}")
    return "\n".join(lines)


def render_clusters(dc: DualCube, values: Sequence | None = None) -> str:
    """Cluster diagram of a dual-cube (the paper's Figs. 1-2 layout).

    Each cluster prints its members as ``address(binary)`` or, when
    ``values`` is given, as ``address:value``.
    """
    n = dc.n
    lines = [f"{dc.name}: class/cluster layout"]
    for cls in (0, 1):
        lines.append(f"class {cls}:")
        for k in range(dc.clusters_per_class):
            cells = []
            for u in dc.cluster_members(cls, k):
                if values is None:
                    cells.append(format(u, f"0{2 * n - 1}b"))
                else:
                    cells.append(f"{u}:{values[u]}")
            lines.append(f"  cluster {k}: [" + " ".join(cells) + "]")
    return "\n".join(lines)


def render_route(dc: DualCube, path: Sequence[int]) -> str:
    """One route as annotated hops: address, fields, and hop kind."""
    lines = [f"route on {dc.name}: {path[0]} -> {path[-1]} ({len(path) - 1} hops)"]
    for i, u in enumerate(path):
        tag = ""
        if i > 0:
            prev = path[i - 1]
            tag = (
                "cross-edge"
                if dc.class_of(prev) != dc.class_of(u)
                else f"intra dim {(prev ^ u).bit_length() - 1}"
            )
        lines.append(
            f"  {format(u, f'0{2 * dc.n - 1}b')}  "
            f"(class {dc.class_of(u)}, cluster {dc.cluster_id(u)}, "
            f"node {dc.node_id(u)})"
            + (f"   <- {tag}" if tag else "")
        )
    return "\n".join(lines)


#: Load character ramp: index 0 is "idle", the last is "max load".
_HEAT_RAMP = " .:-=+*#%@"

#: Fault markers in severity order (a crash outranks a timeout outranks a drop).
_FAULT_MARKS = (
    ("crashes", "C"),
    ("leaves", "L"),
    ("joins", "J"),
    ("timeouts", "T"),
    ("drops", "D"),
)


def render_timeline_heatmap(
    recorder, *, max_links: int = 64, ramp: str = _HEAT_RAMP
) -> str:
    """Link-utilization heatmap of a recorded run (rows=links, cols=cycles).

    ``recorder`` is a :class:`~repro.obs.timeline.TimelineRecorder` (any
    object with ``link_utilization``/``cycle_aggregates``/``num_cycles``
    works).  Each cell maps the link's message count that cycle onto
    ``ramp`` (space = idle, last character = the run's peak per-cell
    load).  When the run recorded faults, a ``faults`` row marks each
    cycle with the most severe fault kind that struck it (``C`` = crash,
    ``L`` = leave, ``J`` = join, ``T`` = timeout, ``D`` = drop).
    """
    if len(ramp) < 2:
        raise ValueError("ramp needs at least 2 characters (idle + loaded)")
    cycles = recorder.num_cycles
    links, grid = recorder.link_utilization()
    if not links or not cycles:
        return "timeline: no link events recorded"
    if len(links) > max_links:
        raise ValueError(
            f"timeline covers {len(links)} links; heatmap capped at {max_links}"
        )
    peak = max(max(row) for row in grid)
    labels = [f"{u}-{v}" for u, v in links]
    width = max(len(s) for s in labels)

    def cell(load: int) -> str:
        if load <= 0:
            return ramp[0]
        # Loads 1..peak map onto ramp[1:] top-anchored: the peak always
        # lands on the last character.
        k = 1 + (load - 1) * (len(ramp) - 2) // max(1, peak - 1) if peak > 1 else 1
        return ramp[min(k, len(ramp) - 1)]

    lines = [f"link utilization over {cycles} cycles (peak {peak} msg/cell):"]
    # Cycle ruler: a tens row when wide, then the ones digits.
    pad = " " * (width + 2)
    if cycles > 9:
        lines.append(
            pad + "".join(str((c // 10) % 10) if c % 10 == 0 else " "
                          for c in range(1, cycles + 1))
        )
    lines.append(pad + "".join(str(c % 10) for c in range(1, cycles + 1)))
    for label, row in zip(labels, grid):
        lines.append(f"{label.rjust(width)}  " + "".join(cell(x) for x in row))
    aggs = recorder.cycle_aggregates()
    if any(a.faults for a in aggs):
        marks = []
        for a in aggs:
            mark = " "
            for attr, ch in _FAULT_MARKS:
                if getattr(a, attr):
                    mark = ch
                    break
            marks.append(mark)
        lines.append(f"{'faults'.rjust(width)}  " + "".join(marks))
        lines.append("  (C=crash, L=leave, J=join, T=timeout, D=drop)")
    lines.append(f"  scale: '{ramp[0]}'=0 ... '{ramp[-1]}'={peak}")
    return "\n".join(lines)


def render_key_grid(
    states: Sequence[Sequence], labels: Sequence[str], *, width: int = 16
) -> str:
    """Per-step key states as aligned rows (the Figs. 5-6 style)."""
    if len(states) != len(labels):
        raise ValueError("states and labels must align")
    flat = [v for st in states for v in st]
    cell = max(len(str(v)) for v in flat) if flat else 1
    lines = []
    for label, state in zip(labels, states):
        lines.append(label)
        vals = [str(v).rjust(cell) for v in state]
        for lo in range(0, len(vals), width):
            lines.append("  " + " ".join(vals[lo : lo + width]))
    return "\n".join(lines)
