"""ASCII renderers for topologies, routes, and key states."""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Topology
from repro.topology.dualcube import DualCube

__all__ = [
    "render_adjacency_matrix",
    "render_clusters",
    "render_route",
    "render_key_grid",
]


def render_adjacency_matrix(topo: Topology, *, max_nodes: int = 64) -> str:
    """Dense 0/1 adjacency matrix as a character grid (small networks)."""
    n = topo.num_nodes
    if n > max_nodes:
        raise ValueError(
            f"{topo.name} has {n} nodes; adjacency art capped at {max_nodes}"
        )
    width = len(str(n - 1))
    header = " " * (width + 1) + " ".join(
        str(v).rjust(1) for v in range(n)
    )
    lines = [f"{topo.name} adjacency:", header]
    for u in range(n):
        nbrs = set(topo.neighbors(u))
        row = " ".join("#" if v in nbrs else "." for v in range(n))
        lines.append(f"{str(u).rjust(width)} {row}")
    return "\n".join(lines)


def render_clusters(dc: DualCube, values: Sequence | None = None) -> str:
    """Cluster diagram of a dual-cube (the paper's Figs. 1-2 layout).

    Each cluster prints its members as ``address(binary)`` or, when
    ``values`` is given, as ``address:value``.
    """
    n = dc.n
    lines = [f"{dc.name}: class/cluster layout"]
    for cls in (0, 1):
        lines.append(f"class {cls}:")
        for k in range(dc.clusters_per_class):
            cells = []
            for u in dc.cluster_members(cls, k):
                if values is None:
                    cells.append(format(u, f"0{2 * n - 1}b"))
                else:
                    cells.append(f"{u}:{values[u]}")
            lines.append(f"  cluster {k}: [" + " ".join(cells) + "]")
    return "\n".join(lines)


def render_route(dc: DualCube, path: Sequence[int]) -> str:
    """One route as annotated hops: address, fields, and hop kind."""
    lines = [f"route on {dc.name}: {path[0]} -> {path[-1]} ({len(path) - 1} hops)"]
    for i, u in enumerate(path):
        tag = ""
        if i > 0:
            prev = path[i - 1]
            tag = (
                "cross-edge"
                if dc.class_of(prev) != dc.class_of(u)
                else f"intra dim {(prev ^ u).bit_length() - 1}"
            )
        lines.append(
            f"  {format(u, f'0{2 * dc.n - 1}b')}  "
            f"(class {dc.class_of(u)}, cluster {dc.cluster_id(u)}, "
            f"node {dc.node_id(u)})"
            + (f"   <- {tag}" if tag else "")
        )
    return "\n".join(lines)


def render_key_grid(
    states: Sequence[Sequence], labels: Sequence[str], *, width: int = 16
) -> str:
    """Per-step key states as aligned rows (the Figs. 5-6 style)."""
    if len(states) != len(labels):
        raise ValueError("states and labels must align")
    flat = [v for st in states for v in st]
    cell = max(len(str(v)) for v in flat) if flat else 1
    lines = []
    for label, state in zip(labels, states):
        lines.append(label)
        vals = [str(v).rjust(cell) for v in state]
        for lo in range(0, len(vals), width):
            lines.append("  " + " ".join(vals[lo : lo + width]))
    return "\n".join(lines)
