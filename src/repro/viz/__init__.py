"""Text-mode rendering of networks and algorithm states.

The paper's figures are drawings; this package regenerates them as
terminal art: cluster diagrams with three-field address labels (Figs.
1-2), adjacency matrices, route overlays, per-step key grids for the
sorting walkthrough (Figs. 5-6), and link-utilization heatmaps of
recorded timelines (``repro timeline``).
"""

from repro.viz.ascii_art import (
    render_adjacency_matrix,
    render_clusters,
    render_route,
    render_key_grid,
    render_timeline_heatmap,
)

__all__ = [
    "render_adjacency_matrix",
    "render_clusters",
    "render_route",
    "render_key_grid",
    "render_timeline_heatmap",
]
