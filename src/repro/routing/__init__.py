"""Point-to-point routing and collective communication in the dual-cube.

The paper leans on two facts about D_n proved in its Section 1-2: the
closed-form distance (Hamming, +2 when both endpoints share a class but
not a cluster) and the simple dimension-order routing through at most two
cross-edges.  This package implements that routing constructively, plus
the collectives (broadcast, reduce, allreduce) built with the same
cluster-then-cross technique as `D_prefix` — each finishing in 2n
communication steps, the diameter.
"""

from repro.routing.dualcube_routing import route, route_length, dimension_order_route
from repro.routing.broadcast import broadcast_engine, broadcast_steps
from repro.routing.collectives import allreduce_engine, allreduce_vec, reduce_engine
from repro.routing.advanced_collectives import (
    scatter_engine,
    gather_engine,
    allgather_engine,
    collective_steps,
)
from repro.routing.ring_allreduce import ring_allreduce_engine, ring_allreduce_steps
from repro.routing.fault_tolerant import (
    ft_route,
    adaptive_route,
    node_disjoint_paths,
    node_connectivity,
    broadcast_depth,
)

__all__ = [
    "route",
    "route_length",
    "dimension_order_route",
    "broadcast_engine",
    "broadcast_steps",
    "allreduce_engine",
    "allreduce_vec",
    "reduce_engine",
    "scatter_engine",
    "gather_engine",
    "allgather_engine",
    "collective_steps",
    "ring_allreduce_engine",
    "ring_allreduce_steps",
    "ft_route",
    "adaptive_route",
    "node_disjoint_paths",
    "node_connectivity",
    "broadcast_depth",
]
