"""Reduction collectives in the dual-cube.

``allreduce`` uses the same cluster-then-cross technique as `D_prefix`
(and the companion collective-communication paper the authors cite):
cluster-wide allreduce, cross exchange of cluster totals, cluster-wide
allreduce of those totals (yielding the *other* half's total everywhere),
one more cross exchange, and a local combine — 2n communication steps.

``reduce`` returns the total at a chosen root by running the allreduce
schedule (the dedicated tree reduce would have the same step count in
this model; see the docstring).
"""

from __future__ import annotations

import numpy as np

from repro.core.cube_prefix import cube_prefix_program
from repro.core.ops import AssocOp, combine_arrays
from repro.simulator import CostCounters, SendRecv, run_spmd
from repro.topology.dualcube import DualCube

__all__ = ["allreduce_engine", "allreduce_vec", "reduce_engine"]


def _allreduce_program(ctx, dc: DualCube, value, op: AssocOp):
    """Per-node allreduce (returns the network-wide total)."""
    u = ctx.rank
    m = dc.cluster_dim
    nid = dc.node_id(u)
    gdims = [dc.local_to_global_dim(u, i) for i in range(m)]
    cross = dc.cross_partner(u)

    # Cluster total (the ascend rounds; the prefix output is unused).
    t, _ = yield from cube_prefix_program(
        ctx, value, op, inclusive=True, q=m, local_rank=nid, global_dims=gdims
    )
    # My cluster total for the other class's books; theirs for mine.
    temp = yield SendRecv(cross, t)
    # Other-half total: cluster-wide combine of the received block totals.
    t2, _ = yield from cube_prefix_program(
        ctx, temp, op, inclusive=True, q=m, local_rank=nid, global_dims=gdims
    )
    # t2 is the total of the *other* class's half; my own half's total
    # lives at my cross partner.
    own_half = yield SendRecv(cross, t2)
    ctx.compute(1)
    if dc.class_of(u) == 0:
        return op(own_half, t2)
    return op(t2, own_half)


def allreduce_engine(dc: DualCube, values, op: AssocOp):
    """Cycle-accurate allreduce; returns ``(totals, result)``.

    ``totals[u]`` is the op-reduction of all inputs in *arranged* (global
    index) order — identical at every node.  ``result.comm_steps == 2n``.
    """
    vals = list(values)
    if len(vals) != dc.num_nodes:
        raise ValueError(
            f"expected {dc.num_nodes} values for {dc.name}, got {len(vals)}"
        )

    def program(ctx):
        total = yield from _allreduce_program(ctx, dc, vals[ctx.rank], op)
        return total

    result = run_spmd(dc, program)
    return list(result.returns), result


def allreduce_vec(
    dc: DualCube,
    values,
    op: AssocOp,
    *,
    counters: CostCounters | None = None,
) -> np.ndarray:
    """Vectorized allreduce; returns the per-node totals array."""
    from repro.core.cube_prefix import ascend_rounds_vec

    vals = np.asarray(values)
    if vals.shape != (dc.num_nodes,):
        raise ValueError(
            f"expected {dc.num_nodes} values for {dc.name}, got shape {vals.shape}"
        )
    m = dc.cluster_dim
    idx = dc.all_nodes_array()
    cls1 = dc.class_of_v(idx) == 1
    nid = dc.node_id_v(idx)
    cross = idx ^ (1 << dc.class_dimension)
    step = np.where(cls1, 1 << m, 1).astype(np.int64)

    def partner(i):
        return idx ^ (step << i)

    def upper(i):
        return (nid >> i) & 1 == 1

    t = vals.copy()
    t, _ = ascend_rounds_vec(t, t.copy(), m, partner, upper, op, counters)
    temp = t[cross]
    if counters is not None:
        counters.record_comm_step(messages=dc.num_nodes)
    t2 = temp.copy()
    t2, _ = ascend_rounds_vec(t2, t2.copy(), m, partner, upper, op, counters)
    own_half = t2[cross]
    if counters is not None:
        counters.record_comm_step(messages=dc.num_nodes)
        counters.record_comp_step(ops_each=1)
    first_then_second = combine_arrays(op, own_half, t2)
    second_after_first = combine_arrays(op, t2, own_half)
    return np.where(cls1, second_after_first, first_then_second)


def reduce_engine(dc: DualCube, values, op: AssocOp, root: int):
    """Reduction to ``root`` (allreduce schedule; every node learns the total).

    In the synchronous 1-port model a dedicated binomial-tree reduce takes
    the same 2n steps as allreduce, so the library reuses the allreduce
    program and reports the root's value.
    """
    dc.check_node(root)
    totals, result = allreduce_engine(dc, values, op)
    return totals[root], result
