"""Ring allreduce over the Hamiltonian embedding.

The dilation-1 ring embedding (:func:`repro.topology.hamiltonian.
hamiltonian_cycle`) lets the classic bandwidth-optimal ring allreduce run
on the dual-cube with every hop a real link.  For a vector of V chunks on
V nodes:

* **reduce-scatter** — V-1 steps; step t: every node sends one partially
  reduced chunk to its ring successor and folds the chunk it receives;
* **allgather** — V-1 steps circulating the finished chunks.

Total 2(V-1) steps with 1-chunk messages: each node moves 2(V-1) chunks,
versus the tree allreduce's 2n steps moving the full V-chunk vector each
step (2nV chunks per node).  Experiment E14 regenerates the latency/
bandwidth crossover.
"""

from __future__ import annotations

from repro.core.ops import AssocOp
from repro.simulator import Shift, run_spmd
from repro.topology.hamiltonian import hamiltonian_cycle
from repro.topology.recursive import RecursiveDualCube

__all__ = ["ring_allreduce_engine", "ring_allreduce_steps"]


def ring_allreduce_steps(num_nodes: int) -> int:
    """Closed-form steps: 2(V-1)."""
    return 2 * (num_nodes - 1)


def ring_allreduce_engine(
    rdc: RecursiveDualCube,
    vectors,
    op: AssocOp,
):
    """Allreduce of per-node vectors (length V each) over the ring.

    ``vectors[u]`` is node ``u``'s length-V contribution; every node ends
    with the elementwise op-reduction across nodes, reduced in ring order
    (use a commutative op unless that order is intended).  Returns
    ``(results, EngineResult)``.
    """
    v = rdc.num_nodes
    vecs = [list(x) for x in vectors]
    if len(vecs) != v or any(len(x) != v for x in vecs):
        raise ValueError(
            f"expected {v} vectors of length {v} for {rdc.name}"
        )
    cycle = hamiltonian_cycle(rdc.n)
    pos_of = {node: k for k, node in enumerate(cycle)}
    succ = {cycle[k]: cycle[(k + 1) % v] for k in range(v)}
    pred = {cycle[k]: cycle[(k - 1) % v] for k in range(v)}

    def program(ctx):
        u = ctx.rank
        pos = pos_of[u]
        chunks = list(vecs[u])
        # Reduce-scatter: after step t, node holds the reduction over
        # t+1 ring predecessors for chunk (pos - t) mod V.
        for t in range(v - 1):
            send_idx = (pos - t) % v
            recv_idx = (pos - t - 1) % v
            got = yield Shift(succ[u], chunks[send_idx], pred[u])
            ctx.compute(1)
            chunks[recv_idx] = op(got, chunks[recv_idx])
        # Allgather: circulate finished chunks.
        for t in range(v - 1):
            send_idx = (pos + 1 - t) % v
            recv_idx = (pos - t) % v
            got = yield Shift(succ[u], chunks[send_idx], pred[u])
            chunks[recv_idx] = got
        return chunks

    result = run_spmd(rdc, program)
    return list(result.returns), result
