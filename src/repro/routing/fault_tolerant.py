"""Fault-tolerant routing in the dual-cube.

Two routers over a :class:`~repro.topology.faults.FaultyTopology`:

* :func:`ft_route` — global-information shortest path (BFS on the healthy
  subgraph); the ground truth other strategies are scored against.
* :func:`adaptive_route` — local-information greedy routing in the spirit
  of the limited-global-information dual-cube literature: at each hop the
  message moves to the healthy neighbor closest to the target (by the
  fault-free closed-form distance), with backtracking when boxed in.

Plus :func:`node_disjoint_paths` — D_n is n-connected, so Menger gives n
internally node-disjoint paths between any two nodes; computed by max-flow
and verified in the tests/benchmarks (experiment F1).
"""

from __future__ import annotations

from collections import deque

import networkx as nx

from repro.topology.dualcube import DualCube
from repro.topology.faults import FaultSet, FaultyTopology
from repro.topology.nx_adapter import to_networkx
from repro.topology.base import Topology

__all__ = [
    "ft_route",
    "adaptive_route",
    "node_disjoint_paths",
    "node_connectivity",
    "broadcast_depth",
]


def ft_route(ftopo: FaultyTopology, u: int, v: int) -> list[int] | None:
    """Shortest healthy path ``u -> v`` by BFS, or ``None`` if disconnected.

    Requires both endpoints healthy.
    """
    ftopo.check_node(u)
    ftopo.check_node(v)
    if not (ftopo.faults.node_ok(u) and ftopo.faults.node_ok(v)):
        raise ValueError("both endpoints must be healthy")
    if u == v:
        return [u]
    prev = {u: u}
    queue = deque([u])
    while queue:
        w = queue.popleft()
        for x in ftopo.neighbors(w):
            if x not in prev:
                prev[x] = w
                if x == v:
                    path = [v]
                    while path[-1] != u:
                        path.append(prev[path[-1]])
                    return path[::-1]
                queue.append(x)
    return None


def adaptive_route(
    ftopo: FaultyTopology,
    dc: DualCube,
    u: int,
    v: int,
    *,
    max_hops: int | None = None,
) -> list[int] | None:
    """Greedy local-information routing with backtracking.

    At each hop the current node only knows its own healthy links and the
    fault-free distance metric; it forwards to the unvisited healthy
    neighbor minimizing ``dc.distance(., v)`` and backtracks when stuck.
    Guaranteed to terminate; returns the walk (which may backtrack, so it
    can be longer than the BFS path) or ``None`` on failure.
    """
    ftopo.check_node(u)
    ftopo.check_node(v)
    if not (ftopo.faults.node_ok(u) and ftopo.faults.node_ok(v)):
        raise ValueError("both endpoints must be healthy")
    if max_hops is None:
        max_hops = 4 * dc.diameter() + 4 * ftopo.faults.num_faults + 8
    walk = [u]
    visited = {u}
    stack = [u]
    hops = 0
    while stack and hops < max_hops:
        cur = stack[-1]
        if cur == v:
            return walk
        candidates = [
            w for w in ftopo.neighbors(cur) if w not in visited
        ]
        if candidates:
            nxt = min(candidates, key=lambda w: (dc.distance(w, v), w))
            visited.add(nxt)
            stack.append(nxt)
            walk.append(nxt)
        else:
            stack.pop()
            if stack:
                walk.append(stack[-1])
        hops += 1
    if stack and stack[-1] == v:
        return walk
    return None


def node_disjoint_paths(topo: Topology, u: int, v: int) -> list[list[int]]:
    """A maximum set of internally node-disjoint ``u -> v`` paths (max-flow)."""
    topo.check_node(u)
    topo.check_node(v)
    if u == v:
        raise ValueError("endpoints must differ")
    g = to_networkx(topo)
    return [list(p) for p in nx.node_disjoint_paths(g, u, v)]


def node_connectivity(topo: Topology) -> int:
    """Exact node connectivity of the topology (networkx max-flow)."""
    return nx.node_connectivity(to_networkx(topo))


def broadcast_depth(ftopo: FaultyTopology, source: int) -> int | None:
    """Rounds an optimal broadcast needs from ``source`` on the healthy graph.

    Lower-bounded by the source's eccentricity in the surviving subgraph
    (returned here); ``None`` when some healthy node is unreachable.
    Quantifies latency degradation under faults (experiment F3) — on the
    intact D_n this equals at most the diameter 2n.
    """
    ftopo.check_node(source)
    if not ftopo.faults.node_ok(source):
        raise ValueError("source must be healthy")
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in ftopo.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                frontier.append(v)
    healthy = set(ftopo.healthy_nodes())
    if set(dist) != healthy:
        return None
    return max(dist.values())
