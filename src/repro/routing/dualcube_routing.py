"""Shortest-path routing in the dual-cube (paper Sections 1-2).

The constructive counterpart of :meth:`DualCube.distance`: dimension-order
routing that corrects the node-ID field inside the source cluster, crosses
the class boundary, corrects the other field, and (when source and target
share a class but not a cluster) crosses back.  The produced walk always
realizes the closed-form distance, which the tests verify against BFS.
"""

from __future__ import annotations

from repro._bits import bit, flip_bit
from repro.topology.dualcube import DualCube

__all__ = ["dimension_order_route", "route", "route_length"]


def _fix_field(dc: DualCube, u: int, target_bits: int, lo: int) -> list[int]:
    """Greedy dimension-order walk equalizing the width-m field at ``lo``.

    Returns the intermediate nodes visited (excluding ``u`` itself); the
    walk flips the differing bits of the field low-to-high, staying inside
    ``u``'s cluster (the field must be the node-ID field of ``u``'s class).
    """
    m = dc.cluster_dim
    walk = []
    cur = u
    for i in range(m):
        if bit(cur >> lo, i) != bit(target_bits, i):
            cur = flip_bit(cur, lo + i)
            walk.append(cur)
    return walk


def dimension_order_route(dc: DualCube, u: int, v: int) -> list[int]:
    """A shortest path from ``u`` to ``v`` as the full node sequence.

    Strategy (each leg is dimension-order within a cluster):

    * same cluster — fix the node-ID field;
    * different classes — fix ``u``'s node-ID field to match the bits it
      shares with ``v`` across the cross-edge, cross, then fix the rest;
    * same class, different clusters — fix the node-ID field to ``v``'s
      *cluster*-determining bits, cross, fix the other field (now the
      node-ID field of the other class), cross back.
    """
    dc.check_node(u)
    dc.check_node(v)
    if u == v:
        return [u]
    m = dc.cluster_dim
    cls_u, cls_v = dc.class_of(u), dc.class_of(v)
    path = [u]
    cur = u

    if cls_u == cls_v and dc.cluster_id(u) == dc.cluster_id(v):
        # Intra-cluster: node IDs differ only.
        lo = 0 if cls_u == 0 else m
        path.extend(_fix_field(dc, cur, (v >> lo), lo))
        return path

    if cls_u != cls_v:
        # One cross-edge: equalize the bits the cross-edge preserves.
        # u's node-ID field must match v's same-position field first.
        lo_u = 0 if cls_u == 0 else m
        path.extend(_fix_field(dc, cur, v >> lo_u, lo_u))
        cur = path[-1]
        cur = dc.cross_partner(cur)
        path.append(cur)
        lo_v = 0 if cls_v == 0 else m
        # Remaining difference lies in v's node-ID field.
        path.extend(_fix_field(dc, cur, v >> lo_v, lo_v))
        return path

    # Same class, different clusters: two cross-edges.
    lo_u = 0 if cls_u == 0 else m
    path.extend(_fix_field(dc, cur, v >> lo_u, lo_u))
    cur = path[-1]
    cur = dc.cross_partner(cur)
    path.append(cur)
    lo_mid = 0 if dc.class_of(cur) == 0 else m
    path.extend(_fix_field(dc, cur, v >> lo_mid, lo_mid))
    cur = path[-1]
    cur = dc.cross_partner(cur)
    path.append(cur)
    return path


def route(dc: DualCube, u: int, v: int, *, validate: bool = True) -> list[int]:
    """Shortest path from ``u`` to ``v``; optionally re-checks every hop."""
    path = dimension_order_route(dc, u, v)
    if validate:
        for a, b in zip(path, path[1:]):
            if not dc.has_edge(a, b):
                raise AssertionError(
                    f"routing bug: {a} -> {b} is not an edge of {dc.name}"
                )
        if len(path) - 1 != dc.distance(u, v):
            raise AssertionError(
                f"routing bug: path length {len(path) - 1} != "
                f"distance {dc.distance(u, v)} for ({u}, {v})"
            )
    return path


def route_length(dc: DualCube, u: int, v: int) -> int:
    """Length of the route (equals :meth:`DualCube.distance`)."""
    return len(dimension_order_route(dc, u, v)) - 1
