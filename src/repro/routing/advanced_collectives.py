"""Personalized collectives in the dual-cube: scatter, gather, allgather.

The paper cites the authors' companion work "Efficient collective
communications in dual-cube"; these are the cluster-technique versions,
all finishing in **2n communication steps** (the diameter):

* **scatter** — the root distributes one distinct item per node:
  binomial scatter inside the root's cluster (each carrier j receives the
  bundle for the other-class cluster it seeds: that cluster's members
  plus their cross partners, 2·2^(n-1) items), one cross step seeding
  every cluster of the other class, binomial scatter inside those
  clusters, one cross step delivering the root-class items.
* **gather** — the exact reverse schedule.
* **allgather** — recursive doubling on the `D_prefix` schedule with
  :class:`Packed` messages whose payload doubles each round; every node
  ends with all V items in arranged (global index) order.

Message *sizes* vary by round (that is the point of personalized
collectives); the engine's payload counters record true item counts, and
benchmark F2 checks total traffic against the closed forms.
"""

from __future__ import annotations

from typing import Any

from repro.core.arrangement import arranged_index
from repro.simulator import Idle, Packed, Recv, Send, SendRecv, run_spmd
from repro.topology.dualcube import DualCube

__all__ = [
    "scatter_engine",
    "gather_engine",
    "allgather_engine",
    "collective_steps",
]


def collective_steps(n: int) -> int:
    """Closed-form steps for scatter/gather/allgather on D_n: 2n."""
    return 2 * n


def _check_length(dc: DualCube, values) -> list:
    vals = list(values)
    if len(vals) != dc.num_nodes:
        raise ValueError(
            f"expected {dc.num_nodes} values for {dc.name}, got {len(vals)}"
        )
    return vals


def _scatter_phase(ctx, dc: DualCube, rel: int, bundle: dict):
    """Binomial scatter inside a cluster, dims high-to-low (n-1 steps).

    ``bundle`` keys are ``(carrier_rel, destination)`` pairs so payload
    counters see true item counts; subtree splits use the rel component.
    Only relative node 0 enters with a non-empty bundle; every node exits
    holding exactly the items whose carrier_rel equals its own ``rel``.
    """
    m = dc.cluster_dim
    u = ctx.rank
    for i in range(m - 1, -1, -1):
        partner = u ^ (1 << dc.local_to_global_dim(u, i))
        if rel % (1 << (i + 1)) == 0:
            send = {k: v for k, v in bundle.items() if (k[0] >> i) & 1}
            bundle = {k: v for k, v in bundle.items() if not (k[0] >> i) & 1}
            yield Send(partner, Packed(tuple(sorted(send.items()))))
        elif rel & ((1 << (i + 1)) - 1) == (1 << i):
            got = yield Recv(partner)
            bundle = dict(got.items)
        else:
            yield Idle()
    return bundle


def _gather_phase(ctx, dc: DualCube, rel: int, bundle: dict):
    """Binomial gather inside a cluster, dims low-to-high (reverse scatter).

    Plain ``{destination: value}`` dicts merge upward; relative node 0
    exits with the union.
    """
    m = dc.cluster_dim
    u = ctx.rank
    for i in range(m):
        partner = u ^ (1 << dc.local_to_global_dim(u, i))
        if rel & ((1 << (i + 1)) - 1) == (1 << i):
            yield Send(partner, Packed(tuple(sorted(bundle.items()))))
            bundle = {}
        elif rel % (1 << (i + 1)) == 0 and rel + (1 << i) < (1 << m):
            got = yield Recv(partner)
            bundle.update(dict(got.items))
        else:
            yield Idle()
    return bundle


def _seed_bundle(dc: DualCube, carrier: int, vals) -> dict[int, Any]:
    """Items carrier must deliver: every member of the cluster seeded by
    its cross partner, plus each member's cross partner (the carrier's own
    item rides along as one of those cross partners)."""
    seed = dc.cross_partner(carrier)
    out: dict[int, Any] = {}
    for w in dc.cluster_members(dc.class_of(seed), dc.cluster_id(seed)):
        out[w] = vals[w]
        out[dc.cross_partner(w)] = vals[dc.cross_partner(w)]
    return out


def scatter_engine(dc: DualCube, root: int, items):
    """Scatter ``items[u]`` (indexed by node address) from ``root``.

    Returns ``(received, result)``: ``received[u]`` is node ``u``'s item.
    Exactly 2n communication steps.
    """
    dc.check_node(root)
    vals = _check_length(dc, items)
    root_cls = dc.class_of(root)
    root_cluster = dc.cluster_id(root)
    root_nid = dc.node_id(root)

    def program(ctx):
        u = ctx.rank
        cls = dc.class_of(u)
        nid = dc.node_id(u)
        cross = dc.cross_partner(u)
        in_root_cluster = dc.cluster_key(u) == (root_cls, root_cluster)

        # Phase 1: distribute per-carrier bundles inside the root cluster.
        if in_root_cluster:
            rel = nid ^ root_nid
            top: dict = {}
            if u == root:
                for c in dc.cluster_members(root_cls, root_cluster):
                    c_rel = dc.node_id(c) ^ root_nid
                    for w, item in _seed_bundle(dc, c, vals).items():
                        top[(c_rel, w)] = item
            sub = yield from _scatter_phase(ctx, dc, rel, top)
            bundle = {w: item for (_r, w), item in sub.items()}
        else:
            for _ in range(dc.cluster_dim):
                yield Idle()
            bundle = {}

        # Phase 2: carriers seed the other class over cross-edges.
        if in_root_cluster:
            yield Send(cross, Packed(tuple(sorted(bundle.items()))))
            bundle = {}
        elif dc.cluster_key(cross) == (root_cls, root_cluster):
            got = yield Recv(cross)
            bundle = dict(got.items)
        else:
            yield Idle()

        # Phase 3: scatter member-pairs inside every seeded cluster.
        if cls != root_cls:
            rel = nid ^ root_cluster
            top = {}
            if bundle:
                for w in dc.cluster_members(cls, dc.cluster_id(u)):
                    w_rel = dc.node_id(w) ^ root_cluster
                    top[(w_rel, w)] = bundle[w]
                    top[(w_rel, dc.cross_partner(w))] = bundle[dc.cross_partner(w)]
            sub = yield from _scatter_phase(ctx, dc, rel, top)
            mine = {w: item for (_r, w), item in sub.items()}
        else:
            for _ in range(dc.cluster_dim):
                yield Idle()
            mine = {}

        # Phase 4: deliver the root-class items over cross-edges.
        if cls != root_cls:
            yield Send(cross, mine.get(cross))
            return mine.get(u)
        got = yield Recv(cross)
        return got

    result = run_spmd(dc, program)
    return list(result.returns), result


def gather_engine(dc: DualCube, root: int, values):
    """Gather every node's value to ``root`` (reverse-scatter schedule).

    Returns ``(collected, result)``: ``collected[u]`` is node ``u``'s
    value as assembled at the root.  Exactly 2n communication steps.
    """
    dc.check_node(root)
    vals = _check_length(dc, values)
    root_cls = dc.class_of(root)
    root_cluster = dc.cluster_id(root)
    root_nid = dc.node_id(root)

    def program(ctx):
        u = ctx.rank
        cls = dc.class_of(u)
        nid = dc.node_id(u)
        cross = dc.cross_partner(u)
        in_root_cluster = dc.cluster_key(u) == (root_cls, root_cluster)
        bundle = {u: vals[u]}

        # Phase 1: root-class nodes push their values across.
        if cls == root_cls:
            yield Send(cross, bundle.pop(u))
        else:
            got = yield Recv(cross)
            bundle[cross] = got

        # Phase 2: gather inside every other-class cluster to its seed
        # (the member whose cross partner lies in the root cluster).
        if cls != root_cls:
            rel = nid ^ root_cluster
            bundle = yield from _gather_phase(ctx, dc, rel, bundle)
        else:
            for _ in range(dc.cluster_dim):
                yield Idle()

        # Phase 3: seeds push cluster bundles to the root-cluster carriers.
        if cls != root_cls:
            if nid == root_cluster:
                yield Send(cross, Packed(tuple(sorted(bundle.items()))))
                bundle = {}
            else:
                yield Idle()
        elif in_root_cluster:
            got = yield Recv(cross)
            bundle.update(dict(got.items))
        else:
            yield Idle()

        # Phase 4: gather inside the root cluster to the root.
        if in_root_cluster:
            rel = nid ^ root_nid
            bundle = yield from _gather_phase(ctx, dc, rel, bundle)
        else:
            for _ in range(dc.cluster_dim):
                yield Idle()
        return bundle if u == root else None

    result = run_spmd(dc, program)
    collected = result.returns[root]
    return [collected[u] for u in dc.nodes()], result


def allgather_engine(dc: DualCube, values):
    """Allgather: every node ends with all values in arranged order.

    Recursive doubling on the `D_prefix` schedule — cluster doubling, a
    cross exchange, doubling of the received half, a final cross exchange
    — 2n steps with payload doubling per round.  Returns ``(lists,
    result)`` where every entry of ``lists`` is the same V-item list.
    """
    vals = _check_length(dc, values)

    def program(ctx):
        u = ctx.rank
        m = dc.cluster_dim
        cross = dc.cross_partner(u)
        items = ((arranged_index(dc, u), vals[u]),)

        for i in range(m):
            partner = u ^ (1 << dc.local_to_global_dim(u, i))
            got = yield SendRecv(partner, Packed(items))
            ctx.compute(1)
            items = tuple(sorted(items + got.items))

        got = yield SendRecv(cross, Packed(items))
        other = got.items
        ctx.compute(1)

        for i in range(m):
            partner = u ^ (1 << dc.local_to_global_dim(u, i))
            got = yield SendRecv(partner, Packed(other))
            ctx.compute(1)
            other = tuple(sorted(other + got.items))

        got = yield SendRecv(cross, Packed(other))
        ctx.compute(1)
        items = tuple(sorted(items + got.items))
        full = tuple(sorted(set(items) | set(other)))
        return [v for _k, v in full]

    result = run_spmd(dc, program)
    return list(result.returns), result
