"""One-to-all broadcast in the dual-cube.

Cluster-technique broadcast finishing in exactly 2n communication steps
(matching the diameter, hence optimal to within the model):

1. binomial broadcast inside the source's cluster        (n-1 steps);
2. every node of that cluster crosses — one seed lands in *every*
   cluster of the other class                             (1 step);
3. binomial broadcast inside every seeded cluster         (n-1 steps);
4. every node of the seeded class crosses — every node of the source's
   class is someone's cross partner                       (1 step).
"""

from __future__ import annotations

from typing import Any

from repro.simulator import Idle, Recv, Send, TraceRecorder, run_spmd
from repro.topology.dualcube import DualCube

__all__ = ["broadcast_engine", "broadcast_steps"]


def broadcast_steps(n: int) -> int:
    """Closed-form communication steps of the broadcast: 2n."""
    return 2 * n


def _binomial_phase(ctx, dc: DualCube, rel: int, have: bool, value):
    """One in-cluster binomial broadcast (n-1 lockstep rounds).

    ``rel`` is the node's ID relative to the cluster-local source (the
    node seeded before this phase); holders double each round along
    successive local dimensions.  Returns the (possibly received) value.
    """
    m = dc.cluster_dim
    u = ctx.rank
    for i in range(m):
        partner = u ^ (1 << dc.local_to_global_dim(u, i))
        if have and rel < (1 << i):
            yield Send(partner, value)
        elif not have and rel < (1 << (i + 1)) and rel >= (1 << i):
            value = yield Recv(partner)
            have = True
        else:
            yield Idle()
    return value


def broadcast_engine(
    dc: DualCube,
    source: int,
    value: Any,
    *,
    trace: TraceRecorder | None = None,
):
    """Run the broadcast on the cycle-accurate engine.

    Returns ``(received, result)`` where ``received[u]`` is the value at
    node ``u`` (identical everywhere) and ``result`` carries the counters
    (``comm_steps == 2n``).
    """
    dc.check_node(source)
    src_cls = dc.class_of(source)
    src_cluster = dc.cluster_id(source)
    src_nid = dc.node_id(source)

    def program(ctx):
        u = ctx.rank
        cls = dc.class_of(u)
        in_src_cluster = dc.cluster_key(u) == (src_cls, src_cluster)
        val = value if u == source else None

        # Phase 1: binomial broadcast inside the source cluster.
        if in_src_cluster:
            rel = dc.node_id(u) ^ src_nid
            val = yield from _binomial_phase(ctx, dc, rel, u == source, val)
        else:
            for _ in range(dc.cluster_dim):
                yield Idle()

        # Phase 2: the source cluster seeds every cluster of the other class.
        cross = dc.cross_partner(u)
        seeded = False
        if in_src_cluster:
            yield Send(cross, val)
        elif dc.cluster_key(cross) == (src_cls, src_cluster):
            val = yield Recv(cross)
            seeded = True
        else:
            yield Idle()

        # Phase 3: binomial broadcast inside every cluster of the other class.
        if cls != src_cls:
            # The seed of this cluster is the node whose cross partner has
            # the source's node ID; relative ID is node ID xor that seed ID.
            rel = dc.node_id(u) ^ src_cluster
            val = yield from _binomial_phase(ctx, dc, rel, seeded, val)
        else:
            for _ in range(dc.cluster_dim):
                yield Idle()

        # Phase 4: the other class covers the source's class.
        if cls != src_cls:
            yield Send(cross, val)
        else:
            got = yield Recv(cross)
            if val is None:
                val = got
        return val

    result = run_spmd(dc, program, trace=trace)
    return list(result.returns), result
