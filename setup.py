"""Legacy setup shim.

The target environment is offline and lacks the ``wheel`` package, so the
PEP 517 editable path (which shells out to ``bdist_wheel``) cannot run.
With no ``[build-system]`` table in pyproject.toml, ``pip install -e .``
falls back to ``setup.py develop``, which works offline.  All metadata
lives in pyproject.toml's ``[project]`` table and is read by setuptools.
"""

from setuptools import setup

setup()
