"""Tests for the distributed linear-algebra kernels."""

import numpy as np
import pytest

from repro.apps.linear_algebra import (
    RowBlockMatrix,
    distributed_matvec,
    power_iteration,
)
from repro.simulator import CostCounters
from repro.topology import DualCube


class TestRowBlockMatrix:
    def test_layout(self, rng):
        dc = DualCube(2)
        a = rng.normal(size=(16, 16))
        mat = RowBlockMatrix(dc, a)
        assert mat.shape == (16, 16)
        assert mat.rows_per_node == 2
        assert np.allclose(mat.blocks[3], a[6:8])

    def test_rejects_misaligned_rows(self, rng):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            RowBlockMatrix(dc, rng.normal(size=(9, 9)))
        with pytest.raises(ValueError):
            RowBlockMatrix(dc, rng.normal(size=(8,)))


class TestMatvec:
    @pytest.mark.parametrize("rows_per_node", [1, 2, 4])
    def test_matches_numpy(self, rows_per_node, rng):
        dc = DualCube(2)
        rows = 8 * rows_per_node
        a = rng.normal(size=(rows, rows))
        x = rng.normal(size=rows)
        mat = RowBlockMatrix(dc, a)
        assert np.allclose(distributed_matvec(mat, x), a @ x)

    def test_rectangular(self, rng):
        dc = DualCube(2)
        a = rng.normal(size=(8, 5))
        x = rng.normal(size=5)
        assert np.allclose(distributed_matvec(RowBlockMatrix(dc, a), x), a @ x)

    def test_shape_validation(self, rng):
        dc = DualCube(2)
        mat = RowBlockMatrix(dc, rng.normal(size=(8, 8)))
        with pytest.raises(ValueError):
            distributed_matvec(mat, np.ones(7))

    def test_communication_charged(self, rng):
        dc = DualCube(2)
        mat = RowBlockMatrix(dc, rng.normal(size=(8, 8)))
        c = CostCounters(dc.num_nodes)
        distributed_matvec(mat, rng.normal(size=8), counters=c)
        assert c.comm_steps == 2 * dc.n  # one allgather
        assert c.total_ops > 0


class TestPowerIteration:
    def test_finds_dominant_eigenvalue(self, rng):
        dc = DualCube(2)
        # Symmetric matrix with a known dominant eigenpair.
        q, _ = np.linalg.qr(rng.normal(size=(8, 8)))
        eigs = np.array([5.0, 2.0, 1.0, 0.5, 0.3, 0.2, 0.1, 0.05])
        a = q @ np.diag(eigs) @ q.T
        lam, vec, used = power_iteration(
            RowBlockMatrix(dc, a), iterations=500, tol=1e-12
        )
        assert lam == pytest.approx(5.0, rel=1e-6)
        assert np.allclose(a @ vec, lam * vec, atol=1e-4)

    def test_charges_one_allgather_and_allreduce_per_iteration(self, rng):
        dc = DualCube(2)
        a = np.diag(np.arange(1.0, 9.0))
        c = CostCounters(dc.num_nodes)
        _, _, used = power_iteration(
            RowBlockMatrix(dc, a), iterations=7, tol=0.0, counters=c
        )
        assert used == 7
        assert c.comm_steps == 7 * (2 * dc.n + 2 * dc.n)

    def test_requires_square(self, rng):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            power_iteration(RowBlockMatrix(dc, rng.normal(size=(8, 5))))

    def test_zero_matrix(self):
        dc = DualCube(2)
        lam, _, _ = power_iteration(RowBlockMatrix(dc, np.zeros((8, 8))))
        assert lam == 0.0
