"""Tests for the scan-application kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import enumerate_true, linear_recurrence, segmented_sum, stream_compact
from repro.simulator import CostCounters
from repro.topology import DualCube


class TestEnumerateTrue:
    def test_counts_preceding_flags(self):
        dc = DualCube(2)
        flags = [1, 0, 1, 1, 0, 0, 1, 0]
        got = enumerate_true(dc, flags)
        assert list(got) == [0, 1, 1, 2, 3, 3, 3, 4]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            enumerate_true(DualCube(2), [0, 1, 2, 0, 0, 0, 0, 0])

    def test_counters_exposed(self, rng):
        dc = DualCube(3)
        c = CostCounters(32)
        enumerate_true(dc, rng.integers(0, 2, 32), counters=c)
        assert c.comm_steps == 6


class TestStreamCompact:
    def test_preserves_order(self, rng):
        dc = DualCube(3)
        vals = rng.integers(0, 100, 32)
        got = stream_compact(dc, vals, lambda v: v > 50)
        assert list(got) == [v for v in vals if v > 50]

    def test_all_and_none_kept(self, rng):
        dc = DualCube(2)
        vals = rng.integers(0, 10, 8)
        assert list(stream_compact(dc, vals, lambda v: True)) == list(vals)
        assert list(stream_compact(dc, vals, lambda v: False)) == []

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            stream_compact(DualCube(2), np.arange(9), lambda v: True)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 99), min_size=8, max_size=8))
    def test_property(self, vals):
        dc = DualCube(2)
        got = stream_compact(dc, np.array(vals), lambda v: v % 3 == 0)
        assert list(got) == [v for v in vals if v % 3 == 0]


class TestLinearRecurrence:
    def test_matches_serial_solve(self, rng):
        dc = DualCube(3)
        a = rng.uniform(0.5, 1.5, 32)
        b = rng.uniform(-1.0, 1.0, 32)
        xs = linear_recurrence(dc, a, b, x0=3.0)
        x = 3.0
        for k in range(32):
            x = a[k] * x + b[k]
            assert xs[k] == pytest.approx(x, rel=1e-9, abs=1e-9)

    def test_constant_coefficients(self):
        dc = DualCube(2)
        xs = linear_recurrence(dc, np.ones(8), np.ones(8), x0=0.0)
        assert list(xs) == [float(k + 1) for k in range(8)]

    def test_pure_decay(self):
        dc = DualCube(2)
        xs = linear_recurrence(dc, np.full(8, 0.5), np.zeros(8), x0=1.0)
        assert xs[-1] == pytest.approx(0.5**8)

    def test_shape_validation(self):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            linear_recurrence(dc, np.ones(7), np.ones(8), 0.0)


class TestSegmentedSum:
    def test_restarts_at_heads(self):
        dc = DualCube(2)
        vals = np.array([1, 2, 3, 4, 5, 6, 7, 8], dtype=float)
        heads = np.array([1, 0, 0, 1, 0, 1, 0, 0])
        got = segmented_sum(dc, vals, heads)
        assert list(got) == [1, 3, 6, 4, 9, 6, 13, 21]

    def test_single_segment_is_plain_scan(self, rng):
        dc = DualCube(2)
        vals = rng.integers(0, 10, 8).astype(float)
        heads = np.zeros(8, dtype=int)
        heads[0] = 1
        got = segmented_sum(dc, vals, heads)
        assert np.allclose(got, np.cumsum(vals))

    def test_every_position_a_head(self, rng):
        dc = DualCube(2)
        vals = rng.integers(0, 10, 8).astype(float)
        got = segmented_sum(dc, vals, np.ones(8, dtype=int))
        assert list(got) == list(vals)

    def test_first_flag_required(self):
        dc = DualCube(2)
        with pytest.raises(ValueError, match="first element"):
            segmented_sum(dc, np.ones(8), np.zeros(8, dtype=int))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 9), min_size=8, max_size=8),
        st.lists(st.integers(0, 1), min_size=7, max_size=7),
    )
    def test_property_matches_serial(self, vals, tail_heads):
        dc = DualCube(2)
        heads = [1] + tail_heads
        got = segmented_sum(dc, np.array(vals, dtype=float), np.array(heads))
        acc = 0.0
        for k in range(8):
            acc = vals[k] if heads[k] else acc + vals[k]
            assert got[k] == pytest.approx(acc)
