"""Tests for order-statistics applications."""

import numpy as np
import pytest

from repro.apps import parallel_histogram, parallel_quantiles, parallel_top_k
from repro.simulator import CostCounters
from repro.topology import RecursiveDualCube


class TestQuantiles:
    def test_extremes_and_median(self, rng):
        rdc = RecursiveDualCube(3)
        keys = rng.integers(0, 1000, 32)
        q = parallel_quantiles(rdc, keys, [0.0, 0.5, 1.0])
        s = np.sort(keys)
        assert q[0] == s[0]
        assert q[1] == s[15]  # nearest-rank: ceil(0.5*32) - 1
        assert q[2] == s[31]

    def test_quantile_bounds_checked(self, rng):
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            parallel_quantiles(rdc, rng.integers(0, 9, 8), [1.5])

    def test_shape_checked(self):
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            parallel_quantiles(rdc, np.arange(7), [0.5])

    def test_counters_report_sort_cost(self, rng):
        from repro.analysis.complexity import dual_sort_comm_exact

        rdc = RecursiveDualCube(2)
        c = CostCounters(8)
        parallel_quantiles(rdc, rng.integers(0, 9, 8), [0.5], counters=c)
        assert c.comm_steps == dual_sort_comm_exact(2)


class TestTopK:
    def test_matches_sorted_tail(self, rng):
        rdc = RecursiveDualCube(3)
        keys = rng.permutation(32)
        got = parallel_top_k(rdc, keys, 5)
        assert list(got) == [31, 30, 29, 28, 27]

    def test_k_bounds(self, rng):
        rdc = RecursiveDualCube(2)
        keys = rng.integers(0, 9, 8)
        with pytest.raises(ValueError):
            parallel_top_k(rdc, keys, 0)
        with pytest.raises(ValueError):
            parallel_top_k(rdc, keys, 9)

    def test_k_equals_n(self, rng):
        rdc = RecursiveDualCube(2)
        keys = rng.integers(0, 100, 8)
        got = parallel_top_k(rdc, keys, 8)
        assert list(got) == sorted(keys, reverse=True)


class TestHistogram:
    def test_matches_numpy(self, rng):
        rdc = RecursiveDualCube(3)
        keys = rng.uniform(0, 100, 32)
        edges = [0, 20, 40, 60, 80, 100.0001]
        got = parallel_histogram(rdc, keys, edges)
        expect = np.histogram(keys, bins=edges)[0]
        assert list(got) == list(expect)
        assert got.sum() == 32

    def test_empty_bins(self):
        rdc = RecursiveDualCube(2)
        keys = np.full(8, 5.0)
        got = parallel_histogram(rdc, keys, [0, 1, 2, 10])
        assert list(got) == [0, 0, 8]

    def test_edges_must_increase(self, rng):
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            parallel_histogram(rdc, rng.uniform(0, 1, 8), [0, 0, 1])
        with pytest.raises(ValueError):
            parallel_histogram(rdc, rng.uniform(0, 1, 8), [0])
