"""Tests for sample sort on the dual-cube."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sample_sort import sample_sort
from repro.topology import DualCube


class TestSampleSort:
    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("b", [1, 4, 16])
    def test_sorts(self, n, b, rng):
        dc = DualCube(n)
        keys = rng.integers(0, 10**6, b * dc.num_nodes)
        out, _ = sample_sort(dc, keys)
        assert list(out) == sorted(keys)

    def test_stats_shape(self, rng):
        dc = DualCube(3)
        keys = rng.integers(0, 1000, 8 * 32)
        _, stats = sample_sort(dc, keys)
        assert stats.num_keys == 256
        assert stats.num_buckets == 32
        assert stats.max_bucket >= stats.min_bucket >= 0
        assert stats.max_bucket + stats.min_bucket <= stats.num_keys
        assert stats.imbalance >= 1.0
        assert 0 <= stats.avg_key_distance <= dc.diameter()

    def test_uniform_keys_balance_well(self, rng):
        dc = DualCube(3)
        keys = rng.permutation(64 * 32)
        _, stats = sample_sort(dc, keys, oversample=16)
        assert stats.imbalance < 2.0

    def test_skewed_keys_imbalance(self):
        """All-equal keys land in one bucket — the failure mode oblivious
        sorting never has."""
        dc = DualCube(2)
        keys = np.full(8 * 8, 7)
        out, stats = sample_sort(dc, keys)
        assert list(out) == [7] * 64
        assert stats.max_bucket == 64
        assert stats.imbalance == 8.0

    def test_key_distance_bounded_by_mean_distance_regime(self, rng):
        from repro.topology.metrics import average_distance

        dc = DualCube(3)
        keys = rng.permutation(32 * 32)
        _, stats = sample_sort(dc, keys, oversample=8)
        # Routing each key once: average hop count near the mean distance.
        assert stats.avg_key_distance <= average_distance(dc) + 1.5

    def test_oversample_improves_balance(self, rng):
        dc = DualCube(3)
        keys = rng.normal(size=64 * 32)
        _, low = sample_sort(dc, keys, oversample=1)
        _, high = sample_sort(dc, keys, oversample=32)
        assert high.imbalance <= low.imbalance + 1e-9

    def test_validation(self, rng):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            sample_sort(dc, rng.integers(0, 9, 9))
        with pytest.raises(ValueError):
            sample_sort(dc, rng.integers(0, 9, 16), oversample=0)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=16, max_size=16))
    def test_property_sorts(self, keys):
        dc = DualCube(2)
        out, _ = sample_sort(dc, np.array(keys * 1))
        assert list(out) == sorted(keys)
