"""Tests for broadcast and reduction collectives."""

import numpy as np
import pytest

from repro.core.arrangement import dearrange
from repro.core.ops import ADD, CONCAT, MAX
from repro.routing import (
    allreduce_engine,
    allreduce_vec,
    broadcast_engine,
    broadcast_steps,
    reduce_engine,
)
from repro.simulator import CostCounters
from repro.topology import DualCube


class TestBroadcast:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_every_node_receives_from_every_source(self, n):
        dc = DualCube(n)
        sources = list(dc.nodes()) if n <= 2 else [0, 7, 16, 31]
        for src in sources:
            got, res = broadcast_engine(dc, src, ("payload", src))
            assert got == [("payload", src)] * dc.num_nodes
            assert res.comm_steps == broadcast_steps(n) == 2 * n

    def test_broadcast_steps_match_diameter(self):
        for n in (2, 3, 4):
            assert broadcast_steps(n) == DualCube(n).diameter()

    def test_source_validated(self):
        with pytest.raises(ValueError):
            broadcast_engine(DualCube(2), 8, "x")

    def test_message_count_is_nodes_minus_source_plus_recross(self):
        dc = DualCube(2)
        _, res = broadcast_engine(dc, 0, "x")
        # Every node receives at least once; the final cross re-delivers to
        # the source class, so messages = (V-1) + (source cluster size).
        assert res.counters.messages == (dc.num_nodes - 1) + dc.nodes_per_cluster


class TestAllreduce:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_sum_everywhere(self, n, rng):
        dc = DualCube(n)
        vals = rng.integers(-100, 100, dc.num_nodes)
        tot, res = allreduce_engine(dc, [int(v) for v in vals], ADD)
        assert tot == [int(vals.sum())] * dc.num_nodes
        assert res.comm_steps == 2 * n

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_vec_matches_engine(self, n, rng):
        dc = DualCube(n)
        vals = rng.integers(0, 50, dc.num_nodes)
        tot, _ = allreduce_engine(dc, [int(v) for v in vals], ADD)
        vec = allreduce_vec(dc, vals, ADD)
        assert list(vec) == tot

    def test_max(self, rng):
        dc = DualCube(3)
        vals = rng.integers(-1000, 1000, 32)
        out = allreduce_vec(dc, vals, MAX)
        assert all(out == vals.max())

    def test_non_commutative_fold_order_is_arranged_order(self, dc):
        vals = np.empty(dc.num_nodes, dtype=object)
        vals[:] = [(u,) for u in dc.nodes()]
        expected = CONCAT.reduce(dearrange(dc, vals))
        tot, _ = allreduce_engine(dc, list(vals), CONCAT)
        assert all(t == expected for t in tot)
        vec = allreduce_vec(dc, vals, CONCAT)
        assert all(t == expected for t in vec)

    def test_vec_counters(self, rng):
        dc = DualCube(3)
        c = CostCounters(32)
        allreduce_vec(dc, rng.integers(0, 10, 32), ADD, counters=c)
        assert c.comm_steps == 6

    def test_shape_validation(self):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            allreduce_vec(dc, np.arange(7), ADD)
        with pytest.raises(ValueError):
            allreduce_engine(dc, [1, 2, 3], ADD)


class TestReduce:
    def test_reduce_returns_root_total(self, rng):
        dc = DualCube(2)
        vals = rng.integers(0, 100, 8)
        total, res = reduce_engine(dc, [int(v) for v in vals], ADD, root=5)
        assert total == int(vals.sum())
        assert res.comm_steps == 4

    def test_root_validated(self):
        with pytest.raises(ValueError):
            reduce_engine(DualCube(2), list(range(8)), ADD, root=8)
