"""Fault-tolerant routing under *link* failures (complements node faults)."""

import numpy as np
import pytest

from repro.routing.fault_tolerant import adaptive_route, ft_route
from repro.topology import DualCube, FaultSet, FaultyTopology


class TestLinkFaultRouting:
    @pytest.mark.parametrize("n", [2, 3])
    def test_survives_n_minus_1_link_faults(self, n):
        """Edge connectivity >= node connectivity = n, so n-1 dead links
        never disconnect the network."""
        dc = DualCube(n)
        for trial in range(25):
            rng = np.random.default_rng(77 * n + trial)
            fs = FaultSet.random(dc, 0, n - 1, rng)
            ft = FaultyTopology(dc, fs)
            u, v = (int(x) for x in rng.choice(dc.num_nodes, 2, replace=False))
            p = ft_route(ft, u, v)
            assert p is not None, (fs, u, v)
            for a, b in zip(p, p[1:]):
                assert ft.has_edge(a, b)

    def test_dead_cross_edge_forces_detour(self):
        dc = DualCube(3)
        u = dc.compose(0, 1, 2)
        v = dc.cross_partner(u)
        ft = FaultyTopology(dc, FaultSet(links=[(u, v)]))
        p = ft_route(ft, u, v)
        # The only cross-edge between u and v is dead; the detour must use
        # another node's cross-edge: at least 3 hops.
        assert p is not None
        assert len(p) - 1 >= 3

    def test_adaptive_handles_mixed_faults(self):
        dc = DualCube(3)
        rng = np.random.default_rng(5)
        fs = FaultSet.random(dc, 1, 2, rng)
        ft = FaultyTopology(dc, fs)
        healthy = ft.healthy_nodes()
        ok = 0
        for trial in range(20):
            t_rng = np.random.default_rng(trial)
            u, v = (int(x) for x in t_rng.choice(healthy, 2, replace=False))
            bfs = ft_route(ft, u, v)
            if bfs is None:
                continue
            walk = adaptive_route(ft, dc, u, v)
            assert walk is not None and walk[-1] == v
            ok += 1
        assert ok > 0

    def test_stretch_bounded_by_component_size(self):
        """Backtracking may walk long, but never beyond revisiting scope."""
        dc = DualCube(2)
        fs = FaultSet(links=[(0, 1)])
        ft = FaultyTopology(dc, fs)
        walk = adaptive_route(ft, dc, 0, 1)
        assert walk is not None
        assert walk[-1] == 1
        # On the 8-cycle with one dead link the detour is the long way.
        assert len(walk) - 1 == 7
