"""Tests for scatter / gather / allgather (experiment F2)."""

import numpy as np
import pytest

from repro.core.arrangement import arranged_index_v
from repro.routing.advanced_collectives import (
    allgather_engine,
    collective_steps,
    gather_engine,
    scatter_engine,
)
from repro.topology import DualCube


def arranged_order(dc, items):
    return [items[u] for u in np.argsort(arranged_index_v(dc))]


class TestScatter:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_every_node_gets_its_item(self, n):
        dc = DualCube(n)
        items = [f"item-{u}" for u in dc.nodes()]
        roots = list(dc.nodes()) if n <= 2 else [0, 5, 16, 31]
        for root in roots:
            got, res = scatter_engine(dc, root, items)
            assert got == items, (n, root)
            assert res.comm_steps == collective_steps(n) == 2 * n

    def test_steps_match_diameter(self):
        for n in (2, 3):
            assert collective_steps(n) == DualCube(n).diameter()

    def test_payload_accounting(self):
        dc = DualCube(2)
        items = list(range(8))
        _, res = scatter_engine(dc, 0, items)
        # Every item reaches its destination; total payload is bounded by
        # items times path length and at least one unit per non-root node.
        assert res.counters.payload_items >= dc.num_nodes - 1

    def test_root_validated(self):
        with pytest.raises(ValueError):
            scatter_engine(DualCube(2), 8, list(range(8)))

    def test_length_validated(self):
        with pytest.raises(ValueError):
            scatter_engine(DualCube(2), 0, list(range(7)))


class TestGather:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_root_collects_everything(self, n):
        dc = DualCube(n)
        values = [u * 10 + 1 for u in dc.nodes()]
        roots = list(dc.nodes()) if n <= 2 else [0, 7, 17, 31]
        for root in roots:
            collected, res = gather_engine(dc, root, values)
            assert collected == values, (n, root)
            assert res.comm_steps == 2 * n

    def test_gather_is_inverse_of_scatter(self, rng):
        dc = DualCube(2)
        items = [int(x) for x in rng.integers(0, 100, 8)]
        received, _ = scatter_engine(dc, 3, items)
        collected, _ = gather_engine(dc, 3, received)
        assert collected == items

    def test_length_validated(self):
        with pytest.raises(ValueError):
            gather_engine(DualCube(2), 0, list(range(9)))


class TestAllgather:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_everyone_gets_all_in_arranged_order(self, n):
        dc = DualCube(n)
        values = [f"v{u}" for u in dc.nodes()]
        lists, res = allgather_engine(dc, values)
        expected = arranged_order(dc, values)
        assert all(lst == expected for lst in lists)
        assert res.comm_steps == 2 * n

    def test_payload_doubles_per_round(self):
        dc = DualCube(3)
        values = list(range(32))
        _, res = allgather_engine(dc, values)
        # Recursive doubling moves V*2n/2-ish items overall; the largest
        # message carries half the data.
        assert res.counters.max_message_payload == dc.num_nodes // 2

    def test_length_validated(self):
        with pytest.raises(ValueError):
            allgather_engine(DualCube(2), list(range(7)))
