"""Property-based fault-tolerance campaign for the dual-cube routers.

D_n is n-connected, so with at most n-1 node faults the healthy subgraph
stays connected and every router must succeed between healthy endpoints.
Hypothesis drives random fault sets and endpoint pairs through D_2..D_4
checking: ``adaptive_route`` always succeeds, respects its ``max_hops``
bound, only walks healthy edges, and agrees with ``ft_route`` on
reachability; ``node_disjoint_paths`` yields exactly n internally
disjoint paths on the intact network.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.routing.fault_tolerant import (
    adaptive_route,
    ft_route,
    node_disjoint_paths,
)
from repro.topology import DualCube, FaultSet, FaultyTopology

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def faulted_scenario(draw, n):
    """(FaultSet of <= n-1 node faults, healthy endpoints u != v) on D_n."""
    dc = DualCube(n)
    num_faults = draw(st.integers(min_value=0, max_value=n - 1))
    faulty = draw(
        st.lists(
            st.integers(min_value=0, max_value=dc.num_nodes - 1),
            min_size=num_faults,
            max_size=num_faults,
            unique=True,
        )
    )
    healthy = sorted(set(range(dc.num_nodes)) - set(faulty))
    u = draw(st.sampled_from(healthy))
    v = draw(st.sampled_from(healthy))
    return FaultSet(nodes=faulty), u, v


def _walk_is_valid(ftopo, walk, u, v):
    assert walk[0] == u and walk[-1] == v
    for a, b in zip(walk, walk[1:]):
        assert ftopo.has_edge(a, b), f"walk used dead edge ({a}, {b})"


class TestAdaptiveRouteProperties:
    @pytest.mark.parametrize("n", [2, 3])
    @settings(max_examples=60, **COMMON)
    @given(data=st.data())
    def test_succeeds_under_max_node_faults(self, n, data):
        faults, u, v = data.draw(faulted_scenario(n))
        dc = DualCube(n)
        ftopo = FaultyTopology(dc, faults)
        walk = adaptive_route(ftopo, dc, u, v)
        assert walk is not None, (
            f"adaptive_route failed on D_{n} with {faults} for {u}->{v}"
        )
        _walk_is_valid(ftopo, walk, u, v)

    @pytest.mark.slow
    @settings(max_examples=25, **COMMON)
    @given(data=st.data())
    def test_succeeds_under_max_node_faults_d4(self, data):
        faults, u, v = data.draw(faulted_scenario(4))
        dc = DualCube(4)
        ftopo = FaultyTopology(dc, faults)
        walk = adaptive_route(ftopo, dc, u, v)
        assert walk is not None
        _walk_is_valid(ftopo, walk, u, v)

    @pytest.mark.parametrize("n", [2, 3])
    @settings(max_examples=40, **COMMON)
    @given(data=st.data())
    def test_walk_respects_max_hops_bound(self, n, data):
        faults, u, v = data.draw(faulted_scenario(n))
        dc = DualCube(n)
        ftopo = FaultyTopology(dc, faults)
        bound = 4 * dc.diameter() + 4 * faults.num_faults + 8
        walk = adaptive_route(ftopo, dc, u, v, max_hops=bound)
        assert walk is not None
        assert len(walk) - 1 <= bound

    @pytest.mark.parametrize("n", [2, 3])
    @settings(max_examples=40, **COMMON)
    @given(data=st.data())
    def test_agrees_with_ft_route_reachability(self, n, data):
        faults, u, v = data.draw(faulted_scenario(n))
        dc = DualCube(n)
        ftopo = FaultyTopology(dc, faults)
        bfs = ft_route(ftopo, u, v)
        walk = adaptive_route(ftopo, dc, u, v)
        # <= n-1 node faults never disconnect D_n, so both must succeed;
        # the greedy walk may backtrack but never beats the BFS shortest.
        assert bfs is not None and walk is not None
        assert len(walk) >= len(bfs)
        if u == v:
            assert walk == [u] == bfs


class TestNodeDisjointPathsProperties:
    @pytest.mark.parametrize("n", [2, 3])
    @settings(max_examples=25, **COMMON)
    @given(data=st.data())
    def test_exactly_n_disjoint_paths_on_intact_dn(self, n, data):
        dc = DualCube(n)
        u = data.draw(st.integers(min_value=0, max_value=dc.num_nodes - 1))
        v = data.draw(st.integers(min_value=0, max_value=dc.num_nodes - 1))
        if u == v:
            v = (v + 1) % dc.num_nodes
        paths = node_disjoint_paths(dc, u, v)
        assert len(paths) == n  # Menger: connectivity of D_n is exactly n
        interiors = [set(p[1:-1]) for p in paths]
        for i, a in enumerate(interiors):
            for b in interiors[i + 1:]:
                assert not (a & b), "paths share an interior node"
        for p in paths:
            assert p[0] == u and p[-1] == v
            for x, y in zip(p, p[1:]):
                assert dc.has_edge(x, y)

    @pytest.mark.slow
    @settings(max_examples=8, **COMMON)
    @given(data=st.data())
    def test_exactly_n_disjoint_paths_on_intact_d4(self, data):
        dc = DualCube(4)
        u = data.draw(st.integers(min_value=0, max_value=dc.num_nodes - 1))
        v = data.draw(st.integers(min_value=0, max_value=dc.num_nodes - 1))
        if u == v:
            v = (v + 1) % dc.num_nodes
        paths = node_disjoint_paths(dc, u, v)
        assert len(paths) == 4
