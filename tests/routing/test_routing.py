"""Tests for dual-cube shortest-path routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import route, route_length
from repro.routing.dualcube_routing import dimension_order_route
from repro.topology import DualCube
from repro.topology.metrics import bfs_distances


class TestRouteValidity:
    def test_exhaustive_small(self, dc):
        for u in dc.nodes():
            for v in dc.nodes():
                path = route(dc, u, v)  # validate=True checks hops + length
                assert path[0] == u and path[-1] == v

    def test_route_is_shortest_vs_bfs(self):
        dc = DualCube(3)
        dist = bfs_distances(dc, list(dc.nodes()))
        for u in dc.nodes():
            for v in dc.nodes():
                assert route_length(dc, u, v) == int(dist[u, v])

    def test_trivial_route(self):
        dc = DualCube(2)
        assert route(dc, 5, 5) == [5]
        assert route_length(dc, 5, 5) == 0

    def test_cross_edge_route(self):
        dc = DualCube(3)
        u = dc.compose(0, 2, 3)
        v = dc.cross_partner(u)
        assert route(dc, u, v) == [u, v]

    def test_intra_cluster_route_stays_in_cluster(self):
        dc = DualCube(3)
        u = dc.compose(0, 2, 0)
        v = dc.compose(0, 2, 3)
        path = route(dc, u, v)
        assert all(dc.cluster_key(w) == dc.cluster_key(u) for w in path)

    def test_same_class_route_uses_exactly_two_cross_edges(self):
        dc = DualCube(3)
        u = dc.compose(0, 0, 0)
        v = dc.compose(0, 3, 2)
        path = route(dc, u, v)
        crossings = sum(
            1
            for a, b in zip(path, path[1:])
            if dc.class_of(a) != dc.class_of(b)
        )
        assert crossings == 2

    def test_different_class_route_uses_one_cross_edge(self):
        dc = DualCube(3)
        u = dc.compose(0, 1, 2)
        v = dc.compose(1, 3, 0)
        path = route(dc, u, v)
        crossings = sum(
            1
            for a, b in zip(path, path[1:])
            if dc.class_of(a) != dc.class_of(b)
        )
        assert crossings == 1

    def test_node_validation(self):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            dimension_order_route(dc, 0, 99)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 2**9 - 1), st.integers(0, 2**9 - 1))
    def test_random_pairs_n5(self, u, v):
        dc = DualCube(5)
        path = route(dc, u, v)
        assert len(path) - 1 == dc.distance(u, v)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**13 - 1), st.integers(0, 2**13 - 1))
    def test_random_pairs_n7(self, u, v):
        dc = DualCube(7)
        path = route(dc, u, v)
        assert len(path) - 1 == dc.distance(u, v)

    def test_d1_routes(self):
        dc = DualCube(1)
        assert route(dc, 0, 1) == [0, 1]
        assert route(dc, 1, 0) == [1, 0]


class TestRouteShape:
    def test_no_repeated_nodes(self):
        dc = DualCube(4)
        for u, v in [(0, 127), (5, 99), (64, 3), (100, 100)]:
            path = route(dc, u, v)
            assert len(set(path)) == len(path)

    def test_path_within_diameter(self):
        dc = DualCube(4)
        for u in range(0, dc.num_nodes, 13):
            for v in range(0, dc.num_nodes, 17):
                assert route_length(dc, u, v) <= dc.diameter()
