"""Tests for the Hamiltonian-ring allreduce."""

import numpy as np
import pytest

from repro.core.ops import ADD, MAX
from repro.routing.ring_allreduce import ring_allreduce_engine, ring_allreduce_steps
from repro.topology import RecursiveDualCube


class TestRingAllreduce:
    @pytest.mark.parametrize("n", [2, 3])
    def test_elementwise_sum(self, n, rng):
        rdc = RecursiveDualCube(n)
        v = rdc.num_nodes
        vecs = rng.integers(0, 100, (v, v))
        results, res = ring_allreduce_engine(rdc, vecs.tolist(), ADD)
        expected = list(vecs.sum(axis=0))
        assert all(r == expected for r in results)
        assert res.comm_steps == ring_allreduce_steps(v) == 2 * (v - 1)

    def test_elementwise_max(self, rng):
        rdc = RecursiveDualCube(2)
        vecs = rng.integers(-50, 50, (8, 8))
        results, _ = ring_allreduce_engine(rdc, vecs.tolist(), MAX)
        assert results[0] == list(vecs.max(axis=0))

    def test_bandwidth_optimality_vs_tree(self, rng):
        """Per-node payload: ring moves 2(V-1) chunks vs the tree's 2nV."""
        n = 3
        rdc = RecursiveDualCube(n)
        v = rdc.num_nodes
        vecs = rng.integers(0, 10, (v, v))
        _, res = ring_allreduce_engine(rdc, vecs.tolist(), ADD)
        per_node_payload = res.counters.payload_items / v
        assert per_node_payload == 2 * (v - 1)
        tree_per_node = 2 * n * v  # full vector every round
        assert per_node_payload < tree_per_node

    def test_latency_worse_than_tree(self):
        """The tradeoff's other side: 2(V-1) steps vs the tree's 2n."""
        for n in (2, 3, 4):
            v = 2 ** (2 * n - 1)
            assert ring_allreduce_steps(v) > 2 * n

    def test_every_hop_is_one_link(self, rng):
        """Dilation-1 embedding: each ring step is one real link."""
        rdc = RecursiveDualCube(2)
        vecs = rng.integers(0, 10, (8, 8))
        from repro.simulator import Engine

        # run via run_spmd already validates links at request time; a
        # LinkError-free completion is the witness.
        results, res = ring_allreduce_engine(rdc, vecs.tolist(), ADD)
        assert res.counters.messages == 8 * 2 * 7

    def test_shape_validation(self):
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            ring_allreduce_engine(rdc, [[1, 2]] * 8, ADD)
        with pytest.raises(ValueError):
            ring_allreduce_engine(rdc, [[0] * 8] * 7, ADD)
