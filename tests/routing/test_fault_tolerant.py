"""Tests for fault-tolerant routing and connectivity (experiment F1)."""

import numpy as np
import pytest

from repro.routing.fault_tolerant import (
    adaptive_route,
    ft_route,
    node_connectivity,
    node_disjoint_paths,
)
from repro.topology import DualCube, FaultSet, FaultyTopology


def _walk_is_valid(ft, walk):
    for a, b in zip(walk, walk[1:]):
        assert ft.has_edge(a, b), (a, b)


class TestConnectivity:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_node_connectivity_is_n(self, n):
        assert node_connectivity(DualCube(n)) == n

    @pytest.mark.parametrize("n", [2, 3])
    def test_n_disjoint_paths_between_arbitrary_pairs(self, n, rng):
        dc = DualCube(n)
        for _ in range(10):
            u, v = rng.choice(dc.num_nodes, 2, replace=False)
            paths = node_disjoint_paths(dc, int(u), int(v))
            assert len(paths) == n
            # Internally disjoint.
            interiors = [set(p[1:-1]) for p in paths]
            for i in range(len(interiors)):
                for j in range(i + 1, len(interiors)):
                    assert not interiors[i] & interiors[j]
            for p in paths:
                assert p[0] == u and p[-1] == v
                for a, b in zip(p, p[1:]):
                    assert dc.has_edge(a, b)

    def test_disjoint_paths_rejects_equal_endpoints(self):
        with pytest.raises(ValueError):
            node_disjoint_paths(DualCube(2), 3, 3)


class TestFtRoute:
    def test_no_faults_matches_distance(self):
        dc = DualCube(3)
        ft = FaultyTopology(dc, FaultSet())
        for u in range(0, 32, 5):
            for v in range(0, 32, 7):
                p = ft_route(ft, u, v)
                assert len(p) - 1 == dc.distance(u, v)

    @pytest.mark.parametrize("n", [2, 3])
    def test_survives_n_minus_1_node_faults(self, n, rng):
        dc = DualCube(n)
        for trial in range(20):
            trial_rng = np.random.default_rng(100 * n + trial)
            fs = FaultSet.random(dc, n - 1, 0, trial_rng)
            ft = FaultyTopology(dc, fs)
            healthy = ft.healthy_nodes()
            u, v = trial_rng.choice(healthy, 2, replace=False)
            p = ft_route(ft, int(u), int(v))
            assert p is not None, (fs, u, v)
            _walk_is_valid(ft, p)

    def test_detects_disconnection(self):
        dc = DualCube(2)  # the 8-cycle: two node faults can disconnect it
        # Isolate node 1's two neighbors... find a separating pair.
        nbrs = dc.neighbors(0)
        ft = FaultyTopology(dc, FaultSet(nodes=list(nbrs)))
        other = [u for u in ft.healthy_nodes() if u != 0]
        assert all(ft_route(ft, 0, v) is None for v in other)

    def test_trivial_route(self):
        dc = DualCube(2)
        ft = FaultyTopology(dc, FaultSet())
        assert ft_route(ft, 5, 5) == [5]

    def test_faulty_endpoint_rejected(self):
        dc = DualCube(2)
        ft = FaultyTopology(dc, FaultSet(nodes=[0]))
        with pytest.raises(ValueError):
            ft_route(ft, 0, 5)


class TestAdaptiveRoute:
    def test_fault_free_is_near_greedy_shortest(self):
        dc = DualCube(3)
        ft = FaultyTopology(dc, FaultSet())
        for u in range(0, 32, 3):
            for v in range(0, 32, 5):
                walk = adaptive_route(ft, dc, u, v)
                assert walk is not None
                assert walk[0] == u and walk[-1] == v
                _walk_is_valid(ft, walk)

    @pytest.mark.parametrize("n", [2, 3])
    def test_succeeds_under_n_minus_1_faults(self, n):
        dc = DualCube(n)
        successes = trials = 0
        for trial in range(30):
            rng = np.random.default_rng(999 * n + trial)
            fs = FaultSet.random(dc, n - 1, 0, rng)
            ft = FaultyTopology(dc, fs)
            healthy = ft.healthy_nodes()
            u, v = rng.choice(healthy, 2, replace=False)
            if ft_route(ft, int(u), int(v)) is None:
                continue  # genuinely disconnected pair: skip
            trials += 1
            walk = adaptive_route(ft, dc, int(u), int(v))
            if walk is not None:
                assert walk[-1] == v
                _walk_is_valid(ft, walk)
                successes += 1
        # Backtracking DFS guided by distance always finds a path when one
        # exists (it explores the whole component in the worst case).
        assert successes == trials

    def test_faulty_endpoint_rejected(self):
        dc = DualCube(2)
        ft = FaultyTopology(dc, FaultSet(nodes=[2]))
        with pytest.raises(ValueError):
            adaptive_route(ft, dc, 2, 0)

    def test_returns_none_when_disconnected(self):
        dc = DualCube(2)
        nbrs = dc.neighbors(0)
        ft = FaultyTopology(dc, FaultSet(nodes=list(nbrs)))
        target = [u for u in ft.healthy_nodes() if u != 0][0]
        assert adaptive_route(ft, dc, 0, target) is None


class TestBroadcastDepth:
    def test_intact_equals_source_eccentricity(self):
        from repro.routing.fault_tolerant import broadcast_depth
        from repro.topology import FaultSet, FaultyTopology
        from repro.topology.metrics import bfs_distances

        dc = DualCube(3)
        ft = FaultyTopology(dc, FaultSet())
        for src in (0, 13, 31):
            expected = int(bfs_distances(dc, [src]).max())
            assert broadcast_depth(ft, src) == expected

    def test_disconnection_returns_none(self):
        from repro.routing.fault_tolerant import broadcast_depth
        from repro.topology import FaultSet, FaultyTopology

        dc = DualCube(2)
        nbrs = dc.neighbors(0)
        ft = FaultyTopology(dc, FaultSet(nodes=list(nbrs)))
        assert broadcast_depth(ft, 0) is None

    def test_faulty_source_rejected(self):
        from repro.routing.fault_tolerant import broadcast_depth
        from repro.topology import FaultSet, FaultyTopology

        dc = DualCube(2)
        ft = FaultyTopology(dc, FaultSet(nodes=[3]))
        import pytest as _pytest

        with _pytest.raises(ValueError):
            broadcast_depth(ft, 3)

    def test_depth_monotone_under_more_faults(self):
        from repro.routing.fault_tolerant import broadcast_depth
        from repro.topology import FaultSet, FaultyTopology

        dc = DualCube(3)
        base = broadcast_depth(FaultyTopology(dc, FaultSet()), 0)
        worse = broadcast_depth(
            FaultyTopology(dc, FaultSet(nodes=[1, 2])), 0
        )
        assert worse is None or worse >= base
