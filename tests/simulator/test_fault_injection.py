"""Fault-injection layer: FaultPlan schedules + engine recovery semantics.

Covers plan validation, determinism of the seeded drop/delay hash, the
engine's crash/cut/drop/delay/timeout behaviors under both matchers, and
the headline differential guarantee: an *empty* plan is byte-identical to
no plan at all.
"""

import pytest

from repro.core.dual_prefix import dual_prefix_engine, dual_prefix_program
from repro.core.dual_sort import dual_sort_engine
from repro.core.ops import ADD
from repro.simulator import (
    FAULTED,
    FaultPlan,
    Idle,
    Recv,
    RequestTimeoutError,
    RetryLimitError,
    Send,
    SendRecv,
    run_spmd,
    use_fault_plan,
    use_matching,
)
from repro.topology import DualCube, Hypercube, RecursiveDualCube

MATCHERS = ["indexed", "legacy"]


def pairswap(ctx):
    """Every rank swaps with its bit-0 neighbor (D_1 and hypercubes)."""
    peer = ctx.rank ^ 1
    got = yield SendRecv(peer, ctx.rank)
    return got


def _fingerprint(result):
    return {
        "returns": list(result.returns),
        "summary": result.counters.summary(),
        "sends": result.counters.sends.tolist(),
        "recvs": result.counters.recvs.tolist(),
        "active_cycles": result.counters.active_cycles,
        "crashed": result.crashed_ranks,
    }


class TestFaultPlanValidation:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(drop_rate=0.1).is_empty
        assert not FaultPlan(node_crashes={0: 1}).is_empty
        assert not FaultPlan(timeout=5).is_empty

    def test_self_loop_link_cut_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            FaultPlan(link_cuts={(3, 3): 1})

    def test_self_loop_drop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            FaultPlan(drops=[(2, 2, 1)])

    @pytest.mark.parametrize("kw", [
        {"drop_rate": -0.1},
        {"drop_rate": 1.5},
        {"delay_rate": 2.0},
        {"max_delay": 0},
        {"max_retries": -1},
        {"timeout": 0},
        {"on_timeout": "explode"},
        {"node_crashes": {0: 0}},
        {"link_cuts": {(0, 1): 0}},
        {"delays": {(0, 0): 0}},
    ])
    def test_bad_parameters_rejected(self, kw):
        with pytest.raises(ValueError):
            FaultPlan(**kw)

    def test_validate_for_checks_nodes_and_links(self):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            FaultPlan(node_crashes={dc.num_nodes: 1}).validate_for(dc)
        # (0, 3) differ in two bits: never a dual-cube edge.
        with pytest.raises(ValueError, match="not an edge"):
            FaultPlan(link_cuts={(0, 3): 1}).validate_for(dc)

    def test_link_cuts_normalized(self):
        plan = FaultPlan(link_cuts={(1, 0): 2})
        assert not plan.link_up(0, 1, 2)
        assert not plan.link_up(1, 0, 2)
        assert plan.link_up(0, 1, 1)  # before the cut fires


class TestDeterminism:
    def test_drop_verdicts_are_pure(self):
        a = FaultPlan(drop_rate=0.3, seed=11)
        b = FaultPlan(drop_rate=0.3, seed=11)
        verdicts_a = [a.dropped(s, d, c) for s in range(4) for d in range(4)
                      for c in range(1, 20) if s != d]
        verdicts_b = [b.dropped(s, d, c) for s in range(4) for d in range(4)
                      for c in range(1, 20) if s != d]
        assert verdicts_a == verdicts_b
        assert any(verdicts_a) and not all(verdicts_a)

    def test_different_seeds_differ(self):
        a = FaultPlan(drop_rate=0.5, seed=1)
        b = FaultPlan(drop_rate=0.5, seed=2)
        va = [a.dropped(0, 1, c) for c in range(1, 200)]
        vb = [b.dropped(0, 1, c) for c in range(1, 200)]
        assert va != vb

    def test_delay_draws_bounded(self):
        plan = FaultPlan(delay_rate=1.0, max_delay=3, seed=5)
        for r in range(8):
            for c in range(10):
                assert 1 <= plan.issue_delay(r, c) <= 3

    def test_explicit_delay_precedes_rate(self):
        plan = FaultPlan(delay_rate=1.0, max_delay=3, delays={(0, 0): 7})
        assert plan.issue_delay(0, 0) == 7


class TestEmptyPlanDifferential:
    """Empty FaultPlan == no plan, byte for byte, under both matchers."""

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_dual_prefix_identical(self, matching):
        dc = DualCube(2)
        vals = list(range(dc.num_nodes))
        with use_matching(matching):
            _, bare = dual_prefix_engine(dc, vals, ADD)
            with use_fault_plan(FaultPlan()):
                _, planned = dual_prefix_engine(dc, vals, ADD)
        assert _fingerprint(planned) == _fingerprint(bare)

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_dual_sort_identical(self, matching):
        rdc = RecursiveDualCube(2)
        keys = [(i * 5) % rdc.num_nodes for i in range(rdc.num_nodes)]
        with use_matching(matching):
            _, bare = dual_sort_engine(rdc, keys)
            with use_fault_plan(FaultPlan()):
                _, planned = dual_sort_engine(rdc, keys)
        assert _fingerprint(planned) == _fingerprint(bare)

    def test_empty_plan_keeps_fast_mode(self):
        from repro.simulator.engine import Engine
        dc = DualCube(1)
        eng = Engine(dc, pairswap, fault_plan=FaultPlan())
        assert eng.fast  # the pristine fast path stays eligible

    def test_active_plan_disables_fast_mode(self):
        from repro.simulator.engine import Engine
        dc = DualCube(1)
        eng = Engine(dc, pairswap, fault_plan=FaultPlan(drop_rate=0.1))
        assert not eng.fast
        with pytest.raises(ValueError, match="fast=True"):
            Engine(dc, pairswap, fast=True, fault_plan=FaultPlan(drop_rate=0.1))


class TestDropsAndRetries:
    @pytest.mark.parametrize("matching", MATCHERS)
    def test_explicit_drop_forces_one_retry(self, matching):
        dc = DualCube(1)
        plan = FaultPlan(drops={(0, 1, 1)})
        r = run_spmd(dc, pairswap, fault_plan=plan, matching=matching)
        assert r.comm_steps == 2  # one blocked cycle, then the retry lands
        assert r.counters.messages_dropped == 1
        assert r.counters.retries == 1
        assert r.returns[0] == 1 and r.returns[1] == 0

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_certain_drop_exhausts_retries(self, matching):
        dc = DualCube(1)
        plan = FaultPlan(drop_rate=1.0, max_retries=4)
        with pytest.raises(RetryLimitError) as exc:
            run_spmd(dc, pairswap, fault_plan=plan, matching=matching)
        assert exc.value.retries == 5

    def test_matchers_agree_under_seeded_drops(self):
        h = Hypercube(3)
        plan = FaultPlan(drop_rate=0.25, seed=3, max_retries=100)
        a = run_spmd(h, pairswap, fault_plan=plan, matching="indexed")
        b = run_spmd(h, pairswap, fault_plan=plan, matching="legacy")
        assert _fingerprint(a) == _fingerprint(b)
        assert a.counters.messages_dropped > 0

    def test_drop_blocks_both_sides_of_exchange(self):
        # Only 0->1 is scheduled to drop, but the whole SendRecv exchange
        # stays pending, so neither direction delivers that cycle.
        dc = DualCube(1)
        plan = FaultPlan(drops={(0, 1, 1)})
        r = run_spmd(dc, pairswap, fault_plan=plan, log_messages=True)
        cycle1 = [m for m in r.message_log if m.cycle == 1]
        assert all(0 not in (m.src, m.dst) for m in cycle1)


class TestDelays:
    @pytest.mark.parametrize("matching", MATCHERS)
    def test_explicit_delay_stretches_run(self, matching):
        dc = DualCube(1)
        plan = FaultPlan(delays={(0, 0): 3})
        r = run_spmd(dc, pairswap, fault_plan=plan, matching=matching)
        assert r.comm_steps == 3  # held for cycles 1-2, lands at 3
        assert r.returns[0] == 1

    def test_matchers_agree_under_seeded_delays(self):
        h = Hypercube(3)
        plan = FaultPlan(delay_rate=0.5, max_delay=2, seed=9)
        a = run_spmd(h, pairswap, fault_plan=plan, matching="indexed")
        b = run_spmd(h, pairswap, fault_plan=plan, matching="legacy")
        assert _fingerprint(a) == _fingerprint(b)


class TestCrashesAndTimeouts:
    @pytest.mark.parametrize("matching", MATCHERS)
    def test_crash_with_cancel_resumes_faulted(self, matching):
        dc = DualCube(1)
        plan = FaultPlan(node_crashes={1: 1}, timeout=3, on_timeout="cancel")
        r = run_spmd(dc, pairswap, fault_plan=plan, matching=matching)
        assert r.crashed_ranks == (1,)
        assert r.returns[0] is FAULTED
        assert r.returns[1] is None
        assert r.counters.node_crashes == 1
        assert r.counters.timeouts == 1

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_link_cut_timeout_raises(self, matching):
        dc = DualCube(1)
        plan = FaultPlan(link_cuts={(0, 1): 1}, timeout=2)
        with pytest.raises(RequestTimeoutError) as exc:
            run_spmd(dc, pairswap, fault_plan=plan, matching=matching)
        assert exc.value.rank in (0, 1)
        assert exc.value.timeout == 2

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_late_link_cut_lets_early_traffic_through(self, matching):
        h = Hypercube(1)

        def two_swaps(ctx):
            first = yield SendRecv(ctx.rank ^ 1, ("a", ctx.rank))
            second = yield SendRecv(ctx.rank ^ 1, ("b", ctx.rank))
            return (first, second)

        plan = FaultPlan(link_cuts={(0, 1): 2}, timeout=2, on_timeout="cancel")
        r = run_spmd(h, two_swaps, fault_plan=plan, matching=matching)
        assert r.returns[0][0] == ("a", 1)  # cycle 1 predates the cut
        assert r.returns[0][1] is FAULTED  # cycle 2 exchange never matches

    def test_cancelled_rank_can_reroute(self):
        # Rank 0's partner crashes; after FAULTED it reroutes the payload
        # to its other neighbor, exercising the recovery hook end-to-end.
        h = Hypercube(2)  # nodes 0..3, 0 is adjacent to 1 and 2

        def program(ctx):
            if ctx.rank == 0:
                got = yield SendRecv(1, "hello")
                if got is FAULTED:
                    got = yield SendRecv(2, "hello")
                return got
            if ctx.rank == 2:
                got = yield Idle()
                got = yield SendRecv(0, "fallback")
                return got
            if ctx.rank == 3:
                return None
            got = yield SendRecv(0, "primary")  # rank 1: crashes first
            return got

        plan = FaultPlan(node_crashes={1: 1}, timeout=1, on_timeout="cancel")
        r = run_spmd(h, program, fault_plan=plan)
        assert r.returns[0] == "fallback"
        assert r.returns[2] == "hello"
        assert r.crashed_ranks == (1,)

    def test_crash_before_any_cycle_discards_program(self):
        dc = DualCube(1)
        plan = FaultPlan(node_crashes={0: 1, 1: 1})
        r = run_spmd(dc, pairswap, fault_plan=plan)
        assert r.crashed_ranks == (0, 1)
        assert r.returns == [None] * dc.num_nodes


class TestTrafficFaults:
    def test_retransmissions_counted_and_deterministic(self):
        from repro.simulator.traffic import run_traffic
        dc = DualCube(2)
        from repro.routing.dualcube_routing import route
        pairs = [(0, 5), (3, 6), (1, 4)]
        plan = FaultPlan(drop_rate=0.3, seed=13, max_retries=50)
        a = run_traffic(dc, lambda u, v: route(dc, u, v), pairs, fault_plan=plan)
        b = run_traffic(dc, lambda u, v: route(dc, u, v), pairs, fault_plan=plan)
        clean = run_traffic(dc, lambda u, v: route(dc, u, v), pairs)
        assert a == b
        assert a.retransmissions > 0
        assert clean.retransmissions == 0
        assert a.total_hops == clean.total_hops + a.retransmissions

    def test_path_hops_exclude_retransmitted_attempts(self):
        """Regression: avg_hops used to inflate under a drop plan because
        retransmitted attempts were folded into the only hop total."""
        from repro.routing.dualcube_routing import route
        from repro.simulator.traffic import run_traffic
        dc = DualCube(2)
        pairs = [(0, 5), (3, 6), (1, 4)]
        plan = FaultPlan(drop_rate=0.3, seed=13, max_retries=50)
        a = run_traffic(dc, lambda u, v: route(dc, u, v), pairs, fault_plan=plan)
        clean = run_traffic(dc, lambda u, v: route(dc, u, v), pairs)
        # Logical hops: fault-independent, so a lossy run reports the same
        # path metrics as the clean run over the same pairs.
        assert a.path_hops == clean.path_hops == clean.total_hops
        assert a.avg_hops == clean.avg_hops
        # Physical hops: attempts included, and the two ledgers reconcile.
        assert a.total_hops == a.path_hops + a.retransmissions
        # Link-load metrics keep counting physical crossings.
        assert a.max_link_load >= clean.max_link_load
        assert a.load_imbalance > 0

    def test_certain_drop_exhausts_hop_retries(self):
        from repro.simulator.traffic import run_traffic
        dc = DualCube(1)
        plan = FaultPlan(drop_rate=1.0, max_retries=3)
        with pytest.raises(RetryLimitError):
            run_traffic(dc, lambda u, v: [u, v], [(0, 1)], fault_plan=plan)


class TestUseFaultPlan:
    def test_type_checked(self):
        with pytest.raises(TypeError):
            with use_fault_plan("not a plan"):
                pass

    def test_nested_runs_inherit_and_restore(self):
        dc = DualCube(1)
        plan = FaultPlan(drops={(0, 1, 1)})
        with use_fault_plan(plan):
            r = run_spmd(dc, pairswap)
            assert r.counters.messages_dropped == 1
        r = run_spmd(dc, pairswap)
        assert r.counters.messages_dropped == 0


class TestValidationGaps:
    """Schedule keys that can never fire are configuration bugs: reject
    them at construction instead of silently matching nothing."""

    @pytest.mark.parametrize("cycle", [0, -1, -7])
    def test_drop_trigger_cycle_before_first_match_rejected(self, cycle):
        # Messages first cross links at matching cycle 1; a trigger at
        # cycle 0 or below can never match an in-flight message.
        with pytest.raises(ValueError, match="cycle must be >= 1"):
            FaultPlan(drops=[(0, 1, cycle)])

    def test_drop_trigger_cycle_one_accepted(self):
        assert not FaultPlan(drops=[(0, 1, 1)]).is_empty

    def test_delay_negative_issue_cycle_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan(delays={(0, -1): 2})

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_delay_issue_cycle_zero_fires(self, matching):
        # Initial requests are issued at cycle 0, before the first
        # matching cycle, so (rank, 0) keys are real and must fire.
        h = Hypercube(1)
        plain = run_spmd(h, pairswap, matching=matching)
        delayed = run_spmd(
            h, pairswap, fault_plan=FaultPlan(delays={(0, 0): 4}),
            matching=matching,
        )
        assert delayed.returns == plain.returns
        assert delayed.comm_steps > plain.comm_steps

    def test_issue_delay_clamps_at_upper_boundary(self):
        # Regression: the draw used to wrap modulo max_delay, so a
        # uniform draw at the top of the window produced a 1-cycle delay
        # instead of the maximum.  The clamp keeps every draw in
        # [1, max_delay] and the extremes stay reachable.
        for max_delay in (1, 2, 3, 7):
            plan = FaultPlan(delay_rate=1.0, max_delay=max_delay, seed=13)
            seen = {
                plan.issue_delay(r, c) for r in range(16) for c in range(64)
            }
            assert min(seen) >= 1
            assert max(seen) <= max_delay
            if max_delay > 1:
                # A quarter of draws land in each band at rate 1.0; 1024
                # draws make missing either extreme astronomically rare.
                assert 1 in seen and max_delay in seen

    def test_issue_delay_pure_across_instances(self):
        a = FaultPlan(delay_rate=0.7, max_delay=5, seed=21)
        b = FaultPlan(delay_rate=0.7, max_delay=5, seed=21)
        draws_a = [a.issue_delay(r, c) for r in range(8) for c in range(32)]
        draws_b = [b.issue_delay(r, c) for r in range(8) for c in range(32)]
        assert draws_a == draws_b


class TestDowntimeValidation:
    def test_basic_downtime_accepted(self):
        plan = FaultPlan(downtimes=[(1, 2, 5)])
        assert not plan.is_empty
        assert plan.downtimes == {1: ((2, 5),)}

    @pytest.mark.parametrize("interval", [(5, 5), (5, 2), (-1, 3)])
    def test_degenerate_intervals_rejected(self, interval):
        with pytest.raises(ValueError):
            FaultPlan(downtimes=[(0, *interval)])

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            FaultPlan(downtimes=[(0, 1, 4), (0, 3, 6)])

    def test_touching_intervals_allowed_and_sorted(self):
        plan = FaultPlan(downtimes=[(0, 4, 6), (0, 1, 4)])
        assert plan.downtimes[0] == ((1, 4), (4, 6))
        assert all(plan.down(0, c) for c in range(1, 6))

    def test_validate_for_checks_ranks(self):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            FaultPlan(downtimes=[(dc.num_nodes, 1, 2)]).validate_for(dc)
        FaultPlan(downtimes=[(0, 1, 2)]).validate_for(dc)

    def test_down_interval_is_half_open(self):
        plan = FaultPlan(downtimes=[(3, 2, 4)])
        assert not plan.down(3, 1)
        assert plan.down(3, 2)
        assert plan.down(3, 3)
        assert not plan.down(3, 4)  # rejoined

    def test_crash_implies_down(self):
        plan = FaultPlan(node_crashes={2: 3})
        assert not plan.down(2, 2)
        assert plan.down(2, 3) and plan.down(2, 99)

    def test_link_up_consults_downtimes(self):
        plan = FaultPlan(downtimes=[(1, 2, 4)])
        assert plan.link_up(0, 1, 1)
        assert not plan.link_up(0, 1, 2)
        assert not plan.link_up(1, 0, 3)
        assert plan.link_up(0, 1, 4)

    def test_static_view_carries_downs(self):
        view = FaultPlan(downtimes=[(1, 2, 4), (0, 1, 2)]).static_view()
        assert view.downs == ((0, 1, 2), (1, 2, 4))
        assert not view.is_empty


class TestDowntimeEngine:
    @pytest.mark.parametrize("matching", MATCHERS)
    def test_downtime_stalls_but_preserves_results(self, matching):
        # An offline window only delays the exchange: the rejoined node
        # completes its program and every return value matches the
        # fault-free run.
        h = Hypercube(1)
        plain = run_spmd(h, pairswap, matching=matching)
        plan = FaultPlan(downtimes=[(1, 1, 5)])
        faulty = run_spmd(h, pairswap, fault_plan=plan, matching=matching)
        assert faulty.returns == plain.returns
        assert faulty.crashed_ranks == ()
        assert faulty.comm_steps >= plain.comm_steps + 4

    def test_matchers_agree_under_downtimes(self):
        dc = DualCube(2)
        vals = list(range(dc.num_nodes))
        plan = dict(downtimes=[(3, 2, 6), (5, 1, 3), (5, 7, 9)])
        fps = {
            m: _fingerprint(
                run_spmd(
                    dc,
                    dual_prefix_program(dc, vals, ADD),
                    fault_plan=FaultPlan(**plan),
                    matching=m,
                )
            )
            for m in MATCHERS
        }
        assert fps["indexed"] == fps["legacy"]

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_dual_prefix_values_survive_churn(self, matching):
        dc = DualCube(2)
        vals = list(range(dc.num_nodes))
        expect, _ = dual_prefix_engine(dc, vals, ADD)
        plan = FaultPlan(downtimes=[(0, 2, 4), (6, 3, 7)])
        with use_fault_plan(plan):
            with use_matching(matching):
                got, _ = dual_prefix_engine(dc, vals, ADD)
        assert list(got) == list(expect)

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_partner_timeout_can_fire_while_peer_is_down(self, matching):
        # The held (offline) rank's own clock is suspended, but a healthy
        # partner waiting on it still times out like any other stall.
        h = Hypercube(1)
        plan = FaultPlan(
            downtimes=[(1, 1, 9)], timeout=3, on_timeout="raise"
        )
        with pytest.raises(RequestTimeoutError):
            run_spmd(h, pairswap, fault_plan=plan, matching=matching)

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_down_rank_does_not_timeout_while_offline(self, matching):
        # With cancel semantics the down rank must not burn its timeout
        # budget while offline: after rejoining, the exchange completes.
        h = Hypercube(1)
        plan = FaultPlan(
            downtimes=[(1, 1, 3)], timeout=10, on_timeout="cancel"
        )
        r = run_spmd(h, pairswap, fault_plan=plan, matching=matching)
        assert r.returns == [1, 0]
