"""Tests for the random-traffic experiment module."""

import numpy as np
import pytest

from repro.routing import route
from repro.simulator.traffic import (
    TrafficStats,
    hypercube_dimension_order_path,
    random_pairs,
    run_traffic,
)
from repro.topology import DualCube, Hypercube


class TestRandomPairs:
    def test_count_and_range(self, rng):
        pairs = random_pairs(32, 100, rng)
        assert len(pairs) == 100
        assert all(0 <= u < 32 and 0 <= v < 32 for u, v in pairs)

    def test_excludes_self_by_default(self, rng):
        pairs = random_pairs(4, 200, rng)
        assert all(u != v for u, v in pairs)

    def test_self_allowed_when_requested(self, rng):
        pairs = random_pairs(2, 300, rng, exclude_self=False)
        assert any(u == v for u, v in pairs)

    def test_single_node_exclude_self_raises(self, rng):
        """Regression: this used to spin in the rejection loop forever."""
        with pytest.raises(ValueError, match="exclude_self"):
            random_pairs(1, 5, rng)

    def test_single_node_self_pairs_ok(self, rng):
        assert random_pairs(1, 3, rng, exclude_self=False) == [(0, 0), (0, 0), (0, 0)]

    def test_zero_count_is_fine_even_for_single_node(self, rng):
        assert random_pairs(1, 0, rng) == []

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError, match="num_nodes"):
            random_pairs(0, 5, rng)
        with pytest.raises(ValueError, match="count"):
            random_pairs(4, -1, rng)

    def test_budget_exhaustion_is_value_error(self):
        """Regression: a pathological rng used to raise RuntimeError; the
        library-errors convention (PR 4) says bad inputs are ValueError."""

        class _StuckRng:
            def integers(self, lo, hi):
                return 0  # every draw is a self-pair, always rejected

        with pytest.raises(ValueError, match="attempt budget"):
            random_pairs(4, 3, _StuckRng())


class TestDimensionOrderPath:
    def test_fixes_bits_low_to_high(self):
        assert hypercube_dimension_order_path(0b000, 0b101) == [0b000, 0b001, 0b101]

    def test_trivial(self):
        assert hypercube_dimension_order_path(5, 5) == [5]

    def test_length_is_hamming(self, rng):
        for _ in range(50):
            u, v = rng.integers(0, 64, 2)
            p = hypercube_dimension_order_path(int(u), int(v))
            assert len(p) - 1 == bin(u ^ v).count("1")


class TestRunTraffic:
    def test_stats_on_known_batch(self):
        cube = Hypercube(2)
        # Dimension-order: 0 -> 1 -> 3 and 3 -> 2 -> 0 (bit 0 first), so
        # the two routes use disjoint sides of the square.
        pairs = [(0, 3), (3, 0)]
        stats = run_traffic(cube, hypercube_dimension_order_path, pairs)
        assert stats.num_pairs == 2
        assert stats.total_hops == 4
        assert stats.avg_hops == 2.0
        assert stats.max_link_load == 1
        assert stats.loaded_links == 4
        assert stats.num_links == 4
        # Same pair twice does collide.
        stats2 = run_traffic(cube, hypercube_dimension_order_path, [(0, 3), (0, 3)])
        assert stats2.max_link_load == 2

    def test_dual_cube_router_validates(self, rng):
        dc = DualCube(3)
        pairs = random_pairs(32, 100, rng)
        stats = run_traffic(dc, lambda u, v: route(dc, u, v), pairs)
        assert stats.avg_hops <= dc.diameter()
        assert stats.loaded_links <= stats.num_links == 48

    def test_bad_router_endpoints_rejected(self):
        cube = Hypercube(2)
        with pytest.raises(ValueError, match="endpoints"):
            run_traffic(cube, lambda u, v: [u, u ^ 1], [(0, 3)])

    def test_non_edge_path_rejected(self):
        cube = Hypercube(2)
        with pytest.raises(ValueError, match="non-edge"):
            run_traffic(cube, lambda u, v: [u, v], [(0, 3)])

    def test_empty_path_names_router_and_pair(self):
        """Regression: a router returning [] used to crash with a bare
        IndexError deep in the hop loop."""

        def broken_router(u, v):
            return []

        with pytest.raises(ValueError) as exc:
            run_traffic(Hypercube(2), broken_router, [(1, 2)])
        msg = str(exc.value)
        assert "broken_router" in msg
        assert "(1, 2)" in msg
        assert "Q_2" in msg

    def test_none_path_treated_as_unroutable(self):
        with pytest.raises(ValueError, match="empty path"):
            run_traffic(Hypercube(2), lambda u, v: None, [(0, 1)])

    def test_empty_batch(self):
        stats = run_traffic(Hypercube(2), hypercube_dimension_order_path, [])
        assert stats.avg_hops == 0.0
        assert stats.max_link_load == 0
        assert stats.load_imbalance == 0.0

    def test_row_shape(self, rng):
        dc = DualCube(2)
        stats = run_traffic(
            dc, lambda u, v: route(dc, u, v), random_pairs(8, 20, rng)
        )
        row = stats.row()
        assert row[0] == "D_2"
        assert len(row) == 9
        # Fault-free: no retransmissions, path hops equal physical hops.
        assert row[7] == 0
        assert row[8] == stats.total_hops

    def test_row_surfaces_fault_accounting(self):
        """Regression: the row used to omit retransmissions and path_hops,
        so a fault run's table rendered identically to the fault-free one."""
        from repro.simulator import FaultPlan

        cube = Hypercube(2)
        pairs = [(0, 3)] * 40
        plan = FaultPlan(drop_rate=0.3, seed=11, max_retries=100)
        clean = run_traffic(cube, hypercube_dimension_order_path, pairs)
        faulty = run_traffic(
            cube, hypercube_dimension_order_path, pairs, fault_plan=plan
        )
        assert faulty.retransmissions > 0
        assert faulty.row() != clean.row()
        # The appended columns carry exactly the fault accounting.
        assert faulty.row()[7] == faulty.retransmissions
        assert faulty.row()[8] == clean.row()[8] == clean.path_hops

    def test_average_hops_tracks_average_distance(self, rng):
        """Uniform traffic's mean hops converges to the mean distance."""
        from repro.topology.metrics import average_distance

        dc = DualCube(2)
        pairs = random_pairs(8, 3000, rng)
        stats = run_traffic(dc, lambda u, v: route(dc, u, v), pairs)
        assert stats.avg_hops == pytest.approx(average_distance(dc), rel=0.1)
