"""Tests for cost counters, payload sizing, and the trace recorder."""

import pytest

from repro.simulator import CostCounters, Packed, TraceRecorder
from repro.simulator.counters import payload_size


class TestPayloadSize:
    def test_none_is_zero(self):
        assert payload_size(None) == 0

    def test_scalar_is_one(self):
        assert payload_size(42) == 1
        assert payload_size("key") == 1

    def test_plain_tuples_are_single_values(self):
        # A tuple *value* (e.g. a CONCAT partial result) is one item; only
        # the explicit Packed container counts as a multi-key message.
        assert payload_size((1, 2)) == 1
        assert payload_size([1, 2, 3]) == 1

    def test_packed_counts_items(self):
        assert payload_size(Packed((1, 2))) == 2
        assert payload_size(Packed(())) == 0
        assert len(Packed((1, 2, 3))) == 3
        assert Packed((1, 2)) == Packed((1, 2))
        assert Packed((1, 2)) != Packed((2, 1))
        assert Packed((1,)) != (1,)


class TestCostCounters:
    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            CostCounters(0)

    def test_engine_side_recording(self):
        c = CostCounters(4)
        c.record_delivery(0, 1, "x")
        c.record_delivery(2, 3, Packed((1, 2)))
        c.record_cycle(deliveries=2)
        c.record_cycle(deliveries=0)
        assert c.cycles == 2
        assert c.active_cycles == 1
        assert c.messages == 2
        assert c.payload_items == 3
        assert c.max_message_payload == 2
        assert list(c.sends) == [1, 0, 1, 0]
        assert list(c.recvs) == [0, 1, 0, 1]

    def test_compute_recording(self):
        c = CostCounters(3)
        c.record_compute(0, 2)
        c.record_compute(0, 1)
        c.record_compute(2, 5)
        assert c.comp_steps == 2
        assert c.max_node_ops == 5
        assert c.total_ops == 8

    def test_compute_rejects_negative_ops(self):
        with pytest.raises(ValueError):
            CostCounters(2).record_compute(0, -1)

    def test_vectorized_side_recording(self):
        c = CostCounters(8)
        c.record_comm_step(messages=8)
        c.record_comm_step(messages=4, payload_items=8, max_payload=2)
        c.record_comp_step(ops_each=2)
        c.record_comp_step(ops_each=1, ranks=[0, 1])
        assert c.comm_steps == 2
        assert c.messages == 12
        assert c.payload_items == 16
        assert c.max_message_payload == 2
        assert c.comp_steps == 2  # ranks 0-1 did two rounds
        assert c.max_node_ops == 3

    def test_comp_step_duplicate_ranks_all_counted(self):
        """Regression: buffered fancy indexing collapsed duplicate ranks,
        so a node doing several rounds in one call was undercounted."""
        c = CostCounters(4)
        c.record_comp_step(ops_each=1, ranks=[1, 1, 2])
        assert c.comp_steps == 2  # rank 1 did two rounds
        assert c.total_ops == 3
        assert c.max_node_ops == 2

    def test_comp_step_duplicate_ranks_accumulate_ops(self):
        c = CostCounters(3)
        c.record_comp_step(ops_each=5, ranks=[0, 0, 0, 2])
        c.record_comp_step(ops_each=1, ranks=[2])
        assert c.comp_steps == 3
        assert c.max_node_ops == 15
        assert c.total_ops == 21

    def test_record_bulk_matches_per_event_recording(self):
        per_event = CostCounters(4)
        per_event.record_delivery(0, 1, Packed((1, 2)))
        per_event.record_delivery(2, 3, "x")
        per_event.record_cycle(deliveries=2)
        per_event.record_cycle(deliveries=0)

        bulk = CostCounters(4)
        bulk.record_bulk(
            cycles=2,
            active_cycles=1,
            messages=2,
            payload_items=3,
            max_message_payload=2,
            sends=[1, 0, 1, 0],
            recvs=[0, 1, 0, 1],
        )
        assert bulk.summary() == per_event.summary()
        assert list(bulk.sends) == list(per_event.sends)
        assert list(bulk.recvs) == list(per_event.recvs)
        assert bulk.active_cycles == per_event.active_cycles

    def test_record_bulk_keeps_existing_max_payload(self):
        c = CostCounters(2)
        c.record_delivery(0, 1, Packed((1, 2, 3)))
        c.record_bulk(
            cycles=1,
            active_cycles=1,
            messages=1,
            payload_items=1,
            max_message_payload=1,
            sends=[0, 1],
            recvs=[1, 0],
        )
        assert c.max_message_payload == 3

    def test_zero_message_step_not_active(self):
        c = CostCounters(2)
        c.record_comm_step(messages=0)
        assert c.cycles == 1
        assert c.active_cycles == 0

    def test_summary_keys(self):
        s = CostCounters(2).summary()
        assert set(s) == {
            "comm_steps",
            "comp_steps",
            "messages",
            "payload_items",
            "max_message_payload",
            "max_node_ops",
            "total_ops",
            "messages_dropped",
            "retries",
            "timeouts",
            "node_crashes",
        }

    def test_fault_counter_hooks(self):
        c = CostCounters(2)
        c.record_drop()
        c.record_drop()
        c.record_timeout()
        c.record_crash()
        s = c.summary()
        assert s["messages_dropped"] == 2
        assert s["retries"] == 2
        assert s["timeouts"] == 1
        assert s["node_crashes"] == 1

    def test_repr_contains_summary(self):
        assert "comm_steps=0" in repr(CostCounters(2))


class TestTraceRecorder:
    def test_record_and_snapshot(self):
        t = TraceRecorder()
        for r in range(4):
            t.record("a", r, r * r)
        assert t.labels() == ("a",)
        assert t.snapshot("a", 4) == [0, 1, 4, 9]
        assert t.depth("a") == 1

    def test_record_array(self):
        t = TraceRecorder()
        t.record_array("x", [5, 6, 7])
        assert t.snapshot("x", 3) == [5, 6, 7]

    def test_series_in_order(self):
        t = TraceRecorder()
        t.record_array("x", [1, 2])
        t.record_array("x", [3, 4])
        assert t.series("x", 2) == [[1, 2], [3, 4]]
        assert t.depth("x") == 2

    def test_labels_preserve_first_seen_order(self):
        t = TraceRecorder()
        t.record("b", 0, 1)
        t.record("a", 0, 1)
        t.record("b", 0, 2)
        assert t.labels() == ("b", "a")

    def test_incomplete_snapshot_raises(self):
        t = TraceRecorder()
        t.record("x", 0, 1)
        with pytest.raises(KeyError, match="rank 1"):
            t.snapshot("x", 2)

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            TraceRecorder().snapshot("missing", 1)

    def test_unknown_label_lists_known_labels(self):
        """Regression: a bare ``KeyError: 'label'`` said nothing about what
        *was* recorded; the message now enumerates the known labels."""
        t = TraceRecorder()
        t.record_array("input", [1, 2])
        t.record_array("output", [3, 4])
        for call in (
            lambda: t.snapshot("step 1", 2),
            lambda: t.depth("step 1"),
            lambda: t.series("step 1", 2),
        ):
            with pytest.raises(KeyError, match="'input', 'output'"):
                call()

    def test_unknown_label_on_empty_recorder_says_none(self):
        with pytest.raises(KeyError, match="<none>"):
            TraceRecorder().depth("x")

    def test_record_array_validates_length(self):
        t = TraceRecorder(num_nodes=4)
        with pytest.raises(ValueError, match="expects exactly 4"):
            t.record_array("x", [1, 2, 3])
        with pytest.raises(ValueError, match="expects exactly 4"):
            t.record_array("x", [1, 2, 3, 4, 5])
        # Nothing was recorded by the rejected snapshots.
        assert t.labels() == ()
        t.record_array("x", [1, 2, 3, 4])
        assert t.snapshot("x", 4) == [1, 2, 3, 4]

    def test_record_array_validates_generators(self):
        # The iterable is materialized before the check, so a too-short
        # generator is caught just like a list.
        t = TraceRecorder(num_nodes=3)
        with pytest.raises(ValueError, match="has 2 values"):
            t.record_array("x", (v for v in [1, 2]))

    def test_record_array_unsized_recorder_accepts_any_length(self):
        t = TraceRecorder()
        t.record_array("x", [1, 2])
        assert t.snapshot("x", 2) == [1, 2]

    def test_bad_num_nodes_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            TraceRecorder(num_nodes=0)
        with pytest.raises(ValueError, match="positive"):
            TraceRecorder(num_nodes=-3)
