"""Cross-validation against :func:`run_traffic`, plus serving-core units.

The batch router and the queueing simulator are two views of the same
routed traffic.  A *closed-batch* serving run — every request at t=0,
unbounded queues, no deadlines — must serve exactly the hop crossings
``run_traffic`` counts: identical per-link load Counter (compared via
its derived aggregates: sum, max, mean, support) and identical
``path_hops``, with or without a fault plan.  That equality is what
licenses reading E18's serving numbers alongside E11's batch numbers.
"""

import numpy as np
import pytest

from repro.routing import route
from repro.simulator import FaultPlan
from repro.simulator.serving import (
    ServingConfig,
    bfs_router,
    find_saturation,
    onoff_arrivals,
    open_loop_pairs,
    run_serving,
    trace_arrivals,
)
from repro.simulator.traffic import (
    hypercube_dimension_order_path,
    run_traffic,
)
from repro.topology import DualCube, Hypercube, Metacube


def _closed_batch(topo, router, pairs, *, plan=None):
    arrivals = np.zeros(len(pairs))
    return run_serving(topo, router, arrivals, pairs, fault_plan=plan)


class TestClosedBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_reproduces_run_traffic_exactly(self, seed):
        dc = DualCube(2)
        router = lambda u, v: route(dc, u, v)
        pairs = open_loop_pairs(dc, 200, seed=seed)

        batch = run_traffic(dc, router, pairs)
        served = _closed_batch(dc, router, pairs)

        assert served.path_hops == batch.path_hops
        assert served.hops_served == batch.total_hops
        # The load Counter, compared through every aggregate run_traffic
        # derives from it.
        loads = served.link_loads
        assert sum(loads.values()) == batch.total_hops
        assert max(loads.values()) == batch.max_link_load
        assert len(loads) == batch.loaded_links
        assert float(np.mean(list(loads.values()))) == pytest.approx(
            batch.mean_link_load
        )
        # Closed batch with infinite queues: everything completes.
        assert served.completions == len(pairs)
        assert served.drops == served.deadline_misses == served.in_flight == 0

    def test_fault_plan_reproduces_bit_for_bit_on_single_link(self):
        """Both engines key the drop schedule by a global attempt counter.
        On a single link, crossings happen in the same sequential order in
        both, so one plan yields the identical retransmission schedule."""
        cube = Hypercube(1)
        pairs = [(0, 1)] * 120
        plan = FaultPlan(drop_rate=0.1, seed=13, max_retries=100)

        batch = run_traffic(
            cube, hypercube_dimension_order_path, pairs, fault_plan=plan
        )
        served = _closed_batch(
            cube, hypercube_dimension_order_path, pairs, plan=plan
        )

        assert batch.retransmissions > 0
        assert served.retransmissions == batch.retransmissions
        assert served.hops_served == batch.total_hops
        assert served.path_hops == batch.path_hops
        assert served.link_loads == {(0, 1): batch.total_hops}

    def test_fault_plan_accounting_identities_multihop(self):
        """Across a multi-link topology the two engines interleave
        crossings differently, so retransmission *schedules* diverge —
        but the serving-side accounting identities must still hold."""
        cube = Hypercube(3)
        pairs = open_loop_pairs(cube, 150, seed=5)
        plan = FaultPlan(drop_rate=0.1, seed=13, max_retries=100)

        served = _closed_batch(
            cube, hypercube_dimension_order_path, pairs, plan=plan
        )
        assert served.retransmissions > 0
        assert served.hops_served == served.path_hops + served.retransmissions
        assert sum(served.link_loads.values()) == served.hops_served
        assert served.conservation_ok()

    def test_bfs_router_agrees_with_closed_form_lengths(self):
        """The generic BFS fallback routes shortest paths, so the serving
        hop totals match the closed-form dual-cube router's."""
        dc = DualCube(2)
        pairs = open_loop_pairs(dc, 100, seed=3)
        closed = _closed_batch(dc, lambda u, v: route(dc, u, v), pairs)
        generic = _closed_batch(dc, bfs_router(dc), pairs)
        assert generic.path_hops == closed.path_hops


class TestServingCore:
    def test_capacity_zero_drops_everything_queued(self):
        """capacity=0: only the in-service slot exists; a second
        simultaneous request on the same link is dropped on arrival."""
        cube = Hypercube(1)
        pairs = [(0, 1), (0, 1)]
        cfg = ServingConfig(queue_capacity=0)
        stats = run_serving(
            cube, hypercube_dimension_order_path, [0.0, 0.0], pairs, config=cfg
        )
        assert stats.completions == 1
        assert stats.drops == 1
        assert stats.conservation_ok()

    def test_deadline_miss_is_not_goodput(self):
        cube = Hypercube(1)
        pairs = [(0, 1)] * 4
        cfg = ServingConfig(deadline=2.5)
        stats = run_serving(
            cube, hypercube_dimension_order_path, [0.0] * 4, pairs, config=cfg
        )
        # Service completions at t=1,2,3,4: two in deadline, two late.
        assert stats.completions == 2
        assert stats.deadline_misses == 2
        assert stats.goodput == pytest.approx(2 / 4.0)
        assert stats.finished == 4

    def test_self_pair_completes_instantly(self):
        cube = Hypercube(2)
        stats = run_serving(
            cube, hypercube_dimension_order_path, [1.0], [(2, 2)]
        )
        assert stats.completions == 1
        assert stats.hops_served == 0
        assert stats.max_sojourn == 0.0

    def test_horizon_truncates_arrivals(self):
        cube = Hypercube(1)
        cfg = ServingConfig(horizon=2.0)
        stats = run_serving(
            cube,
            hypercube_dimension_order_path,
            [0.0, 1.0, 5.0],
            [(0, 1)] * 3,
            config=cfg,
        )
        assert stats.arrivals == 2
        assert stats.elapsed == 2.0

    def test_block_with_finite_capacity_requires_horizon(self):
        cfg = ServingConfig(queue_capacity=1, policy="block")
        with pytest.raises(ValueError, match="horizon"):
            run_serving(
                Hypercube(1), hypercube_dimension_order_path, [0.0], [(0, 1)],
                config=cfg,
            )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            run_serving(
                Hypercube(1), hypercube_dimension_order_path, [0.0, 1.0],
                [(0, 1)],
            )

    def test_bad_trace_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            trace_arrivals([1.0, 0.5])
        with pytest.raises(ValueError, match="finite"):
            trace_arrivals([0.0, float("nan")])
        with pytest.raises(ValueError, match="1-D"):
            trace_arrivals([[0.0], [1.0]])

    def test_config_validation(self):
        with pytest.raises(ValueError, match="service_time"):
            ServingConfig(service_time=0)
        with pytest.raises(ValueError, match="policy"):
            ServingConfig(policy="shed")
        with pytest.raises(ValueError, match="queue_capacity"):
            ServingConfig(queue_capacity=-1)
        with pytest.raises(ValueError, match="deadline"):
            ServingConfig(deadline=0.0)

    def test_onoff_long_run_rate(self):
        times = onoff_arrivals(2.0, 20_000, seed=9)
        assert len(times) / times[-1] == pytest.approx(2.0, rel=0.1)
        assert (np.diff(times) >= 0).all()

    def test_row_shape(self):
        stats = _closed_batch(
            Hypercube(1), hypercube_dimension_order_path, [(0, 1)]
        )
        row = stats.row()
        assert row[0] == "Q_1"
        assert len(row) == 10


class TestFindSaturation:
    def test_validation(self):
        cube = Hypercube(1)
        router = hypercube_dimension_order_path
        with pytest.raises(ValueError, match="requests"):
            find_saturation(cube, router, requests=10)
        with pytest.raises(ValueError, match="max_requests"):
            find_saturation(cube, router, requests=200, max_requests=100)
        with pytest.raises(ValueError, match="rel_tol"):
            find_saturation(cube, router, rel_tol=1.5)

    def test_single_link_knee_is_deterministic_and_sane(self):
        """Q_1 is two M/D/1 queues; the per-node knee sits below the
        service rate (1.0) and the sweep reproduces itself exactly."""
        cube = Hypercube(1)
        kw = dict(requests=100, max_requests=600, window=60.0, seed=4)
        a = find_saturation(cube, hypercube_dimension_order_path, **kw)
        b = find_saturation(cube, hypercube_dimension_order_path, **kw)
        assert a == b
        assert 0.0 < a.rate < 1.0
        assert a.rate <= a.diverged_rate
        assert (a.diverged_rate - a.rate) <= 0.05 * a.diverged_rate
        # The probe log is the audit trail: monotone bracket endpoints.
        assert a.probes[0][0] == 0.01

    @pytest.mark.serving_slow
    def test_e18_dualcube_vs_hypercube_vs_metacube(self):
        """Acceptance sweep (excluded from tier-1; select with
        -m serving_slow): D_3 vs the same-size hypercube Q_5 vs MC(2,1).
        The hypercube's extra links buy a higher per-node knee; the
        metacube's sparser wiring a lower one."""
        dc = DualCube(3)
        q = Hypercube(5)
        mc = Metacube(2, 1)
        r_dc = find_saturation(dc, lambda u, v: route(dc, u, v), seed=0)
        r_q = find_saturation(q, hypercube_dimension_order_path, seed=0)
        r_mc = find_saturation(mc, bfs_router(mc), seed=0)
        assert r_q.rate > r_dc.rate > r_mc.rate
        # Seed-stability: the published E18 numbers reproduce.
        again = find_saturation(dc, lambda u, v: route(dc, u, v), seed=0)
        assert again == r_dc


class TestServingMembershipFaults:
    """Downtime/crash membership threaded into the live queues."""

    def test_down_source_refused_at_admission(self):
        cube = Hypercube(1)
        plan = FaultPlan(downtimes=[(0, 1, 3)])
        stats = run_serving(
            cube, hypercube_dimension_order_path, [0.5], [(0, 1)],
            fault_plan=plan,
        )
        # cycle_of(0.5) = 1 is inside [1, 3): refused on arrival.
        assert stats.drops == 1
        assert stats.completions == 0
        assert stats.conservation_ok()

    def test_source_up_again_after_interval_admits(self):
        cube = Hypercube(1)
        plan = FaultPlan(downtimes=[(0, 1, 3)])
        stats = run_serving(
            cube, hypercube_dimension_order_path, [3.5], [(0, 1)],
            fault_plan=plan,
        )
        assert stats.drops == 0
        assert stats.completions == 1

    def test_down_endpoint_blocks_crossing_until_rejoin(self):
        # Source is healthy; the destination is offline when service
        # would complete, so the crossing retransmits in place and only
        # lands after the rejoin.
        cube = Hypercube(1)
        plan = FaultPlan(downtimes=[(1, 1, 4)])
        stats = run_serving(
            cube, hypercube_dimension_order_path, [0.25], [(0, 1)],
            fault_plan=plan,
        )
        assert stats.completions == 1
        assert stats.retransmissions >= 1
        assert stats.max_sojourn > 1.0  # waited out the outage
        assert stats.conservation_ok()

    def test_down_endpoint_exhausts_retries_into_drop(self):
        cube = Hypercube(1)
        plan = FaultPlan(downtimes=[(1, 1, 100)], max_retries=3)
        stats = run_serving(
            cube, hypercube_dimension_order_path, [0.25], [(0, 1)],
            fault_plan=plan,
        )
        assert stats.completions == 0
        assert stats.drops == 1
        # Every lost attempt counts, including the one that exhausts the
        # budget: max_retries in-place retransmissions + the final loss.
        assert stats.retransmissions == 4
        assert stats.conservation_ok()

    def test_drop_only_plans_unaffected_by_membership_hooks(self):
        # The membership checks consult the same attempt counter stream:
        # a plan with no structural faults reproduces the pre-membership
        # results bit for bit.
        dc = DualCube(2)
        arrivals = np.sort(np.abs(np.sin(np.arange(1, 41)))) * 10.0
        pairs = open_loop_pairs(dc, 40, seed=9)
        plan = lambda: FaultPlan(drop_rate=0.1, seed=5, max_retries=50)
        a = run_serving(dc, lambda u, v: route(dc, u, v), arrivals, pairs,
                        fault_plan=plan())
        b = run_serving(dc, lambda u, v: route(dc, u, v), arrivals, pairs,
                        fault_plan=plan())
        assert repr(a) == repr(b)
