"""Edge-case behaviour of the engine: exceptions, mixed requests, reuse."""

import pytest

from repro.simulator import (
    DeadlockError,
    Engine,
    Idle,
    Recv,
    Send,
    SendRecv,
    Shift,
    run_spmd,
)
from repro.topology import Hypercube


class TestProgramExceptions:
    def test_user_exception_propagates_with_traceback(self):
        class Boom(RuntimeError):
            pass

        def program(ctx):
            if ctx.rank == 1:
                raise Boom("node 1 exploded")
            yield Idle()

        with pytest.raises(Boom, match="node 1 exploded"):
            run_spmd(Hypercube(1), program)

    def test_exception_after_communication_propagates(self):
        def program(ctx):
            yield SendRecv(ctx.rank ^ 1, "x")
            raise ValueError("post-exchange failure")

        with pytest.raises(ValueError, match="post-exchange"):
            run_spmd(Hypercube(1), program)


class TestMixedRequests:
    def test_ragged_termination(self):
        """Nodes may finish at different times; stragglers keep running."""

        def program(ctx):
            if ctx.rank == 0:
                return "early"
            for _ in range(ctx.rank):
                yield Idle()
            return f"after {ctx.rank}"

        res = run_spmd(Hypercube(2), program)
        assert res.returns == ["early", "after 1", "after 2", "after 3"]
        assert res.comm_steps == 3

    def test_idle_nodes_do_not_mask_deadlock(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Recv(1)  # never satisfied
            else:
                yield Idle()

        with pytest.raises(DeadlockError):
            run_spmd(Hypercube(1), program)

    def test_shift_chain_with_unidirectional_flow(self):
        """A line (not ring) of shifts: ends use Send/Recv, middle Shift."""
        cube = Hypercube(2)
        # Path 1 - 0 - 2: 1 sends, 0 shifts, 2 receives.

        def program(ctx):
            if ctx.rank == 1:
                yield Send(0, "head")
                return None
            if ctx.rank == 0:
                got = yield Shift(2, "middle", 1)
                return got
            if ctx.rank == 2:
                got = yield Recv(0)
                return got
            return None

        res = run_spmd(cube, program)
        assert res.returns[0] == "head"
        assert res.returns[2] == "middle"
        assert res.comm_steps == 1

    def test_two_node_ring_shift(self):
        """dst == src is legal: a Shift facing a matching Shift."""
        def program(ctx):
            got = yield Shift(ctx.rank ^ 1, ctx.rank, ctx.rank ^ 1)
            return got

        res = run_spmd(Hypercube(1), program)
        assert res.returns == [1, 0]
        assert res.comm_steps == 1


class TestEngineReuse:
    def test_engine_object_can_run_twice(self):
        def program(ctx):
            got = yield SendRecv(ctx.rank ^ 1, ctx.rank)
            return got

        eng = Engine(Hypercube(1), program)
        a = eng.run()
        b = eng.run()
        assert a.returns == b.returns
        # Counters are fresh per run.
        assert a.counters.messages == b.counters.messages == 2

    def test_max_cycles_configurable(self):
        def program(ctx):
            for _ in range(100):
                yield Idle()

        with pytest.raises(DeadlockError):
            Engine(Hypercube(1), program, max_cycles=5).run()
