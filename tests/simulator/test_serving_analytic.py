"""Analytic validation of the serving simulator against queueing theory.

A single hypercube link fed Poisson arrivals with deterministic service
is exactly an M/D/1 queue, which has a closed-form mean sojourn time
(Pollaczek-Khinchine):

    T = 1/mu + rho / (2 * mu * (1 - rho))        with rho = lambda / mu

These tests pin the event core to that formula within 5% and pin
utilization to offered load below saturation — if the simulator's
bookkeeping (server occupancy, FIFO hand-off, busy-time integration)
drifts, these are the tests that notice, independent of any
implementation detail.
"""

import numpy as np
import pytest

from repro.simulator.serving import (
    ServingConfig,
    deterministic_arrivals,
    poisson_arrivals,
    run_serving,
)
from repro.simulator.traffic import hypercube_dimension_order_path
from repro.topology import Hypercube

# One directed link: every request goes 0 -> 1 on Q_1.
_LINK = Hypercube(1)
_N = 50_000


def _md1_sojourn(rho: float, mu: float = 1.0) -> float:
    """Pollaczek-Khinchine mean sojourn for M/D/1."""
    return 1.0 / mu + rho / (2.0 * mu * (1.0 - rho))


def _single_link_run(rho: float, *, seed: int = 1, num: int = _N):
    arrivals = poisson_arrivals(rho, num, seed=seed)
    pairs = [(0, 1)] * num
    return run_serving(_LINK, hypercube_dimension_order_path, arrivals, pairs)


class TestMD1:
    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
    def test_mean_sojourn_matches_closed_form(self, rho):
        stats = _single_link_run(rho)
        assert stats.completions == _N
        assert stats.mean_sojourn == pytest.approx(_md1_sojourn(rho), rel=0.05)

    def test_sojourn_grows_with_load(self):
        """Monotonicity sanity: heavier load means longer mean sojourn."""
        means = [_single_link_run(rho).mean_sojourn for rho in (0.2, 0.5, 0.8)]
        assert means == sorted(means)
        # At rho=0.8 queueing delay dominates: T = 1 + 0.8/0.4 = 3.0.
        assert means[-1] == pytest.approx(_md1_sojourn(0.8), rel=0.05)

    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.9])
    def test_utilization_equals_offered_load(self, rho):
        """Below saturation the server is busy exactly rho of the time."""
        stats = _single_link_run(rho)
        occ = stats.occupancy[(0, 1)]
        assert occ.utilization == pytest.approx(rho, rel=0.03)
        # The aggregate property averages loaded links; here there is one.
        assert stats.utilization == pytest.approx(rho, rel=0.03)

    def test_mean_queue_matches_littles_law(self):
        """L_q = lambda * W_q for the waiting buffer (Little's law)."""
        rho = 0.6
        stats = _single_link_run(rho)
        w_q = stats.mean_sojourn - 1.0  # waiting time = sojourn - service
        occ = stats.occupancy[(0, 1)]
        assert occ.mean_queue == pytest.approx(rho * w_q, rel=0.05)


class TestDD1:
    """Deterministic arrivals below capacity see zero queueing."""

    @pytest.mark.parametrize("rho", [0.25, 0.5, 0.99])
    def test_every_sojourn_is_exactly_one_service_time(self, rho):
        num = 2_000
        arrivals = deterministic_arrivals(rho, num)
        pairs = [(0, 1)] * num
        stats = run_serving(_LINK, hypercube_dimension_order_path, arrivals, pairs)
        assert stats.completions == num
        # abs tolerance only: arrival times are cumulative floats, so the
        # sojourns at rho=0.99 carry ~1e-13 of accumulated rounding.
        for value in (stats.mean_sojourn, stats.p50, stats.p99, stats.p999,
                      stats.max_sojourn):
            assert value == pytest.approx(1.0, abs=1e-9)
        occ = stats.occupancy[(0, 1)]
        assert occ.max_queue == 0

    def test_goodput_equals_arrival_rate(self):
        """Open loop below saturation: throughput out = offered load in."""
        rho = 0.5
        num = 10_000
        arrivals = deterministic_arrivals(rho, num)
        stats = run_serving(
            _LINK, hypercube_dimension_order_path, arrivals, [(0, 1)] * num
        )
        assert stats.goodput == pytest.approx(rho, rel=0.01)

    def test_overload_never_clears_the_queue(self):
        """rho > 1 with D/D/1: backlog grows linearly, p99 reflects it."""
        num = 2_000
        arrivals = deterministic_arrivals(2.0, num)  # 2x service rate
        stats = run_serving(
            _LINK, hypercube_dimension_order_path, arrivals, [(0, 1)] * num
        )
        # Request i arrives at i/2 and departs at i+1: sojourn i/2 + 1.
        assert stats.max_sojourn == pytest.approx(num / 2.0, rel=0.01)
        assert stats.occupancy[(0, 1)].utilization == pytest.approx(1.0, rel=0.01)


class TestPoissonProcess:
    """The arrival-process generators themselves obey their contracts."""

    def test_poisson_rate_converges(self):
        times = poisson_arrivals(4.0, 40_000, seed=3)
        measured = len(times) / times[-1]
        assert measured == pytest.approx(4.0, rel=0.03)

    def test_deterministic_spacing_is_exact(self):
        times = deterministic_arrivals(0.25, 5)
        assert np.allclose(times, [0.0, 4.0, 8.0, 12.0, 16.0])
