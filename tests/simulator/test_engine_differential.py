"""Differential tests: the indexed matcher against the legacy reference.

Every engine-backed core algorithm runs twice — once under
``matching="legacy"`` (the original whole-snapshot rescan, kept verbatim
as the oracle) and once under ``matching="indexed"`` (the slot-array
worklist matcher) — and must produce identical returns, communication
steps, computation steps, and per-node send/receive tallies.  The fast
bookkeeping mode is additionally checked against per-event recording.
"""

import numpy as np
import pytest

from repro.core.dual_prefix import dual_prefix_engine
from repro.core.dual_sort import dual_sort_engine
from repro.core.large_inputs import large_prefix_engine
from repro.core.ops import ADD, MAX, AssocOp
from repro.routing import (
    allgather_engine,
    allreduce_engine,
    broadcast_engine,
    gather_engine,
    scatter_engine,
)
from repro.routing.fault_tolerant import ft_route
from repro.routing.ring_allreduce import ring_allreduce_engine
from repro.simulator import Idle, Recv, Send, SendRecv, run_spmd, use_matching
from repro.topology import (
    DualCube,
    FaultSet,
    FaultyTopology,
    Hypercube,
    RecursiveDualCube,
)


def _fingerprint(result):
    """Everything the differential contract covers, in comparable form."""
    return {
        "returns": list(result.returns),
        "summary": result.counters.summary(),
        "sends": result.counters.sends.tolist(),
        "recvs": result.counters.recvs.tolist(),
        "active_cycles": result.counters.active_cycles,
    }


def assert_matchers_agree(run):
    """``run`` performs one engine-backed algorithm and returns its EngineResult."""
    with use_matching("legacy"):
        legacy = _fingerprint(run())
    with use_matching("indexed"):
        indexed = _fingerprint(run())
    assert indexed == legacy
    return legacy


class TestCoreAlgorithms:
    @pytest.mark.parametrize("op", [ADD, MAX], ids=["add", "max"])
    @pytest.mark.parametrize("paper_literal", [False, True])
    def test_dual_prefix_engine(self, small_n, op, paper_literal, rng):
        dc = DualCube(small_n)
        vals = [int(x) for x in rng.integers(0, 100, dc.num_nodes)]

        expected = []
        for v in vals:
            expected.append(v if not expected else op(expected[-1], v))

        def run():
            out, result = dual_prefix_engine(
                dc, vals, op, paper_literal=paper_literal
            )
            assert list(out) == expected
            return result

        assert_matchers_agree(run)

    def test_dual_prefix_engine_non_commutative(self, small_n):
        dc = DualCube(small_n)
        strcat = AssocOp("strcat", lambda a, b: a + b, "", commutative=False)
        vals = [f"<{k}>" for k in range(dc.num_nodes)]

        def run():
            out, result = dual_prefix_engine(dc, vals, strcat)
            assert out[-1] == "".join(vals)
            return result

        assert_matchers_agree(run)

    @pytest.mark.parametrize("payload_policy", ["packed", "single"])
    def test_dual_sort_engine(self, small_n, payload_policy, rng):
        rdc = RecursiveDualCube(small_n)
        keys = [int(x) for x in rng.permutation(rdc.num_nodes)]

        def run():
            out, result = dual_sort_engine(
                rdc, keys, payload_policy=payload_policy
            )
            assert out == sorted(keys)
            return result

        assert_matchers_agree(run)

    def test_large_prefix_engine(self, rng):
        dc = DualCube(2)
        vals = [int(x) for x in rng.integers(0, 50, dc.num_nodes * 4)]

        def run():
            out, result = large_prefix_engine(dc, vals, ADD)
            assert list(out) == list(np.cumsum(vals))
            return result

        assert_matchers_agree(run)


class TestCollectives:
    def test_broadcast(self, small_n):
        dc = DualCube(small_n)

        def run():
            values, result = broadcast_engine(dc, 0, "tok")
            assert values == ["tok"] * dc.num_nodes
            return result

        assert_matchers_agree(run)

    def test_allreduce(self, small_n, rng):
        dc = DualCube(small_n)
        vals = [int(x) for x in rng.integers(0, 100, dc.num_nodes)]

        def run():
            totals, result = allreduce_engine(dc, vals, ADD)
            assert totals == [sum(vals)] * dc.num_nodes
            return result

        assert_matchers_agree(run)

    def test_scatter_gather_allgather(self, small_n):
        dc = DualCube(small_n)
        items = [f"item{k}" for k in range(dc.num_nodes)]

        def run_scatter():
            _, result = scatter_engine(dc, 0, items)
            return result

        def run_gather():
            _, result = gather_engine(dc, 0, items)
            return result

        def run_allgather():
            _, result = allgather_engine(dc, items)
            return result

        assert_matchers_agree(run_scatter)
        assert_matchers_agree(run_gather)
        assert_matchers_agree(run_allgather)

    def test_ring_allreduce_shift_heavy(self, small_n, rng):
        rdc = RecursiveDualCube(small_n)
        if rdc.num_nodes < 3:
            pytest.skip("ring needs >= 3 nodes")
        vectors = rng.integers(0, 20, (rdc.num_nodes, rdc.num_nodes)).tolist()

        def run():
            results, result = ring_allreduce_engine(rdc, vectors, ADD)
            expected = list(np.asarray(vectors).sum(axis=0))
            assert all(list(r) == expected for r in results)
            return result

        assert_matchers_agree(run)


class TestFaultTolerantRouting:
    def test_store_and_forward_over_ft_paths(self):
        """Tokens relayed hop-by-hop along fault-tolerant routes.

        The per-hop Send/Recv/Idle weave exercises exactly the snapshot
        pruning the matchers must agree on: most requests block for many
        cycles while one hop at a time completes.
        """
        dc = DualCube(2)
        ft = FaultyTopology(dc, FaultSet(links=[(0, dc.neighbors(0)[0])]))
        healthy = ft.healthy_nodes()
        pairs = [(healthy[0], healthy[-1]), (healthy[-1], healthy[1])]
        paths = [ft_route(ft, u, v) for u, v in pairs]
        assert all(p is not None for p in paths)

        def program(ctx):
            u = ctx.rank
            received = []
            for path in paths:
                token = f"msg-from-{path[0]}" if u == path[0] else None
                pos = path.index(u) if u in path else -1
                for k in range(len(path) - 1):
                    if pos == k:
                        yield Send(path[k + 1], token)
                    elif pos == k + 1:
                        token = yield Recv(path[k])
                    else:
                        yield Idle()
                if pos == len(path) - 1:
                    received.append(token)
            return received

        def run():
            result = run_spmd(ft, program)
            for (u, v), path in zip(pairs, paths):
                assert f"msg-from-{u}" in result.returns[v]
                assert result.comm_steps == sum(len(p) - 1 for p in paths)
            return result

        assert_matchers_agree(run)


class TestStaggeredStress:
    def test_staggered_pairwise_exchanges(self):
        """Pairs idle different amounts before exchanging: heavy pruning."""
        cube = Hypercube(3)

        def program(ctx):
            u = ctx.rank
            total = 0
            for d in range(3):
                partner = u ^ (1 << d)
                # Both pair members agree on the stagger; distinct pairs
                # do not, so every cycle's snapshot mixes ready and
                # blocked requests.
                for _ in range((min(u, partner) * 7 + d) % 3):
                    yield Idle()
                got = yield SendRecv(partner, u + total)
                total += got
            return total

        assert_matchers_agree(lambda: run_spmd(cube, program))

    def test_relay_wave_worst_case_for_rescan(self):
        """A token snaking down a Gray-code path with all receivers posted
        up front — the legacy matcher's quadratic pruning case."""
        cube = Hypercube(3)
        gray = [0, 1, 3, 2, 6, 7, 5, 4]
        pos_of = {node: k for k, node in enumerate(gray)}

        def program(ctx):
            pos = pos_of[ctx.rank]
            if pos == 0:
                yield Send(gray[1], 1)
                return 0
            token = yield Recv(gray[pos - 1])
            if pos + 1 < len(gray):
                yield Send(gray[pos + 1], token + 1)
            return token

        def run():
            result = run_spmd(cube, program)
            assert [result.returns[gray[k]] for k in range(8)] == list(range(8))
            assert result.comm_steps == 7
            return result

        assert_matchers_agree(run)


class TestFastModeEquivalence:
    def test_fast_and_slow_bookkeeping_agree(self, cube, rng):
        if cube.num_nodes < 2:
            pytest.skip("needs at least one dimension")
        keys = [int(x) for x in rng.permutation(cube.num_nodes)]

        def run(fast):
            def program(ctx):
                u = ctx.rank
                key = keys[u]
                for d in range(cube.q):
                    got = yield SendRecv(u ^ (1 << d), key)
                    ctx.compute(1)
                    key = min(key, got) if u < u ^ (1 << d) else max(key, got)
                return key

            return run_spmd(cube, program, fast=fast)

        assert _fingerprint(run(True)) == _fingerprint(run(False))

    def test_fast_mode_skips_message_log_only_when_unrequested(self):
        def program(ctx):
            yield SendRecv(ctx.rank ^ 1, ctx.rank)

        with pytest.raises(ValueError, match="fast"):
            run_spmd(Hypercube(1), program, fast=True, log_messages=True)
        # Auto mode keeps the log when it is requested.
        res = run_spmd(Hypercube(1), program, log_messages=True)
        assert len(res.message_log) == 2
