"""Property-based suite for the serving simulator.

Three invariants drive the design of :mod:`repro.simulator.serving`, and
each gets a Hypothesis property here:

* **Determinism** — identical inputs (arrivals, pairs, config, fault
  plan) reproduce an identical :class:`ServingStats`, down to the repr:
  event ties are broken by explicit sequence numbers, never hash order.
* **Reorder invariance** — the relative order of *simultaneous* trace
  arrivals is presentation, not semantics: with unbounded queues, every
  aggregate counter (outcomes, hop totals, per-link loads) is invariant
  under permuting same-time entries.
* **Conservation** — ``arrivals == completions + drops + deadline_misses
  + in_flight`` at the end of the run *and at every checkpoint*, across
  random capacities, deadlines, horizons and fault plans.  This is the
  bookkeeping identity any accounting bug breaks first.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import route
from repro.simulator import FaultPlan
from repro.simulator.serving import (
    ServingConfig,
    open_loop_pairs,
    poisson_arrivals,
    run_serving,
)
from repro.topology import DualCube

_DC = DualCube(2)


def _router(u, v):
    return route(_DC, u, v)


_router.__name__ = "dualcube_route"


def _workload(num, seed, rate=2.0):
    arrivals = poisson_arrivals(rate, num, seed=seed)
    pairs = open_loop_pairs(_DC, num, seed=seed + 1)
    return arrivals, pairs


class TestDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 80),
        st.integers(0, 2**31 - 1),
        st.sampled_from([None, 0, 1, 3]),
        st.sampled_from([None, 4.0, 12.0]),
    )
    def test_same_inputs_same_stats(self, num, seed, capacity, deadline):
        arrivals, pairs = _workload(num, seed)
        cfg = ServingConfig(
            queue_capacity=capacity, deadline=deadline, checkpoint_every=2.0
        )
        a = run_serving(_DC, _router, arrivals, pairs, config=cfg)
        b = run_serving(_DC, _router, arrivals, pairs, config=cfg)
        assert a == b
        # Byte-identical, not merely ==: the stats double as a regression
        # fingerprint, so even float formatting must reproduce.
        assert repr(a) == repr(b)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 60), st.integers(0, 2**31 - 1))
    def test_deterministic_under_faults(self, num, seed):
        arrivals, pairs = _workload(num, seed)
        plan = FaultPlan(drop_rate=0.2, seed=seed % 1000, max_retries=50)
        a = run_serving(_DC, _router, arrivals, pairs, fault_plan=plan)
        b = run_serving(_DC, _router, arrivals, pairs, fault_plan=plan)
        assert a == b and repr(a) == repr(b)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 60), st.integers(0, 2**31 - 1))
    def test_different_seeds_differ(self, num, seed):
        """The seed actually reaches the workload (no silent reseeding)."""
        a1, p1 = _workload(num, seed)
        a2, p2 = _workload(num, seed + 1)
        assert not (np.array_equal(a1, a2) and p1 == p2)


class TestReorderInvariance:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 50), st.integers(0, 2**31 - 1))
    def test_simultaneous_arrival_order_is_immaterial(self, num, seed):
        rng = np.random.default_rng(seed)
        # Integer-valued times force many exact ties.
        times = np.sort(rng.integers(0, max(2, num // 3), num)).astype(float)
        pairs = open_loop_pairs(_DC, num, seed=seed)

        # Permute entries *within* each equal-time group.
        perm = np.arange(num)
        for t in np.unique(times):
            (idx,) = np.nonzero(times == t)
            perm[idx] = rng.permutation(idx)
        shuffled_pairs = [pairs[i] for i in perm]
        assert sorted(shuffled_pairs) == sorted(pairs)

        a = run_serving(_DC, _router, times, pairs)
        b = run_serving(_DC, _router, times, shuffled_pairs)
        assert (a.arrivals, a.completions, a.drops, a.deadline_misses,
                a.in_flight) == (b.arrivals, b.completions, b.drops,
                                 b.deadline_misses, b.in_flight)
        assert a.hops_served == b.hops_served
        assert a.path_hops == b.path_hops
        assert a.link_loads == b.link_loads


class TestConservation:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 80),
        st.integers(0, 2**31 - 1),
        st.sampled_from([None, 0, 1, 2]),
        st.sampled_from([None, 3.0, 8.0]),
        st.sampled_from([None, 10.0]),
        st.booleans(),
    )
    def test_holds_at_every_checkpoint(
        self, num, seed, capacity, deadline, horizon, faulty
    ):
        arrivals, pairs = _workload(num, seed, rate=3.0)
        cfg = ServingConfig(
            queue_capacity=capacity,
            deadline=deadline,
            horizon=horizon,
            checkpoint_every=1.0,
        )
        plan = (
            FaultPlan(drop_rate=0.15, seed=seed % 997, max_retries=20)
            if faulty
            else None
        )
        stats = run_serving(
            _DC, _router, arrivals, pairs, config=cfg, fault_plan=plan
        )
        assert stats.conservation_ok()
        # Assert the identity by hand too, so a bug in conservation_ok()
        # itself cannot vacuously pass.
        assert stats.arrivals == (
            stats.completions + stats.drops + stats.deadline_misses
            + stats.in_flight
        )
        for c in stats.checkpoints:
            assert c.arrivals == (
                c.completions + c.drops + c.deadline_misses + c.in_flight
            )
        # Checkpoint counters are non-decreasing in time.
        for prev, cur in zip(stats.checkpoints, stats.checkpoints[1:]):
            assert cur.time > prev.time
            assert cur.arrivals >= prev.arrivals
            assert cur.completions >= prev.completions
            assert cur.drops >= prev.drops
            assert cur.deadline_misses >= prev.deadline_misses

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 60),
        st.integers(0, 2**31 - 1),
        st.sampled_from(["drop", "block"]),
        st.booleans(),
    )
    def test_early_drain_trailing_checkpoints_conserve(
        self, num, seed, policy, faulty
    ):
        # The workload drains long before the horizon; the trailing
        # checkpoints over the idle tail must keep the identity and
        # freeze at the final totals (regression: they used to stop at
        # the last event instead of covering the configured window).
        arrivals, pairs = _workload(num, seed, rate=5.0)
        horizon = float(np.ceil(arrivals[-1])) + 25.0
        cfg = ServingConfig(
            queue_capacity=1 if policy == "block" else None,
            policy=policy,
            horizon=horizon,
            checkpoint_every=2.0,
        )
        plan = (
            FaultPlan(drop_rate=0.2, seed=seed % 911, max_retries=30)
            if faulty
            else None
        )
        stats = run_serving(
            _DC, _router, arrivals, pairs, config=cfg, fault_plan=plan
        )
        assert stats.elapsed == horizon
        assert stats.conservation_ok()
        for c in stats.checkpoints:
            assert c.arrivals == (
                c.completions + c.drops + c.deadline_misses + c.in_flight
            )
        # The series reaches the end of the window, not the last event.
        assert stats.checkpoints[-1].time == pytest.approx(
            2.0 * int(horizon // 2.0)
        )
        tail = stats.checkpoints[-1]
        assert tail.arrivals == stats.arrivals
        assert tail.in_flight == stats.in_flight

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 50), st.integers(0, 2**31 - 1))
    def test_blocking_policy_conserves_at_horizon(self, num, seed):
        arrivals, pairs = _workload(num, seed, rate=4.0)
        cfg = ServingConfig(
            queue_capacity=1, policy="block", horizon=8.0, checkpoint_every=1.0
        )
        stats = run_serving(_DC, _router, arrivals, pairs, config=cfg)
        assert stats.conservation_ok()
        assert stats.drops == 0  # backpressure never discards
        # Whatever did not finish by the horizon is in flight.
        assert stats.in_flight == stats.arrivals - stats.finished


class TestHorizonWindowAccounting:
    """The configured horizon *is* the observation window.

    Regression suite for the elapsed-time bug: a run that drained before
    its horizon used to report rates over the last-event time instead of
    the full configured window, inflating goodput, utilization and queue
    occupancy, and truncating the trailing checkpoint series.
    """

    def _drained_run(self, horizon):
        arrivals = np.array([0.5, 1.0, 1.5, 2.0])
        pairs = open_loop_pairs(_DC, 4, seed=3)
        cfg = ServingConfig(horizon=horizon, checkpoint_every=4.0)
        return run_serving(_DC, _router, arrivals, pairs, config=cfg)

    def test_idle_tail_counts_toward_elapsed(self):
        stats = self._drained_run(40.0)
        assert stats.in_flight == 0  # drained long before the horizon
        assert stats.elapsed == 40.0
        assert stats.goodput == pytest.approx(stats.completions / 40.0)

    def test_checkpoints_cover_the_idle_tail(self):
        stats = self._drained_run(40.0)
        assert [c.time for c in stats.checkpoints] == [
            4.0 * k for k in range(1, 11)
        ]
        tail = stats.checkpoints[-1]
        assert tail.arrivals == 4
        assert tail.in_flight == 0
        assert tail.completions == stats.completions

    def test_rates_dilute_with_longer_window(self):
        short = self._drained_run(10.0)
        long = self._drained_run(50.0)
        # Same drained workload, 5x window: every rate shrinks 5x.
        assert long.completions == short.completions
        assert long.goodput == pytest.approx(short.goodput / 5.0)
        assert long.utilization == pytest.approx(short.utilization / 5.0)
        for key, occ in long.occupancy.items():
            assert occ.utilization == pytest.approx(
                short.occupancy[key].utilization / 5.0
            )
            assert occ.mean_queue == pytest.approx(
                short.occupancy[key].mean_queue / 5.0
            )

    def test_unbounded_run_ends_at_last_event(self):
        arrivals = np.array([0.5, 1.0, 1.5, 2.0])
        pairs = open_loop_pairs(_DC, 4, seed=3)
        cfg = ServingConfig(checkpoint_every=4.0)
        stats = run_serving(_DC, _router, arrivals, pairs, config=cfg)
        # No horizon: the window ends with the last event, well before
        # the bounded runs' tails, and rates use that shorter window.
        assert 2.0 <= stats.elapsed < 10.0
        assert stats.goodput == pytest.approx(
            stats.completions / stats.elapsed
        )
