"""Dynamic SLO fault campaigns: generators, search, and cross-checks.

The campaign's headline guarantee is soundness against the static
analyzer: its randomized search over *dynamic* fault schedules may be
incomplete, but on structural-only SLOs it must never report a violating
set smaller than the proven-exact static minimum cut — that would mean
one of the two engines is lying.  The suite pins that invariant on
D_2..D_4, plus byte-level determinism of the whole report, the schema
gate behind ``repro campaign --smoke``, and the element-to-plan /
element-to-view projections the search trades in.
"""

import json

import pytest

from repro.simulator import FaultPlan
from repro.simulator.campaign import (
    CAMPAIGN_SCHEMA,
    SLO,
    CampaignResult,
    churn_downtimes,
    cluster_outage,
    default_slos,
    plan_from_elements,
    rolling_restart,
    run_campaign,
    structural_overapproximation,
    validate_report,
)
from repro.topology import DualCube


class TestChurnDowntimes:
    def test_deterministic_and_valid(self):
        dc = DualCube(2)
        a = churn_downtimes(dc, events=6, duration=3, horizon=20, seed=4)
        b = churn_downtimes(dc, events=6, duration=3, horizon=20, seed=4)
        assert a == b
        assert len(a) == 6
        # The triples are a valid FaultPlan input (no per-rank overlap).
        plan = FaultPlan(downtimes=a)
        assert not plan.is_empty
        plan.validate_for(dc)
        for rank, start, end in a:
            assert 0 <= rank < dc.num_nodes
            assert 1 <= start <= 20
            assert end == start + 3

    def test_seeds_differ(self):
        dc = DualCube(2)
        a = churn_downtimes(dc, events=6, duration=3, horizon=20, seed=1)
        b = churn_downtimes(dc, events=6, duration=3, horizon=20, seed=2)
        assert a != b

    @pytest.mark.parametrize(
        "kw",
        [
            {"events": -1, "duration": 1, "horizon": 5},
            {"events": 1, "duration": 0, "horizon": 5},
            {"events": 1, "duration": 1, "horizon": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kw):
        with pytest.raises(ValueError):
            churn_downtimes(DualCube(2), **kw)

    def test_saturation_warns_not_silent(self):
        # More episodes than the machine can hold (duration covers the
        # whole horizon, so at most one episode per rank fits): the
        # schedule is truncated best-effort, but never silently.
        dc = DualCube(2)
        with pytest.warns(RuntimeWarning, match="saturated"):
            out = churn_downtimes(
                dc, events=10 * dc.num_nodes, duration=50, horizon=10,
                seed=0,
            )
        assert 0 < len(out) <= dc.num_nodes
        FaultPlan(downtimes=out).validate_for(dc)


class TestClusterOutage:
    def test_covers_exactly_one_cluster(self):
        dc = DualCube(2)
        triples = cluster_outage(dc, 1, 1, start=3, end=8)
        assert sorted(r for r, _, _ in triples) == sorted(
            dc.cluster_members(1, 1)
        )
        assert all((s, e) == (3, 8) for _, s, e in triples)
        FaultPlan(downtimes=triples).validate_for(dc)


class TestRollingRestart:
    def test_every_node_restarts_exactly_once(self):
        dc = DualCube(2)
        triples = rolling_restart(dc, duration=4)
        assert sorted(r for r, _, _ in triples) == list(range(dc.num_nodes))
        FaultPlan(downtimes=triples).validate_for(dc)

    def test_default_stagger_is_back_to_back(self):
        dc = DualCube(2)
        triples = rolling_restart(dc, duration=4, start=1)
        windows = sorted({(s, e) for _, s, e in triples})
        # One window per cluster, each starting where the previous ended.
        assert len(windows) == 2 * dc.clusters_per_class
        for (s0, e0), (s1, e1) in zip(windows, windows[1:]):
            assert s1 == e0
        # Never two clusters down at once under the default stagger.
        assert all(e - s == 4 for s, e in windows)

    def test_overlapping_stagger_allowed(self):
        dc = DualCube(2)
        triples = rolling_restart(dc, duration=6, stagger=2)
        plan = FaultPlan(downtimes=triples)
        # With stagger < duration, consecutive waves overlap in time.
        starts = sorted({s for _, s, _ in triples})
        assert starts[1] - starts[0] == 2
        assert plan.down(triples[0][0], triples[0][1])

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            rolling_restart(DualCube(2), duration=0)
        with pytest.raises(ValueError):
            rolling_restart(DualCube(2), duration=2, stagger=0)


class TestElementProjections:
    def test_plan_from_elements_maps_all_kinds(self):
        dc = DualCube(2)
        plan = plan_from_elements(
            dc,
            [
                ("node", 3),
                ("link", (0, 1)),
                ("down", (5, 2, 6)),
                ("outage", (0, 0, 4, 7)),
            ],
        )
        assert plan.node_crashes == {3: 1}
        assert not plan.link_up(0, 1, 1)
        assert plan.down(5, 2) and not plan.down(5, 6)
        for r in dc.cluster_members(0, 0):
            assert plan.down(r, 4) and not plan.down(r, 7)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="node/link/down/outage"):
            plan_from_elements(DualCube(2), [("meteor", 0)])

    def test_overlapping_downs_coalesced(self):
        # Regression: independent element draws can put two overlapping
        # downtime windows on the same rank (e.g. the correctness
        # universe's long and short spans); the plan must denote their
        # union, not raise FaultPlan's overlap ValueError.
        dc = DualCube(2)
        plan = plan_from_elements(
            dc, [("down", (4, 2, 9)), ("down", (4, 3, 4))]
        )
        assert plan.downtimes == {4: ((2, 9),)}
        assert plan.down(4, 2) and plan.down(4, 8) and not plan.down(4, 9)

    def test_down_inside_covering_outage_coalesced(self):
        # A per-rank "down" plus a cluster "outage" covering the same
        # rank over the identical window — the availability universe's
        # shape — must also collapse into one interval per rank.
        dc = DualCube(2)
        r = dc.cluster_members(0, 0)[0]
        plan = plan_from_elements(
            dc, [("down", (r, 4, 7)), ("outage", (0, 0, 4, 7))]
        )
        assert plan.downtimes[r] == ((4, 7),)
        plan.validate_for(dc)

    def test_adjacent_downs_merge_disjoint_stay(self):
        dc = DualCube(2)
        plan = plan_from_elements(
            dc, [("down", (1, 2, 4)), ("down", (1, 4, 6)), ("down", (1, 8, 9))]
        )
        assert plan.downtimes == {1: ((2, 6), (8, 9))}

    def test_overapproximation_turns_downs_into_crashes(self):
        dc = DualCube(2)
        view = structural_overapproximation(
            dc, [("down", (5, 4, 9)), ("node", 2), ("link", (0, 1))]
        )
        assert view.downs == ()  # acceptable to the static analyzer
        assert (5, 4) in view.crashes and (2, 1) in view.crashes
        assert view.cuts == (((0, 1), 1),)

    def test_overapproximation_outage_uses_earliest_start(self):
        dc = DualCube(2)
        members = dc.cluster_members(0, 0)
        r = members[0]
        view = structural_overapproximation(
            dc, [("outage", (0, 0, 7, 9)), ("down", (r, 3, 5))]
        )
        crashes = dict(view.crashes)
        assert crashes[r] == 3  # min over the two windows
        for other in members[1:]:
            assert crashes[other] == 7


class TestSLOs:
    def test_default_family(self):
        slos = default_slos(availability=0.9)
        assert [s.kind for s in slos] == [
            "availability", "p99", "correctness", "recovery",
        ]
        assert slos[0].threshold == 0.9
        assert slos[1].threshold is None  # resolved from the baseline

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="SLO kind"):
            SLO("bogus", "uptime")


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def d2_result(self):
        return run_campaign(2, seed=0, trials=4)

    def test_returns_result_with_violations(self, d2_result):
        assert isinstance(d2_result, CampaignResult)
        assert d2_result.topology == "D_2"
        assert d2_result.violations  # D_2 is fragile enough to break
        assert d2_result.evaluations > 0
        assert d2_result.ok

    def test_every_violation_is_triaged_and_minimal_shaped(self, d2_result):
        for v in d2_result.violations:
            assert v.size == len(v.elements) >= 1
            assert v.triage.classes is not None
            assert v.triage.lost_messages >= 0

    def test_byte_identical_under_fixed_seed(self, d2_result):
        again = run_campaign(2, seed=0, trials=4)
        a = json.dumps(d2_result.to_dict(), sort_keys=True)
        b = json.dumps(again.to_dict(), sort_keys=True)
        assert a == b

    def test_report_schema_validates(self, d2_result):
        report = d2_result.to_dict()
        assert report["schema"] == CAMPAIGN_SCHEMA
        assert validate_report(report) == []

    def test_schema_drift_detected(self, d2_result):
        report = json.loads(json.dumps(d2_result.to_dict()))
        report["surprise"] = 1
        del report["evaluations"]
        problems = validate_report(report)
        assert any("surprise" in p for p in problems)
        assert any("evaluations" in p for p in problems)

    def test_table_renders(self, d2_result):
        text = d2_result.render_table()
        assert "campaign on D_2" in text
        assert "cross-check" in text

    @pytest.mark.parametrize("kw", [{"trials": 0}, {"max_probe": 0}])
    def test_bad_parameters_rejected(self, kw):
        with pytest.raises(ValueError):
            run_campaign(2, **{"trials": 1, "max_probe": 1, **kw})

    def test_overlap_prone_seed_completes(self):
        # Regression: seed 3's probes draw overlapping downtime elements
        # for the same rank; before plan_from_elements coalesced spans
        # this crashed with FaultPlan's overlap ValueError mid-campaign.
        result = run_campaign(2, seed=3)
        assert result.ok

    def test_engine_bugs_propagate_from_correctness_slo(self):
        # The correctness SLO converts expected fault outcomes (timeout,
        # retry limit, deadlock) into violations, but a genuine engine
        # bug must surface, not be laundered into an SLO finding.
        from repro.simulator.campaign import _Evaluator
        from repro.simulator.errors import RetryLimitError

        ev = _Evaluator(
            DualCube(2), seed=0, requests_per_node=2, correctness_timeout=3
        )
        slo = SLO("result_correctness", "correctness")

        def boom(*a, **k):
            raise TypeError("engine bug")

        ev._run_faulty = boom
        with pytest.raises(TypeError, match="engine bug"):
            ev.violated(slo, (("down", (0, 2, 4)),))

        def expected(*a, **k):
            raise RetryLimitError(0, None, 6, 9)

        ev._run_faulty = expected
        bad, observed = ev.violated(slo, (("down", (0, 2, 4)),))
        assert bad and observed == "RetryLimitError"

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_dynamic_never_beats_exact_static_cut(self, n):
        # Soundness floor: on the structural recovery SLO the randomized
        # dynamic search can only ever find sets at least as large as
        # the proven-exact static minimum node cut.
        result = run_campaign(
            n,
            seed=0,
            trials=2,
            slos=(SLO("recovery_all_included", "recovery"),),
        )
        assert result.ok
        for check in result.cross_checks:
            assert check.static_exact
            if check.dynamic_size is not None:
                assert check.dynamic_size >= check.static_size


class TestCampaignCLI:
    def test_smoke_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "campaign smoke ok" in out

    def test_json_report_validates(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "campaign.json"
        assert main([
            "campaign", "-n", "2", "--trials", "2", "--json",
            "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        # Skip the "wrote <path>" status line ahead of the JSON body.
        printed = json.loads(out[out.index("{"):])
        on_disk = json.loads(out_path.read_text())
        assert printed == on_disk
        assert validate_report(on_disk) == []
