"""Tests for the Shift request and the fixed-point matcher."""

import pytest

from repro.simulator import (
    DeadlockError,
    LinkError,
    Recv,
    Send,
    SendRecv,
    Shift,
    run_spmd,
)
from repro.topology import Hypercube, RecursiveDualCube
from repro.topology.hamiltonian import hamiltonian_cycle


class TestShiftSemantics:
    def test_full_ring_resolves_in_one_cycle(self):
        """Every node shifts simultaneously around a Hamiltonian ring."""
        rdc = RecursiveDualCube(2)
        cyc = hamiltonian_cycle(2)
        succ = {cyc[k]: cyc[(k + 1) % 8] for k in range(8)}
        pred = {cyc[k]: cyc[(k - 1) % 8] for k in range(8)}

        def program(ctx):
            got = yield Shift(succ[ctx.rank], ctx.rank, pred[ctx.rank])
            return got

        res = run_spmd(rdc, program)
        assert res.comm_steps == 1
        assert res.counters.messages == 8
        for u in rdc.nodes():
            assert res.returns[u] == pred[u]

    def test_k_rotations_take_k_cycles(self):
        rdc = RecursiveDualCube(2)
        cyc = hamiltonian_cycle(2)
        succ = {cyc[k]: cyc[(k + 1) % 8] for k in range(8)}
        pred = {cyc[k]: cyc[(k - 1) % 8] for k in range(8)}

        def program(ctx):
            token = ctx.rank
            for _ in range(3):
                token = yield Shift(succ[ctx.rank], token, pred[ctx.rank])
            return token

        res = run_spmd(rdc, program)
        assert res.comm_steps == 3
        pos = {node: k for k, node in enumerate(cyc)}
        for u in rdc.nodes():
            assert res.returns[u] == cyc[(pos[u] - 3) % 8]

    def test_shift_pairs_with_send_and_recv(self):
        """A Shift's legs can face plain Send/Recv counterparts."""
        cube = Hypercube(2)
        # Path 1 -> 0 -> 2: node 0 shifts (sends to 2, receives from 1).

        def program(ctx):
            if ctx.rank == 0:
                got = yield Shift(2, "fwd", 1)
                return got
            if ctx.rank == 1:
                yield Send(0, "from-1")
            elif ctx.rank == 2:
                got = yield Recv(0)
                return got
            return None

        res = run_spmd(cube, program)
        assert res.comm_steps == 1
        assert res.returns[0] == "from-1"
        assert res.returns[2] == "fwd"

    def test_partial_shift_blocks_until_both_legs_ready(self):
        from repro.simulator import Idle

        cube = Hypercube(2)

        def program(ctx):
            if ctx.rank == 0:
                got = yield Shift(2, "x", 1)
                return got
            if ctx.rank == 1:
                yield Idle()
                yield Send(0, "late")
            elif ctx.rank == 2:
                yield Idle()
                got = yield Recv(0)
                return got
            return None

        res = run_spmd(cube, program)
        assert res.returns[0] == "late"
        assert res.comm_steps == 2  # cycle 1: idles only; cycle 2: all legs

    def test_unsatisfiable_shift_deadlocks(self):
        cube = Hypercube(2)

        def program(ctx):
            if ctx.rank == 0:
                yield Shift(2, "x", 1)  # nobody sends from 1
            elif ctx.rank == 2:
                yield Recv(0)

        with pytest.raises(DeadlockError):
            run_spmd(cube, program)

    def test_shift_validates_both_endpoints(self):
        cube = Hypercube(2)

        def program(ctx):
            yield Shift(3, "x", 1)  # 0-3 is not an edge

        with pytest.raises(LinkError):
            run_spmd(cube, program)

    def test_shift_counts_one_send_one_recv(self):
        rdc = RecursiveDualCube(2)
        cyc = hamiltonian_cycle(2)
        succ = {cyc[k]: cyc[(k + 1) % 8] for k in range(8)}
        pred = {cyc[k]: cyc[(k - 1) % 8] for k in range(8)}

        def program(ctx):
            yield Shift(succ[ctx.rank], "tok", pred[ctx.rank])

        res = run_spmd(rdc, program)
        assert all(res.counters.sends == 1)
        assert all(res.counters.recvs == 1)


class TestFixedPointRegression:
    """The generalized matcher must not change old request semantics."""

    def test_sendrecv_still_rejects_mixed_pairing(self):
        def program(ctx):
            if ctx.rank == 0:
                yield SendRecv(1, "x")
            else:
                yield Recv(0)

        with pytest.raises(DeadlockError):
            run_spmd(Hypercube(1), program)

    def test_dependent_chains_still_wait_cycles(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(1, "a")
            elif ctx.rank == 1:
                got = yield Recv(0)
                yield Send(3, got + "b")
            elif ctx.rank == 3:
                got = yield Recv(1)
                return got
            return None

        res = run_spmd(Hypercube(2), program)
        assert res.returns[3] == "ab"
        assert res.comm_steps == 2
