"""Matching semantics, parametrized over both matcher implementations.

The contracts the paper's step counts rest on: a whole Shift ring
resolves in one cycle, deliberately asymmetric pairs deadlock, and a
livelocked program trips ``max_cycles`` — identically under the legacy
rescan matcher and the counterpart-indexed one.
"""

import pytest

from repro.simulator import (
    DeadlockError,
    Idle,
    Recv,
    Send,
    SendRecv,
    Shift,
    run_spmd,
    use_matching,
)
from repro.simulator.engine import Engine
from repro.topology import Hypercube, RecursiveDualCube
from repro.topology.hamiltonian import hamiltonian_cycle

pytestmark = pytest.mark.parametrize("matching", ["legacy", "indexed"])


def _ring(n=2):
    rdc = RecursiveDualCube(n)
    cyc = hamiltonian_cycle(n)
    size = rdc.num_nodes
    succ = {cyc[k]: cyc[(k + 1) % size] for k in range(size)}
    pred = {cyc[k]: cyc[(k - 1) % size] for k in range(size)}
    return rdc, succ, pred


class TestShiftRings:
    def test_full_ring_resolves_in_one_cycle(self, matching):
        rdc, succ, pred = _ring()

        def program(ctx):
            got = yield Shift(succ[ctx.rank], ctx.rank, pred[ctx.rank])
            return got

        res = run_spmd(rdc, program, matching=matching)
        assert res.comm_steps == 1
        assert res.counters.messages == rdc.num_nodes
        for u in rdc.nodes():
            assert res.returns[u] == pred[u]

    def test_ring_with_one_defector_deadlocks(self, matching):
        """One ring member idles instead of shifting: the whole ring blocks
        once the idler has finished (nothing can complete -> deadlock)."""
        rdc, succ, pred = _ring()

        def program(ctx):
            if ctx.rank == succ[0]:
                yield Idle()
                return None
            got = yield Shift(succ[ctx.rank], ctx.rank, pred[ctx.rank])
            return got

        with pytest.raises(DeadlockError) as exc:
            run_spmd(rdc, program, matching=matching)
        assert len(exc.value.blocked) == rdc.num_nodes - 1

    def test_shift_chain_with_send_recv_endcaps(self, matching):
        """An open chain: Send feeds the first Shift, Recv drains the last;
        the whole pipeline still resolves in one cycle."""
        rdc, succ, pred = _ring()
        cyc = hamiltonian_cycle(2)
        head, tail = cyc[0], cyc[-1]

        def program(ctx):
            u = ctx.rank
            if u == head:
                yield Send(succ[u], "start")
                return None
            if u == tail:
                got = yield Recv(pred[u])
                return got
            got = yield Shift(succ[u], u, pred[u])
            return got

        res = run_spmd(rdc, program, matching=matching)
        assert res.comm_steps == 1
        assert res.returns[succ[head]] == "start"
        assert res.returns[tail] == pred[tail]


class TestAsymmetricDeadlocks:
    def test_send_facing_send(self, matching):
        def program(ctx):
            yield Send(ctx.rank ^ 1, "x")

        with pytest.raises(DeadlockError, match="blocked"):
            run_spmd(Hypercube(1), program, matching=matching)

    def test_recv_facing_recv(self, matching):
        def program(ctx):
            yield Recv(ctx.rank ^ 1)

        with pytest.raises(DeadlockError):
            run_spmd(Hypercube(1), program, matching=matching)

    def test_sendrecv_facing_bare_recv(self, matching):
        def program(ctx):
            if ctx.rank == 0:
                yield SendRecv(1, "x")
            else:
                yield Recv(0)

        with pytest.raises(DeadlockError):
            run_spmd(Hypercube(1), program, matching=matching)

    def test_sendrecv_facing_bare_send(self, matching):
        def program(ctx):
            if ctx.rank == 0:
                yield SendRecv(1, "x")
            else:
                yield Send(0, "y")

        with pytest.raises(DeadlockError):
            run_spmd(Hypercube(1), program, matching=matching)

    def test_deadlock_reports_cycle_and_blocked_set(self, matching):
        def program(ctx):
            if ctx.rank == 0:
                yield Idle()
                yield Recv(1)  # nobody ever sends
            return None

        with pytest.raises(DeadlockError) as exc:
            run_spmd(Hypercube(1), program, matching=matching)
        assert exc.value.cycle == 2
        assert list(exc.value.blocked) == [0]
        assert isinstance(exc.value.blocked[0], Recv)


class TestLivelock:
    def test_max_cycles_guard_on_idle_spin(self, matching):
        def program(ctx):
            while True:
                yield Idle()

        with pytest.raises(DeadlockError) as exc:
            run_spmd(Hypercube(1), program, matching=matching)
        assert exc.value.cycle == 1_000_001  # the default valve

    def test_max_cycles_configurable(self, matching):
        def program(ctx):
            while True:
                yield Idle()

        with pytest.raises(DeadlockError) as exc:
            run_spmd(Hypercube(2), program, matching=matching, max_cycles=17)
        assert exc.value.cycle == 18
        assert len(exc.value.blocked) == 4

    def test_one_sided_progress_is_not_livelock(self, matching):
        """Idles completing keep the clock ticking while a pair waits."""

        def program(ctx):
            if ctx.rank == 0:
                got = yield SendRecv(1, "a")
                return got
            for _ in range(5):
                yield Idle()
            got = yield SendRecv(0, "b")
            return got

        res = run_spmd(Hypercube(1), program, matching=matching)
        assert res.returns == ["b", "a"]
        assert res.comm_steps == 6


class TestMatchingSelection:
    def test_engine_records_requested_matcher(self, matching):
        def program(ctx):
            return None
            yield  # pragma: no cover

        eng = Engine(Hypercube(1), program, matching=matching)
        assert eng.matching == matching

    def test_use_matching_sets_and_restores_default(self, matching):
        def program(ctx):
            return None
            yield  # pragma: no cover

        before = Engine(Hypercube(1), program).matching
        with use_matching(matching):
            assert Engine(Hypercube(1), program).matching == matching
        assert Engine(Hypercube(1), program).matching == before

    def test_unknown_matching_rejected(self, matching):
        def program(ctx):
            return None
            yield  # pragma: no cover

        with pytest.raises(ValueError, match="matching"):
            Engine(Hypercube(1), program, matching="quantum")
        with pytest.raises(ValueError, match="matching"):
            use_matching("quantum").__enter__()
