"""Property-based fuzzing of the engine against an array-model oracle.

Random oblivious dimension-exchange programs run on the cycle-accurate
engine and on a direct array simulation; results, step counts, and
message counts must agree exactly.  This is the deepest guard on the
engine's synchronous semantics (snapshot matching, lockstep resumption).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import SendRecv, Shift, run_spmd
from repro.topology import Hypercube, RecursiveDualCube
from repro.topology.hamiltonian import hamiltonian_cycle

# A schedule is a list of (dim, op_code): op 0 = keep-min, 1 = keep-max,
# 2 = sum, 3 = swap (take partner's value).
SCHEDULES = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 3)), min_size=0, max_size=12
)


def _apply(op_code, mine, got):
    if op_code == 0:
        return min(mine, got)
    if op_code == 1:
        return max(mine, got)
    if op_code == 2:
        return mine + got
    return got


class TestExchangeFuzz:
    @settings(max_examples=60, deadline=None)
    @given(SCHEDULES, st.integers(0, 2**31 - 1))
    def test_hypercube_exchanges_match_oracle(self, schedule, seed):
        cube = Hypercube(3)
        rng = np.random.default_rng(seed)
        init = [int(x) for x in rng.integers(0, 1000, 8)]

        def program(ctx):
            val = init[ctx.rank]
            for dim, op_code in schedule:
                got = yield SendRecv(ctx.rank ^ (1 << dim), val)
                val = _apply(op_code, val, got)
            return val

        res = run_spmd(cube, program)

        # Oracle: whole-state array simulation.
        state = np.array(init, dtype=object)
        idx = np.arange(8)
        for dim, op_code in schedule:
            got = state[idx ^ (1 << dim)]
            state = np.array(
                [_apply(op_code, m, g) for m, g in zip(state, got)], dtype=object
            )
        assert res.returns == list(state)
        assert res.comm_steps == len(schedule)
        assert res.counters.messages == 8 * len(schedule)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(1, 7), min_size=0, max_size=8),
        st.integers(0, 2**31 - 1),
    )
    def test_ring_shift_sequences_match_oracle(self, rotations, seed):
        rdc = RecursiveDualCube(2)
        cyc = hamiltonian_cycle(2)
        succ = {cyc[k]: cyc[(k + 1) % 8] for k in range(8)}
        pred = {cyc[k]: cyc[(k - 1) % 8] for k in range(8)}
        rng = np.random.default_rng(seed)
        init = [int(x) for x in rng.integers(0, 100, 8)]

        def program(ctx):
            val = init[ctx.rank]
            for _k in rotations:
                for _ in range(_k):
                    val = yield Shift(succ[ctx.rank], val, pred[ctx.rank])
            return val

        res = run_spmd(rdc, program)
        total = sum(rotations)
        pos = {node: k for k, node in enumerate(cyc)}
        expected = [init[cyc[(pos[u] - total) % 8]] for u in rdc.nodes()]
        assert res.returns == expected
        assert res.comm_steps == total

    @settings(max_examples=40, deadline=None)
    @given(SCHEDULES)
    def test_counters_deterministic_across_repeat_runs(self, schedule):
        cube = Hypercube(2)

        def program(ctx):
            val = ctx.rank
            for dim, op_code in schedule:
                got = yield SendRecv(ctx.rank ^ (1 << (dim % 2)), val)
                val = _apply(op_code, val, got)
            return val

        a = run_spmd(cube, program)
        b = run_spmd(cube, program)
        assert a.returns == b.returns
        assert a.counters.summary() == b.counters.summary()
