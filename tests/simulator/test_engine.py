"""Tests for the synchronous lockstep engine."""

import pytest

from repro.simulator import (
    DeadlockError,
    Idle,
    LinkError,
    ProgramError,
    Recv,
    Send,
    SendRecv,
    TraceRecorder,
    run_spmd,
)
from repro.topology import DualCube, Hypercube


class TestBasicDelivery:
    def test_send_recv_pair(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(1, "ping")
                return "sent"
            got = yield Recv(0)
            return got

        res = run_spmd(Hypercube(1), program)
        assert res.returns == ["sent", "ping"]
        assert res.comm_steps == 1
        assert res.counters.messages == 1

    def test_sendrecv_full_duplex_single_cycle(self):
        def program(ctx):
            got = yield SendRecv(ctx.rank ^ 1, ctx.rank * 10)
            return got

        res = run_spmd(Hypercube(1), program)
        assert res.returns == [10, 0]
        assert res.comm_steps == 1
        assert res.counters.messages == 2

    def test_idle_consumes_a_cycle(self):
        def program(ctx):
            yield Idle()
            yield Idle()
            return ctx.rank

        res = run_spmd(Hypercube(2), program)
        assert res.comm_steps == 2
        assert res.counters.active_cycles == 0
        assert res.counters.messages == 0

    def test_empty_program_costs_nothing(self):
        def program(ctx):
            return ctx.rank
            yield  # pragma: no cover

        res = run_spmd(Hypercube(2), program)
        assert res.returns == [0, 1, 2, 3]
        assert res.comm_steps == 0

    def test_payload_defaults_to_none(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(1)
            else:
                got = yield Recv(0)
                assert got is None
            return True

        res = run_spmd(Hypercube(1), program)
        assert res.counters.payload_items == 0


class TestLockstepSemantics:
    def test_unmatched_send_waits_for_late_receiver(self):
        def program(ctx):
            if ctx.rank == 0:
                got = yield SendRecv(1, "a")  # posted at cycle 1
                return got
            yield Idle()  # receiver is late by one cycle
            got = yield SendRecv(0, "b")
            return got

        res = run_spmd(Hypercube(1), program)
        assert res.returns == ["b", "a"]
        assert res.comm_steps == 2  # cycle 1: idle only; cycle 2: exchange

    def test_request_issued_mid_cycle_waits_for_next_cycle(self):
        # Rank 1's second request must not complete in the same cycle it
        # was issued, even though rank 2 is already waiting.
        log = []

        def program(ctx):
            if ctx.rank == 0:
                yield Send(1, "x")
            elif ctx.rank == 1:
                yield Recv(0)
                got = yield SendRecv(3, "y")
                log.append(got)
            elif ctx.rank == 3:
                got = yield SendRecv(1, "z")
                log.append(got)
            return None

        res = run_spmd(Hypercube(2), program)
        assert sorted(log) == ["y", "z"]
        assert res.comm_steps == 2

    def test_chain_of_dependent_sends(self):
        def program(ctx):
            q = ctx.topo.q
            token = 0 if ctx.rank == 0 else None
            for d in range(q):
                partner = ctx.rank ^ (1 << d)
                if ctx.rank < (1 << d) and token is not None:
                    yield Send(partner, token + 1)
                elif partner < (1 << d):
                    token = yield Recv(partner)
                else:
                    yield Idle()
            return token

        res = run_spmd(Hypercube(3), program)
        # Binomial broadcast: the token counts tree depth (popcount of rank).
        assert res.returns == [0, 1, 1, 2, 1, 2, 2, 3]
        assert res.comm_steps == 3


class TestErrorDetection:
    def test_deadlock_on_unmatched_recv(self):
        def program(ctx):
            if ctx.rank == 0:
                got = yield Recv(1)  # nobody sends
                return got
            return None
            yield  # pragma: no cover

        with pytest.raises(DeadlockError, match="rank 0"):
            run_spmd(Hypercube(1), program)

    def test_deadlock_on_send_facing_send(self):
        def program(ctx):
            yield Send(ctx.rank ^ 1, "x")

        with pytest.raises(DeadlockError):
            run_spmd(Hypercube(1), program)

    def test_deadlock_on_sendrecv_facing_recv(self):
        def program(ctx):
            if ctx.rank == 0:
                yield SendRecv(1, "x")
            else:
                yield Recv(0)

        with pytest.raises(DeadlockError):
            run_spmd(Hypercube(1), program)

    def test_non_neighbor_send_rejected(self):
        def program(ctx):
            yield Send(3, "x")  # 0 and 3 differ in two bits

        with pytest.raises(LinkError, match="non-neighbor"):
            run_spmd(Hypercube(2), program)

    def test_self_send_rejected(self):
        def program(ctx):
            yield Send(ctx.rank, "x")

        with pytest.raises(LinkError, match="itself"):
            run_spmd(Hypercube(2), program)

    def test_out_of_range_peer_rejected(self):
        def program(ctx):
            yield Recv(99)

        with pytest.raises(ValueError):
            run_spmd(Hypercube(2), program)

    def test_bad_request_object_rejected(self):
        def program(ctx):
            yield "not a request"

        with pytest.raises(ProgramError):
            run_spmd(Hypercube(1), program)

    def test_non_generator_program_rejected(self):
        def program(ctx):
            return 42

        with pytest.raises(ProgramError):
            run_spmd(Hypercube(1), program)

    def test_max_cycles_guard(self):
        def program(ctx):
            while True:
                yield Idle()

        with pytest.raises(DeadlockError):
            run_spmd(Hypercube(1), program, max_cycles=10)


class TestAccounting:
    def test_dual_cube_cross_exchange_counts(self):
        dc = DualCube(2)

        def program(ctx):
            got = yield SendRecv(dc.cross_partner(ctx.rank), ctx.rank)
            return got

        res = run_spmd(dc, program)
        assert res.comm_steps == 1
        assert res.counters.messages == dc.num_nodes
        assert all(res.counters.sends == 1)
        assert all(res.counters.recvs == 1)
        for u in dc.nodes():
            assert res.returns[u] == dc.cross_partner(u)

    def test_compute_tallies_per_node(self):
        def program(ctx):
            ctx.compute(3)
            if ctx.rank == 0:
                ctx.compute(2)
            yield Idle()
            return None

        res = run_spmd(Hypercube(1), program)
        assert res.comp_steps == 2  # rank 0 had two compute rounds
        assert res.counters.max_node_ops == 5
        assert res.counters.total_ops == 8

    def test_payload_item_counting(self):
        from repro.simulator import Packed

        def program(ctx):
            got = yield SendRecv(ctx.rank ^ 1, Packed(("a", "b")))
            return got

        res = run_spmd(Hypercube(1), program)
        assert res.counters.payload_items == 4
        assert res.counters.max_message_payload == 2

    def test_message_log(self):
        def program(ctx):
            yield SendRecv(ctx.rank ^ 1, ctx.rank)

        res = run_spmd(Hypercube(1), program, log_messages=True)
        assert len(res.message_log) == 2
        assert {(m.src, m.dst) for m in res.message_log} == {(0, 1), (1, 0)}
        assert all(m.cycle == 1 for m in res.message_log)

    def test_trace_recording_via_ctx(self):
        trace = TraceRecorder()

        def program(ctx):
            ctx.record("state", ctx.rank * 2)
            yield Idle()
            ctx.record("state", ctx.rank * 2 + 1)
            return None

        run_spmd(Hypercube(2), program, trace=trace)
        assert trace.labels() == ("state",)
        assert trace.snapshot("state", 4, 0) == [0, 2, 4, 6]
        assert trace.snapshot("state", 4, 1) == [1, 3, 5, 7]
