"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import DualCube, Hypercube, RecursiveDualCube


@pytest.fixture
def rng():
    """Deterministic RNG; tests needing other streams seed locally."""
    return np.random.default_rng(0xD0A1)


@pytest.fixture(params=[1, 2, 3])
def small_n(request):
    """Dual-cube connectivities small enough for exhaustive checks."""
    return request.param


@pytest.fixture
def dc(small_n):
    return DualCube(small_n)


@pytest.fixture
def rdc(small_n):
    return RecursiveDualCube(small_n)


@pytest.fixture(params=[0, 1, 2, 3, 4])
def cube(request):
    return Hypercube(request.param)
