"""Tests for the ASCII renderers and the command-line interface."""

import pytest

from repro.routing import route
from repro.topology import DualCube, Hypercube
from repro.viz import (
    render_adjacency_matrix,
    render_clusters,
    render_key_grid,
    render_route,
)


class TestAdjacencyArt:
    def test_contains_every_edge(self):
        cube = Hypercube(2)
        art = render_adjacency_matrix(cube)
        lines = art.splitlines()
        assert len(lines) == 2 + 4
        # Node 0's row: neighbors 1 and 2.
        assert lines[2].split()[1:] == [".", "#", "#", "."]

    def test_caps_size(self):
        with pytest.raises(ValueError):
            render_adjacency_matrix(DualCube(4))


class TestClusterArt:
    def test_shows_all_nodes_binary(self):
        art = render_clusters(DualCube(2))
        assert "class 0" in art and "class 1" in art
        for u in range(8):
            assert format(u, "03b") in art

    def test_with_values(self):
        art = render_clusters(DualCube(2), values=list("abcdefgh"))
        assert "0:a" in art and "7:h" in art


class TestRouteArt:
    def test_annotates_hop_kinds(self):
        dc = DualCube(3)
        art = render_route(dc, route(dc, 0, 31))
        assert "cross-edge" in art
        assert "intra dim" in art
        assert "(5 hops)" in art


class TestKeyGrid:
    def test_renders_rows(self):
        art = render_key_grid([[1, 2, 3, 4]], ["step 0"], width=2)
        lines = art.splitlines()
        assert lines[0] == "step 0"
        assert lines[1].strip() == "1 2"
        assert lines[2].strip() == "3 4"

    def test_validates_alignment(self):
        with pytest.raises(ValueError):
            render_key_grid([[1]], ["a", "b"])


class TestCli:
    @pytest.mark.parametrize(
        "argv",
        [
            ["info", "-n", "2"],
            ["info", "-n", "2", "--layout"],
            ["theorems", "--max-n", "4"],
            ["prefix", "-n", "2", "--show", "4"],
            ["sort", "-n", "2"],
            ["route", "-n", "2", "0", "7"],
            ["traffic", "-n", "2", "--pairs", "30"],
            ["hamiltonian", "-n", "2"],
            ["collectives", "-n", "2"],
        ],
    )
    def test_commands_exit_zero(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 0
        assert capsys.readouterr().out.strip()

    def test_info_output_facts(self, capsys):
        from repro.cli import main

        main(["info", "-n", "3"])
        out = capsys.readouterr().out
        assert "32 nodes" in out and "48 edges" in out and "diameter 6" in out

    def test_theorems_table_values(self, capsys):
        from repro.cli import main

        main(["theorems", "--max-n", "3"])
        out = capsys.readouterr().out
        assert "Theorem 1" in out and "Theorem 2" in out
        assert "2.333" in out  # the n=3 sort ratio

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "info", "-n", "2"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "8 nodes" in proc.stdout

    def test_version_flag(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_missing_command_errors(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2

    def test_check_schedule_subcommand(self, capsys):
        from repro.cli import main

        assert main(["check-schedule", "--max-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "dual_prefix" in out and "dual_sort" in out
        assert "ok" in out and "FAIL" not in out
        assert "deadlock-free" in out

    def test_check_schedule_prefix_only(self, capsys):
        from repro.cli import main

        assert main(
            ["check-schedule", "--algo", "prefix", "--max-n", "2", "--paper-literal"]
        ) == 0
        out = capsys.readouterr().out
        assert "paper-literal" in out
        assert "dual_sort" not in out

    def test_lint_subcommand_clean_src(self, capsys):
        import os

        from repro.cli import main

        src = os.path.join(os.path.dirname(__file__), "..", "src")
        assert main(["lint", src]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_lint_subcommand_flags_violations(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    assert True\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "REP005" in out
        assert "2 lint finding(s)" in out


class TestVizIntegration:
    def test_key_grid_renders_sort_trace(self, rng):
        import numpy as np

        from repro import RecursiveDualCube, TraceRecorder
        from repro.core.dual_sort import dual_sort_vec

        rdc = RecursiveDualCube(2)
        trace = TraceRecorder()
        dual_sort_vec(rdc, rng.permutation(8), trace=trace)
        labels = list(trace.labels())
        states = [trace.snapshot(l, 8) for l in labels]
        art = render_key_grid(states, labels, width=8)
        assert labels[0] in art
        assert art.count("\n") >= 2 * len(labels) - 1

    def test_cluster_art_matches_topology(self):
        dc = DualCube(3)
        art = render_clusters(dc)
        # Title mentions both words once; then 2 class headers and 8
        # cluster lines.
        assert art.count("cluster") == 9
        assert art.count("class") == 3
        assert sum(1 for l in art.splitlines() if l.startswith("  cluster")) == 8

    def test_adjacency_header_aligns(self):
        from repro.topology import Hypercube

        art = render_adjacency_matrix(Hypercube(3))
        lines = art.splitlines()
        assert len(lines) == 2 + 8
        # Every body row has exactly q '#' marks (degree q).
        for row in lines[2:]:
            assert row.count("#") == 3

    def test_route_art_trivial_route(self):
        dc = DualCube(2)
        art = render_route(dc, [5])
        assert "(0 hops)" in art

    def test_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "E99_demo.txt").write_text("Demo title\n")
        assert main(["report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "E99_demo" in out and "Demo title" in out

    def test_report_subcommand_empty(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--dir", str(tmp_path / "none")]) == 1


class TestTimelineHeatmap:
    def _recorded(self):
        from repro.obs import TimelineRecorder

        t = TimelineRecorder(num_nodes=4)
        t.record_message(1, 0, 1)
        t.record_message(1, 1, 0)
        t.record_message(2, 2, 3)
        t.record_fault(3, "drop", rank=0, src=0, dst=1)
        t.set_cycles(4)
        return t

    def test_rows_links_cols_cycles(self):
        from repro.viz import render_timeline_heatmap

        out = render_timeline_heatmap(self._recorded())
        lines = out.splitlines()
        assert "over 4 cycles" in lines[0]
        row01 = next(l for l in lines if l.lstrip().startswith("0-1"))
        row23 = next(l for l in lines if l.lstrip().startswith("2-3"))
        # 4 columns after the label: loaded cycle 1, idle 2-4 for link 0-1.
        assert row01.split()[-1] == "@"
        assert row23.split()[-1] == "."

    def test_fault_row_marks_cycle(self):
        from repro.viz import render_timeline_heatmap

        out = render_timeline_heatmap(self._recorded())
        fault_row = next(
            l for l in out.splitlines() if l.lstrip().startswith("faults")
        )
        assert list(fault_row.split()[-1]) == ["D"]
        assert "C=crash" in out

    def test_empty_recorder_renders_placeholder(self):
        from repro.obs import TimelineRecorder
        from repro.viz import render_timeline_heatmap

        assert "no link events" in render_timeline_heatmap(TimelineRecorder())

    def test_caps_links_and_validates_ramp(self):
        from repro.viz import render_timeline_heatmap

        with pytest.raises(ValueError, match="capped"):
            render_timeline_heatmap(self._recorded(), max_links=1)
        with pytest.raises(ValueError, match="ramp"):
            render_timeline_heatmap(self._recorded(), ramp="x")


class TestTimelineCli:
    def test_smoke_exits_zero_and_validates(self, capsys):
        from repro.cli import main

        assert main(["timeline", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "validated: timeline matches the static schedule" in out
        assert "exporters ok" in out
        assert "prefix on D_2" in out and "sort on RD_2" in out

    def test_heatmap_and_exports(self, tmp_path, capsys):
        from repro.cli import main

        jsonl = tmp_path / "m.jsonl"
        prom = tmp_path / "m.prom"
        assert main([
            "timeline", "--algo", "sort", "-n", "2",
            "--export-jsonl", str(jsonl), "--export-prom", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "link utilization over" in out
        assert jsonl.read_text().strip()
        assert "# TYPE repro_messages counter" in prom.read_text()


class TestCheckFaultsCli:
    def test_clean_run_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["check-faults", "-n", "2"]) == 0
        assert "blast radius" in capsys.readouterr().out

    def test_cut_deadlock_exits_pairing_class(self, capsys):
        from repro.cli import main

        assert main(["check-faults", "-n", "2", "--cut", "0:1"]) == 3
        out = capsys.readouterr().out
        assert "deadlock" in out

    def test_cancel_crash_json_exits_impact_class(self, capsys):
        import json

        from repro.cli import main

        code = main(
            ["check-faults", "-n", "2", "--crash", "3",
             "--semantics", "cancel", "--json"]
        )
        assert code == 6
        payload = json.loads(capsys.readouterr().out)
        assert payload["semantics"] == "cancel"
        assert 3 in payload["blast_radius"]
        assert payload["violations"] == []

    def test_plan_mode_accepts_all_compiled_plans(self, capsys):
        from repro.cli import main

        assert main(["check-faults", "--plan", "--max-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "race-free" in out

    def test_minimal_cut_table_deterministic(self, capsys):
        import json

        from repro.cli import main

        assert main(
            ["check-faults", "--minimal-cut", "--max-n", "2", "--json"]
        ) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(
            ["check-faults", "--minimal-cut", "--max-n", "2", "--json"]
        ) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        by_name = {row["topology"]: row for row in first["rows"]}
        assert by_name["D_2"]["node_cut"] == 2
        assert by_name["Q_5"]["node_cut"] == 5

    def test_check_schedule_json(self, capsys):
        import json

        from repro.cli import main

        assert main(["check-schedule", "--max-n", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert all(r["violations"] == [] for r in payload["reports"])

    def test_lint_format_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    assert True\n")
        assert main(["lint", str(bad), "--format", "json"]) == 1
        findings = json.loads(capsys.readouterr().out)
        assert {f["code"] for f in findings} == {"REP001", "REP005"}
        assert all(f["path"].endswith("bad.py") for f in findings)

    def test_lint_format_github(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    assert True\n")
        assert main(["lint", str(bad), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "title=REP001" in out

    def test_lint_format_github_silent_when_clean(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.py"
        good.write_text('"""Fine."""\n\nX = 1\n')
        assert main(["lint", str(good), "--format", "github"]) == 0
        assert capsys.readouterr().out.strip() == ""
