"""Tests for the Topology base classes and the networkx adapter."""

import networkx as nx
import pytest

from repro.topology import DualCube, Hypercube, to_networkx
from repro.topology.base import Topology


class Broken(Topology):
    """Deliberately asymmetric adjacency for validate() tests."""

    def __init__(self, kind):
        self.kind = kind

    @property
    def num_nodes(self):
        return 4

    def neighbors(self, u):
        self.check_node(u)
        if self.kind == "asymmetric":
            return (1,) if u == 0 else ()
        if self.kind == "self-loop":
            return (u,)
        if self.kind == "repeat":
            return (1, 1) if u == 0 else (0,) if u == 1 else ()
        raise AssertionError


class TestValidate:
    def test_detects_asymmetry(self):
        with pytest.raises(AssertionError, match="asymmetric"):
            Broken("asymmetric").validate()

    def test_detects_self_loop(self):
        with pytest.raises(AssertionError, match="self-loop"):
            Broken("self-loop").validate()

    def test_detects_repeats(self):
        with pytest.raises(AssertionError, match="repeated"):
            Broken("repeat").validate()


class TestNodeChecks:
    def test_check_node_bounds(self):
        cube = Hypercube(2)
        cube.check_node(0)
        cube.check_node(3)
        with pytest.raises(ValueError):
            cube.check_node(4)
        with pytest.raises(ValueError):
            cube.check_node(-1)

    def test_edges_yield_each_once_ordered(self):
        cube = Hypercube(3)
        edges = list(cube.edges())
        assert len(edges) == len(set(edges)) == 12
        assert all(u < v for u, v in edges)

    def test_repr_mentions_name_and_size(self):
        assert "D_2" in repr(DualCube(2))
        assert "8" in repr(DualCube(2))


class TestNetworkxAdapter:
    def test_graph_matches_topology(self):
        dc = DualCube(2)
        g = to_networkx(dc)
        assert g.number_of_nodes() == dc.num_nodes
        assert g.number_of_edges() == len(list(dc.edges()))
        for u, v in dc.edges():
            assert g.has_edge(u, v)

    def test_annotation_labels(self):
        g = to_networkx(DualCube(2), annotate=True)
        assert g.nodes[0]["label"] == "000"
        assert g.nodes[5]["label"] == "101"

    def test_d2_is_a_cycle_of_eight(self):
        # Fig. 1's D_2 is (isomorphic to) the 8-cycle.
        g = to_networkx(DualCube(2))
        assert nx.is_isomorphic(g, nx.cycle_graph(8))

    def test_dualcube_presentations_isomorphic_via_nx(self):
        from repro.topology import RecursiveDualCube

        g1 = to_networkx(DualCube(2))
        g2 = to_networkx(RecursiveDualCube(2))
        assert nx.is_isomorphic(g1, g2)
