"""Tests for the Hamiltonian cycle construction and ring embedding."""

import pytest

from repro.topology import RecursiveDualCube, hamiltonian_cycle, ring_embedding_dilation


class TestHamiltonianCycle:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_visits_every_node_once(self, n):
        cyc = hamiltonian_cycle(n)
        rdc = RecursiveDualCube(n)
        assert sorted(cyc) == list(rdc.nodes())

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_every_hop_is_an_edge(self, n):
        rdc = RecursiveDualCube(n)
        cyc = hamiltonian_cycle(n)
        for a, b in zip(cyc, cyc[1:] + cyc[:1]):
            assert rdc.has_edge(a, b), (n, a, b)

    def test_base_case_is_the_eight_cycle(self):
        cyc = hamiltonian_cycle(2)
        assert len(cyc) == 8
        rdc = RecursiveDualCube(2)
        for a, b in zip(cyc, cyc[1:] + cyc[:1]):
            assert rdc.has_edge(a, b)

    def test_d1_rejected(self):
        with pytest.raises(ValueError):
            hamiltonian_cycle(1)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_cycle_contains_intra_edges_of_both_classes(self, n):
        """The invariant the induction relies on."""
        cyc = hamiltonian_cycle(n)
        kinds = set()
        for a, b in zip(cyc, cyc[1:] + cyc[:1]):
            if a & 1 == b & 1:
                kinds.add(a & 1)
        assert kinds == {0, 1}

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_cross_edge_usage_bounded(self, n):
        """Cross edges form a perfect matching, so the cycle can use at
        most half its hops on them."""
        cyc = hamiltonian_cycle(n)
        crosses = sum(
            1 for a, b in zip(cyc, cyc[1:] + cyc[:1]) if (a ^ b) == 1
        )
        assert crosses <= len(cyc) // 2


class TestRingEmbedding:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_hamiltonian_mapping_has_dilation_one(self, n):
        rdc = RecursiveDualCube(n)
        assert ring_embedding_dilation(rdc, hamiltonian_cycle(n)) == 1

    def test_identity_mapping_has_larger_dilation(self):
        rdc = RecursiveDualCube(3)
        assert ring_embedding_dilation(rdc, list(rdc.nodes())) > 1

    def test_mapping_must_be_permutation(self):
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            ring_embedding_dilation(rdc, [0] * 8)
