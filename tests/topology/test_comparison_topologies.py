"""Tests for the bounded-degree comparison topologies (paper Section 1)."""

import networkx as nx
import pytest

from repro.topology import (
    CubeConnectedCycles,
    DeBruijn,
    ShuffleExchange,
    WrappedButterfly,
    to_networkx,
)


class TestCCC:
    @pytest.mark.parametrize("q", [3, 4, 5])
    def test_shape(self, q):
        ccc = CubeConnectedCycles(q)
        assert ccc.num_nodes == q * 2**q
        ccc.validate()
        assert all(ccc.degree(u) == 3 for u in ccc.nodes())

    def test_rejects_small_q(self):
        with pytest.raises(ValueError):
            CubeConnectedCycles(2)

    def test_encode_decode_roundtrip(self):
        ccc = CubeConnectedCycles(3)
        for u in ccc.nodes():
            x, p = ccc.decode(u)
            assert ccc.encode(x, p) == u

    def test_encode_validates(self):
        ccc = CubeConnectedCycles(3)
        with pytest.raises(ValueError):
            ccc.encode(8, 0)
        with pytest.raises(ValueError):
            ccc.encode(0, 3)

    def test_cycle_and_cube_edges(self):
        ccc = CubeConnectedCycles(3)
        x, p = 0b101, 1
        u = ccc.encode(x, p)
        nbrs = set(ccc.neighbors(u))
        assert ccc.encode(x, 2) in nbrs  # cycle forward
        assert ccc.encode(x, 0) in nbrs  # cycle backward
        assert ccc.encode(x ^ 0b010, 1) in nbrs  # cube edge flips bit p

    def test_connected(self):
        assert nx.is_connected(to_networkx(CubeConnectedCycles(3)))


class TestWrappedButterfly:
    @pytest.mark.parametrize("q", [3, 4])
    def test_shape(self, q):
        bf = WrappedButterfly(q)
        assert bf.num_nodes == q * 2**q
        bf.validate()
        assert all(bf.degree(u) == 4 for u in bf.nodes())

    def test_rejects_small_q(self):
        with pytest.raises(ValueError):
            WrappedButterfly(2)

    def test_encode_decode_roundtrip(self):
        bf = WrappedButterfly(3)
        for u in bf.nodes():
            level, row = bf.decode(u)
            assert bf.encode(level, row) == u

    def test_edges_connect_adjacent_levels(self):
        bf = WrappedButterfly(4)
        for u in bf.nodes():
            lu, _ = bf.decode(u)
            for v in bf.neighbors(u):
                lv, _ = bf.decode(v)
                assert (lv - lu) % bf.q in (1, bf.q - 1)

    def test_connected(self):
        assert nx.is_connected(to_networkx(WrappedButterfly(3)))


class TestDeBruijn:
    @pytest.mark.parametrize("q", [2, 3, 4, 5])
    def test_shape(self, q):
        db = DeBruijn(q)
        assert db.num_nodes == 2**q
        db.validate()

    def test_rejects_small_q(self):
        with pytest.raises(ValueError):
            DeBruijn(1)

    def test_successors_are_shifts(self):
        db = DeBruijn(4)
        assert db.successors(0b0110) == (0b1100, 0b1101)
        assert db.predecessors(0b0110) == (0b0011, 0b1011)

    def test_degree_at_most_four_no_self_loops(self):
        db = DeBruijn(4)
        for u in db.nodes():
            nbrs = db.neighbors(u)
            assert len(nbrs) <= 4
            assert u not in nbrs

    def test_connected(self):
        assert nx.is_connected(to_networkx(DeBruijn(4)))

    def test_logarithmic_diameter(self):
        from repro.topology.metrics import diameter

        # Directed de Bruijn has diameter q; the undirected version <= q.
        assert diameter(DeBruijn(4)) <= 4


class TestShuffleExchange:
    @pytest.mark.parametrize("q", [2, 3, 4, 5])
    def test_shape(self, q):
        se = ShuffleExchange(q)
        assert se.num_nodes == 2**q
        se.validate()

    def test_rejects_small_q(self):
        with pytest.raises(ValueError):
            ShuffleExchange(1)

    def test_rotations(self):
        se = ShuffleExchange(4)
        assert se.rotate_left(0b1001) == 0b0011
        assert se.rotate_right(0b1001) == 0b1100
        for u in se.nodes():
            assert se.rotate_right(se.rotate_left(u)) == u

    def test_degree_at_most_three(self):
        se = ShuffleExchange(5)
        for u in se.nodes():
            nbrs = se.neighbors(u)
            assert len(nbrs) <= 3
            assert u not in nbrs
            assert (u ^ 1) in nbrs

    def test_connected(self):
        assert nx.is_connected(to_networkx(ShuffleExchange(4)))
