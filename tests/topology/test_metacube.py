"""Tests for the metacube generalization."""

import networkx as nx
import pytest

from repro.topology import DualCube, to_networkx
from repro.topology.metacube import Metacube


class TestShape:
    @pytest.mark.parametrize("k,m", [(1, 1), (1, 2), (2, 1), (2, 2)])
    def test_node_count(self, k, m):
        mc = Metacube(k, m)
        assert mc.num_nodes == 2 ** (k + m * 2**k)

    @pytest.mark.parametrize("k,m", [(1, 1), (1, 2), (2, 1), (2, 2)])
    def test_degree_is_k_plus_m(self, k, m):
        mc = Metacube(k, m)
        assert all(mc.degree(u) == k + m for u in mc.nodes())
        assert mc.degree_formula == k + m

    @pytest.mark.parametrize("k,m", [(1, 2), (2, 1), (2, 2)])
    def test_structural_invariants(self, k, m):
        Metacube(k, m).validate()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Metacube(0, 2)
        with pytest.raises(ValueError):
            Metacube(2, 0)
        with pytest.raises(ValueError):
            Metacube(3, 5)  # 2^(3 + 40) nodes: over the address cap

    @pytest.mark.parametrize("k,m", [(1, 2), (2, 1), (2, 2)])
    def test_edge_count_closed_form(self, k, m):
        mc = Metacube(k, m)
        assert len(list(mc.edges())) == mc.edge_count()


class TestDualCubeSpecialization:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_mc1_equals_dual_cube_bit_for_bit(self, m):
        mc = Metacube(1, m)
        dc = DualCube(m + 1)
        assert mc.num_nodes == dc.num_nodes
        for u in dc.nodes():
            assert set(mc.neighbors(u)) == set(dc.neighbors(u))

    def test_mc1_fields_match_dual_cube_fields(self):
        mc = Metacube(1, 2)
        dc = DualCube(3)
        for u in dc.nodes():
            assert mc.class_of(u) == dc.class_of(u)
            assert mc.node_id(u) == dc.node_id(u)


class TestAddressing:
    def test_active_field_selected_by_class(self):
        mc = Metacube(2, 2)
        # class 3 -> field 3 is the active one (bits 6-7).
        u = (3 << 8) | (0b01 << 6)
        assert mc.class_of(u) == 3
        assert mc.node_id(u) == 0b01
        assert list(mc.cluster_dimensions(u)) == [6, 7]

    def test_cross_dimensions_shared(self):
        mc = Metacube(2, 2)
        assert list(mc.cross_dimensions()) == [8, 9]
        for u in (0, 100, 1023):
            for d in mc.cross_dimensions():
                assert mc.has_dimension_link(u, d)

    def test_field_bounds(self):
        mc = Metacube(2, 2)
        with pytest.raises(ValueError):
            mc.field(0, 4)

    def test_cluster_key_partitions(self):
        mc = Metacube(2, 1)
        groups = {}
        for u in mc.nodes():
            groups.setdefault(mc.cluster_key(u), []).append(u)
        # 2^k classes x 2^(m*(2^k - 1)) clusters, each of size 2^m.
        assert len(groups) == 4 * 8
        assert all(len(g) == 2 for g in groups.values())
        # Intra-cluster pairs are adjacent (clusters are m-cubes).
        for members in groups.values():
            a, b = members
            assert mc.has_edge(a, b)


class TestConnectivityAndDistance:
    def test_connected(self):
        assert nx.is_connected(to_networkx(Metacube(2, 1)))

    def test_no_edges_between_clusters_of_same_class_directly(self):
        mc = Metacube(2, 1)
        for u, v in mc.edges():
            if mc.class_of(u) == mc.class_of(v):
                assert mc.cluster_key(u) == mc.cluster_key(v)

    def test_scalability_table_values(self):
        # The degree-vs-size scaling that motivates the family:
        assert Metacube(2, 3).num_nodes == 16384  # degree 5
        assert Metacube(2, 3).degree_formula == 5
        assert DualCube(8).num_nodes == 32768  # degree 8
