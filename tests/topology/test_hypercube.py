"""Tests for the hypercube topology."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bits import hamming
from repro.topology import Hypercube


class TestShape:
    @pytest.mark.parametrize("q", range(6))
    def test_node_count(self, q):
        assert Hypercube(q).num_nodes == 2**q

    @pytest.mark.parametrize("q", range(1, 6))
    def test_degree_is_q(self, q):
        cube = Hypercube(q)
        assert all(cube.degree(u) == q for u in cube.nodes())

    def test_zero_cube_is_single_node(self):
        cube = Hypercube(0)
        assert cube.num_nodes == 1
        assert cube.neighbors(0) == ()

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            Hypercube(-1)

    @pytest.mark.parametrize("q", range(5))
    def test_structural_invariants(self, q):
        Hypercube(q).validate()

    @pytest.mark.parametrize("q", range(1, 6))
    def test_edge_count(self, q):
        cube = Hypercube(q)
        assert len(list(cube.edges())) == q * 2 ** (q - 1)

    def test_name(self):
        assert Hypercube(3).name == "Q_3"


class TestAdjacency:
    def test_neighbors_differ_in_one_bit(self):
        cube = Hypercube(4)
        for u in cube.nodes():
            for v in cube.neighbors(u):
                assert hamming(u, v) == 1

    def test_has_edge_exact(self):
        cube = Hypercube(3)
        for u in cube.nodes():
            for v in cube.nodes():
                assert cube.has_edge(u, v) == (hamming(u, v) == 1)

    def test_every_dimension_is_direct(self):
        cube = Hypercube(4)
        for u in cube.nodes():
            for d in cube.dimensions():
                assert cube.has_dimension_link(u, d)
                assert cube.partner(u, d) == u ^ (1 << d)

    def test_out_of_range_node_rejected(self):
        cube = Hypercube(3)
        with pytest.raises(ValueError):
            cube.neighbors(8)
        with pytest.raises(ValueError):
            cube.neighbors(-1)

    def test_out_of_range_dimension_rejected(self):
        with pytest.raises(ValueError):
            Hypercube(3).partner(0, 3)


class TestDistance:
    @given(st.integers(0, 31), st.integers(0, 31))
    def test_distance_is_hamming(self, u, v):
        assert Hypercube(5).distance(u, v) == hamming(u, v)

    @pytest.mark.parametrize("q", range(6))
    def test_diameter_closed_form(self, q):
        assert Hypercube(q).diameter() == q

    def test_diameter_matches_bfs(self):
        from repro.topology.metrics import diameter

        for q in range(1, 5):
            assert diameter(Hypercube(q)) == q


class TestArithmeticQueries:
    @pytest.mark.parametrize("q", [0, 1, 3, 5])
    def test_all_nodes_array(self, q):
        arr = Hypercube(q).all_nodes_array()
        assert arr.dtype == np.int64
        assert arr.tolist() == list(range(1 << q))

    @pytest.mark.parametrize("q", [1, 3, 5])
    def test_partner_v_matches_scalar_partner(self, q):
        cube = Hypercube(q)
        nodes = cube.all_nodes_array()
        for d in range(q):
            vec = cube.partner_v(nodes, d)
            for u in cube.nodes():
                assert vec[u] == cube.partner(u, d)

    def test_partner_v_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            Hypercube(3).partner_v(np.arange(8), 3)
