"""Tests for the recursive presentation and its isomorphism (paper Section 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    DualCube,
    RecursiveDualCube,
    recursive_to_standard,
    standard_to_recursive,
)


class TestShape:
    @pytest.mark.parametrize("n", range(1, 6))
    def test_same_size_as_standard(self, n):
        assert RecursiveDualCube(n).num_nodes == DualCube(n).num_nodes

    @pytest.mark.parametrize("n", range(1, 5))
    def test_structural_invariants(self, n):
        RecursiveDualCube(n).validate()

    @pytest.mark.parametrize("n", range(1, 5))
    def test_degree_is_n(self, n):
        r = RecursiveDualCube(n)
        assert all(r.degree(u) == n for u in r.nodes())

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            RecursiveDualCube(0)

    def test_d1_is_k2(self):
        r = RecursiveDualCube(1)
        assert r.neighbors(0) == (1,)
        assert r.neighbors(1) == (0,)


class TestDimensionRule:
    def test_class_is_bit_zero(self, rdc):
        for u in rdc.nodes():
            assert rdc.class_of(u) == u & 1

    def test_dimension_zero_always_direct(self, rdc):
        for u in rdc.nodes():
            assert rdc.has_dimension_link(u, 0)

    def test_even_dims_belong_to_class0_odd_to_class1(self):
        r = RecursiveDualCube(3)
        for u in r.nodes():
            for d in range(1, r.num_dimensions):
                expected = (d % 2 == 0) == (u & 1 == 0)
                assert r.has_dimension_link(u, d) == expected, (u, d)

    def test_cluster_dimensions_count(self, rdc):
        for u in rdc.nodes():
            assert len(list(rdc.cluster_dimensions(u))) == rdc.n - 1

    def test_partner_same_class_for_positive_dims(self):
        r = RecursiveDualCube(3)
        for u in r.nodes():
            for d in range(1, r.num_dimensions):
                assert (u ^ (1 << d)) & 1 == u & 1


class TestIsomorphism:
    @pytest.mark.parametrize("n", range(1, 5))
    def test_mapping_is_a_bijection(self, n):
        dc = DualCube(n)
        images = [standard_to_recursive(n, u) for u in dc.nodes()]
        assert sorted(images) == list(dc.nodes())

    @pytest.mark.parametrize("n", range(1, 5))
    def test_roundtrip(self, n):
        dc = DualCube(n)
        for u in dc.nodes():
            assert recursive_to_standard(n, standard_to_recursive(n, u)) == u
            assert standard_to_recursive(n, recursive_to_standard(n, u)) == u

    @pytest.mark.parametrize("n", range(1, 5))
    def test_edges_preserved_both_ways(self, n):
        dc = DualCube(n)
        r = RecursiveDualCube(n)
        f = [standard_to_recursive(n, u) for u in dc.nodes()]
        for u in dc.nodes():
            mapped = {f[v] for v in dc.neighbors(u)}
            assert mapped == set(r.neighbors(f[u])), u

    @pytest.mark.parametrize("n", range(1, 4))
    def test_class_preserved(self, n):
        dc = DualCube(n)
        r = RecursiveDualCube(n)
        for u in dc.nodes():
            assert dc.class_of(u) == r.class_of(standard_to_recursive(n, u))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**9 - 1), st.integers(0, 2**9 - 1))
    def test_distance_preserved_n5(self, ru, rv):
        r = RecursiveDualCube(5)
        dc = DualCube(5)
        assert r.distance(ru, rv) == dc.distance(
            recursive_to_standard(5, ru), recursive_to_standard(5, rv)
        )


class TestEmulationPaths:
    def test_direct_dims_give_two_node_paths(self, rdc):
        for u in rdc.nodes():
            for d in rdc.dimensions():
                if rdc.has_dimension_link(u, d):
                    assert rdc.emulation_path(u, d) == (u, u ^ (1 << d))
                    assert rdc.exchange_hops(u, d) == 1

    def test_unsupported_dims_give_three_hop_walks(self):
        r = RecursiveDualCube(3)
        for u in r.nodes():
            for d in r.dimensions():
                path = r.emulation_path(u, d)
                assert path[0] == u
                assert path[-1] == u ^ (1 << d)
                for a, b in zip(path, path[1:]):
                    assert r.has_edge(a, b), (u, d, path)
                if not r.has_dimension_link(u, d):
                    assert len(path) == 4
                    assert r.exchange_hops(u, d) == 3
                    # cross, intra (opposite class), cross
                    assert path[1] == u ^ 1
                    assert path[2] == u ^ 1 ^ (1 << d)

    def test_exactly_half_the_nodes_are_unsupported_per_high_dim(self):
        r = RecursiveDualCube(4)
        for d in range(1, r.num_dimensions):
            unsupported = sum(
                0 if r.has_dimension_link(u, d) else 1 for u in r.nodes()
            )
            assert unsupported == r.num_nodes // 2


class TestRecursiveConstruction:
    def test_base_case_has_no_subcubes(self):
        r = RecursiveDualCube(1)
        with pytest.raises(ValueError):
            r.subcube_index(0)
        with pytest.raises(ValueError):
            r.subcube_members(0)
        with pytest.raises(ValueError):
            r.sub_dual_cube()
        with pytest.raises(ValueError):
            r.joining_edges()

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_four_contiguous_copies(self, n):
        r = RecursiveDualCube(n)
        size = r.num_nodes // 4
        for i in range(4):
            members = r.subcube_members(i)
            assert len(members) == size
            assert all(r.subcube_index(u) == i for u in members)

    def test_subcube_index_bounds(self):
        r = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            r.subcube_members(4)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_copies_are_isomorphic_to_smaller_dual_cube(self, n):
        r = RecursiveDualCube(n)
        sub = r.sub_dual_cube()
        assert sub.n == n - 1
        size = sub.num_nodes
        for i in range(4):
            base = i * size
            for a in range(size):
                # Within-copy adjacency equals the D_{n-1} adjacency.
                nbrs_in_copy = {
                    v - base
                    for v in r.neighbors(base + a)
                    if base <= v < base + size
                }
                assert nbrs_in_copy == set(sub.neighbors(a)), (n, i, a)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_joining_edges_complete_the_edge_set(self, n):
        r = RecursiveDualCube(n)
        size = r.num_nodes // 4
        internal = {
            (u, v) for u, v in r.edges() if u // size == v // size
        }
        joining = set(r.joining_edges())
        assert internal | joining == set(r.edges())
        assert internal.isdisjoint(joining)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_joining_edges_use_only_top_two_dimensions(self, n):
        r = RecursiveDualCube(n)
        top = {r.num_dimensions - 1, r.num_dimensions - 2}
        for u, v in r.joining_edges():
            assert (u ^ v).bit_length() - 1 in top
