"""Tests for the fault model."""

import numpy as np
import pytest

from repro.topology import DualCube, FaultSet, FaultyTopology, Hypercube


class TestFaultSet:
    def test_empty(self):
        fs = FaultSet()
        assert fs.num_faults == 0
        assert fs.node_ok(0)
        assert fs.link_ok(0, 1)

    def test_node_faults(self):
        fs = FaultSet(nodes=[3, 5])
        assert not fs.node_ok(3)
        assert fs.node_ok(4)
        assert not fs.link_ok(3, 4)  # incident links die with the node
        assert fs.num_faults == 2

    def test_link_faults_normalized(self):
        fs = FaultSet(links=[(5, 2)])
        assert not fs.link_ok(2, 5)
        assert not fs.link_ok(5, 2)
        assert fs.link_ok(2, 3)

    def test_random_sampling(self):
        dc = DualCube(3)
        rng = np.random.default_rng(0)
        fs = FaultSet.random(dc, 2, 3, rng)
        assert len(fs.nodes) == 2
        assert len(fs.links) == 3
        for a, b in fs.links:
            assert dc.has_edge(a, b)

    def test_random_bounds(self):
        dc = DualCube(2)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            FaultSet.random(dc, 9, 0, rng)
        with pytest.raises(ValueError):
            FaultSet.random(dc, 0, 99, rng)

    def test_self_loop_link_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            FaultSet(links=[(4, 4)])

    def test_self_loop_among_valid_links_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            FaultSet(links=[(0, 1), (2, 2)])


class TestFaultyTopology:
    def test_faulty_node_isolated(self):
        dc = DualCube(2)
        ft = FaultyTopology(dc, FaultSet(nodes=[0]))
        assert ft.neighbors(0) == ()
        for v in dc.neighbors(0):
            assert 0 not in ft.neighbors(v)

    def test_faulty_link_removed_both_sides(self):
        dc = DualCube(2)
        u = 0
        v = dc.neighbors(0)[0]
        ft = FaultyTopology(dc, FaultSet(links=[(u, v)]))
        assert v not in ft.neighbors(u)
        assert u not in ft.neighbors(v)
        assert not ft.has_edge(u, v)
        # Other links survive.
        assert len(ft.neighbors(u)) == dc.degree(u) - 1

    def test_healthy_nodes(self):
        dc = DualCube(2)
        ft = FaultyTopology(dc, FaultSet(nodes=[1, 6]))
        assert ft.healthy_nodes() == [0, 2, 3, 4, 5, 7]

    def test_invalid_faulty_link_rejected(self):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            FaultyTopology(dc, FaultSet(links=[(0, 3)]))  # not an edge

    def test_invalid_faulty_node_rejected(self):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            FaultyTopology(dc, FaultSet(nodes=[99]))

    def test_faulting_every_node_rejected(self):
        dc = DualCube(2)
        with pytest.raises(ValueError, match="healthy node"):
            FaultyTopology(dc, FaultSet(nodes=range(dc.num_nodes)))

    def test_one_survivor_is_fine(self):
        dc = DualCube(2)
        ft = FaultyTopology(dc, FaultSet(nodes=range(1, dc.num_nodes)))
        assert ft.healthy_nodes() == [0]

    def test_name_mentions_fault_count(self):
        dc = DualCube(2)
        ft = FaultyTopology(dc, FaultSet(nodes=[0], links=[(2, 3)]))
        assert "faulty(2)" in ft.name

    def test_zero_faults_is_identity_view(self):
        dc = DualCube(3)
        ft = FaultyTopology(dc, FaultSet())
        for u in dc.nodes():
            assert ft.neighbors(u) == dc.neighbors(u)

    def test_metrics_work_on_faulty_view(self):
        from repro.topology.metrics import diameter

        cube = Hypercube(3)
        ft = FaultyTopology(cube, FaultSet(links=[(0, 1)]))
        assert diameter(ft) >= cube.diameter()
