"""Tests for the metrics engine, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.topology import (
    DualCube,
    Hypercube,
    ShuffleExchange,
    measure,
    to_networkx,
)
from repro.topology.base import Topology
from repro.topology.metrics import (
    adjacency_csr,
    average_distance,
    bfs_distances,
    cost_metric,
    degree_stats,
    diameter,
    edge_count,
)


class TestAdjacency:
    def test_csr_matches_neighbor_lists(self):
        dc = DualCube(3)
        adj = adjacency_csr(dc)
        for u in dc.nodes():
            row = adj[[u], :].toarray().ravel()
            assert set(np.flatnonzero(row)) == set(dc.neighbors(u))

    def test_csr_is_symmetric(self):
        adj = adjacency_csr(DualCube(2))
        assert (adj - adj.T).nnz == 0


class TestDistances:
    def test_bfs_matches_networkx(self):
        dc = DualCube(3)
        g = to_networkx(dc)
        dist = bfs_distances(dc, [0, 5, 17])
        for row, src in zip(dist, (0, 5, 17)):
            nxd = nx.single_source_shortest_path_length(g, src)
            assert [int(x) for x in row] == [nxd[v] for v in dc.nodes()]

    @pytest.mark.parametrize("topo", [Hypercube(4), DualCube(2), ShuffleExchange(4)])
    def test_diameter_matches_networkx(self, topo):
        assert diameter(topo) == nx.diameter(to_networkx(topo))

    def test_average_distance_matches_networkx(self):
        topo = DualCube(2)
        got = average_distance(topo)
        assert got == pytest.approx(nx.average_shortest_path_length(to_networkx(topo)))

    def test_disconnected_graph_raises(self):
        class TwoIslands(Topology):
            @property
            def num_nodes(self):
                return 4

            def neighbors(self, u):
                self.check_node(u)
                return (u ^ 1,)

        with pytest.raises(ValueError, match="disconnected"):
            diameter(TwoIslands())


class TestSummaries:
    def test_degree_stats(self):
        lo, hi, mean = degree_stats(DualCube(3))
        assert lo == hi == 3
        assert mean == 3.0

    def test_edge_count_matches_edges_iter(self):
        dc = DualCube(3)
        assert edge_count(dc) == len(list(dc.edges()))

    def test_cost_metric(self):
        assert cost_metric(3, 6) == 18

    def test_measure_row(self):
        m = measure(DualCube(2))
        assert m.name == "D_2"
        assert m.num_nodes == 8
        assert m.num_edges == 8
        assert m.max_degree == 2
        assert m.diameter == 4
        assert m.cost == 8
        row = m.row()
        assert row[0] == "D_2"
        assert row[-1] == 8

    def test_measure_validates_paper_shape_claims(self):
        # Dual-cube vs same-size hypercube: half the degree, diameter + 1.
        for n in (2, 3):
            md = measure(DualCube(n))
            mq = measure(Hypercube(2 * n - 1))
            assert md.num_nodes == mq.num_nodes
            assert md.max_degree == n
            assert mq.max_degree == 2 * n - 1
            assert md.diameter == mq.diameter + 1


class TestSingleNode:
    def test_one_node_topology_measures_cleanly(self):
        """Regression: the all-pairs sweep divided by n*(n-1) = 0 on a
        1-node topology (ZeroDivisionError); the convention is 0/0.0."""
        h = Hypercube(0)
        assert h.num_nodes == 1
        assert diameter(h) == 0
        assert average_distance(h) == 0.0
        m = measure(h)
        assert m.diameter == 0
        assert m.average_distance == 0.0
        assert m.cost == 0
        assert m.num_edges == 0
