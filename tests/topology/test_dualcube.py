"""Tests for the dual-cube standard presentation (paper Section 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._bits import bit, hamming
from repro.topology import DualCube, Hypercube
from repro.topology.metrics import bfs_distances, diameter, edge_count


class TestShape:
    @pytest.mark.parametrize("n", range(1, 6))
    def test_node_count_is_2_pow_2n_minus_1(self, n):
        assert DualCube(n).num_nodes == 2 ** (2 * n - 1)

    @pytest.mark.parametrize("n", range(1, 6))
    def test_degree_is_n_everywhere(self, n):
        dc = DualCube(n)
        assert all(dc.degree(u) == n for u in dc.nodes())

    @pytest.mark.parametrize("n", range(1, 5))
    def test_structural_invariants(self, n):
        DualCube(n).validate()

    @pytest.mark.parametrize("n", range(1, 5))
    def test_edge_count_closed_form(self, n):
        dc = DualCube(n)
        assert edge_count(dc) == dc.edge_count() == n * 2 ** (2 * n - 2)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            DualCube(0)

    def test_cluster_shape(self):
        dc = DualCube(3)
        assert dc.clusters_per_class == 4
        assert dc.nodes_per_cluster == 4
        assert dc.cluster_dim == 2

    def test_d1_is_k2(self):
        dc = DualCube(1)
        assert dc.num_nodes == 2
        assert dc.neighbors(0) == (1,)
        assert dc.neighbors(1) == (0,)

    def test_paper_degree_claim_vs_same_size_hypercube(self):
        # "the number of edges per node in dual-cube is about half of that
        # in the hypercube of the same size"
        for n in range(2, 7):
            dc = DualCube(n)
            q = Hypercube(2 * n - 1)
            assert dc.num_nodes == q.num_nodes
            assert dc.n == (q.q + 1) // 2


class TestAddressFields:
    def test_class_is_leftmost_bit(self, dc):
        for u in dc.nodes():
            assert dc.class_of(u) == bit(u, 2 * dc.n - 2)

    def test_compose_decompose_roundtrip(self, dc):
        for u in dc.nodes():
            assert (
                dc.compose(dc.class_of(u), dc.cluster_id(u), dc.node_id(u)) == u
            )

    def test_compose_validates(self):
        dc = DualCube(3)
        with pytest.raises(ValueError):
            dc.compose(2, 0, 0)
        with pytest.raises(ValueError):
            dc.compose(0, 4, 0)
        with pytest.raises(ValueError):
            dc.compose(0, 0, 4)

    def test_cluster_members_partition_nodes(self, dc):
        seen = set()
        for cls in (0, 1):
            for k in range(dc.clusters_per_class):
                members = dc.cluster_members(cls, k)
                assert len(members) == dc.nodes_per_cluster
                for u in members:
                    assert dc.cluster_key(u) == (cls, k)
                seen.update(members)
        assert seen == set(dc.nodes())

    def test_class0_node_ids_are_low_bits(self):
        dc = DualCube(3)
        u = dc.compose(0, 0b10, 0b01)
        assert u == 0b10_01
        assert dc.node_id(u) == 0b01
        assert dc.cluster_id(u) == 0b10

    def test_class1_fields_swap_roles(self):
        dc = DualCube(3)
        u = dc.compose(1, 0b10, 0b01)
        assert u == 0b1_01_10
        assert dc.node_id(u) == 0b01
        assert dc.cluster_id(u) == 0b10

    def test_vectorized_fields_match_scalar(self, dc):
        idx = dc.all_nodes_array()
        assert list(dc.class_of_v(idx)) == [dc.class_of(u) for u in dc.nodes()]
        assert list(dc.node_id_v(idx)) == [dc.node_id(u) for u in dc.nodes()]
        assert list(dc.cluster_id_v(idx)) == [
            dc.cluster_id(u) for u in dc.nodes()
        ]


class TestAdjacency:
    def test_cross_partner_flips_class_bit_only(self, dc):
        for u in dc.nodes():
            v = dc.cross_partner(u)
            assert u ^ v == 1 << (2 * dc.n - 2)
            assert dc.has_edge(u, v)

    def test_exactly_one_cross_edge_per_node(self, dc):
        for u in dc.nodes():
            crosses = [
                v for v in dc.neighbors(u) if dc.class_of(v) != dc.class_of(u)
            ]
            assert crosses == [dc.cross_partner(u)]

    def test_no_edges_between_same_class_clusters(self, dc):
        for u, v in dc.edges():
            if dc.class_of(u) == dc.class_of(v):
                assert dc.cluster_id(u) == dc.cluster_id(v)

    def test_clusters_are_hypercubes(self):
        dc = DualCube(3)
        m = dc.cluster_dim
        for cls in (0, 1):
            for k in range(dc.clusters_per_class):
                members = dc.cluster_members(cls, k)
                for a in range(len(members)):
                    for b in range(len(members)):
                        expect = hamming(a, b) == 1  # node-ID Hamming
                        assert dc.has_edge(members[a], members[b]) == expect

    def test_has_edge_matches_neighbors(self, dc):
        for u in dc.nodes():
            nbrs = set(dc.neighbors(u))
            for v in dc.nodes():
                assert dc.has_edge(u, v) == (v in nbrs)

    def test_edge_definition_bit_conditions(self):
        # The three conditions of the formal definition, explicitly.
        dc = DualCube(3)
        n = 3
        for u in dc.nodes():
            for i in range(2 * n - 1):
                v = u ^ (1 << i)
                if i == 2 * n - 2:
                    expected = True
                elif i <= n - 2:
                    expected = bit(u, 2 * n - 2) == 0
                else:
                    expected = bit(u, 2 * n - 2) == 1
                assert dc.has_edge(u, v) == expected, (u, i)

    def test_intra_dimensions_and_local_map(self, dc):
        for u in dc.nodes():
            dims = list(dc.intra_dimensions(u))
            assert len(dims) == dc.cluster_dim
            for i in range(dc.cluster_dim):
                assert dc.local_to_global_dim(u, i) == dims[i]
            with pytest.raises(ValueError):
                dc.local_to_global_dim(u, dc.cluster_dim)

    def test_has_dimension_link(self, dc):
        for u in dc.nodes():
            for d in dc.dimensions():
                assert dc.has_dimension_link(u, d) == dc.has_edge(
                    u, u ^ (1 << d)
                )


class TestDistance:
    def test_distance_matches_bfs_exhaustive(self, dc):
        dist = bfs_distances(dc, list(dc.nodes()))
        for u in dc.nodes():
            for v in dc.nodes():
                assert dc.distance(u, v) == int(dist[u, v]), (u, v)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 511), st.integers(0, 511))
    def test_distance_symmetric_and_triangle_free_of_negatives(self, u, v):
        dc = DualCube(5)
        d = dc.distance(u, v)
        assert d == dc.distance(v, u)
        assert d >= hamming(u, v)
        assert d <= hamming(u, v) + 2

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_diameter_is_2n(self, n):
        dc = DualCube(n)
        assert dc.diameter() == 2 * n
        assert diameter(dc) == 2 * n

    def test_d1_diameter(self):
        assert DualCube(1).diameter() == 1

    def test_diameter_is_hypercube_plus_one(self):
        # "The diameter of dual-cube is that of hypercube of the same size
        # plus one."
        for n in (2, 3):
            assert diameter(DualCube(n)) == Hypercube(2 * n - 1).diameter() + 1

    def test_same_class_different_cluster_pays_two(self):
        dc = DualCube(3)
        u = dc.compose(0, 0, 0)
        v = dc.compose(0, 1, 0)
        assert hamming(u, v) == 1
        assert dc.distance(u, v) == 3


class TestArithmeticQueries:
    """The columnar backend's address-arithmetic neighbor API must agree
    with the scalar topology methods it replaces."""

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_cross_partner_v_matches_scalar(self, n):
        dc = DualCube(n)
        vec = dc.cross_partner_v()
        assert vec.dtype == np.int64
        for u in dc.nodes():
            assert vec[u] == dc.cross_partner(u)

    def test_cross_partner_v_accepts_explicit_subset(self):
        dc = DualCube(3)
        subset = np.array([0, 5, 17], dtype=np.int64)
        expected = [dc.cross_partner(int(u)) for u in subset]
        assert dc.cross_partner_v(subset).tolist() == expected

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_intra_partner_v_matches_flip_of_global_dim(self, n):
        dc = DualCube(n)
        nodes = dc.all_nodes_array()
        for local_dim in range(n - 1):
            vec = dc.intra_partner_v(nodes, local_dim)
            for u in dc.nodes():
                g = dc.local_to_global_dim(u, local_dim)
                assert vec[u] == u ^ (1 << g)

    def test_intra_partner_v_rejects_out_of_range_dim(self):
        dc = DualCube(3)
        with pytest.raises(ValueError, match="local dimension"):
            dc.intra_partner_v(dc.all_nodes_array(), 2)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_local_round_bit_is_class_uniform(self, n):
        dc = DualCube(n)
        for u in dc.nodes():
            cls = dc.class_of(u)
            for local_dim in range(n - 1):
                assert (
                    dc.local_round_bit(cls, local_dim)
                    == dc.local_to_global_dim(u, local_dim)
                )

    def test_local_round_bit_validates_arguments(self):
        dc = DualCube(3)
        with pytest.raises(ValueError, match="class"):
            dc.local_round_bit(2, 0)
        with pytest.raises(ValueError, match="local dimension"):
            dc.local_round_bit(0, 5)

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_class_slices_partition_by_class(self, n):
        dc = DualCube(n)
        lo, hi = dc.class_slices()
        nodes = list(dc.nodes())
        assert nodes[lo] + nodes[hi] == nodes
        assert all(dc.class_of(u) == 0 for u in nodes[lo])
        assert all(dc.class_of(u) == 1 for u in nodes[hi])
