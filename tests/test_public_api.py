"""Public-API integrity: every advertised name resolves and works."""

import importlib

import pytest


PACKAGES = [
    "repro",
    "repro.topology",
    "repro.simulator",
    "repro.core",
    "repro.routing",
    "repro.analysis",
    "repro.apps",
    "repro.viz",
]


class TestExports:
    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_all_names_resolve(self, pkg):
        mod = importlib.import_module(pkg)
        assert hasattr(mod, "__all__"), pkg
        for name in mod.__all__:
            assert getattr(mod, name, None) is not None, f"{pkg}.{name}"

    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_no_duplicate_exports(self, pkg):
        mod = importlib.import_module(pkg)
        assert len(mod.__all__) == len(set(mod.__all__)), pkg

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_star_import_is_clean(self):
        namespace = {}
        exec("from repro import *", namespace)
        assert "dual_prefix" in namespace
        assert "dual_sort" in namespace
        assert "DualCube" in namespace


class TestDocstrings:
    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_every_public_callable_documented(self, pkg):
        mod = importlib.import_module(pkg)
        undocumented = []
        for name in mod.__all__:
            obj = getattr(mod, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(f"{pkg}.{name}")
        assert not undocumented, undocumented

    def test_readme_quickstart_actually_runs(self):
        import numpy as np

        from repro import ADD, CostCounters, DualCube, RecursiveDualCube, dual_prefix, dual_sort

        dc = DualCube(3)
        prefix = dual_prefix(dc, np.arange(1, 33), ADD)
        assert prefix[-1] == 528
        rdc = RecursiveDualCube(3)
        counters = CostCounters(rdc.num_nodes)
        keys = dual_sort(rdc, np.random.default_rng(0).permutation(32), counters=counters)
        assert list(keys) == list(range(32))
        assert counters.comm_steps == 35
