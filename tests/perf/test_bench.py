"""Tests for the persistent perf harness (``repro bench``)."""

import copy
import json

import pytest

from repro.cli import main
from repro.perf import (
    BenchRecord,
    compare_bench,
    load_bench,
    run_bench,
    write_bench,
)
from repro.perf.bench import SCHEMA_VERSION, _EXACT_FIELDS


@pytest.fixture(scope="module")
def smoke_payload():
    """One smoke run shared by the whole module (it runs real algorithms)."""
    return run_bench(smoke=True, max_n=2)


class TestRunBench:
    def test_smoke_caps_sweep_and_repeats(self, smoke_payload):
        assert smoke_payload["smoke"] is True
        assert smoke_payload["repeats"] == 1
        assert {r["n"] for r in smoke_payload["records"]} == {2}

    def test_schema_and_metadata(self, smoke_payload):
        assert smoke_payload["schema"] == SCHEMA_VERSION
        assert smoke_payload["suite"] == "core"
        assert smoke_payload["seed"] == 0

    def test_covers_every_suite_member(self, smoke_payload):
        benches = {(r["bench"], r["backend"]) for r in smoke_payload["records"]}
        assert benches == {
            ("dual_prefix", "vectorized"),
            ("dual_prefix", "engine"),
            ("dual_sort", "vectorized"),
            ("dual_sort", "engine"),
            ("large_prefix_b8", "vectorized"),
            ("large_sort_b8", "vectorized"),
            ("run_traffic", "router"),
            ("fault_prefix", "degraded-node"),
            ("fault_prefix", "degraded-link"),
            ("fault_prefix", "retry-drop"),
            ("fault_sort", "degraded-node"),
            ("fault_sort", "degraded-link"),
            ("fault_sort", "retry-drop"),
            ("fault_traffic", "router"),
        }

    def test_faults_only_runs_just_the_fault_family(self):
        payload = run_bench(smoke=True, max_n=2, faults_only=True)
        assert payload["suite"] == "faults"
        benches = {r["bench"] for r in payload["records"]}
        assert benches == {"fault_prefix", "fault_sort", "fault_traffic"}
        drops = {r["backend"]: r["messages_dropped"] for r in payload["records"]}
        assert drops["retry-drop"] > 0 or any(
            r["messages_dropped"] > 0 for r in payload["records"]
        )

    def test_records_have_sane_costs(self, smoke_payload):
        for r in smoke_payload["records"]:
            assert r["wall_s"] > 0
            assert r["num_nodes"] == 2 ** (2 * r["n"] - 1)
            assert r["messages"] > 0
            assert r["comm_steps"] >= 0
            assert r["messages_dropped"] >= 0
            assert r["retries"] >= 0
            assert r["timeouts"] == 0

    def test_engine_and_vectorized_agree_on_comm_steps(self, smoke_payload):
        by_key = {(r["bench"], r["backend"]): r for r in smoke_payload["records"]}
        for bench in ("dual_prefix", "dual_sort"):
            eng = by_key[(bench, "engine")]
            vec = by_key[(bench, "vectorized")]
            assert eng["comm_steps"] == vec["comm_steps"]

    def test_fault_traffic_hop_ledgers_reconcile(self, smoke_payload):
        by_key = {(r["bench"], r["backend"]): r for r in smoke_payload["records"]}
        r = by_key[("fault_traffic", "router")]
        # messages = physical crossings, payload_items = logical hops.
        assert r["retries"] > 0
        assert r["messages"] == r["payload_items"] + r["retries"]

    def test_vectorized_records_carry_phase_timings(self, smoke_payload):
        by_key = {(r["bench"], r["backend"]): r for r in smoke_payload["records"]}
        phases = by_key[("large_prefix_b8", "vectorized")]["phases"]
        assert set(phases) == {"local-prefix", "network", "fold"}
        assert all(v >= 0 for v in phases.values())
        assert by_key[("large_sort_b8", "vectorized")]["phases"]
        assert by_key[("dual_sort", "vectorized")]["phases"]
        # Engine benchmarks have no profiler hook; their dict stays empty.
        assert by_key[("dual_sort", "engine")]["phases"] == {}

    def test_max_n_validated(self):
        with pytest.raises(ValueError, match="max_n"):
            run_bench(max_n=1)

    def test_record_key(self):
        r = BenchRecord(
            bench="b", backend="x", n=2, num_nodes=16, wall_s=0.1,
            comm_steps=1, comp_steps=1, messages=1, payload_items=1,
            max_message_payload=1,
        )
        assert r.key == ("b", "x", 2)


class TestWriteLoad:
    def test_roundtrip(self, smoke_payload, tmp_path):
        path = write_bench(smoke_payload, tmp_path / "b.json")
        assert load_bench(path) == smoke_payload

    def test_output_is_stable_pretty_json(self, smoke_payload, tmp_path):
        path = write_bench(smoke_payload, tmp_path / "b.json")
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == smoke_payload

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "records": []}))
        with pytest.raises(ValueError, match="schema"):
            load_bench(path)

    def test_schema_v1_baselines_still_load_and_compare(
        self, smoke_payload, tmp_path
    ):
        """Files written before the ``phases`` field (schema 1) stay usable
        as ``--compare`` baselines; added keys are ignored."""
        old = copy.deepcopy(smoke_payload)
        old["schema"] = 1
        for r in old["records"]:
            del r["phases"]
        path = write_bench(old, tmp_path / "v1.json")
        loaded = load_bench(path)
        assert loaded["schema"] == 1
        assert compare_bench(smoke_payload, loaded) == []


class TestCompareBench:
    def test_identical_payloads_are_clean(self, smoke_payload):
        assert compare_bench(smoke_payload, smoke_payload) == []

    @pytest.mark.parametrize("field", _EXACT_FIELDS)
    def test_cost_field_drift_is_flagged(self, smoke_payload, field):
        current = copy.deepcopy(smoke_payload)
        current["records"][0][field] += 1
        problems = compare_bench(current, smoke_payload)
        assert len(problems) == 1
        assert field in problems[0]

    def test_wallclock_regression_flagged(self, smoke_payload):
        current = copy.deepcopy(smoke_payload)
        current["records"][0]["wall_s"] = smoke_payload["records"][0]["wall_s"] * 10
        problems = compare_bench(current, smoke_payload)
        assert len(problems) == 1
        assert "wallclock" in problems[0]

    def test_wallclock_within_factor_ok(self, smoke_payload):
        current = copy.deepcopy(smoke_payload)
        current["records"][0]["wall_s"] = smoke_payload["records"][0]["wall_s"] * 1.4
        assert compare_bench(current, smoke_payload) == []

    def test_disappeared_record_flagged(self, smoke_payload):
        current = copy.deepcopy(smoke_payload)
        dropped = current["records"].pop()
        problems = compare_bench(current, smoke_payload)
        assert len(problems) == 1
        assert dropped["bench"] in problems[0]
        assert "disappeared" in problems[0]

    def test_new_record_is_fine(self, smoke_payload):
        previous = copy.deepcopy(smoke_payload)
        previous["records"].pop()
        assert compare_bench(smoke_payload, previous) == []

    def test_bad_wall_factor_rejected(self, smoke_payload):
        with pytest.raises(ValueError, match="wall_factor"):
            compare_bench(smoke_payload, smoke_payload, wall_factor=0)


class TestCli:
    def test_bench_smoke_writes_file(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(["bench", "--smoke", "--max-n", "2", "--out", str(out)])
        assert rc == 0
        assert load_bench(out)["smoke"] is True
        stdout = capsys.readouterr().out
        assert "repro bench (smoke)" in stdout
        assert "dual_sort" in stdout

    def test_bench_compare_clean_exit_zero(self, tmp_path, capsys):
        prev = tmp_path / "prev.json"
        main(["bench", "--smoke", "--max-n", "2", "--out", str(prev)])
        rc = main(
            [
                "bench", "--smoke", "--max-n", "2",
                "--out", str(tmp_path / "cur.json"),
                "--compare", str(prev),
                "--wall-factor", "1000",
            ]
        )
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bench_compare_regression_exit_one(self, tmp_path, capsys):
        prev_path = tmp_path / "prev.json"
        main(["bench", "--smoke", "--max-n", "2", "--out", str(prev_path)])
        doctored = load_bench(prev_path)
        doctored["records"][0]["messages"] += 7
        write_bench(doctored, prev_path)
        rc = main(
            [
                "bench", "--smoke", "--max-n", "2",
                "--out", str(tmp_path / "cur.json"),
                "--compare", str(prev_path),
                "--wall-factor", "1000",
            ]
        )
        assert rc == 1
        assert "REGRESSIONS" in capsys.readouterr().out


class TestColumnarBench:
    @pytest.fixture(scope="class")
    def columnar_payload(self):
        from repro.perf import run_bench_columnar

        return run_bench_columnar(smoke=True, max_n=2)

    def test_smoke_runs_single_size(self, columnar_payload):
        assert columnar_payload["suite"] == "columnar"
        assert columnar_payload["schema"] == SCHEMA_VERSION
        assert {r["n"] for r in columnar_payload["records"]} == {2}
        assert {r["backend"] for r in columnar_payload["records"]} == {"columnar"}
        assert {r["bench"] for r in columnar_payload["records"]} == {
            "dual_prefix",
            "dual_sort",
        }

    def test_records_carry_peak_memory(self, columnar_payload):
        for r in columnar_payload["records"]:
            assert r["peak_mem_mb"] > 0

    def test_counters_match_core_suite(self, columnar_payload, smoke_payload):
        # The columnar records must be cost-identical to the vectorized
        # rows of the core suite at the same (bench, n).
        core = {
            (r["bench"], r["n"]): r
            for r in smoke_payload["records"]
            if r["backend"] == "vectorized"
        }
        for r in columnar_payload["records"]:
            base = core[(r["bench"], r["n"])]
            for f in _EXACT_FIELDS:
                assert r[f] == base[f], (r["bench"], f)

    def test_max_n_validated(self):
        from repro.perf import run_bench_columnar

        with pytest.raises(ValueError, match="max_n"):
            run_bench_columnar(max_n=1)


class TestCompareBenchDetailed:
    def test_counter_regression_names_field_and_values(self, smoke_payload):
        from repro.perf import compare_bench_detailed

        current = copy.deepcopy(smoke_payload)
        current["records"][0]["messages"] += 7
        (reg,) = compare_bench_detailed(current, smoke_payload)
        base = smoke_payload["records"][0]
        assert reg.field == "messages"
        assert reg.baseline == base["messages"]
        assert reg.current == base["messages"] + 7
        assert (reg.bench, reg.backend, reg.n) == (
            base["bench"], base["backend"], base["n"],
        )
        assert str(reg) in compare_bench(current, smoke_payload)

    def test_wallclock_regression_field(self, smoke_payload):
        from repro.perf import compare_bench_detailed

        current = copy.deepcopy(smoke_payload)
        current["records"][0]["wall_s"] = smoke_payload["records"][0]["wall_s"] * 10
        (reg,) = compare_bench_detailed(current, smoke_payload)
        assert reg.field == "wall_s"
        assert reg.current == pytest.approx(reg.baseline * 10)

    def test_disappeared_record_field(self, smoke_payload):
        from repro.perf import compare_bench_detailed

        current = copy.deepcopy(smoke_payload)
        current["records"].pop()
        (reg,) = compare_bench_detailed(current, smoke_payload)
        assert reg.field == "record"
        assert reg.current is None

    def test_string_view_delegates(self, smoke_payload):
        from repro.perf import compare_bench_detailed

        current = copy.deepcopy(smoke_payload)
        current["records"][0]["comm_steps"] += 1
        current["records"][1]["wall_s"] *= 100
        assert compare_bench(current, smoke_payload) == [
            str(r) for r in compare_bench_detailed(current, smoke_payload)
        ]


class TestReplayBench:
    @pytest.fixture(scope="class")
    def replay_payload(self):
        from repro.perf import run_bench_replay

        return run_bench_replay(smoke=True, max_n=2, shards=2)

    def test_smoke_suite_shape(self, replay_payload):
        assert replay_payload["suite"] == "replay"
        assert replay_payload["schema"] == SCHEMA_VERSION
        assert {r["n"] for r in replay_payload["records"]} == {2}
        benches = {(r["bench"], r["backend"]) for r in replay_payload["records"]}
        assert benches == {
            ("dual_prefix", "replay"),
            ("dual_sort", "replay"),
            ("large_prefix_b8", "replay"),
            ("large_sort_b8", "replay"),
            ("dual_prefix", "replay-sharded"),
        }

    def test_counters_match_core_suite(self, replay_payload, smoke_payload):
        # Replay rows (sharded included) must be cost-identical to the
        # vectorized rows of the core suite at the same (bench, n).
        core = {
            (r["bench"], r["n"]): r
            for r in smoke_payload["records"]
            if r["backend"] == "vectorized"
        }
        for r in replay_payload["records"]:
            base = core[(r["bench"], r["n"])]
            for f in _EXACT_FIELDS:
                assert r[f] == base[f], (r["bench"], r["backend"], f)

    def test_records_carry_peak_memory(self, replay_payload):
        for r in replay_payload["records"]:
            assert r["peak_mem_mb"] > 0

    def test_max_n_validated(self):
        from repro.perf import run_bench_replay

        with pytest.raises(ValueError, match="max_n"):
            run_bench_replay(max_n=1)


class TestReplayCli:
    def test_bench_backend_replay_smoke_gates_against_itself(self, tmp_path):
        out = tmp_path / "br.json"
        assert main(
            ["bench", "--backend", "replay", "--smoke", "--max-n", "2",
             "--out", str(out)]
        ) == 0
        assert load_bench(out)["suite"] == "replay"
        # Second run compares against the file it is about to overwrite;
        # counters are deterministic, so this must gate clean (the
        # make bench-replay-smoke idiom).
        assert main(
            ["bench", "--backend", "replay", "--smoke", "--max-n", "2",
             "--out", str(out), "--compare", str(out), "--wall-factor", "50"]
        ) == 0

    def test_faults_flag_rejected_for_replay(self):
        assert main(["bench", "--backend", "replay", "--faults"]) == 2


class TestMergeBench:
    def test_merge_keeps_disjoint_and_overwrites_collisions(self):
        from repro.perf import merge_bench

        rec = dict(bench="dual_prefix", backend="columnar", n=2, wall_s=1.0)
        old = dict(bench="dual_prefix", backend="vectorized", n=2, wall_s=9.0)
        collide_old = dict(rec, wall_s=5.0)
        base = {"schema": 2, "suite": "core", "records": [old, collide_old]}
        new = {"schema": SCHEMA_VERSION, "suite": "columnar", "records": [rec]}
        merged = merge_bench(base, new)
        assert merged["schema"] == SCHEMA_VERSION
        assert merged["suite"] == "columnar"
        keys = [(r["bench"], r["backend"], r["n"]) for r in merged["records"]]
        assert keys == sorted(keys) and len(keys) == 2
        by_key = {(r["bench"], r["backend"], r["n"]): r for r in merged["records"]}
        assert by_key[("dual_prefix", "columnar", 2)]["wall_s"] == 1.0
        assert by_key[("dual_prefix", "vectorized", 2)]["wall_s"] == 9.0

    def test_older_schemas_still_load(self, tmp_path):
        for schema in (1, 2):
            p = tmp_path / f"v{schema}.json"
            p.write_text(json.dumps({"schema": schema, "records": []}))
            assert load_bench(p)["schema"] == schema


class TestColumnarCli:
    def test_bench_backend_columnar_smoke(self, tmp_path, capsys):
        out = tmp_path / "bc.json"
        rc = main(
            ["bench", "--backend", "columnar", "--smoke", "--max-n", "2",
             "--out", str(out), "--compare", str(out)]
        )
        # --compare pointing at a not-yet-existing baseline is a first
        # run: record it and exit clean rather than crash.
        assert rc == 0
        assert out.exists()
        assert "no baseline" in capsys.readouterr().out

    def test_compare_loads_baseline_before_overwriting(self, tmp_path):
        out = tmp_path / "bc.json"
        assert main(
            ["bench", "--backend", "columnar", "--smoke", "--max-n", "2",
             "--out", str(out)]
        ) == 0
        # Second run compares against the file it is about to overwrite;
        # counters are deterministic, so this must gate clean.
        assert main(
            ["bench", "--backend", "columnar", "--smoke", "--max-n", "2",
             "--out", str(out), "--compare", str(out), "--wall-factor", "50"]
        ) == 0

    def test_faults_flag_rejected_for_columnar(self):
        assert main(["bench", "--backend", "columnar", "--faults"]) == 2
