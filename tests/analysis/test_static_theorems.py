"""Theorem 1/2 static verification and full repro.core schedule coverage.

This is the acceptance gate of the static analyzer: D_prefix and D_sort
schedules on D_2..D_5 must verify edge-legal, deadlock-free, 1-port
clean, and within (indeed exactly at) the theorem step counts — without
a single engine run.
"""

import pytest

from repro.analysis.static import (
    core_schedule_cases,
    extract_schedule,
    run_schedule_checks,
    verify_prefix_schedule,
    verify_sort_schedule,
    verify_theorems,
)
from repro.analysis.complexity import (
    dual_prefix_comm_exact,
    dual_sort_comm_exact,
    theorem1_comm_bound,
    theorem2_comp_bound,
)

NS = [2, 3, 4, 5]


class TestTheorem1Static:
    @pytest.mark.parametrize("n", NS)
    def test_prefix_verifies(self, n):
        report = verify_prefix_schedule(n)
        assert report.ok, [str(v) for v in report.violations]
        assert report.num_nodes == 2 ** (2 * n - 1)
        assert report.comm_steps == dual_prefix_comm_exact(n) == 2 * n
        assert report.comm_steps <= theorem1_comm_bound(n)
        assert report.comp_steps == 2 * n

    @pytest.mark.parametrize("n", [2, 3])
    def test_paper_literal_prefix_verifies(self, n):
        report = verify_prefix_schedule(n, paper_literal=True)
        assert report.ok, [str(v) for v in report.violations]
        assert report.comm_steps == 2 * n + 1 == theorem1_comm_bound(n)


class TestTheorem2Static:
    @pytest.mark.parametrize("n", NS)
    def test_sort_verifies(self, n):
        report = verify_sort_schedule(n)
        assert report.ok, [str(v) for v in report.violations]
        assert report.comm_steps == dual_sort_comm_exact(n)
        assert report.comp_steps == theorem2_comp_bound(n) == 2 * n * n - n

    @pytest.mark.parametrize("n", [2, 3])
    def test_sort_single_payload_verifies(self, n):
        report = verify_sort_schedule(n, payload_policy="single")
        assert report.ok, [str(v) for v in report.violations]
        assert report.comm_steps == dual_sort_comm_exact(
            n, payload_policy="single"
        )


class TestVerifyTheorems:
    def test_sweep_all_ok(self):
        reports = verify_theorems(2, 4)
        assert len(reports) == 6
        assert all(r.ok for r in reports)
        assert {r.algo for r in reports} == {"dual_prefix", "dual_sort"}

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError, match="min_n"):
            verify_theorems(3, 2)
        with pytest.raises(ValueError, match="min_n"):
            verify_theorems(0, 2)

    def test_bad_algo_rejected(self):
        with pytest.raises(ValueError, match="algos"):
            verify_theorems(2, 2, algos=("quicksort",))

    def test_prefix_only(self):
        reports = verify_theorems(2, 3, algos=("prefix",))
        assert [r.algo for r in reports] == ["dual_prefix", "dual_prefix"]


class TestCoreCoverage:
    """Every engine algorithm in repro.core extracts to a clean schedule."""

    @pytest.mark.parametrize(
        "name,topo,program",
        [pytest.param(*case, id=case[0]) for case in core_schedule_cases(2)],
    )
    def test_schedule_is_clean(self, name, topo, program):
        sched = extract_schedule(topo, program)
        assert sched.completed, (name, sched.blocked)
        found = run_schedule_checks(sched, topo)
        assert found == [], [str(v) for v in found]

    def test_reroute_case_present(self):
        names = [name for name, _, _ in core_schedule_cases(2)]
        assert any("reroute" in n for n in names)
        assert any("degraded" in n for n in names)

    @pytest.mark.parametrize(
        "name,topo,program",
        [pytest.param(*case, id=case[0]) for case in core_schedule_cases(3)],
    )
    def test_schedule_is_clean_n3(self, name, topo, program):
        sched = extract_schedule(topo, program)
        assert sched.completed, (name, sched.blocked)
        found = run_schedule_checks(sched, topo)
        assert found == [], [str(v) for v in found]
