"""Schedule extraction: RecordingCtx, the lockstep interpreter, and the
engine-log cross-validation path."""

import pytest

from repro.analysis.static import (
    RecordingCtx,
    extract_schedule,
    schedule_from_messages,
)
from repro.core.dual_prefix import dual_prefix_program
from repro.core.dual_sort import dual_sort_schedule, schedule_program
from repro.core.ops import ADD
from repro.simulator import Idle, Recv, Send, SendRecv, Shift, run_spmd
from repro.simulator.errors import ProgramError
from repro.topology import DualCube, Hypercube, RecursiveDualCube


class TestRecordingCtx:
    def test_counts_compute_rounds(self):
        rounds = [0, 0]
        ctx = RecordingCtx(1, Hypercube(1), rounds)
        ctx.compute()
        ctx.compute(5)
        assert rounds == [0, 2]

    def test_negative_ops_rejected(self):
        ctx = RecordingCtx(0, Hypercube(1), [0, 0])
        with pytest.raises(ValueError, match="non-negative"):
            ctx.compute(-1)

    def test_record_is_noop_and_neighbors_delegate(self):
        cube = Hypercube(2)
        ctx = RecordingCtx(0, cube, [0] * 4)
        ctx.record("label", {"arbitrary": "state"})
        assert ctx.neighbors() == cube.neighbors(0)


class TestExtractBasics:
    def test_single_exchange(self):
        cube = Hypercube(1)

        def program(ctx):
            got = yield SendRecv(ctx.rank ^ 1, ctx.rank)
            return got

        sched = extract_schedule(cube, program)
        assert sched.completed
        assert sched.steps == 1
        assert sched.messages == 2
        assert {(e.src, e.dst) for e in sched.events} == {(0, 1), (1, 0)}
        assert all(e.step == 1 and e.kind == "sendrecv" for e in sched.events)

    def test_payloads_are_forwarded(self):
        # Data-dependent control flow: rank 1 only talks again if the
        # received value is even.  Extraction must forward payloads or
        # this program cannot be interpreted.
        cube = Hypercube(1)

        def program(ctx):
            got = yield SendRecv(ctx.rank ^ 1, 2 * ctx.rank)
            if got % 2 == 0:
                got = yield SendRecv(ctx.rank ^ 1, got)
            return got

        sched = extract_schedule(cube, program)
        assert sched.completed
        assert sched.steps == 2

    def test_idle_steps_counted_like_engine_cycles(self):
        cube = Hypercube(1)

        def program(ctx):
            if ctx.rank == 0:
                yield Idle()
                yield Idle()
            yield SendRecv(ctx.rank ^ 1, ctx.rank)

        sched = extract_schedule(cube, program)
        result = run_spmd(cube, program)
        assert sched.completed
        assert sched.comm_steps == result.comm_steps

    def test_comp_steps_max_chain(self):
        cube = Hypercube(1)

        def program(ctx):
            for _ in range(ctx.rank + 1):
                ctx.compute()
            yield SendRecv(ctx.rank ^ 1, None)

        sched = extract_schedule(cube, program)
        assert sched.comp_steps == 2

    def test_shift_ring(self):
        cube = Hypercube(1)

        def program(ctx):
            got = yield Shift(ctx.rank ^ 1, ctx.rank, ctx.rank ^ 1)
            return got

        sched = extract_schedule(cube, program)
        assert sched.completed
        assert sched.messages == 2
        assert all(e.kind == "shift" for e in sched.events)

    def test_bad_yield_raises(self):
        def program(ctx):
            yield "not a request"

        with pytest.raises(ProgramError, match="expected"):
            extract_schedule(Hypercube(1), program)

    def test_non_generator_program_raises(self):
        def program(ctx):
            return 42

        with pytest.raises(ProgramError, match="generator"):
            extract_schedule(Hypercube(1), program)

    def test_max_steps_truncates(self):
        cube = Hypercube(1)

        def program(ctx):
            while True:
                yield SendRecv(ctx.rank ^ 1, None)

        sched = extract_schedule(cube, program, max_steps=10)
        assert sched.truncated
        assert not sched.completed
        assert sched.steps == 10
        assert len(sched.blocked) == 2


class TestStallDiagnostics:
    def test_orphan_recv_captured(self):
        cube = Hypercube(1)

        def program(ctx):
            if ctx.rank == 0:
                yield Recv(1)

        sched = extract_schedule(cube, program)
        assert not sched.completed
        assert not sched.truncated
        assert sched.stalled_at == 1
        (b,) = sched.blocked
        assert b.rank == 0
        assert b.kind == "recv"
        assert b.waits_on() == (1,)

    def test_deadlock_cycle_captured(self):
        # 0 waits on 1, 1 waits on 2, 2 waits on 0: classic recv cycle.
        cube = Hypercube(2)

        def program(ctx):
            if ctx.rank < 3:
                yield Recv((ctx.rank + 1) % 3)

        sched = extract_schedule(cube, program)
        assert not sched.completed
        assert {b.rank for b in sched.blocked} == {0, 1, 2}

    def test_partial_progress_before_stall(self):
        cube = Hypercube(1)

        def program(ctx):
            yield SendRecv(ctx.rank ^ 1, ctx.rank)
            if ctx.rank == 0:
                yield Recv(1)

        sched = extract_schedule(cube, program)
        assert not sched.completed
        assert sched.steps == 1
        assert sched.messages == 2
        assert sched.stalled_at == 2


class TestCrossValidation:
    """The extractor must agree with the real engine, event for event."""

    @pytest.mark.parametrize("n", [2, 3])
    def test_prefix_matches_engine_log(self, n):
        dc = DualCube(n)
        vals = list(range(dc.num_nodes))
        program = dual_prefix_program(dc, vals, ADD)
        sched = extract_schedule(dc, program)
        result = run_spmd(
            dc, dual_prefix_program(dc, vals, ADD), log_messages=True
        )
        oracle = schedule_from_messages(result, dc)
        assert sched.comm_steps == oracle.comm_steps
        assert sched.comp_steps == oracle.comp_steps
        assert sorted((e.step, e.src, e.dst, e.size) for e in sched.events) == \
            sorted((e.step, e.src, e.dst, e.size) for e in oracle.events)

    def test_sort_matches_engine_log(self):
        rdc = RecursiveDualCube(2)
        keys = list(range(rdc.num_nodes))[::-1]
        sched = extract_schedule(
            rdc, schedule_program(rdc, keys, dual_sort_schedule(2))
        )
        result = run_spmd(
            rdc,
            schedule_program(rdc, keys, dual_sort_schedule(2)),
            log_messages=True,
        )
        oracle = schedule_from_messages(result, rdc)
        assert sched.comm_steps == oracle.comm_steps
        assert sorted((e.step, e.src, e.dst, e.size) for e in sched.events) == \
            sorted((e.step, e.src, e.dst, e.size) for e in oracle.events)

    def test_schedule_from_messages_requires_log(self):
        cube = Hypercube(1)

        def program(ctx):
            yield SendRecv(ctx.rank ^ 1, None)

        result = run_spmd(cube, program)
        with pytest.raises(ValueError, match="log_messages"):
            schedule_from_messages(result, cube)
