"""Tests for the table formatters."""

from repro.analysis.tables import format_markdown_table, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["a", "bb"], [(1, 2), (33, 444)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", "+"}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every row equally wide

    def test_title(self):
        out = format_table(["x"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["r"], [(2.66666,)])
        assert "2.667" in out

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_mixed_types(self):
        out = format_table(["a", "b"], [("name", 1.5)])
        assert "name" in out and "1.500" in out


class TestMarkdownTable:
    def test_structure(self):
        out = format_markdown_table(["a", "b"], [(1, 2)])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_floats(self):
        out = format_markdown_table(["x"], [(1 / 3,)])
        assert "0.333" in out
