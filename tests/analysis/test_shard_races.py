"""Shard-disjointness race checker: span algebra, real plans, rejections.

The checker must accept every plan the sharded replay actually compiles
(they are exact disjoint covers of shared memory) and reject synthetic
racing or escaping plans *before* any worker forks.
"""

import numpy as np
import pytest

from repro.analysis.static.compile import (
    ShardRaceError,
    WriteSpan,
    check_columnar_round,
    check_shard_plan,
    columnar_round_spans,
    shard_task_spans,
    spans_overlap,
)
from repro.core.dual_prefix import dual_prefix_vec
from repro.core.ops import ADD
from repro.core.replay import _cluster_blocks, dual_prefix_replay
from repro.topology import DualCube


def real_tasks(num_nodes, m, shards):
    """The (cls, start, stop) triples _dual_prefix_replay_sharded builds."""
    return [
        (cls, a, b)
        for cls in (0, 1)
        for a, b in _cluster_blocks(1 << m, shards)
    ]


class TestWriteSpan:
    def test_elements_and_stop(self):
        span = WriteSpan(buffer="t", base=2, stride=4, count=3, block=2)
        assert span.elements() == {2, 3, 6, 7, 10, 11}
        assert span.stop == 12

    def test_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            WriteSpan(buffer="t", base=-1, stride=1, count=1, block=1)
        with pytest.raises(ValueError, match="malformed"):
            WriteSpan(buffer="t", base=0, stride=1, count=0, block=1)

    def test_rejects_self_overlap(self):
        with pytest.raises(ValueError, match="overlaps itself"):
            WriteSpan(buffer="t", base=0, stride=1, count=2, block=2)


class TestSpansOverlap:
    def test_matches_brute_force(self):
        # Exhaustive small-parameter sweep against concrete element sets.
        rng = np.random.default_rng(7)
        spans = [
            WriteSpan(
                buffer="t",
                base=int(rng.integers(0, 6)),
                stride=int(stride),
                count=int(count),
                block=int(block),
            )
            for stride in (1, 2, 3, 5, 8)
            for count in (1, 2, 4)
            for block in (1, 2, 3)
            if count == 1 or stride >= block
        ]
        for a in spans:
            for b in spans:
                expected = bool(a.elements() & b.elements())
                assert spans_overlap(a, b) is expected, (a, b)

    def test_different_buffers_never_overlap(self):
        a = WriteSpan(buffer="t", base=0, stride=1, count=1, block=8)
        b = WriteSpan(buffer="s", base=0, stride=1, count=1, block=8)
        assert not spans_overlap(a, b)

    def test_interleaved_disjoint(self):
        lo = WriteSpan(buffer="t", base=0, stride=4, count=4, block=2)
        hi = WriteSpan(buffer="t", base=2, stride=4, count=4, block=2)
        assert not spans_overlap(lo, hi)
        shifted = WriteSpan(buffer="t", base=1, stride=4, count=4, block=2)
        assert spans_overlap(lo, shifted)
        assert spans_overlap(hi, shifted)


class TestRealPlansAccepted:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
    def test_shard_plan_disjoint_exact_cover(self, n, shards):
        dc = DualCube(n)
        num, m = dc.num_nodes, dc.cluster_dim
        tasks = real_tasks(num, m, shards)
        spans = check_shard_plan(num, m, tasks)  # must not raise
        # The accepted plan is not merely race-free: per buffer it is an
        # exact partition of the full state vector.
        for buf in ("t", "s"):
            covered = frozenset().union(
                *(s.elements() for name, s in spans if s.buffer == buf)
            )
            assert covered == frozenset(range(num))

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_columnar_rounds_disjoint_exact_partition(self, n):
        dc = DualCube(n)
        length = dc.num_nodes // 2
        for bit in range(dc.cluster_dim):
            spans = check_columnar_round(length, bit)
            t_cover = frozenset().union(
                *(s.elements() for name, s in spans if s.buffer == "t")
            )
            assert t_cover == frozenset(range(length))


class TestRejections:
    def test_overlapping_blocks_rejected(self):
        # DualCube(3): 32 nodes, 4 clusters per class half.
        with pytest.raises(ShardRaceError, match="overlap"):
            check_shard_plan(32, 2, [(0, 0, 3), (0, 2, 4)])

    def test_cross_class_never_overlaps(self):
        # Class halves are disjoint even with identical cluster blocks.
        check_shard_plan(32, 2, [(0, 0, 4), (1, 0, 4)])

    def test_block_escaping_cluster_range_rejected(self):
        with pytest.raises(ShardRaceError, match="escapes"):
            check_shard_plan(32, 2, [(0, 0, 5)])

    def test_bad_class_rejected(self):
        with pytest.raises(ShardRaceError, match="class"):
            check_shard_plan(32, 2, [(2, 0, 1)])

    def test_columnar_bit_out_of_range(self):
        with pytest.raises(ShardRaceError, match="out of range"):
            check_columnar_round(16, 4)
        with pytest.raises(ShardRaceError, match="out of range"):
            check_columnar_round(16, -1)

    def test_columnar_round_spans_shape(self):
        spans = dict(columnar_round_spans(16, 1))
        assert set(spans) == {"t_lo", "t_hi", "s_hi"}
        assert spans["t_lo"].base == 0
        assert spans["t_hi"].base == 2
        assert spans["s_hi"].buffer == "s"


class TestReplayGuard:
    """The live sharded replay runs the checker before forking."""

    def test_replay_still_matches_vectorized(self):
        dc = DualCube(3)
        rng = np.random.default_rng(11)
        vals = rng.integers(0, 100, dc.num_nodes).tolist()
        got = dual_prefix_replay(dc, vals, ADD, shards=2)
        want = dual_prefix_vec(dc, vals, ADD)
        np.testing.assert_array_equal(got, want)

    def test_racing_block_plan_rejected_before_fork(self, monkeypatch):
        import repro.core.replay as replay

        # Rows [0, 3) and [2, 4) of each class half collide on row 2.
        monkeypatch.setattr(
            replay, "_cluster_blocks", lambda clusters, shards: [(0, 3), (2, 4)]
        )
        forked = []
        monkeypatch.setattr(
            replay, "_shard_worker",
            lambda task: forked.append(task),
        )
        dc = DualCube(3)
        vals = list(range(dc.num_nodes))
        with pytest.raises(ShardRaceError, match="overlap"):
            dual_prefix_replay(dc, vals, ADD, shards=2)
        assert forked == []  # the pool never ran a task
