"""Checker suite over broken fixture programs and hand-built schedules.

Each checker must demonstrably *reject* its target defect: an illegal
edge, an orphan receive, a deadlock cycle, an oversubscribed port, and a
bound overshoot.
"""

import pytest

from repro.analysis.static import (
    BlockedOp,
    CommEvent,
    CommSchedule,
    check_bounds,
    check_congestion,
    check_edge_legality,
    check_pairing,
    extract_schedule,
    run_schedule_checks,
)
from repro.analysis.static.checkers import _find_cycle
from repro.simulator import Recv, Send, SendRecv
from repro.topology import DualCube, Hypercube


def codes(violations):
    return {v.code for v in violations}


@pytest.fixture
def dc():
    return DualCube(2)


class TestEdgeLegality:
    def test_illegal_edge_fixture_rejected(self, dc):
        # Node 0's dual-cube neighbors are {1, 2, 4}; 0 <-> 3 is not an
        # edge, but both sides pair up, so extraction happily completes
        # and only the edge checker can catch it.
        def program(ctx):
            if ctx.rank == 0:
                yield SendRecv(3, "x")
            elif ctx.rank == 3:
                yield SendRecv(0, "y")

        sched = extract_schedule(dc, program)
        assert sched.completed
        found = check_edge_legality(sched, dc)
        assert codes(found) == {"illegal-edge"}
        assert any("no edge 0 <-> 3" in v.message for v in found)

    def test_self_address_rejected(self):
        sched = CommSchedule(
            num_nodes=2,
            topology="fixture",
            events=(CommEvent(step=1, src=1, dst=1),),
            steps=1,
        )
        found = check_edge_legality(sched, Hypercube(1))
        assert any("addresses itself" in v.message for v in found)

    def test_out_of_range_endpoint_rejected(self):
        sched = CommSchedule(
            num_nodes=2,
            topology="fixture",
            events=(CommEvent(step=1, src=0, dst=9),),
            steps=1,
        )
        found = check_edge_legality(sched, Hypercube(1))
        assert any("outside" in v.message for v in found)

    def test_topology_size_mismatch(self, dc):
        sched = CommSchedule(
            num_nodes=4, topology="fixture", events=(), steps=0
        )
        found = check_edge_legality(sched, dc)
        assert codes(found) == {"illegal-edge"}

    def test_blocked_ops_also_checked(self, dc):
        # An orphan Send over a non-edge: never delivered, so only the
        # blocked-op leg can reveal the illegal endpoint.
        def program(ctx):
            if ctx.rank == 0:
                yield Send(3, "x")

        sched = extract_schedule(dc, program)
        assert not sched.completed
        found = check_edge_legality(sched, dc)
        assert any("blocked" in v.message for v in found)

    def test_legal_schedule_clean(self, dc):
        # Cross edges form a perfect matching: every node has exactly one
        # neighbor in the other class, so this exchange is always legal.
        half = dc.num_nodes // 2

        def program(ctx):
            partner = next(
                v
                for v in ctx.neighbors()
                if (v >= half) != (ctx.rank >= half)
            )
            yield SendRecv(partner, ctx.rank)

        sched = extract_schedule(dc, program)
        assert check_edge_legality(sched, dc) == []


class TestPairing:
    def test_completed_schedule_clean(self):
        sched = CommSchedule(
            num_nodes=2,
            topology="fixture",
            events=(CommEvent(step=1, src=0, dst=1),),
            steps=1,
        )
        assert check_pairing(sched) == []

    def test_orphan_recv_fixture_rejected(self, dc):
        def program(ctx):
            if ctx.rank == 5:
                yield Recv(6)

        sched = extract_schedule(dc, program)
        found = check_pairing(sched)
        assert "stall" in codes(found)
        orphans = [v for v in found if v.code == "orphan"]
        assert len(orphans) == 1
        assert orphans[0].rank == 5
        assert "has terminated" in orphans[0].message

    def test_orphan_nonexistent_rank(self):
        sched = CommSchedule(
            num_nodes=2,
            topology="fixture",
            events=(),
            steps=0,
            completed=False,
            stalled_at=1,
            blocked=(BlockedOp(rank=0, kind="recv", recv_from=7),),
        )
        found = check_pairing(sched)
        assert any(
            v.code == "orphan" and "does not exist" in v.message
            for v in found
        )

    def test_deadlock_cycle_fixture_rejected(self, dc):
        # Recv cycle 0 -> 1 -> 2 -> 0 among live ranks: a true static
        # deadlock, every participant still present.
        def program(ctx):
            if ctx.rank < 3:
                yield Recv((ctx.rank + 1) % 3)

        sched = extract_schedule(dc, program)
        found = check_pairing(sched)
        dead = [v for v in found if v.code == "deadlock"]
        assert len(dead) == 1
        ranks = [int(r) for r in dead[0].message.split(":")[1].split("->")]
        assert ranks[0] == ranks[-1]
        assert set(ranks) <= {0, 1, 2}

    def test_mismatch_send_facing_send(self, dc):
        # Both ends post Send to each other: neither posts the Recv leg.
        def program(ctx):
            if ctx.rank == 0:
                yield Send(1, "a")
            elif ctx.rank == 1:
                yield Send(0, "b")

        sched = extract_schedule(dc, program)
        found = check_pairing(sched)
        # 0 and 1 wait on each other without reciprocating legs: the
        # wait-for cycle is also a deadlock.
        assert "deadlock" in codes(found)

    def test_mismatch_sendrecv_facing_recv(self, dc):
        def program(ctx):
            if ctx.rank == 0:
                yield SendRecv(1, "a")
            elif ctx.rank == 1:
                yield Recv(0)

        sched = extract_schedule(dc, program)
        found = check_pairing(sched)
        assert "mismatch" in codes(found)

    def test_livelock_reported_when_truncated(self):
        sched = CommSchedule(
            num_nodes=2,
            topology="fixture",
            events=(),
            steps=50,
            completed=False,
            truncated=True,
            blocked=(BlockedOp(rank=0, kind="sendrecv", send_to=1, recv_from=1),),
        )
        assert "livelock" in codes(check_pairing(sched))


class TestCongestion:
    def test_port_limit_send_violation(self):
        sched = CommSchedule(
            num_nodes=4,
            topology="fixture",
            events=(
                CommEvent(step=1, src=0, dst=1),
                CommEvent(step=1, src=0, dst=2),
            ),
            steps=1,
        )
        found = check_congestion(sched)
        assert any(
            v.code == "port-limit" and "sends 2" in v.message for v in found
        )

    def test_port_limit_recv_violation(self):
        sched = CommSchedule(
            num_nodes=4,
            topology="fixture",
            events=(
                CommEvent(step=1, src=1, dst=0),
                CommEvent(step=1, src=2, dst=0),
            ),
            steps=1,
        )
        found = check_congestion(sched)
        assert any(
            v.code == "port-limit" and "receives 2" in v.message for v in found
        )

    def test_directed_link_double_use(self):
        sched = CommSchedule(
            num_nodes=2,
            topology="fixture",
            events=(
                CommEvent(step=1, src=0, dst=1),
                CommEvent(step=1, src=0, dst=1),
            ),
            steps=1,
        )
        found = check_congestion(sched)
        assert any(v.code == "link-congestion" for v in found)

    def test_same_node_across_steps_is_fine(self):
        sched = CommSchedule(
            num_nodes=2,
            topology="fixture",
            events=(
                CommEvent(step=1, src=0, dst=1),
                CommEvent(step=2, src=0, dst=1),
            ),
            steps=2,
        )
        assert check_congestion(sched) == []

    def test_aggregate_link_budget(self):
        events = tuple(
            CommEvent(step=s, src=s % 2, dst=1 - s % 2) for s in range(1, 6)
        )
        sched = CommSchedule(
            num_nodes=2, topology="fixture", events=events, steps=5
        )
        assert check_congestion(sched) == []
        found = check_congestion(sched, max_link_load=4)
        assert any("budget 4" in v.message for v in found)
        assert sched.max_link_load() == 5


class TestBounds:
    def _sched(self, steps, comp):
        return CommSchedule(
            num_nodes=2,
            topology="fixture",
            events=(),
            steps=steps,
            comp_steps=comp,
        )

    def test_within_bounds_clean(self):
        assert (
            check_bounds(
                self._sched(4, 4),
                comm_bound=5,
                comp_bound=4,
                comm_exact=4,
                comp_exact=4,
            )
            == []
        )

    def test_comm_bound_overshoot(self):
        found = check_bounds(self._sched(6, 0), comm_bound=5)
        assert codes(found) == {"comm-bound"}

    def test_comp_bound_overshoot(self):
        found = check_bounds(self._sched(0, 9), comp_bound=8)
        assert codes(found) == {"comp-bound"}

    def test_exact_mismatch(self):
        found = check_bounds(self._sched(4, 4), comm_exact=5, comp_exact=3)
        assert codes(found) == {"comm-exact", "comp-exact"}

    def test_incomplete_schedule_fails_outright(self):
        sched = CommSchedule(
            num_nodes=2,
            topology="fixture",
            events=(),
            steps=0,
            completed=False,
        )
        found = check_bounds(sched, comm_bound=100)
        assert codes(found) == {"comm-bound"}
        assert "vacuous" in found[0].message


class TestRunScheduleChecks:
    def test_clean_program_no_findings(self, dc):
        half = dc.num_nodes // 2

        def program(ctx):
            partner = next(
                v
                for v in ctx.neighbors()
                if (v >= half) != (ctx.rank >= half)
            )
            yield SendRecv(partner, ctx.rank)

        sched = extract_schedule(dc, program)
        assert run_schedule_checks(sched, dc, comm_bound=1, comm_exact=1) == []

    def test_broken_program_aggregates_findings(self, dc):
        def program(ctx):
            if ctx.rank == 0:
                yield SendRecv(3, "x")
            elif ctx.rank == 3:
                yield SendRecv(0, "y")

        sched = extract_schedule(dc, program)
        found = run_schedule_checks(sched, dc, comm_exact=2)
        assert "illegal-edge" in codes(found)
        assert "comm-exact" in codes(found)

    def test_violation_str_includes_location(self):
        sched = CommSchedule(
            num_nodes=2,
            topology="fixture",
            events=(CommEvent(step=3, src=1, dst=1),),
            steps=3,
        )
        (v,) = check_edge_legality(sched, Hypercube(1))
        text = str(v)
        assert "illegal-edge" in text
        assert "step 3" in text
        assert "rank 1" in text


class TestFindCycle:
    """Edge cases of the wait-for cycle detector used by check_pairing."""

    def test_self_loop(self):
        assert _find_cycle({0: (0,)}) == [0, 0]

    def test_two_disjoint_cycles_reports_first_deterministically(self):
        edges = {0: (1,), 1: (0,), 2: (3,), 3: (2,)}
        # The cycle through the lowest rank wins, every time.
        assert _find_cycle(edges) == [0, 1, 0]
        assert _find_cycle(edges) == [0, 1, 0]

    def test_cycle_behind_non_cycle_prefix(self):
        # Rank 0 waits into the cycle but is not part of it; the
        # reported walk must contain only the cycle members.
        assert _find_cycle({0: (1,), 1: (2,), 2: (1,)}) == [1, 2, 1]

    def test_acyclic_chain(self):
        assert _find_cycle({0: (1,), 1: (2,)}) is None
