"""Differential grounding: static fault predictions vs live engine runs.

The acceptance bar for the static analyzer is exactness, not plausibility:

* :func:`recovery_impact` must predict ``run_faulty``'s exclusion set for
  **every** single-node and single-link fault on D_2..D_4, under both
  engine matchers (degraded mode; reroute and sort covered on D_2..D_3).
* ``"block"``-semantics :func:`analyze_fault_impact` must name exactly
  the ranks the engine reports in ``DeadlockError.blocked``.
* ``"cancel"``-semantics taint must be sound: every rank the static
  analysis calls clean must return its fault-free value from a live
  cancel-mode run.
"""

import pytest

from repro.analysis.static import analyze_fault_impact, extract_schedule, recovery_impact
from repro.core.dual_prefix import dual_prefix_program
from repro.core.ops import ADD, AssocOp
from repro.core.run_faulty import run_faulty
from repro.simulator.engine import run_spmd, use_fault_plan, use_matching
from repro.simulator.errors import DeadlockError
from repro.simulator.faults import FAULTED, FaultPlan
from repro.topology import DualCube, RecursiveDualCube
from repro.topology.faults import FaultSet

MATCHERS = ("indexed", "legacy")


def _absorb_add(a, b):
    if a is FAULTED:
        return b
    if b is FAULTED:
        return a
    return a + b


# Cancel-mode programs resume with the FAULTED sentinel after a timed-out
# receive, so the live op must absorb it; fault-free it is exactly ADD.
ADD_ABSORB = AssocOp("add-absorb", _absorb_add, 0, commutative=True)


def single_faults(topo):
    """Every single-node and single-link FaultSet of ``topo``."""
    for r in range(topo.num_nodes):
        yield FaultSet(nodes=[r])
    for u, v in topo.edges():
        yield FaultSet(links=[(u, v)])


def _assert_match(topo, faults, mode, kind, matcher, data):
    static = recovery_impact(topo, faults, mode=mode)
    with use_matching(matcher):
        dynamic = run_faulty(kind, topo, data, faults=faults, mode=mode)
    assert static.excluded == dynamic.excluded, (
        f"{topo.name} {mode} {kind} [{matcher}] faults={faults}: "
        f"static {static.excluded} != dynamic {dynamic.excluded}"
    )
    # values is permuted to input-index order, so the None slots are the
    # excluded ranks' input indices — same cardinality, not same indices.
    assert sum(v is None for v in dynamic.values) == len(dynamic.excluded)


class TestDegradedExclusionExact:
    """Static BFS membership == dynamic degraded outcome, exhaustively."""

    @pytest.mark.parametrize("matcher", MATCHERS)
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_prefix_all_single_faults(self, n, matcher):
        dc = DualCube(n)
        data = list(range(dc.num_nodes))
        for faults in single_faults(dc):
            _assert_match(dc, faults, "degraded", "prefix", matcher, data)

    @pytest.mark.parametrize("matcher", MATCHERS)
    @pytest.mark.parametrize("n", [2, 3])
    def test_sort_all_single_faults(self, n, matcher):
        rdc = RecursiveDualCube(n)
        keys = list(reversed(range(rdc.num_nodes)))
        for faults in single_faults(rdc):
            _assert_match(rdc, faults, "degraded", "sort", matcher, keys)

    def test_prefix_double_faults_sample(self):
        # A non-exhaustive but adversarial slice: pairs around rank 0,
        # where exclusion is least monotone (the root can move).
        dc = DualCube(3)
        data = list(range(dc.num_nodes))
        ns = dc.neighbors(0)
        pairs = [
            FaultSet(nodes=[0, ns[0]]),
            FaultSet(nodes=list(ns[:2])),
            FaultSet(nodes=[ns[0]], links=[(0, ns[1])]),
            FaultSet(links=[(0, v) for v in ns]),
        ]
        for faults in pairs:
            _assert_match(dc, faults, "degraded", "prefix", "indexed", data)


class TestRerouteExclusionExact:
    @pytest.mark.parametrize("matcher", MATCHERS)
    @pytest.mark.parametrize("n", [2, 3])
    def test_prefix_all_single_faults(self, n, matcher):
        dc = DualCube(n)
        data = list(range(dc.num_nodes))
        for faults in single_faults(dc):
            _assert_match(dc, faults, "reroute", "prefix", matcher, data)

    def test_prefix_d4_sampled(self):
        dc = DualCube(4)
        data = list(range(dc.num_nodes))
        cases = [FaultSet(nodes=[r]) for r in range(0, dc.num_nodes, 8)]
        cases += [
            FaultSet(links=[e])
            for i, e in enumerate(dc.edges())
            if i % 16 == 0
        ]
        for faults in cases:
            _assert_match(dc, faults, "reroute", "prefix", "indexed", data)


@pytest.fixture(scope="module", params=[2, 3])
def prefix_case(request):
    n = request.param
    dc = DualCube(n)
    data = list(range(dc.num_nodes))
    sched = extract_schedule(dc, dual_prefix_program(dc, data, ADD))
    baseline = run_spmd(dc, dual_prefix_program(dc, data, ADD)).returns
    return dc, data, sched, baseline


class TestBlockSemanticsVsEngine:
    """Static blocked set == the engine's DeadlockError report."""

    def _dynamic_blocked(self, dc, data, plan, matcher):
        prog = dual_prefix_program(dc, data, ADD)
        try:
            with use_matching(matcher), use_fault_plan(plan):
                run_spmd(dc, prog)
            return frozenset()
        except DeadlockError as e:
            return frozenset(e.blocked)

    @pytest.mark.parametrize("matcher", MATCHERS)
    def test_all_single_faults(self, prefix_case, matcher):
        dc, data, sched, _ = prefix_case
        plans = [FaultPlan(node_crashes={r: 1}) for r in range(dc.num_nodes)]
        plans += [FaultPlan(node_crashes={r: 3}) for r in range(dc.num_nodes)]
        plans += [
            FaultPlan(link_cuts={(min(u, v), max(u, v)): 1})
            for u, v in dc.edges()
        ]
        for plan in plans:
            static = frozenset(
                analyze_fault_impact(sched, plan, semantics="block").blocked
            )
            dynamic = self._dynamic_blocked(dc, data, plan, matcher)
            assert static == dynamic, (
                f"{dc.name} [{matcher}] {plan}: static {sorted(static)} "
                f"!= engine {sorted(dynamic)}"
            )

    def test_mid_schedule_cuts(self, prefix_case):
        dc, data, sched, _ = prefix_case
        for cycle in range(1, sched.steps + 2):
            plan = FaultPlan(link_cuts={(0, 1): cycle})
            static = frozenset(
                analyze_fault_impact(sched, plan, semantics="block").blocked
            )
            dynamic = self._dynamic_blocked(dc, data, plan, "indexed")
            assert static == dynamic, f"cut (0,1)@{cycle}"


class TestCancelSemanticsSound:
    """Ranks the static taint calls clean keep their fault-free values."""

    @pytest.mark.parametrize("matcher", MATCHERS)
    def test_all_single_faults(self, prefix_case, matcher):
        dc, data, sched, baseline = prefix_case
        timeout = sched.steps + 1
        plans = [
            FaultPlan(node_crashes={r: 1}, timeout=timeout,
                      on_timeout="cancel")
            for r in range(dc.num_nodes)
        ]
        plans += [
            FaultPlan(link_cuts={(min(u, v), max(u, v)): 1},
                      timeout=timeout, on_timeout="cancel")
            for u, v in dc.edges()
        ]
        for plan in plans:
            impact = analyze_fault_impact(sched, plan)
            assert impact.semantics == "cancel"
            prog = dual_prefix_program(dc, data, ADD_ABSORB)
            with use_matching(matcher), use_fault_plan(plan):
                result = run_spmd(dc, prog)
            blast = set(impact.blast_radius)
            for rank in range(dc.num_nodes):
                if rank in blast:
                    continue
                assert result.returns[rank] == baseline[rank], (
                    f"{dc.name} [{matcher}] {plan}: rank {rank} is "
                    f"outside the static blast radius but its value "
                    f"changed ({result.returns[rank]!r} != "
                    f"{baseline[rank]!r})"
                )

    def test_exact_taint_on_cut(self, prefix_case):
        # The step-1 cut taints everything in a prefix (all-to-all
        # mixing): the engine must also complete without deadlock.
        dc, data, sched, _ = prefix_case
        plan = FaultPlan(
            link_cuts={(0, 1): 1}, timeout=sched.steps + 1,
            on_timeout="cancel",
        )
        impact = analyze_fault_impact(sched, plan)
        assert impact.blast_radius == tuple(range(dc.num_nodes))
        prog = dual_prefix_program(dc, data, ADD_ABSORB)
        with use_fault_plan(plan):
            run_spmd(dc, prog)  # must not raise
